/**
 * @file
 * Persistent on-disk result cache for the benchmark harnesses. Promotes
 * the process-wide in-memory result cache to a store that survives the
 * process, so re-running a figure sweep only simulates the delta.
 *
 * Keying: entries are valid for (simulator binary, full job key) pairs.
 * The binary is identified by a content hash of /proc/self/exe — any
 * rebuild invalidates every cached result, which is the conservative
 * answer to "did this code change affect simulation results?". The job
 * key (bench_util's matrixJobKey) captures the workload, scale, thread
 * count, a module fingerprint and every SystemOptions field.
 *
 * Robustness: writes are atomic (temp file + rename), entries carry a
 * magic/version header, the embedded key and a payload checksum; any
 * validation failure reads as a miss, never an error. Journal-carrying
 * results are not persisted (the journal is an observability artifact
 * sized like the run itself).
 */

#ifndef HINTM_BENCH_RESULT_STORE_HH
#define HINTM_BENCH_RESULT_STORE_HH

#include <cstdint>
#include <string>

#include "sim/machine.hh"

namespace hintm
{
namespace bench
{

/** FNV-1a 64-bit hash (stable across platforms and builds). */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** Binary serialization of a RunResult (exposed for tests). The journal
 * pointer is not encoded; decode leaves it null. */
std::string encodeRunResult(const sim::RunResult &r);

/** @return false when @p payload is malformed (any version skew or
 * corruption); @p out is untouched in that case. */
bool decodeRunResult(const std::string &payload, sim::RunResult &out);

/** One on-disk cache directory bound to one simulator binary. */
class ResultStore
{
  public:
    /**
     * @param dir cache root (created lazily on first store)
     * @param bin_hash content hash of the owning binary
     */
    ResultStore(std::string dir, std::uint64_t bin_hash);

    /** @return true and fill @p out on a valid cached entry for
     * @p key; corrupt/mismatched/absent entries are misses. */
    bool load(const std::string &key, sim::RunResult &out) const;

    /** Persist @p r under @p key (atomic; best-effort — IO failures
     * warn and drop the entry rather than failing the run). */
    void store(const std::string &key, const sim::RunResult &r) const;

    const std::string &dir() const { return dir_; }

    /** $XDG_CACHE_HOME/hintm or ~/.cache/hintm (empty when no home). */
    static std::string defaultDir();

    /** Content hash of /proc/self/exe (0 when unreadable). */
    static std::uint64_t selfBinaryHash();

    /** Remove every cache entry under @p dir (--cache-clear). */
    static void clearDir(const std::string &dir);

  private:
    std::string entryPath(const std::string &key) const;

    std::string dir_;
    std::uint64_t binHash_;
};

} // namespace bench
} // namespace hintm

#endif // HINTM_BENCH_RESULT_STORE_HH
