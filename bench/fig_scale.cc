/**
 * @file
 * Core-count scaling study for the PR 7 directory machine: the fig4/fig8
 * kernels re-partitioned for 8/32/64 hardware contexts ("name@N"
 * workloads), run with hints off (Baseline) and on (Full) over the P8
 * and L1TM backends. Larger machines get a two-tier NUMA latency model
 * (one home node per 16 cores) to keep the memory system honest.
 *
 * Output is fully deterministic, so a --no-directory rerun must produce
 * a byte-identical transcript — CI diffs the two. With --journal the
 * per-TX journal attributes every abort; the hottest sites for the
 * largest machine are printed per workload, and --stats-json exports
 * the machine-readable records (PR 5 schema).
 *
 * Options: --tiny/--small/--large, --workload NAME (repeatable;
 * default kmeans/intruder/vacation/tpcc-no), --journal, --stats-json
 * [FILE], --no-directory, --jobs N.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/journal_io.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

namespace
{

constexpr unsigned coreCounts[] = {8, 32, 64};

/** One directory home node per 16 cores: 8 -> flat, 32 -> 2, 64 -> 4. */
unsigned
numaNodesFor(unsigned cores)
{
    return cores >= 16 ? cores / 16 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    // The scaling subset: two conflict-bound kernels (kmeans, tpcc-no),
    // one capacity-bound (intruder) and one mixed (vacation). --workload
    // overrides as usual.
    if (args.only.empty())
        args.only = {"kmeans", "intruder", "vacation", "tpcc-no"};

    const std::vector<std::string> names = args.names();
    struct Cell
    {
        std::string wlName;
        unsigned cores;
        htm::HtmKind kind;
        std::size_t base; ///< runMatrix index of the Baseline run
        std::size_t full; ///< runMatrix index of the Full run
    };

    // One prepared workload per (kernel, core count): the thread count
    // is baked into the TxIR partitions, so every machine size is its
    // own module ("name@N").
    std::vector<bench::PreparedWorkload> prepared;
    std::vector<Cell> cells;
    std::vector<bench::MatrixJob> jobs;
    for (const std::string &name : names) {
        for (unsigned cores : coreCounts) {
            prepared.push_back(bench::prepare(
                name + "@" + std::to_string(cores), args.scale));
        }
    }
    std::size_t p_idx = 0;
    for (const std::string &name : names) {
        for (unsigned cores : coreCounts) {
            const bench::PreparedWorkload &p = prepared[p_idx++];
            for (const htm::HtmKind kind :
                 {htm::HtmKind::P8, htm::HtmKind::L1TM}) {
                auto opt = [&](Mechanism m) {
                    SystemOptions o;
                    o.htmKind = kind;
                    o.mechanism = m;
                    o.numCores = cores;
                    o.numaNodes = numaNodesFor(cores);
                    return o;
                };
                Cell c{name, cores, kind, jobs.size(), jobs.size() + 1};
                jobs.push_back({&p, opt(Mechanism::Baseline)});
                jobs.push_back({&p, opt(Mechanism::Full)});
                cells.push_back(c);
            }
        }
    }
    const std::vector<sim::RunResult> res =
        bench::runMatrix(jobs, args.jobs);

    for (const htm::HtmKind kind :
         {htm::HtmKind::P8, htm::HtmKind::L1TM}) {
        TextTable t;
        t.header({"workload", "cores", "base cycles", "HinTM cycles",
                  "speedup", "commits", "base cap aborts", "-cap%",
                  "conf aborts"});
        for (const Cell &c : cells) {
            if (c.kind != kind)
                continue;
            const sim::RunResult &b = res[c.base];
            const sim::RunResult &f = res[c.full];
            const auto cap = [](const sim::RunResult &r) {
                return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
            };
            const auto conf = [](const sim::RunResult &r) {
                return r.htm.aborts[unsigned(htm::AbortReason::Conflict)];
            };
            t.row({c.wlName, std::to_string(c.cores),
                   std::to_string(b.cycles), std::to_string(f.cycles),
                   bench::speedupStr(double(b.cycles) /
                                     double(f.cycles ? f.cycles : 1)),
                   std::to_string(b.committedTxs), std::to_string(cap(b)),
                   TextTable::pct(bench::reduction(cap(b), cap(f))),
                   std::to_string(conf(b))});
        }
        std::cout << "== Scaling on " << htm::htmKindName(kind)
                  << " (hints off vs on, 8/32/64 contexts) ==\n"
                  << t << "\n";
    }

    // Journal abort attribution for the biggest machines: which sites
    // hurt once 64 contexts contend.
    if (args.journal) {
        for (const Cell &c : cells) {
            if (c.cores != 64 || c.kind != htm::HtmKind::P8)
                continue;
            const sim::RunResult &b = res[c.base];
            std::cout << "== " << c.wlName
                      << "@64 baseline abort attribution ==\n"
                      << sim::journalSummary(b);
            if (b.journal)
                std::cout << sim::renderAttributionTable(*b.journal, 5);
            std::cout << "\n";
        }
    }
    return 0;
}
