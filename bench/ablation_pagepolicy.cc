/**
 * @file
 * Ablation: page-mode transition policy (§VI-B). Compares full HinTM
 * under the default sticky policy (a safe page that turns unsafe stays
 * unsafe; aborts every TX that safe-read it) against the
 * preserve-read-only policy (a second reader demotes private-rw pages
 * to shared-ro instead of declaring them unsafe). The paper studies
 * this for vacation, its page-mode outlier.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable t;
    t.header({"workload", "base cycles", "HinTM", "pg-aborts",
              "HinTM+preserve", "pg-aborts", "preserve gain"});

    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        SystemOptions base;
        base.htmKind = htm::HtmKind::P8;
        jobs.push_back({&p, base});

        SystemOptions sticky = base;
        sticky.mechanism = Mechanism::Full;
        jobs.push_back({&p, sticky});

        SystemOptions pres = sticky;
        pres.preserveReadOnly = true;
        jobs.push_back({&p, pres});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &rb = res[3 * w + 0];
        const auto &rs = res[3 * w + 1];
        const auto &rp = res[3 * w + 2];

        const auto pg = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::PageMode)];
        };
        t.row({name, std::to_string(rb.cycles),
               bench::speedupStr(double(rb.cycles) / rs.cycles),
               std::to_string(pg(rs)),
               bench::speedupStr(double(rb.cycles) / rp.cycles),
               std::to_string(pg(rp)),
               bench::speedupStr(double(rs.cycles) / rp.cycles)});
    }
    std::cout << "== page-policy ablation (P8 + HinTM) ==\n" << t;
    return 0;
}
