/**
 * @file
 * Ablation: page-mode transition policy (§VI-B). Compares full HinTM
 * under the default sticky policy (a safe page that turns unsafe stays
 * unsafe; aborts every TX that safe-read it) against the
 * preserve-read-only policy (a second reader demotes private-rw pages
 * to shared-ro instead of declaring them unsafe). The paper studies
 * this for vacation, its page-mode outlier.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable t;
    t.header({"workload", "base cycles", "HinTM", "pg-aborts",
              "HinTM+preserve", "pg-aborts", "preserve gain"});

    for (const std::string &name : args.names()) {
        const bench::PreparedWorkload p = bench::prepare(name, args.scale);

        SystemOptions base;
        base.htmKind = htm::HtmKind::P8;
        const auto rb = bench::run(p, base);

        SystemOptions sticky = base;
        sticky.mechanism = Mechanism::Full;
        const auto rs = bench::run(p, sticky);

        SystemOptions pres = sticky;
        pres.preserveReadOnly = true;
        const auto rp = bench::run(p, pres);

        const auto pg = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::PageMode)];
        };
        t.row({name, std::to_string(rb.cycles),
               bench::speedupStr(double(rb.cycles) / rs.cycles),
               std::to_string(pg(rs)),
               bench::speedupStr(double(rb.cycles) / rp.cycles),
               std::to_string(pg(rp)),
               bench::speedupStr(double(rs.cycles) / rp.cycles)});
    }
    std::cout << "== page-policy ablation (P8 + HinTM) ==\n" << t;
    return 0;
}
