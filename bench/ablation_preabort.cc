/**
 * @file
 * Ablation: pre-abort handlers [51] vs HinTM (§VII). A pre-abort
 * handler converts a capacity-overflowing TX into a critical section —
 * no work is lost, but the system still serializes. HinTM instead
 * *prevents* the overflow, keeping execution parallel. The paper argues
 * the two compose: HinTM shrinks footprints and the handler rescues the
 * residue, which the combined column demonstrates.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"genome", "labyrinth", "yada", "intruder"};

    TextTable t;
    t.header({"workload", "baseline", "pre-abort", "HinTM",
              "HinTM+pre-abort", "conversions"});

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        SystemOptions base;
        base.htmKind = htm::HtmKind::P8;
        jobs.push_back({&p, base});

        SystemOptions pre = base;
        pre.preAbortHandler = true;
        jobs.push_back({&p, pre});

        SystemOptions full = base;
        full.mechanism = Mechanism::Full;
        jobs.push_back({&p, full});

        SystemOptions both = full;
        both.preAbortHandler = true;
        jobs.push_back({&p, both});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        const auto &rb = res[4 * w + 0];
        const auto &rp = res[4 * w + 1];
        const auto &rf = res[4 * w + 2];
        const auto &rc = res[4 * w + 3];

        t.row({name, "1.00x",
               bench::speedupStr(double(rb.cycles) / rp.cycles),
               bench::speedupStr(double(rb.cycles) / rf.cycles),
               bench::speedupStr(double(rb.cycles) / rc.cycles),
               std::to_string(rc.htm.preAbortConversions)});
    }
    std::cout << "== pre-abort handler ablation (P8, speedup vs "
                 "baseline) ==\n"
              << t;
    std::printf("\npre-abort saves the doomed attempt's work; HinTM "
                "avoids the overflow altogether; together the handler "
                "mops up the TXs HinTM cannot shrink.\n");
    return 0;
}
