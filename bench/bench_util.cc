#include "bench_util.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "compiler/race_lint.hh"
#include "htm/abort.hh"
#include "result_store.hh"
#include "sim/journal_io.hh"
#include "sim/snapshot.hh"

namespace hintm
{
namespace bench
{

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tiny") {
            a.scale = workloads::Scale::Tiny;
            a.scaleExplicit = true;
        } else if (arg == "--small") {
            a.scale = workloads::Scale::Small;
            a.scaleExplicit = true;
        } else if (arg == "--large") {
            a.scale = workloads::Scale::Large;
            a.scaleExplicit = true;
        } else if (arg == "--preserve") {
            a.preserve = true;
        } else if (arg == "--workload" && i + 1 < argc) {
            a.only.push_back(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            a.jobs = unsigned(std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--json" && i + 1 < argc) {
            a.jsonPath = argv[++i];
        } else if (arg == "--no-snoop-filter") {
            a.noSnoopFilter = true;
            core::SystemOptions::setSnoopFilterDefault(false);
        } else if (arg == "--no-directory") {
            a.noDirectory = true;
            core::SystemOptions::setDirectoryDefault(false);
        } else if (arg == "--no-decode-cache") {
            a.noDecodeCache = true;
            core::SystemOptions::setDecodeCacheDefault(false);
        } else if (arg == "--no-sched-index") {
            a.noSchedIndex = true;
            core::SystemOptions::setSchedIndexDefault(false);
        } else if (arg == "--lint") {
            a.lint = true;
            setLintOnPrepare(true);
        } else if (arg == "--journal") {
            a.journal = true;
        } else if (arg == "--metrics") {
            a.metrics = true;
        } else if (arg == "--perfetto") {
            a.perfettoPath = "perfetto_trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                a.perfettoPath = argv[++i];
            a.journal = true; // a timeline needs records
        } else if (arg == "--stats-json") {
            a.statsJsonPath = "stats.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                a.statsJsonPath = argv[++i];
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            a.cacheDir = argv[++i];
        } else if (arg == "--no-disk-cache") {
            a.noDiskCache = true;
        } else if (arg == "--cache-clear") {
            a.cacheClear = true;
        } else if (arg == "--no-prefix-fork") {
            a.noPrefixFork = true;
        } else if (arg == "--help") {
            std::printf("options: [--tiny|--small|--large] [--preserve] "
                        "[--workload NAME]... [--jobs N] [--json FILE] "
                        "[--no-snoop-filter] [--no-directory] "
                        "[--no-decode-cache] [--no-sched-index] "
                        "[--lint] [--journal] [--metrics] "
                        "[--perfetto [FILE]] "
                        "[--stats-json [FILE]] [--cache-dir DIR] "
                        "[--no-disk-cache] [--cache-clear] "
                        "[--no-prefix-fork]\n");
            std::exit(0);
        } else {
            HINTM_FATAL("unknown argument ", arg);
        }
    }
    if (a.journal)
        core::SystemOptions::setJournalDefault(true);
    if (a.metrics)
        core::SystemOptions::setMetricsDefault(true);
    if (!a.jsonPath.empty())
        setJsonReport(a.jsonPath);
    if (!a.perfettoPath.empty() || !a.statsJsonPath.empty())
        setObservabilityExport(a.perfettoPath, a.statsJsonPath);
    const std::string cache_dir =
        a.cacheDir.empty() ? ResultStore::defaultDir() : a.cacheDir;
    if (a.cacheClear)
        ResultStore::clearDir(cache_dir);
    setDiskResultCache(cache_dir, !a.noDiskCache);
    if (a.noPrefixFork)
        setPrefixFork(false);
    return a;
}

std::vector<std::string>
BenchArgs::names() const
{
    return only.empty() ? workloads::allNames() : only;
}

namespace
{
bool lintOnPrepare = false;
} // namespace

void
setLintOnPrepare(bool on)
{
    lintOnPrepare = on;
}

PreparedWorkload
prepare(const std::string &name, workloads::Scale s)
{
    PreparedWorkload p{workloads::byName(name, s), {}, s};
    p.compileReport = core::compileHints(p.wl.module);
    if (lintOnPrepare) {
        const compiler::LintReport lr = compiler::lintRaces(p.wl.module);
        if (!lr.clean()) {
            HINTM_FATAL("--lint: ", name, ": ", lr.summary(), "\n",
                        lr.render());
        }
    }
    return p;
}

namespace
{
void recordObservability(const std::string &workload,
                         const core::SystemOptions &opts,
                         unsigned threads, const sim::RunResult &r);
} // namespace

sim::RunResult
run(const PreparedWorkload &p, core::SystemOptions opts)
{
    sim::RunResult r = core::simulate(opts, p.wl.module, p.wl.threads);
    recordObservability(p.wl.name, opts, p.wl.threads, r);
    return r;
}

namespace
{

// ---- process-wide result cache + JSON reporting --------------------

struct MatrixState
{
    std::mutex mu;
    std::unordered_map<std::string, sim::RunResult> cache;
    MatrixCacheStats stats;
    /** Persistent store (null = disabled, the library default). Held by
     * shared_ptr so a concurrent setDiskResultCache cannot pull the
     * store out from under an in-flight runMatrix. */
    std::shared_ptr<const ResultStore> disk;
    bool prefixFork = true;
    /** Host workers of the most recent runMatrix (JSON summary). */
    unsigned lastEffectiveJobs = 0;

    std::mutex jsonMu;
    std::string jsonPath;
    std::vector<std::string> jsonRecords;

    /** Observability export sink (--perfetto / --stats-json). Results
     * are stored by value; the journal rides along as a shared_ptr. */
    std::mutex obsMu;
    std::string perfettoPath;
    std::string statsPath;
    struct ObsRun
    {
        std::string workload;
        std::string config;
        unsigned threads;
        sim::RunResult result;
    };
    std::vector<ObsRun> obsRuns;
};

MatrixState &
state()
{
    static MatrixState s;
    return s;
}

unsigned
jobThreads(const MatrixJob &job)
{
    return job.threadsOverride ? job.threadsOverride
                               : job.wl->wl.threads;
}

/** Content fingerprint of a module: FNV-1a over its rendered text,
 * which includes every instruction and safety bit. Keyed by content —
 * not by pointer — because hintm_lint --mutate rewrites modules in
 * place between runMatrix calls. */
std::uint64_t
moduleFingerprint(const tir::Module &mod)
{
    const std::string text = mod.print();
    return fnv1a(text.data(), text.size());
}

/** Exact identity of a simulation: workload, scale, thread count, the
 * module fingerprint, and every SystemOptions field. Two jobs with
 * equal keys produce bit-identical RunResults. */
std::string
jobKeyWithFp(const MatrixJob &job, std::uint64_t fp)
{
    const core::SystemOptions &o = job.opts;
    std::ostringstream os;
    char fpbuf[20];
    std::snprintf(fpbuf, sizeof(fpbuf), "%016llx",
                  static_cast<unsigned long long>(fp));
    os << job.wl->wl.name << '|' << unsigned(job.wl->scale) << '|'
       << jobThreads(job) << '|' << fpbuf << '|'
       << unsigned(o.htmKind) << '|'
       << unsigned(o.mechanism) << '|' << o.preserveReadOnly
       << o.notaryAnnotations << o.preAbortHandler
       << unsigned(o.conflictPolicy) << '|' << o.numCores << 'x'
       << o.smtPerCore << '|' << o.seed << '|' << o.collectTxSizes
       << o.profileSharing << o.validateSafeStores << '|'
       << o.bufferEntries << '|' << o.signatureBits << '|'
       << o.maxRetries << '|' << o.snoopFilter << o.directory
       << o.decodeCache << o.schedIndex << o.collectRawStats
       << o.hintOracle << o.journal << o.metrics
       << '|' << o.journalCapacity << '|' << o.numaNodes << '|'
       << o.numaRemoteLatency;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
flushJsonReport()
{
    MatrixState &st = state();
    MatrixCacheStats cs;
    unsigned ejobs;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        cs = st.stats;
        ejobs = st.lastEffectiveJobs;
    }
    std::lock_guard<std::mutex> lock(st.jsonMu);
    if (st.jsonPath.empty())
        return;
    std::ofstream os(st.jsonPath);
    if (!os) {
        warn("cannot write JSON report to ", st.jsonPath);
        return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < st.jsonRecords.size(); ++i)
        os << "  " << st.jsonRecords[i] << ",\n";
    // Trailing summary record: host parallelism actually used plus the
    // process-wide cache counters (the CI sweep-cache job reads these).
    os << "  {\"summary\":true,\"jobs\":" << ejobs << ",\"cache\":{"
       << "\"hits\":" << cs.hits << ",\"misses\":" << cs.misses
       << ",\"deduped\":" << cs.deduped << ",\"disk_hits\":" << cs.diskHits
       << ",\"disk_stores\":" << cs.diskStores << ",\"prefix_forks\":"
       << cs.prefixForks << "}}\n";
    os << "]\n";
}

void
recordJson(const MatrixJob &job, const sim::RunResult &r,
           double wall_ms)
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.jsonMu);
    if (st.jsonPath.empty())
        return;
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(job.wl->wl.name)
       << "\",\"config\":\"" << jsonEscape(job.opts.label())
       << "\",\"threads\":" << jobThreads(job) << ",\"wall_ms\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_ms);
    os << buf << ",\"cycles\":" << r.cycles
       << ",\"instructions\":" << r.instructions
       << ",\"committed_txs\":" << r.committedTxs
       << ",\"fallback_runs\":" << r.fallbackRuns << ",\"aborts\":{";
    for (unsigned a = 1; a < htm::numAbortReasons; ++a) {
        os << "\"" << htm::abortReasonName(htm::AbortReason(a))
           << "\":" << r.htm.aborts[a] << ",";
    }
    os << "\"total\":" << r.htm.totalAborts() << "}}";
    st.jsonRecords.push_back(os.str());
}

void
recordObservability(const std::string &workload,
                    const core::SystemOptions &opts, unsigned threads,
                    const sim::RunResult &r)
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.obsMu);
    if (st.perfettoPath.empty() && st.statsPath.empty())
        return;
    st.obsRuns.push_back({workload, opts.label(), threads, r});
}

void
flushObservabilityExport()
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.obsMu);
    std::vector<sim::JournalRun> runs;
    runs.reserve(st.obsRuns.size());
    for (const MatrixState::ObsRun &o : st.obsRuns)
        runs.push_back({o.workload, o.config, o.threads, &o.result});
    if (!st.perfettoPath.empty())
        sim::writePerfettoTrace(st.perfettoPath, runs);
    if (!st.statsPath.empty())
        sim::writeStatsJson(st.statsPath, runs);
}

} // namespace

void
setObservabilityExport(const std::string &perfetto_path,
                       const std::string &stats_path)
{
    MatrixState &st = state();
    bool first;
    {
        std::lock_guard<std::mutex> lock(st.obsMu);
        first = st.perfettoPath.empty() && st.statsPath.empty();
        st.perfettoPath = perfetto_path;
        st.statsPath = stats_path;
    }
    if (first && (!perfetto_path.empty() || !stats_path.empty()))
        std::atexit(flushObservabilityExport);
}

void
setJsonReport(const std::string &path)
{
    MatrixState &st = state();
    bool first;
    {
        std::lock_guard<std::mutex> lock(st.jsonMu);
        first = st.jsonPath.empty();
        st.jsonPath = path;
    }
    if (first)
        std::atexit(flushJsonReport);
}

std::string
matrixJobKey(const MatrixJob &job)
{
    HINTM_ASSERT(job.wl != nullptr, "matrix job without a workload");
    return jobKeyWithFp(job, moduleFingerprint(job.wl->wl.module));
}

void
setDiskResultCache(const std::string &dir, bool enabled)
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!enabled || dir.empty()) {
        st.disk.reset();
        return;
    }
    st.disk = std::make_shared<const ResultStore>(
        dir, ResultStore::selfBinaryHash());
}

void
setPrefixFork(bool on)
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.prefixFork = on;
}

namespace
{

/** Soft budget on (host jobs x simulated threads): each in-flight
 * simulation holds interpreter frames, caches and HTM state for every
 * simulated context, so concurrency must shrink as machines grow.
 * 512 keeps the historical 64-job ceiling for 8-thread sweeps while a
 * 64-thread sweep runs at most 8 machines at once. */
constexpr unsigned simJobBudget = 512;

void
warnOversubscribed(unsigned requested, unsigned sim_threads,
                   unsigned budget)
{
    static std::once_flag once;
    std::call_once(once, [&] {
        warn("--jobs ", requested, " with ", sim_threads,
             "-thread simulated machines oversubscribes memory (",
             requested * sim_threads, " simulated contexts in flight); "
             "consider --jobs ", budget, " or lower");
    });
}

} // namespace

unsigned
effectiveJobs(unsigned requested, unsigned sim_threads)
{
    const unsigned budget =
        std::max(1u, simJobBudget / std::max(1u, sim_threads));
    if (requested) {
        if (requested > budget)
            warnOversubscribed(requested, sim_threads, budget);
        return requested;
    }
    return std::min(std::min(64u, budget),
                    std::max(1u, ThreadPool::defaultWorkers()));
}

MatrixCacheStats
matrixCacheStats()
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.stats;
}

void
clearMatrixCache()
{
    MatrixState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.cache.clear();
    st.stats = {};
}

std::vector<sim::RunResult>
runMatrix(const std::vector<MatrixJob> &jobs, unsigned host_jobs)
{
    MatrixState &st = state();
    std::vector<sim::RunResult> results(jobs.size());
    // Submission slot -> the earlier slot it duplicates (or itself).
    std::vector<std::size_t> alias(jobs.size());
    std::vector<std::string> keys(jobs.size());
    std::vector<std::size_t> toRun;
    std::unordered_map<std::string, std::size_t> firstSlot;
    // Fingerprints are memoized for this call only: a pointer-keyed
    // cross-call memo would serve stale hashes to hintm_lint's
    // in-place module mutants.
    std::unordered_map<const PreparedWorkload *, std::uint64_t> fps;

    unsigned max_sim_threads = 1;
    for (const MatrixJob &j : jobs) {
        if (j.wl)
            max_sim_threads = std::max(max_sim_threads, jobThreads(j));
    }
    const unsigned workers = effectiveJobs(host_jobs, max_sim_threads);
    std::shared_ptr<const ResultStore> disk;
    bool prefixFork;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        disk = st.disk;
        prefixFork = st.prefixFork;
        st.lastEffectiveJobs = workers;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            HINTM_ASSERT(jobs[i].wl != nullptr,
                         "matrix job without a workload");
            auto fp = fps.emplace(jobs[i].wl, 0);
            if (fp.second)
                fp.first->second =
                    moduleFingerprint(jobs[i].wl->wl.module);
            keys[i] = jobKeyWithFp(jobs[i], fp.first->second);
            alias[i] = i;
            const auto cached = st.cache.find(keys[i]);
            if (cached != st.cache.end()) {
                results[i] = cached->second;
                keys[i].clear(); // resolved; nothing to run or copy
                ++st.stats.hits;
                continue;
            }
            const auto [it, fresh] = firstSlot.emplace(keys[i], i);
            if (fresh) {
                toRun.push_back(i);
            } else {
                alias[i] = it->second;
                ++st.stats.deduped;
            }
        }
    }

    // Probe the persistent store for the surviving unique jobs.
    // Serial: loads are small reads, cheap against the simulations
    // they replace. Journal- and metrics-carrying jobs bypass the store
    // (observability artifacts sized like the run itself, and the store
    // only serializes the POD result fields).
    std::vector<std::size_t> toSim;
    for (std::size_t i : toRun) {
        if (disk && !jobs[i].opts.journal && !jobs[i].opts.metrics &&
            disk->load(keys[i], results[i])) {
            std::lock_guard<std::mutex> lock(st.mu);
            ++st.stats.diskHits;
            st.cache.emplace(keys[i], results[i]);
        } else {
            toSim.push_back(i);
        }
    }
    {
        std::lock_guard<std::mutex> lock(st.mu);
        st.stats.misses += toSim.size();
    }

    // Group the remaining simulations by shared init phase: the same
    // workload/threads/seed/validateSafeStores means a bit-identical
    // init, so one captured prefix can seed every config in the group
    // (results stay bit-identical; locked by the snapshot tests).
    std::vector<std::vector<std::size_t>> groups;
    std::vector<const sim::MachinePrefix *> slotPrefix(jobs.size(),
                                                       nullptr);
    std::vector<std::size_t> slotGroup(jobs.size(), SIZE_MAX);
    std::vector<std::shared_ptr<const sim::MachinePrefix>> prefixes;
    std::vector<std::size_t> groupRemaining;
    if (prefixFork && toSim.size() > 1) {
        std::unordered_map<std::string, std::size_t> groupOf;
        for (std::size_t i : toSim) {
            std::ostringstream gk;
            gk << static_cast<const void *>(jobs[i].wl) << '|'
               << jobThreads(jobs[i]) << '|' << jobs[i].opts.seed
               << '|' << jobs[i].opts.validateSafeStores;
            const auto [it, fresh] =
                groupOf.emplace(gk.str(), groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
        // Singleton groups gain nothing from a prefix: drop them and
        // let those jobs cold-start as before.
        groups.erase(
            std::remove_if(groups.begin(), groups.end(),
                           [](const std::vector<std::size_t> &g) {
                               return g.size() < 2;
                           }),
            groups.end());
        prefixes.resize(groups.size());
        parallelFor(workers, groups.size(), [&](std::size_t g) {
            const MatrixJob &job = jobs[groups[g][0]];
            prefixes[g] = core::buildPrefix(job.opts, job.wl->wl.module,
                                            jobThreads(job));
        });
        groupRemaining.resize(groups.size());
        for (std::size_t g = 0; g < groups.size(); ++g) {
            groupRemaining[g] = groups[g].size();
            for (std::size_t i : groups[g]) {
                slotPrefix[i] = prefixes[g].get();
                slotGroup[i] = g;
            }
        }
    }

    parallelFor(workers, toSim.size(), [&](std::size_t k) {
        const std::size_t i = toSim[k];
        const MatrixJob &job = jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        results[i] = core::simulate(job.opts, job.wl->wl.module,
                                    jobThreads(job), slotPrefix[i]);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        recordJson(job, results[i], wall_ms);
        recordObservability(job.wl->wl.name, job.opts, jobThreads(job),
                            results[i]);
        if (disk && !job.opts.journal && !job.opts.metrics) {
            disk->store(keys[i], results[i]);
            std::lock_guard<std::mutex> lock(st.mu);
            ++st.stats.diskStores;
        }
        std::lock_guard<std::mutex> lock(st.mu);
        if (slotPrefix[i]) {
            ++st.stats.prefixForks;
            // Drop a group's prefix once its last fork has run: a
            // 64-thread machine image is too big to hold for the rest
            // of a long sweep.
            if (--groupRemaining[slotGroup[i]] == 0)
                prefixes[slotGroup[i]].reset();
        }
        st.cache.emplace(keys[i], results[i]);
    });

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (alias[i] != i)
            results[i] = results[alias[i]];
    }
    return results;
}

std::string
speedupStr(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", s);
    return buf;
}

double
reduction(std::uint64_t base, std::uint64_t with)
{
    if (base == 0)
        return 0.0;
    // Signed on purpose: a mechanism that *increases* aborts shows up
    // as a negative reduction instead of being clamped to zero.
    return (double(base) - double(with)) / double(base);
}

double
geomean(const std::vector<double> &v)
{
    double acc = 0.0;
    unsigned n = 0;
    for (double x : v) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

} // namespace bench
} // namespace hintm
