#include "bench_util.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace hintm
{
namespace bench
{

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tiny") {
            a.scale = workloads::Scale::Tiny;
            a.scaleExplicit = true;
        } else if (arg == "--small") {
            a.scale = workloads::Scale::Small;
            a.scaleExplicit = true;
        } else if (arg == "--large") {
            a.scale = workloads::Scale::Large;
            a.scaleExplicit = true;
        } else if (arg == "--preserve") {
            a.preserve = true;
        } else if (arg == "--workload" && i + 1 < argc) {
            a.only.push_back(argv[++i]);
        } else if (arg == "--help") {
            std::printf("options: [--tiny|--small|--large] [--preserve] "
                        "[--workload NAME]...\n");
            std::exit(0);
        } else {
            HINTM_FATAL("unknown argument ", arg);
        }
    }
    return a;
}

std::vector<std::string>
BenchArgs::names() const
{
    return only.empty() ? workloads::allNames() : only;
}

PreparedWorkload
prepare(const std::string &name, workloads::Scale s)
{
    PreparedWorkload p{workloads::byName(name, s), {}};
    p.compileReport = core::compileHints(p.wl.module);
    return p;
}

sim::RunResult
run(const PreparedWorkload &p, core::SystemOptions opts)
{
    return core::simulate(opts, p.wl.module, p.wl.threads);
}

std::string
speedupStr(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", s);
    return buf;
}

double
reduction(std::uint64_t base, std::uint64_t with)
{
    if (base == 0)
        return 0.0;
    if (with >= base)
        return 0.0;
    return double(base - with) / double(base);
}

double
geomean(const std::vector<double> &v)
{
    double acc = 0.0;
    unsigned n = 0;
    for (double x : v) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

} // namespace bench
} // namespace hintm
