/**
 * @file
 * google-benchmark microbenchmark of the scheduler's context pick —
 * the once-per-simulated-step decision the whole cycle engine hangs
 * off. Reports picks/second (items_per_second) for:
 *
 *  - scan:  the reference rotating O(contexts) scan, exactly the
 *           Machine::stepOnce loop;
 *  - index: the event-driven SchedIndex (bitmasks + tie buckets +
 *           lazy-deletion min-heap, exact rotation tie-break; the
 *           8-context arg exercises its dense small-machine scan);
 *  - batch: the index driven the way the machine drives it, consuming
 *           the pick's batching bound so runs of steps on the unique
 *           earliest context skip the heap entirely.
 *
 * Each variant runs the same deterministic readyAt churn at 8/32/64
 * contexts, so a pick-path regression in either scheduler is visible
 * in CI via the microbench_sched_smoke ctest target. The scan's cost
 * grows with the context count; the index's does not — that gap is
 * what the 64-context machine runs on.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "sim/sched_index.hh"

using namespace hintm;

namespace
{

/** Deterministic per-step readyAt advance, identical across variants
 * (both schedulers pick the same winner sequence by construction). */
struct Churn
{
    std::uint64_t x = 0x9E3779B97F4A7C15ull;

    Cycle
    next()
    {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        return Cycle((x >> 33) & 63) + 1;
    }
};

/** The scheduler fields the reference scan reads, at the machine's
 * real memory layout: ContextState is a few hundred bytes (interpreter
 * and controller pointers, footprint sets, journal record), so each
 * context's (done, atBarrier, readyAt) triple lives on its own cache
 * line — the scan walks n lines per pick, not a dense array. */
struct alignas(256) ContextSlot
{
    Cycle readyAt = 0;
    bool done = false;
    bool atBarrier = false;
};

void
BM_SchedPickScan(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    std::vector<ContextSlot> ctx(n);
    Churn churn;
    unsigned rr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        // The reference Machine::stepOnce scan (all contexts live and
        // runnable — the steady state of a busy machine).
        int best = -1;
        Cycle best_t = ~Cycle(0);
        unsigned c = rr;
        for (unsigned i = 0; i < n; ++i) {
            const ContextSlot &cs = ctx[c];
            if (!cs.done) {
                if (!cs.atBarrier && cs.readyAt < best_t) {
                    best_t = cs.readyAt;
                    best = int(c);
                }
            }
            if (++c == n)
                c = 0;
        }
        now = std::max(now, best_t);
        ctx[unsigned(best)].readyAt = now + churn.next();
        rr = unsigned(best) + 1 == n ? 0 : unsigned(best) + 1;
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_SchedPickScan)->Arg(8)->Arg(32)->Arg(64);

void
BM_SchedPickIndex(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    sim::SchedIndex idx;
    idx.reset(n);
    for (unsigned c = 0; c < n; ++c)
        idx.sync(c, false, false, 0);
    Churn churn;
    unsigned rr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        const sim::SchedIndex::Pick p = idx.pick(rr);
        const unsigned w = unsigned(p.winner);
        now = std::max(now, p.key);
        idx.setReady(w, now + churn.next());
        rr = w + 1 == n ? 0 : w + 1;
        benchmark::DoNotOptimize(w);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_SchedPickIndex)->Arg(8)->Arg(32)->Arg(64);

void
BM_SchedPickIndexBatched(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    sim::SchedIndex idx;
    idx.reset(n);
    for (unsigned c = 0; c < n; ++c)
        idx.sync(c, false, false, 0);
    Churn churn;
    unsigned rr = 0;
    Cycle now = 0;
    // Count steps, not picks: every iteration advances one context.
    // A pick opens a batch; the batch keeps stepping its owner while
    // it provably stays the unique earliest (readyAt below the pick's
    // bound), exactly like the machine's batched fast path.
    sim::SchedIndex::Pick p;
    unsigned w = 0;
    Cycle t = 0;
    bool open = false;
    for (auto _ : state) {
        if (!open) {
            p = idx.pick(rr);
            w = unsigned(p.winner);
            now = std::max(now, p.key);
            rr = w + 1 == n ? 0 : w + 1;
            open = true;
        } else {
            now = t;
        }
        t = now + churn.next();
        if (t >= p.bound) {
            idx.setReady(w, t);
            open = false;
        }
        benchmark::DoNotOptimize(w);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_SchedPickIndexBatched)->Arg(8)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
