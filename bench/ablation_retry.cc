/**
 * @file
 * Ablation: retry-policy sweep. Two axes the paper fixes implicitly:
 * how many transient-abort retries precede the fallback lock, and
 * whether capacity aborts retry at all (they are deterministic, so the
 * sane policy — and ours — falls back immediately; this sweep shows why
 * by letting them burn retries like transient aborts).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"intruder", "tpcc-p", "vacation"};

    const unsigned retries[] = {0, 2, 4, 8, 16};

    for (const std::string &name : args.only) {
        const bench::PreparedWorkload p = bench::prepare(name, args.scale);
        TextTable t;
        t.header({"max retries", "cycles", "commits", "fallbacks",
                  "conflict aborts"});
        for (const unsigned r : retries) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::P8;
            o.maxRetries = r;
            const auto res = bench::run(p, o);
            t.row({std::to_string(r), std::to_string(res.cycles),
                   std::to_string(res.htm.commits),
                   std::to_string(res.fallbackRuns),
                   std::to_string(res.htm.aborts[unsigned(
                       htm::AbortReason::Conflict)])});
        }
        std::cout << "== retry-policy ablation (P8 baseline): " << name
                  << " ==\n"
                  << t << "\n";
    }
    return 0;
}
