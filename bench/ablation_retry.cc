/**
 * @file
 * Ablation: retry-policy sweep. Two axes the paper fixes implicitly:
 * how many transient-abort retries precede the fallback lock, and
 * whether capacity aborts retry at all (they are deterministic, so the
 * sane policy — and ours — falls back immediately; this sweep shows why
 * by letting them burn retries like transient aborts).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"intruder", "tpcc-p", "vacation"};

    const std::vector<unsigned> retries = {0, 2, 4, 8, 16};

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        for (const unsigned r : retries) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::P8;
            o.maxRetries = r;
            jobs.push_back({&p, o});
        }
    }
    const std::vector<sim::RunResult> all = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        TextTable t;
        t.header({"max retries", "cycles", "commits", "fallbacks",
                  "conflict aborts"});
        for (std::size_t ri = 0; ri < retries.size(); ++ri) {
            const auto &res = all[w * retries.size() + ri];
            t.row({std::to_string(retries[ri]),
                   std::to_string(res.cycles),
                   std::to_string(res.htm.commits),
                   std::to_string(res.fallbackRuns),
                   std::to_string(res.htm.aborts[unsigned(
                       htm::AbortReason::Conflict)])});
        }
        std::cout << "== retry-policy ablation (P8 baseline): " << name
                  << " ==\n"
                  << t << "\n";
    }
    return 0;
}
