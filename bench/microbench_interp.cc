/**
 * @file
 * Interpreter front-end microbenchmarks: instructions/second through
 * ThreadInterp for three instruction mixes, each with the decode cache
 * on (arg 1: pre-decoded fused op stream + flat frame arena) and off
 * (arg 0: reference Instr-walking interpreter):
 *
 *  - alu:    straight-line arithmetic in a tight loop — pure dispatch
 *            plus the Const-folding / compare-and-branch fusion;
 *  - call:   a hot call/return pair — frame push/pop cost (bump-pointer
 *            arena versus per-call register vectors);
 *  - branch: data-dependent if/else diamonds — branch-target resolution
 *            (absolute op indices versus block/ip re-resolution).
 *
 * Registered as the microbench_interp_smoke ctest so a hot-path
 * regression in either interpreter is visible in CI.
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"
#include "tir/builder.hh"
#include "tir/interp.hh"
#include "tir/verifier.hh"

using namespace hintm;
using namespace hintm::tir;

namespace
{

constexpr std::int64_t loopTrips = 1000;

/** Drive one thread to completion; return instructions executed. */
std::uint64_t
runOnce(Program &prog)
{
    ThreadInterp ti(prog, 0, prog.module().threadFunc, {0});
    while (true) {
        const Step st = ti.next();
        switch (st.kind) {
          case StepKind::Mem: ti.completeMem(); break;
          case StepKind::TxBegin: ti.enterTx(false); break;
          case StepKind::TxEnd: ti.completeTxEnd(); break;
          case StepKind::Barrier: ti.passBarrier(); break;
          case StepKind::Annotate: ti.passAnnotate(); break;
          case StepKind::Done: return ti.instrCount();
          case StepKind::Simple: break;
        }
    }
}

Module
aluModule()
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 1);
    f.forRangeI(0, loopTrips, [&](Reg i) {
        const Reg a = f.add(f.mulI(acc, 3), i);
        const Reg b = f.xorOp(f.addI(a, 7), acc);
        f.set(acc, f.sub(f.shlI(b, 1), a));
    });
    f.store(f.globalAddr("out"), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    HINTM_ASSERT(!verify(m).has_value(), "alu module malformed");
    return m;
}

Module
callModule()
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    declareFunction(m, "leaf", 2);
    {
        FunctionBuilder h(m, "leaf", 2);
        h.ret(h.add(h.mulI(h.param(0), 3), h.param(1)));
        h.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 1);
    f.forRangeI(0, loopTrips, [&](Reg i) {
        f.set(acc, f.call("leaf", {acc, i}));
    });
    f.store(f.globalAddr("out"), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    HINTM_ASSERT(!verify(m).has_value(), "call module malformed");
    return m;
}

Module
branchModule()
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, loopTrips, [&](Reg i) {
        const Reg odd = f.andOp(i, f.constI(1));
        f.ifThenElse(
            odd, [&] { f.set(acc, f.addI(acc, 3)); },
            [&] {
                f.ifThenElse(
                    f.cmpLtI(acc, 512),
                    [&] { f.set(acc, f.shlI(acc, 1)); },
                    [&] { f.set(acc, f.subI(acc, 500)); });
            });
    });
    f.store(f.globalAddr("out"), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    HINTM_ASSERT(!verify(m).has_value(), "branch module malformed");
    return m;
}

void
runMix(benchmark::State &state, Module (*make)())
{
    Program prog(make(), 1, /*seed=*/1,
                 /*decode_cache=*/state.range(0) != 0);
    std::uint64_t instrs = 0;
    for (auto _ : state)
        instrs += runOnce(prog);
    state.SetItemsProcessed(std::int64_t(instrs));
}

void BM_InterpAlu(benchmark::State &s) { runMix(s, aluModule); }
void BM_InterpCall(benchmark::State &s) { runMix(s, callModule); }
void BM_InterpBranch(benchmark::State &s) { runMix(s, branchModule); }

BENCHMARK(BM_InterpAlu)->Arg(1)->Arg(0);
BENCHMARK(BM_InterpCall)->Arg(1)->Arg(0);
BENCHMARK(BM_InterpBranch)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
