/**
 * @file
 * Prints the active simulation parameters (paper Table II) for every
 * named configuration, plus HinTM's hardware additions (Table I) as
 * modeled by this implementation.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/hintm.hh"

using namespace hintm;

int
main(int argc, char **argv)
{
    // No simulations here; parse so the shared flags (--jobs, --json)
    // from driver scripts are accepted.
    (void)bench::BenchArgs::parse(argc, argv);
    std::cout << "== Table II: simulation parameters ==\n\n";
    for (htm::HtmKind kind :
         {htm::HtmKind::P8, htm::HtmKind::P8S, htm::HtmKind::L1TM,
          htm::HtmKind::InfCap}) {
        core::SystemOptions o;
        o.htmKind = kind;
        o.mechanism = core::Mechanism::Full;
        std::cout << "-- " << o.label() << " --\n"
                  << core::describeConfig(core::makeMachineConfig(o))
                  << "\n";
    }

    std::cout << "== Table I: HinTM hardware additions (as modeled) ==\n"
              << "Core           : safety-flag bit on load/store "
                 "(TxIR `safe` flag; zero timing cost)\n"
              << "TLB            : 2 bits per entry (shared, ro) "
                 "caching page safety state\n"
              << "Page table     : tid + shared + ro per entry "
                 "(Fig. 2 state machine in src/vm)\n"
              << "HTM controller : skip-tracking path for safe "
                 "accesses; safe-page set per TX for page-mode aborts\n";
    return 0;
}
