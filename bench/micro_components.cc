/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * signature hashing, transactional-buffer tracking, cache-array lookups,
 * page-table transitions, TLB operations and raw interpreter throughput.
 * These bound the simulator's own performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "htm/signature.hh"
#include "htm/tx_buffer.hh"
#include "mem/cache_array.hh"
#include "tir/builder.hh"
#include "tir/interp.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

using namespace hintm;

namespace
{

void
BM_SignatureInsertTest(benchmark::State &state)
{
    htm::Signature sig(unsigned(state.range(0)), 2);
    Addr a = 0;
    for (auto _ : state) {
        sig.insert(a);
        benchmark::DoNotOptimize(sig.test(a + 64));
        a += 64;
        if ((a & 0xFFFF) == 0)
            sig.clear();
    }
}
BENCHMARK(BM_SignatureInsertTest)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_TxBufferTrack(benchmark::State &state)
{
    htm::TxBuffer buf(64);
    Addr a = 0;
    for (auto _ : state) {
        if (!buf.track(a & (63 * 64), AccessType::Read))
            buf.clear();
        a += 64;
    }
}
BENCHMARK(BM_TxBufferTrack);

void
BM_CacheArrayLookupInsert(benchmark::State &state)
{
    mem::CacheArray l1(mem::CacheGeometry(32 * 1024, 8));
    Addr a = 0;
    for (auto _ : state) {
        if (!l1.lookup(a))
            l1.insert(a, mem::CoherState::Shared);
        a = (a + 64) & 0xFFFFF;
    }
}
BENCHMARK(BM_CacheArrayLookupInsert);

void
BM_PageTableTouch(benchmark::State &state)
{
    vm::PageTable pt;
    Addr a = 0;
    ThreadId t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pt.touch(t, a, AccessType::Read));
        a += 4096;
        t = (t + 1) & 7;
    }
}
BENCHMARK(BM_PageTableTouch);

void
BM_TlbLookup(benchmark::State &state)
{
    vm::Tlb tlb(64);
    for (Addr p = 0; p < 64; ++p)
        tlb.insert(p, vm::PageState::SharedRo);
    Addr p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(p));
        p = (p + 1) & 63;
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_InterpreterThroughput(benchmark::State &state)
{
    // A tight arithmetic+memory loop, measured in instructions/second.
    tir::Module m;
    tir::FunctionBuilder f(m, "loop", 1);
    const tir::Reg buf = f.mallocI(8 * 1024);
    f.forRangeI(0, 1000000000, [&](tir::Reg i) {
        const tir::Reg idx = f.modI(i, 1024);
        const tir::Reg slot = f.gep(buf, idx, 8);
        f.store(slot, f.add(f.load(slot), i));
    });
    f.retVoid();
    const int fn = f.finish();
    m.threadFunc = fn;

    tir::Program prog(m, 1);
    tir::ThreadInterp interp(prog, 0, fn, {0});
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        const tir::Step st = interp.next();
        if (st.kind == tir::StepKind::Mem)
            interp.completeMem();
        instrs += st.simpleInstrs + 1;
    }
    state.counters["instr/s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

} // namespace

BENCHMARK_MAIN();
