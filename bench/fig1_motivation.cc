/**
 * @file
 * Reproduces Fig. 1 (the motivation study): per workload,
 *   - fraction of runtime spent on capacity aborts, derived exactly as
 *     the paper does — comparing baseline P8 against InfCap;
 *   - fraction of safe memory regions (no inter-thread read-write
 *     sharing) at 64B-block and 4KB-page granularity;
 *   - fraction of transactional reads targeting safe regions, at both
 *     granularities.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable t;
    t.header({"workload", "cap-abort time", "safe pages", "safe blocks",
              "safe tx-reads (pg)", "safe tx-reads (blk)"});

    double sum_cap = 0, sum_pages = 0, sum_reads_pg = 0;
    unsigned n = 0;

    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        SystemOptions base;
        base.htmKind = htm::HtmKind::P8;
        base.mechanism = Mechanism::Baseline;
        jobs.push_back({&p, base});

        SystemOptions inf = base;
        inf.htmKind = htm::HtmKind::InfCap;
        inf.profileSharing = true;
        jobs.push_back({&p, inf});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &r_p8 = res[2 * w + 0];
        const auto &r_inf = res[2 * w + 1];

        const double cap_frac =
            r_p8.cycles > r_inf.cycles
                ? double(r_p8.cycles - r_inf.cycles) / r_p8.cycles
                : 0.0;

        t.row({name, TextTable::pct(cap_frac),
               TextTable::pct(r_inf.pageSharing.safeRegionFraction()),
               TextTable::pct(r_inf.blockSharing.safeRegionFraction()),
               TextTable::pct(r_inf.pageSharing.safeTxReadFraction()),
               TextTable::pct(r_inf.blockSharing.safeTxReadFraction())});

        sum_cap += cap_frac;
        sum_pages += r_inf.pageSharing.safeRegionFraction();
        sum_reads_pg += r_inf.pageSharing.safeTxReadFraction();
        ++n;
    }

    std::cout << "== Fig. 1: capacity-abort cost and safe-region "
                 "opportunity ==\n"
              << t << "\n";
    if (n) {
        std::printf("averages: cap-abort time %.1f%% (paper 22%%), safe "
                    "pages %.1f%% (paper 62%%), safe tx-reads at page "
                    "granularity %.1f%% (paper 40%%)\n",
                    100 * sum_cap / n, 100 * sum_pages / n,
                    100 * sum_reads_pg / n);
    }
    return 0;
}
