/**
 * @file
 * Ablation: programmer annotations vs automatic classification (§VII,
 * Notary discussion). Builds a labyrinth variant whose private grids are
 * additionally covered by Notary-style page annotations, then compares:
 *   - baseline (no hints),
 *   - Notary (annotations only, no compiler pass, no page FSM),
 *   - HinTM-st (automatic compiler hints),
 *   - HinTM (both automatic mechanisms),
 *   - HinTM + annotations.
 * Annotations recover the read side without any HinTM hardware/OS
 * machinery, but — like the dynamic mechanism — cannot make stores
 * safe, which is exactly why labyrinth still needs the compiler pass.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "tir/builder.hh"

using namespace hintm;
using core::Mechanism;
using core::SystemOptions;

namespace
{

/** Append Notary annotations for the two private grids to a labyrinth
 * worker by rebuilding it with annotate ops after the mallocs. */
workloads::Workload
annotatedLabyrinth(workloads::Scale s)
{
    workloads::Workload wl = workloads::buildLabyrinth(s);
    // Surgical rewrite: insert Annotate after each worker Malloc.
    tir::Function &fn =
        wl.module.functions[std::size_t(wl.module.threadFunc)];
    for (auto &bb : fn.blocks) {
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            if (bb.instrs[i].op != tir::Opcode::Malloc)
                continue;
            tir::Instr ann;
            ann.op = tir::Opcode::Annotate;
            ann.a = bb.instrs[i].dst; // the fresh allocation
            ann.b = bb.instrs[i].a;   // its size register
            bb.instrs.insert(bb.instrs.begin() + long(i) + 1, ann);
            ++i;
        }
    }
    wl.name = "labyrinth+notary";
    return wl;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    bench::PreparedWorkload p;
    p.wl = annotatedLabyrinth(args.scale);
    p.compileReport = core::compileHints(p.wl.module);
    p.scale = args.scale;
    std::printf("compiler: %s\n\n", p.compileReport.summary().c_str());

    TextTable t;
    t.header({"config", "cycles", "capacity", "page-mode", "annot reads",
              "speedup"});

    SystemOptions base;
    base.htmKind = htm::HtmKind::P8;

    SystemOptions notary = base;
    notary.notaryAnnotations = true;
    SystemOptions st = base;
    st.mechanism = Mechanism::StaticOnly;
    SystemOptions full = base;
    full.mechanism = Mechanism::Full;
    SystemOptions both = full;
    both.notaryAnnotations = true;

    const std::vector<bench::MatrixJob> jobs = {
        {&p, base}, {&p, notary}, {&p, st}, {&p, full}, {&p, both}};
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    const std::uint64_t base_cycles = res[0].cycles;
    const char *const labels[] = {"baseline", "Notary (annot only)",
                                  "HinTM-st", "HinTM",
                                  "HinTM + annotations"};
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        const sim::RunResult &r = res[k];
        t.row({labels[k], std::to_string(r.cycles),
               std::to_string(
                   r.htm.aborts[unsigned(htm::AbortReason::Capacity)]),
               std::to_string(
                   r.htm.aborts[unsigned(htm::AbortReason::PageMode)]),
               std::to_string(r.txReadsAnnotated),
               bench::speedupStr(double(base_cycles) / r.cycles)});
    }

    std::cout << "== annotation ablation (labyrinth, P8) ==\n" << t;
    std::printf("\nannotations cover only reads; labyrinth's private "
                "grid *stores* still need the compiler pass.\n");
    return 0;
}
