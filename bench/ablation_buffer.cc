/**
 * @file
 * Ablation: transactional-buffer size sweep. HinTM's pitch is that
 * hints expand *effective* capacity — this sweep quantifies how many
 * physical entries a conventional HTM would need to match HinTM at 64
 * entries (§VI-E: achieving the same effect in hardware alone requires
 * larger buffers).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"genome", "labyrinth", "vacation", "yada"};

    const std::vector<unsigned> sizes = {16, 32, 64, 128, 256, 512};

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        for (const unsigned entries : sizes) {
            SystemOptions base;
            base.htmKind = htm::HtmKind::P8;
            base.bufferEntries = entries;
            jobs.push_back({&p, base});

            SystemOptions full = base;
            full.mechanism = Mechanism::Full;
            jobs.push_back({&p, full});
        }
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        TextTable t;
        t.header({"buffer entries", "base cap-aborts", "base cycles",
                  "HinTM cap-aborts", "HinTM cycles", "HinTM speedup"});
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const unsigned entries = sizes[s];
            const auto &rb = res[2 * (w * sizes.size() + s) + 0];
            const auto &rf = res[2 * (w * sizes.size() + s) + 1];

            const auto cap = [](const sim::RunResult &r) {
                return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
            };
            t.row({std::to_string(entries), std::to_string(cap(rb)),
                   std::to_string(rb.cycles), std::to_string(cap(rf)),
                   std::to_string(rf.cycles),
                   bench::speedupStr(double(rb.cycles) / rf.cycles)});
        }
        std::cout << "== buffer-size ablation: " << name << " ==\n"
                  << t << "\n";
    }
    return 0;
}
