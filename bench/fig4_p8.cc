/**
 * @file
 * Reproduces Fig. 4: HinTM on the P8 (POWER8-style, 64-entry buffer)
 * baseline.
 *   (a) capacity-abort reduction of HinTM-st / HinTM-dyn / HinTM
 *   (b) speedup over baseline P8 (plus the InfCap upper bound) and the
 *       fraction of cycles spent on page-mode transitions.
 *
 * Options: --tiny/--small/--large, --workload NAME (repeatable),
 * --preserve (runs the §VI-B page policy for the HinTM columns).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable fig4a;
    fig4a.header({"workload", "base cap aborts", "st -cap%", "dyn -cap%",
                  "HinTM -cap%"});
    TextTable fig4b;
    fig4b.header({"workload", "st speedup", "dyn speedup", "HinTM speedup",
                  "InfCap speedup", "pg-abort cyc%"});

    std::vector<double> sp_st, sp_dyn, sp_full, sp_inf;
    std::vector<double> red_full;

    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    // Five configurations per workload, farmed out together.
    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        auto opt = [&](Mechanism m) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::P8;
            o.mechanism = m;
            o.preserveReadOnly = args.preserve;
            return o;
        };
        jobs.push_back({&p, opt(Mechanism::Baseline)});
        jobs.push_back({&p, opt(Mechanism::StaticOnly)});
        jobs.push_back({&p, opt(Mechanism::DynamicOnly)});
        jobs.push_back({&p, opt(Mechanism::Full)});
        SystemOptions inf_o = opt(Mechanism::Baseline);
        inf_o.htmKind = htm::HtmKind::InfCap;
        jobs.push_back({&p, inf_o});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const bench::PreparedWorkload &p = prepared[w];
        const auto &base = res[5 * w + 0];
        const auto &st = res[5 * w + 1];
        const auto &dyn = res[5 * w + 2];
        const auto &full = res[5 * w + 3];
        const auto &inf = res[5 * w + 4];

        const auto cap = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
        };
        fig4a.row({name, std::to_string(cap(base)),
                   TextTable::pct(bench::reduction(cap(base), cap(st))),
                   TextTable::pct(bench::reduction(cap(base), cap(dyn))),
                   TextTable::pct(bench::reduction(cap(base), cap(full)))});

        const double s_st = double(base.cycles) / st.cycles;
        const double s_dyn = double(base.cycles) / dyn.cycles;
        const double s_full = double(base.cycles) / full.cycles;
        const double s_inf = double(base.cycles) / inf.cycles;
        const double pg = full.cycles
                              ? double(full.pageModeOverheadCycles) /
                                    (double(full.cycles) * p.wl.threads)
                              : 0.0;
        fig4b.row({name, bench::speedupStr(s_st), bench::speedupStr(s_dyn),
                   bench::speedupStr(s_full), bench::speedupStr(s_inf),
                   TextTable::pct(pg)});

        sp_st.push_back(s_st);
        sp_dyn.push_back(s_dyn);
        sp_full.push_back(s_full);
        sp_inf.push_back(s_inf);
        red_full.push_back(bench::reduction(cap(base), cap(full)));
    }

    double red_avg = 0;
    for (double r : red_full)
        red_avg += r;
    red_avg /= red_full.empty() ? 1 : double(red_full.size());

    std::cout << "== Fig. 4a: capacity abort reduction vs P8 baseline ==\n"
              << fig4a << "\n";
    std::cout << "== Fig. 4b: speedup vs P8 baseline ==\n" << fig4b << "\n";
    std::printf("HinTM mean capacity-abort reduction: %.1f%%  "
                "(paper: ~62-64%%)\n",
                red_avg * 100.0);
    std::printf("geomean speedup  st %.2fx  dyn %.2fx  HinTM %.2fx  "
                "InfCap %.2fx  (paper: HinTM ~1.4x avg)\n",
                bench::geomean(sp_st), bench::geomean(sp_dyn),
                bench::geomean(sp_full), bench::geomean(sp_inf));
    return 0;
}
