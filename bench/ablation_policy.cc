/**
 * @file
 * Ablation: conflict-loser policy. The paper's simulator (and ours, by
 * default) aborts the TX that *receives* a conflicting coherence
 * message (attacker-wins, POWER8-style); the alternative aborts the
 * requester before it disturbs the holder. Attacker-wins lets committed
 * work finish (the committer's final writes kill the bystanders);
 * requester-loses protects long-running holders at the cost of starving
 * late arrivals. HinTM's benefit is largely policy-independent, which
 * this table demonstrates.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"kmeans", "intruder", "labyrinth", "tpcc-p"};

    TextTable t;
    t.header({"workload", "policy", "base cycles", "base conflicts",
              "HinTM speedup"});

    const htm::ConflictPolicy policies[] = {
        htm::ConflictPolicy::AttackerWins,
        htm::ConflictPolicy::RequesterLoses};

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        for (const htm::ConflictPolicy pol : policies) {
            SystemOptions base;
            base.htmKind = htm::HtmKind::P8;
            base.conflictPolicy = pol;
            jobs.push_back({&p, base});

            SystemOptions full = base;
            full.mechanism = Mechanism::Full;
            jobs.push_back({&p, full});
        }
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        for (std::size_t pi = 0; pi < 2; ++pi) {
            const htm::ConflictPolicy pol = policies[pi];
            const auto &rb = res[4 * w + 2 * pi + 0];
            const auto &rf = res[4 * w + 2 * pi + 1];

            t.row({name, htm::conflictPolicyName(pol),
                   std::to_string(rb.cycles),
                   std::to_string(rb.htm.aborts[unsigned(
                       htm::AbortReason::Conflict)]),
                   bench::speedupStr(double(rb.cycles) / rf.cycles)});
        }
    }
    std::cout << "== conflict-policy ablation (P8) ==\n" << t;
    return 0;
}
