/**
 * @file
 * Diagnostic harness: per-workload, per-configuration drill-down —
 * abort breakdown by reason, cycles lost, TX footprint percentiles,
 * access-classification mix, page statistics. Not tied to a specific
 * paper figure; used to calibrate and debug experiments.
 *
 * Options: the shared BenchArgs set, plus everything runs on P8 and
 * InfCap with all four mechanisms.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        for (htm::HtmKind kind :
             {htm::HtmKind::P8, htm::HtmKind::InfCap}) {
            for (Mechanism mech :
                 {Mechanism::Baseline, Mechanism::StaticOnly,
                  Mechanism::DynamicOnly, Mechanism::Full}) {
                SystemOptions o;
                o.htmKind = kind;
                o.mechanism = mech;
                o.preserveReadOnly = args.preserve;
                o.collectTxSizes = true;
                jobs.push_back({&p, o});
            }
        }
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const bench::PreparedWorkload &p = prepared[w];
        std::cout << "==== " << names[w] << " (threads=" << p.wl.threads
                  << ") ====\n";
        std::cout << "compile: " << p.compileReport.summary() << "\n";

        TextTable t;
        t.header({"config", "cycles", "commits", "fallback", "conflict",
                  "false-cf", "capacity", "page-mode", "lock-abrt",
                  "trk p50", "trk p95", "trk max", "safe-rd st/dyn %"});

        auto row = [&](const SystemOptions &opts,
                       const sim::RunResult &r) {
            const auto ab = [&](htm::AbortReason a) {
                return std::to_string(r.htm.aborts[unsigned(a)]);
            };
            const double total = double(r.txAccessesTotal());
            const double st_pct =
                total ? 100.0 *
                            (r.txReadsStaticSafe + r.txWritesStaticSafe) /
                            total
                      : 0;
            const double dyn_pct =
                total ? 100.0 * r.txReadsDynSafe / total : 0;
            char mix[48];
            std::snprintf(mix, sizeof(mix), "%.1f / %.1f", st_pct,
                          dyn_pct);
            t.row({opts.label(), std::to_string(r.cycles),
                   std::to_string(r.htm.commits),
                   std::to_string(r.fallbackRuns),
                   ab(htm::AbortReason::Conflict),
                   ab(htm::AbortReason::FalseConflict),
                   ab(htm::AbortReason::Capacity),
                   ab(htm::AbortReason::PageMode),
                   ab(htm::AbortReason::FallbackLock),
                   std::to_string(r.htm.trackedAtCommit.quantile(0.5)),
                   std::to_string(r.htm.trackedAtCommit.quantile(0.95)),
                   std::to_string(r.htm.trackedAtCommit.max()), mix});
        };

        for (std::size_t k = 0; k < 8; ++k)
            row(jobs[8 * w + k].opts, res[8 * w + k]);
        std::cout << t << "\n";
    }
    return 0;
}
