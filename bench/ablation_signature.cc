/**
 * @file
 * Ablation: P8S read-signature width sweep. Smaller bitvectors alias
 * more (more false-conflict aborts); HinTM shrinks the spilled readset,
 * so it effectively buys signature headroom the same way it buys buffer
 * capacity.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (!args.scaleExplicit)
        args.scale = workloads::Scale::Large;
    if (args.only.empty())
        args.only = {"genome", "intruder", "vacation"};

    const std::vector<unsigned> widths = {128, 256, 512, 1024, 2048};

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        for (const unsigned bits : widths) {
            SystemOptions base;
            base.htmKind = htm::HtmKind::P8S;
            base.signatureBits = bits;
            jobs.push_back({&p, base});

            SystemOptions full = base;
            full.mechanism = Mechanism::Full;
            jobs.push_back({&p, full});
        }
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        TextTable t;
        t.header({"signature bits", "base false-cf", "base cycles",
                  "HinTM false-cf", "HinTM speedup"});
        for (std::size_t s = 0; s < widths.size(); ++s) {
            const unsigned bits = widths[s];
            const auto &rb = res[2 * (w * widths.size() + s) + 0];
            const auto &rf = res[2 * (w * widths.size() + s) + 1];

            const auto fcf = [](const sim::RunResult &r) {
                return r.htm
                    .aborts[unsigned(htm::AbortReason::FalseConflict)];
            };
            t.row({std::to_string(bits), std::to_string(fcf(rb)),
                   std::to_string(rb.cycles), std::to_string(fcf(rf)),
                   bench::speedupStr(double(rb.cycles) / rf.cycles)});
        }
        std::cout << "== signature-width ablation: " << name << " ==\n"
                  << t << "\n";
    }
    return 0;
}
