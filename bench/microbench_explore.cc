/**
 * @file
 * google-benchmark microbenchmark of the schedule explorer's two branch
 * mechanisms, so their relative cost stays visible in CI:
 *
 *  - fork:    resume a branch from a MachineSnapshot captured at the
 *             divergence point (restore + preempt + run the suffix);
 *  - scratch: replay the same plan from a cold machine (the fallback
 *             hint-oracle configs are forced into).
 *
 * Reports schedules/second (items_per_second) on the convoy kernel at
 * tiny scale, plus a whole-exploration benchmark at preemption bound 1
 * with and without DPOR pruning — the pruning win is the ratio of their
 * schedule counts at near-equal per-schedule cost.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/hintm.hh"
#include "sim/explorer.hh"
#include "sim/schedule.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

core::SystemOptions
convoyOptions()
{
    core::SystemOptions so;
    so.mechanism = core::Mechanism::Baseline;
    so.journal = true;
    so.maxRetries = 2;
    return so;
}

void
BM_ExploreForkedBranch(benchmark::State &state)
{
    const workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    sim::PlanScheduleController ctrl;
    sim::MachineConfig cfg = core::makeMachineConfig(convoyOptions());
    cfg.scheduleController = &ctrl;

    // Capture the divergence point once, outside the measured loop.
    ctrl.reset({});
    sim::SimRun run(cfg, wl.module, wl.threads);
    std::shared_ptr<const sim::MachineSnapshot> snap;
    unsigned preempt_ctx = 0;
    ctrl.hook = [&](const sim::SchedDecision &d, std::uint32_t idx) {
        if (idx == 8 && !snap) {
            snap = std::make_shared<sim::MachineSnapshot>(
                run.snapshot());
            preempt_ctx = d.ctx;
        }
    };
    run.finish();
    ctrl.hook = nullptr;
    if (!snap) {
        state.SkipWithError("base trace too short");
        return;
    }

    for (auto _ : state) {
        ctrl.reset({8}, 9);
        run.restore(*snap);
        run.preemptContext(preempt_ctx);
        benchmark::DoNotOptimize(run.finish().committedTxs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExploreForkedBranch)->Unit(benchmark::kMicrosecond);

void
BM_ExploreScratchReplay(benchmark::State &state)
{
    const workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    sim::PlanScheduleController ctrl;
    sim::MachineConfig cfg = core::makeMachineConfig(convoyOptions());
    cfg.scheduleController = &ctrl;

    for (auto _ : state) {
        ctrl.reset({8});
        sim::SimRun run(cfg, wl.module, wl.threads);
        benchmark::DoNotOptimize(run.finish().committedTxs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExploreScratchReplay)->Unit(benchmark::kMicrosecond);

void
BM_ExploreBoundOne(benchmark::State &state)
{
    const workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    const sim::MachineConfig cfg =
        core::makeMachineConfig(convoyOptions());
    sim::ExploreOptions opt;
    opt.preemptionBound = 1;
    opt.dpor = state.range(0) != 0;

    std::uint64_t schedules = 0;
    for (auto _ : state) {
        const sim::ExploreReport rep =
            sim::exploreSchedules(cfg, wl.module, wl.threads, opt);
        schedules += rep.schedulesRun;
        benchmark::DoNotOptimize(rep.branchPoints);
    }
    state.SetItemsProcessed(std::int64_t(schedules));
    state.SetLabel(opt.dpor ? "dpor" : "naive");
}
BENCHMARK(BM_ExploreBoundOne)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
