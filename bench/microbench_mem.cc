/**
 * @file
 * google-benchmark microbenchmark of MemorySystem::access — the
 * simulator's hottest function. Reports simulated accesses/second
 * (items_per_second) for the characteristic access mixes:
 *
 *  - hit:    same-block L1 hits, the inner-loop steady state;
 *  - miss:   streaming misses with evictions and L2 traffic;
 *  - shared: read-shared + upgrade ping-pong between two cores;
 *  - tx:     all contexts listening in-TX (interest mask full), the
 *            worst case for listener delivery — swept over 8/32/64
 *            cores to expose the directory's O(trackers) delivery vs.
 *            broadcast's O(cores).
 *
 * Each mix runs with the coherence directory on (arg 1) and off (arg
 * 0, broadcast), so a hot-path regression in either path is visible in
 * CI via the microbench_mem_smoke ctest target.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "htm/controller.hh"
#include "mem/mem_system.hh"

using namespace hintm;

namespace
{

constexpr unsigned numCores = 8;

mem::MemConfig
config(bool directory_on)
{
    mem::MemConfig c; // paper Table II defaults
    c.directory = directory_on;
    return c;
}

void
BM_MemAccessHit(benchmark::State &state)
{
    mem::MemorySystem ms(config(state.range(0)), numCores);
    std::vector<mem::ContextId> ctx;
    for (unsigned i = 0; i < numCores; ++i)
        ctx.push_back(ms.addContext(i));
    ms.access(ctx[0], 0x1000, AccessType::Read); // warm
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ms.access(ctx[0], 0x1000, AccessType::Read));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_MemAccessHit)->Arg(1)->Arg(0);

void
BM_MemAccessMiss(benchmark::State &state)
{
    mem::MemorySystem ms(config(state.range(0)), numCores);
    std::vector<mem::ContextId> ctx;
    for (unsigned i = 0; i < numCores; ++i)
        ctx.push_back(ms.addContext(i));
    Addr a = 0;
    for (auto _ : state) {
        // Stride past the 32K L1: every access misses and evicts.
        benchmark::DoNotOptimize(ms.access(ctx[0], a, AccessType::Read));
        a += 64;
        if (a >= 16 * 1024 * 1024)
            a = 0;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_MemAccessMiss)->Arg(1)->Arg(0);

void
BM_MemAccessShared(benchmark::State &state)
{
    mem::MemorySystem ms(config(state.range(0)), numCores);
    std::vector<mem::ContextId> ctx;
    for (unsigned i = 0; i < numCores; ++i)
        ctx.push_back(ms.addContext(i));
    unsigned turn = 0;
    for (auto _ : state) {
        // Two cores alternate read/write on one block: downgrade,
        // upgrade and invalidation bus transactions every iteration.
        const mem::ContextId c = ctx[turn & 1];
        const AccessType t =
            (turn & 1) ? AccessType::Write : AccessType::Read;
        benchmark::DoNotOptimize(ms.access(c, 0x2000, t));
        ++turn;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_MemAccessShared)->Arg(1)->Arg(0);

void
BM_MemAccessTxListeners(benchmark::State &state)
{
    const unsigned cores = unsigned(state.range(1));
    mem::MemorySystem ms(config(state.range(0)), cores);
    htm::HtmStats stats;
    htm::HtmConfig hcfg;
    std::vector<mem::ContextId> ctx;
    std::vector<std::unique_ptr<htm::HtmController>> ctls;
    for (unsigned i = 0; i < cores; ++i) {
        ctx.push_back(ms.addContext(i));
        ctls.push_back(std::make_unique<htm::HtmController>(
            hcfg, ctx.back(), &stats));
        ms.setListener(ctx.back(), ctls.back().get());
        ctls.back()->setInterestHook(
            [&ms, c = ctx.back()](bool on) {
                ms.setListenerInterest(c, on);
            });
    }
    if (mem::Directory *dir = ms.directory()) {
        for (unsigned i = 0; i < cores; ++i) {
            ctls[i]->attachDirectory(dir);
            ms.setListenerTxFiltered(ctx[i], true);
        }
    }
    // Every context in a TX tracking a private block: all listeners
    // interested, no conflicts — the gating worst case, where the
    // directory's tracker filtering pays off most.
    for (unsigned i = 0; i < cores; ++i) {
        ctls[i]->beginTx(0);
        ctls[i]->trackAccess(Addr(0x100000 + i * 64), AccessType::Write,
                             false);
    }
    Addr a = 0x200000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ms.access(ctx[0], a, AccessType::Read));
        a += 64;
        if (a >= 0x200000 + 16 * 1024)
            a = 0x200000;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_MemAccessTxListeners)
    ->Args({1, 8})
    ->Args({0, 8})
    ->Args({1, 32})
    ->Args({0, 32})
    ->Args({1, 64})
    ->Args({0, 64});

} // namespace

BENCHMARK_MAIN();
