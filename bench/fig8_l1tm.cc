/**
 * @file
 * Reproduces Fig. 8: HinTM on the L1TM baseline — transactional state
 * tracked in the 32KB 8-way L1 data cache, with 2-way SMT per core to
 * create capacity and set-conflict pressure (each workload runs its
 * paper thread count on half as many cores, two hardware contexts per
 * L1). Run at --large scale like the paper.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (!args.scaleExplicit)
        args.scale = workloads::Scale::Large;

    TextTable t;
    t.header({"workload", "base cap aborts", "HinTM -cap%", "st speedup",
              "dyn speedup", "HinTM speedup", "InfCap speedup",
              "pg-abort cyc%"});

    std::vector<double> sp_full;
    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        auto opt = [&](Mechanism m) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::L1TM;
            o.mechanism = m;
            o.preserveReadOnly = args.preserve;
            // 2-way SMT: paper thread count on half as many cores.
            o.numCores = (p.wl.threads + 1) / 2;
            o.smtPerCore = 2;
            return o;
        };
        jobs.push_back({&p, opt(Mechanism::Baseline)});
        jobs.push_back({&p, opt(Mechanism::StaticOnly)});
        jobs.push_back({&p, opt(Mechanism::DynamicOnly)});
        jobs.push_back({&p, opt(Mechanism::Full)});
        SystemOptions inf_o = opt(Mechanism::Baseline);
        inf_o.htmKind = htm::HtmKind::InfCap;
        jobs.push_back({&p, inf_o});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const bench::PreparedWorkload &p = prepared[w];
        const auto &base = res[5 * w + 0];
        const auto &st = res[5 * w + 1];
        const auto &dyn = res[5 * w + 2];
        const auto &full = res[5 * w + 3];
        const auto &inf = res[5 * w + 4];

        const auto cap = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
        };
        const double pg =
            full.cycles ? double(full.pageModeOverheadCycles) /
                              (double(full.cycles) * p.wl.threads)
                        : 0.0;
        t.row({name, std::to_string(cap(base)),
               TextTable::pct(bench::reduction(cap(base), cap(full))),
               bench::speedupStr(double(base.cycles) / st.cycles),
               bench::speedupStr(double(base.cycles) / dyn.cycles),
               bench::speedupStr(double(base.cycles) / full.cycles),
               bench::speedupStr(double(base.cycles) / inf.cycles),
               TextTable::pct(pg)});
        sp_full.push_back(double(base.cycles) / full.cycles);
    }

    std::cout << "== Fig. 8: HinTM on L1TM with 2-way SMT ==\n"
              << t << "\n";
    std::printf("geomean HinTM speedup on L1TM+SMT: %.2fx (paper: ~1.7x "
                "avg, up to 7.1x)\n",
                bench::geomean(sp_full));
    return 0;
}
