/**
 * @file
 * Reproduces Fig. 8: HinTM on the L1TM baseline — transactional state
 * tracked in the 32KB 8-way L1 data cache, with 2-way SMT per core to
 * create capacity and set-conflict pressure (each workload runs its
 * paper thread count on half as many cores, two hardware contexts per
 * L1). Run at --large scale like the paper.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (!args.scaleExplicit)
        args.scale = workloads::Scale::Large;

    TextTable t;
    t.header({"workload", "base cap aborts", "HinTM -cap%", "st speedup",
              "dyn speedup", "HinTM speedup", "InfCap speedup",
              "pg-abort cyc%"});

    std::vector<double> sp_full;
    for (const std::string &name : args.names()) {
        const bench::PreparedWorkload p = bench::prepare(name, args.scale);

        auto opt = [&](Mechanism m) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::L1TM;
            o.mechanism = m;
            o.preserveReadOnly = args.preserve;
            // 2-way SMT: paper thread count on half as many cores.
            o.numCores = (p.wl.threads + 1) / 2;
            o.smtPerCore = 2;
            return o;
        };
        const auto base = bench::run(p, opt(Mechanism::Baseline));
        const auto st = bench::run(p, opt(Mechanism::StaticOnly));
        const auto dyn = bench::run(p, opt(Mechanism::DynamicOnly));
        const auto full = bench::run(p, opt(Mechanism::Full));
        SystemOptions inf_o = opt(Mechanism::Baseline);
        inf_o.htmKind = htm::HtmKind::InfCap;
        const auto inf = bench::run(p, inf_o);

        const auto cap = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
        };
        const double pg =
            full.cycles ? double(full.pageModeOverheadCycles) /
                              (double(full.cycles) * p.wl.threads)
                        : 0.0;
        t.row({name, std::to_string(cap(base)),
               TextTable::pct(bench::reduction(cap(base), cap(full))),
               bench::speedupStr(double(base.cycles) / st.cycles),
               bench::speedupStr(double(base.cycles) / dyn.cycles),
               bench::speedupStr(double(base.cycles) / full.cycles),
               bench::speedupStr(double(base.cycles) / inf.cycles),
               TextTable::pct(pg)});
        sp_full.push_back(double(base.cycles) / full.cycles);
    }

    std::cout << "== Fig. 8: HinTM on L1TM with 2-way SMT ==\n"
              << t << "\n";
    std::printf("geomean HinTM speedup on L1TM+SMT: %.2fx (paper: ~1.7x "
                "avg, up to 7.1x)\n",
                bench::geomean(sp_full));
    return 0;
}
