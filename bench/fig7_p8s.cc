/**
 * @file
 * Reproduces Fig. 7: HinTM on the P8S baseline (P8 plus a 1024-bit PBX
 * read signature). Signatures make the readset effectively unbounded, so
 * HinTM's remaining leverage is writeset reduction (capacity aborts) and
 * false-conflict elimination (signature aliasing). Run at --large scale,
 * as the paper uses larger inputs to pressure the bigger HTMs.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (!args.scaleExplicit)
        args.scale = workloads::Scale::Large;

    TextTable t7a;
    t7a.header({"workload", "base cap", "base false-cf", "st -cap%",
                "dyn -fcf%", "HinTM -cap%", "HinTM -fcf%"});
    TextTable t7b;
    t7b.header({"workload", "st speedup", "dyn speedup", "HinTM speedup",
                "InfCap speedup"});

    std::vector<double> sp_full;
    for (const std::string &name : args.names()) {
        const bench::PreparedWorkload p = bench::prepare(name, args.scale);

        auto opt = [&](Mechanism m) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::P8S;
            o.mechanism = m;
            o.preserveReadOnly = args.preserve;
            return o;
        };
        const auto base = bench::run(p, opt(Mechanism::Baseline));
        const auto st = bench::run(p, opt(Mechanism::StaticOnly));
        const auto dyn = bench::run(p, opt(Mechanism::DynamicOnly));
        const auto full = bench::run(p, opt(Mechanism::Full));
        SystemOptions inf_o = opt(Mechanism::Baseline);
        inf_o.htmKind = htm::HtmKind::InfCap;
        const auto inf = bench::run(p, inf_o);

        const auto cap = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
        };
        const auto fcf = [](const sim::RunResult &r) {
            return r.htm
                .aborts[unsigned(htm::AbortReason::FalseConflict)];
        };
        t7a.row({name, std::to_string(cap(base)),
                 std::to_string(fcf(base)),
                 TextTable::pct(bench::reduction(cap(base), cap(st))),
                 TextTable::pct(bench::reduction(fcf(base), fcf(dyn))),
                 TextTable::pct(bench::reduction(cap(base), cap(full))),
                 TextTable::pct(bench::reduction(fcf(base), fcf(full)))});
        t7b.row({name, bench::speedupStr(double(base.cycles) / st.cycles),
                 bench::speedupStr(double(base.cycles) / dyn.cycles),
                 bench::speedupStr(double(base.cycles) / full.cycles),
                 bench::speedupStr(double(base.cycles) / inf.cycles)});
        sp_full.push_back(double(base.cycles) / full.cycles);
    }

    std::cout << "== Fig. 7a: abort reduction vs P8S baseline ==\n"
              << t7a << "\n";
    std::cout << "== Fig. 7b: speedup vs P8S baseline ==\n" << t7b << "\n";
    std::printf("geomean HinTM speedup on P8S: %.2fx (paper: ~1.28x)\n",
                bench::geomean(sp_full));
    return 0;
}
