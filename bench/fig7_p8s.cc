/**
 * @file
 * Reproduces Fig. 7: HinTM on the P8S baseline (P8 plus a 1024-bit PBX
 * read signature). Signatures make the readset effectively unbounded, so
 * HinTM's remaining leverage is writeset reduction (capacity aborts) and
 * false-conflict elimination (signature aliasing). Run at --large scale,
 * as the paper uses larger inputs to pressure the bigger HTMs.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (!args.scaleExplicit)
        args.scale = workloads::Scale::Large;

    TextTable t7a;
    t7a.header({"workload", "base cap", "base false-cf", "st -cap%",
                "dyn -fcf%", "HinTM -cap%", "HinTM -fcf%"});
    TextTable t7b;
    t7b.header({"workload", "st speedup", "dyn speedup", "HinTM speedup",
                "InfCap speedup"});

    std::vector<double> sp_full;
    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        auto opt = [&](Mechanism m) {
            SystemOptions o;
            o.htmKind = htm::HtmKind::P8S;
            o.mechanism = m;
            o.preserveReadOnly = args.preserve;
            return o;
        };
        jobs.push_back({&p, opt(Mechanism::Baseline)});
        jobs.push_back({&p, opt(Mechanism::StaticOnly)});
        jobs.push_back({&p, opt(Mechanism::DynamicOnly)});
        jobs.push_back({&p, opt(Mechanism::Full)});
        SystemOptions inf_o = opt(Mechanism::Baseline);
        inf_o.htmKind = htm::HtmKind::InfCap;
        jobs.push_back({&p, inf_o});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &base = res[5 * w + 0];
        const auto &st = res[5 * w + 1];
        const auto &dyn = res[5 * w + 2];
        const auto &full = res[5 * w + 3];
        const auto &inf = res[5 * w + 4];

        const auto cap = [](const sim::RunResult &r) {
            return r.htm.aborts[unsigned(htm::AbortReason::Capacity)];
        };
        const auto fcf = [](const sim::RunResult &r) {
            return r.htm
                .aborts[unsigned(htm::AbortReason::FalseConflict)];
        };
        t7a.row({name, std::to_string(cap(base)),
                 std::to_string(fcf(base)),
                 TextTable::pct(bench::reduction(cap(base), cap(st))),
                 TextTable::pct(bench::reduction(fcf(base), fcf(dyn))),
                 TextTable::pct(bench::reduction(cap(base), cap(full))),
                 TextTable::pct(bench::reduction(fcf(base), fcf(full)))});
        t7b.row({name, bench::speedupStr(double(base.cycles) / st.cycles),
                 bench::speedupStr(double(base.cycles) / dyn.cycles),
                 bench::speedupStr(double(base.cycles) / full.cycles),
                 bench::speedupStr(double(base.cycles) / inf.cycles)});
        sp_full.push_back(double(base.cycles) / full.cycles);
    }

    std::cout << "== Fig. 7a: abort reduction vs P8S baseline ==\n"
              << t7a << "\n";
    std::cout << "== Fig. 7b: speedup vs P8S baseline ==\n" << t7b << "\n";
    std::printf("geomean HinTM speedup on P8S: %.2fx (paper: ~1.28x)\n",
                bench::geomean(sp_full));
    return 0;
}
