/**
 * @file
 * Reproduces Fig. 6: per-workload CDFs of committed-TX footprints
 * (readset + writeset, in 64B blocks) under three tracking disciplines,
 * collected in a single InfCap run exactly as the paper describes:
 *   baseline  — every block touched in the TX;
 *   HinTM-st  — blocks touched by instructions not statically safe;
 *   HinTM     — blocks touched by accesses not safe under either
 *               mechanism.
 * The paper plots genome, labyrinth, tpcc-no and vacation; default here
 * is the same four (override with --workload).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.only.empty())
        args.only = {"genome", "labyrinth", "tpcc-no", "vacation"};

    const std::vector<std::uint64_t> xs = {1,  2,  4,  8,  16, 24,
                                           32, 48, 64, 96, 128};

    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(args.only.size());
    for (const std::string &name : args.only)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        SystemOptions o;
        o.htmKind = htm::HtmKind::InfCap; // every TX commits: full CDF
        o.mechanism = Mechanism::Full;    // both hint kinds evaluated
        o.collectTxSizes = true;
        jobs.push_back({&p, o});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < args.only.size(); ++w) {
        const std::string &name = args.only[w];
        const auto &r = res[w];

        TextTable t;
        std::vector<std::string> hdr = {"tracked blocks <="};
        for (auto x : xs)
            hdr.push_back(std::to_string(x));
        t.header(hdr);

        auto cdf_row = [&](const char *label,
                           const stats::Distribution &d) {
            std::vector<std::string> row = {label};
            for (auto x : xs)
                row.push_back(TextTable::pct(d.cdfAt(x), 0));
            t.row(row);
        };
        cdf_row("baseline", r.txSizeAll);
        cdf_row("HinTM-st", r.txSizeNoStatic);
        cdf_row("HinTM", r.txSizeUnsafe);

        std::cout << "== Fig. 6: TX size CDF for " << name << " ("
                  << r.txSizeAll.count() << " committed TXs) ==\n"
                  << t;
        std::printf("fits in 64-entry buffer: baseline %.1f%%  "
                    "HinTM-st %.1f%%  HinTM %.1f%%\n\n",
                    100 * r.txSizeAll.cdfAt(64),
                    100 * r.txSizeNoStatic.cdfAt(64),
                    100 * r.txSizeUnsafe.cdfAt(64));
    }
    return 0;
}
