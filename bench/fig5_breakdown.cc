/**
 * @file
 * Reproduces Fig. 5: the dynamic breakdown of memory accesses performed
 * inside transactions, split into compiler-annotated safe, runtime-
 * (page-)annotated safe, and unsafe. Collected under full HinTM with the
 * preserve-read-only page policy, exactly as the paper does ("collected
 * using HinTM + preserve").
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable t;
    t.header({"workload", "compiler-safe", "runtime-safe", "unsafe",
              "(tx accesses)"});

    double sum_safe = 0;
    unsigned n = 0;

    const std::vector<std::string> names = args.names();
    std::vector<bench::PreparedWorkload> prepared;
    prepared.reserve(names.size());
    for (const std::string &name : names)
        prepared.push_back(bench::prepare(name, args.scale));

    std::vector<bench::MatrixJob> jobs;
    for (const bench::PreparedWorkload &p : prepared) {
        SystemOptions o;
        o.htmKind = htm::HtmKind::P8;
        o.mechanism = Mechanism::Full;
        o.preserveReadOnly = true; // the paper's collection setup
        jobs.push_back({&p, o});
    }
    const std::vector<sim::RunResult> res = bench::runMatrix(jobs,
                                                             args.jobs);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &r = res[w];

        const double total = double(r.txAccessesTotal());
        if (total == 0) {
            t.row({name, "-", "-", "-", "0"});
            continue;
        }
        const double comp =
            double(r.txReadsStaticSafe + r.txWritesStaticSafe) / total;
        const double dyn = double(r.txReadsDynSafe) / total;
        const double unsafe =
            double(r.txReadsUnsafe + r.txWritesUnsafe) / total;
        t.row({name, TextTable::pct(comp), TextTable::pct(dyn),
               TextTable::pct(unsafe),
               std::to_string(std::uint64_t(total))});
        sum_safe += comp + dyn;
        ++n;
    }

    std::cout << "== Fig. 5: TX memory access breakdown (HinTM + "
                 "preserve) ==\n"
              << t << "\n";
    if (n) {
        std::printf("average safe fraction: %.1f%% (paper: ~50%%, "
                    "dominated by the dynamic mechanism)\n",
                    100 * sum_safe / n);
    }
    return 0;
}
