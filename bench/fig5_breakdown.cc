/**
 * @file
 * Reproduces Fig. 5: the dynamic breakdown of memory accesses performed
 * inside transactions, split into compiler-annotated safe, runtime-
 * (page-)annotated safe, and unsafe. Collected under full HinTM with the
 * preserve-read-only page policy, exactly as the paper does ("collected
 * using HinTM + preserve").
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace hintm;
using bench::BenchArgs;
using core::Mechanism;
using core::SystemOptions;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    TextTable t;
    t.header({"workload", "compiler-safe", "runtime-safe", "unsafe",
              "(tx accesses)"});

    double sum_safe = 0;
    unsigned n = 0;

    for (const std::string &name : args.names()) {
        const bench::PreparedWorkload p = bench::prepare(name, args.scale);

        SystemOptions o;
        o.htmKind = htm::HtmKind::P8;
        o.mechanism = Mechanism::Full;
        o.preserveReadOnly = true; // the paper's collection setup
        const auto r = bench::run(p, o);

        const double total = double(r.txAccessesTotal());
        if (total == 0) {
            t.row({name, "-", "-", "-", "0"});
            continue;
        }
        const double comp =
            double(r.txReadsStaticSafe + r.txWritesStaticSafe) / total;
        const double dyn = double(r.txReadsDynSafe) / total;
        const double unsafe =
            double(r.txReadsUnsafe + r.txWritesUnsafe) / total;
        t.row({name, TextTable::pct(comp), TextTable::pct(dyn),
               TextTable::pct(unsafe),
               std::to_string(std::uint64_t(total))});
        sum_safe += comp + dyn;
        ++n;
    }

    std::cout << "== Fig. 5: TX memory access breakdown (HinTM + "
                 "preserve) ==\n"
              << t << "\n";
    if (n) {
        std::printf("average safe fraction: %.1f%% (paper: ~50%%, "
                    "dominated by the dynamic mechanism)\n",
                    100 * sum_safe / n);
    }
    return 0;
}
