#include "result_store.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <unistd.h>

#include "common/logging.hh"
#include "htm/abort.hh"

namespace hintm
{
namespace bench
{

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

namespace fs = std::filesystem;

constexpr char entryMagic[4] = {'H', 'T', 'M', 'R'};
/** Bump on ANY change to the payload encoding below. */
constexpr std::uint32_t formatVersion = 1;

// ---- little binary writer/reader -----------------------------------

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putStr(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out.append(s);
}

void
putU64Vec(std::string &out, const std::vector<std::uint64_t> &v)
{
    putU64(out, v.size());
    for (const std::uint64_t x : v)
        putU64(out, x);
}

void
putI64Vec(std::string &out, const std::vector<std::int64_t> &v)
{
    putU64(out, v.size());
    for (const std::int64_t x : v)
        putU64(out, std::uint64_t(x));
}

void
putDist(std::string &out, const stats::Distribution &d)
{
    const stats::Distribution::Image img = d.image();
    putU64(out, img.bucketWidth);
    putU64(out, img.overflow);
    putU64(out, img.count);
    putU64(out, img.sum);
    putU64(out, img.minRaw);
    putU64(out, img.max);
    putU64Vec(out, img.buckets);
}

/** Bounds-checked sequential reader; any overrun latches fail(). */
class Reader
{
  public:
    explicit Reader(const std::string &buf) : buf_(buf) {}

    std::uint64_t
    u64()
    {
        if (pos_ + 8 > buf_.size()) {
            failed_ = true;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(buf_[pos_ + i])) << (8 * i);
        pos_ += 8;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (pos_ + 4 > buf_.size()) {
            failed_ = true;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(buf_[pos_ + i])) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (failed_ || pos_ + n > buf_.size()) {
            failed_ = true;
            return {};
        }
        std::string s = buf_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    std::vector<std::uint64_t>
    u64Vec()
    {
        const std::uint64_t n = u64();
        if (failed_ || n > (buf_.size() - pos_) / 8) {
            failed_ = true;
            return {};
        }
        std::vector<std::uint64_t> v(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v[i] = u64();
        return v;
    }

    std::vector<std::int64_t>
    i64Vec()
    {
        const std::vector<std::uint64_t> raw = u64Vec();
        return {raw.begin(), raw.end()};
    }

    void
    dist(stats::Distribution &d)
    {
        stats::Distribution::Image img;
        img.bucketWidth = u64();
        img.overflow = u64();
        img.count = u64();
        img.sum = u64();
        img.minRaw = u64();
        img.max = u64();
        img.buckets = u64Vec();
        if (!failed_ && img.bucketWidth >= 1 && !img.buckets.empty())
            d.setImage(img);
        else
            failed_ = true;
    }

    bool ok() const { return !failed_; }
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    const std::string &buf_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

void
putSharing(std::string &out, const sim::SharingSummary &s)
{
    putU64(out, s.totalRegions);
    putU64(out, s.safeRegions);
    putU64(out, s.txReads);
    putU64(out, s.txReadsToSafe);
    putU64(out, s.unknownRegions);
}

void
readSharing(Reader &rd, sim::SharingSummary &s)
{
    s.totalRegions = rd.u64();
    s.safeRegions = rd.u64();
    s.txReads = rd.u64();
    s.txReadsToSafe = rd.u64();
    s.unknownRegions = rd.u64();
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
encodeRunResult(const sim::RunResult &r)
{
    std::string out;
    putU64(out, r.cycles);
    putU64(out, r.instructions);

    putU64(out, r.htm.begins);
    putU64(out, r.htm.commits);
    putU64(out, htm::numAbortReasons);
    for (unsigned a = 0; a < htm::numAbortReasons; ++a)
        putU64(out, r.htm.aborts[a]);
    for (unsigned a = 0; a < htm::numAbortReasons; ++a)
        putU64(out, r.htm.cyclesLost[a]);
    putDist(out, r.htm.trackedAtCommit);
    putU64(out, r.htm.signatureSpills);
    putU64(out, r.htm.preAbortConversions);

    putU64(out, r.txReadsStaticSafe);
    putU64(out, r.txReadsDynSafe);
    putU64(out, r.txReadsAnnotated);
    putU64(out, r.txWritesStaticSafe);
    putU64(out, r.txReadsUnsafe);
    putU64(out, r.txWritesUnsafe);
    putU64(out, r.txAccessesSuspended);

    putU64(out, r.pageModeOverheadCycles);
    putU64(out, r.fallbackRuns);
    putU64(out, r.committedTxs);
    putU64(out, r.safePages);
    putU64(out, r.totalPages);

    putDist(out, r.txSizeAll);
    putDist(out, r.txSizeNoStatic);
    putDist(out, r.txSizeUnsafe);

    putSharing(out, r.blockSharing);
    putSharing(out, r.pageSharing);

    putU64(out, r.finalGlobals.size());
    for (const auto &kv : r.finalGlobals) {
        putStr(out, kv.first);
        putI64Vec(out, kv.second);
    }

    putStr(out, r.rawStats);

    putU64(out, r.oracleWitnesses.size());
    for (const std::string &w : r.oracleWitnesses)
        putStr(out, w);
    putU64(out, r.oracleSafeChecked);
    putU64(out, r.oracleSafeSkips);
    return out;
}

bool
decodeRunResult(const std::string &payload, sim::RunResult &out)
{
    Reader rd(payload);
    sim::RunResult r;
    r.cycles = rd.u64();
    r.instructions = rd.u64();

    r.htm.begins = rd.u64();
    r.htm.commits = rd.u64();
    if (rd.u64() != htm::numAbortReasons)
        return false; // abort taxonomy changed: stale entry
    for (unsigned a = 0; a < htm::numAbortReasons; ++a)
        r.htm.aborts[a] = rd.u64();
    for (unsigned a = 0; a < htm::numAbortReasons; ++a)
        r.htm.cyclesLost[a] = rd.u64();
    rd.dist(r.htm.trackedAtCommit);
    r.htm.signatureSpills = rd.u64();
    r.htm.preAbortConversions = rd.u64();

    r.txReadsStaticSafe = rd.u64();
    r.txReadsDynSafe = rd.u64();
    r.txReadsAnnotated = rd.u64();
    r.txWritesStaticSafe = rd.u64();
    r.txReadsUnsafe = rd.u64();
    r.txWritesUnsafe = rd.u64();
    r.txAccessesSuspended = rd.u64();

    r.pageModeOverheadCycles = rd.u64();
    r.fallbackRuns = rd.u64();
    r.committedTxs = rd.u64();
    r.safePages = rd.u64();
    r.totalPages = rd.u64();

    rd.dist(r.txSizeAll);
    rd.dist(r.txSizeNoStatic);
    rd.dist(r.txSizeUnsafe);

    readSharing(rd, r.blockSharing);
    readSharing(rd, r.pageSharing);

    const std::uint64_t num_globals = rd.u64();
    for (std::uint64_t i = 0; rd.ok() && i < num_globals; ++i) {
        std::string name = rd.str();
        r.finalGlobals.emplace(std::move(name), rd.i64Vec());
    }

    r.rawStats = rd.str();

    const std::uint64_t num_witnesses = rd.u64();
    for (std::uint64_t i = 0; rd.ok() && i < num_witnesses; ++i)
        r.oracleWitnesses.push_back(rd.str());
    r.oracleSafeChecked = rd.u64();
    r.oracleSafeSkips = rd.u64();

    if (!rd.ok() || !rd.atEnd())
        return false;
    out = std::move(r);
    return true;
}

ResultStore::ResultStore(std::string dir, std::uint64_t bin_hash)
    : dir_(std::move(dir)), binHash_(bin_hash)
{
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    return dir_ + "/" + hex64(binHash_) + "/" +
           hex64(fnv1a(key.data(), key.size())) + ".res";
}

bool
ResultStore::load(const std::string &key, sim::RunResult &out) const
{
    std::ifstream is(entryPath(key), std::ios::binary);
    if (!is)
        return false;
    std::string buf((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    if (buf.size() < 4 || std::memcmp(buf.data(), entryMagic, 4) != 0)
        return false;
    Reader hd(buf);
    (void)hd.u32(); // magic (validated above)
    if (hd.u32() != formatVersion)
        return false;
    if (hd.u64() != binHash_)
        return false;
    if (hd.str() != key)
        return false;
    const std::string payload = hd.str();
    if (!hd.ok())
        return false;
    if (hd.u64() != fnv1a(payload.data(), payload.size()))
        return false;
    if (!hd.ok() || !hd.atEnd())
        return false;
    return decodeRunResult(payload, out);
}

void
ResultStore::store(const std::string &key, const sim::RunResult &r) const
{
    if (r.journal)
        return; // journals are not persisted
    std::string buf;
    buf.append(entryMagic, 4);
    putU32(buf, formatVersion);
    putU64(buf, binHash_);
    putStr(buf, key);
    const std::string payload = encodeRunResult(r);
    putStr(buf, payload);
    putU64(buf, fnv1a(payload.data(), payload.size()));

    const std::string path = entryPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        warn("result cache: cannot create ", dir_, ": ", ec.message());
        return;
    }
    static std::atomic<unsigned> tmpSeq{0};
    const std::string tmp = path + ".tmp" +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSeq++);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("result cache: cannot write ", tmp);
            return;
        }
        os.write(buf.data(), std::streamsize(buf.size()));
        if (!os) {
            warn("result cache: short write to ", tmp);
            os.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot publish ", path, ": ", ec.message());
        fs::remove(tmp, ec);
    }
}

std::string
ResultStore::defaultDir()
{
    if (const char *xdg = std::getenv("XDG_CACHE_HOME");
        xdg && *xdg)
        return std::string(xdg) + "/hintm";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/hintm";
    return {};
}

std::uint64_t
ResultStore::selfBinaryHash()
{
    static const std::uint64_t hash = [] {
        std::ifstream is("/proc/self/exe", std::ios::binary);
        if (!is)
            return std::uint64_t(0);
        std::uint64_t h = 0xcbf29ce484222325ull;
        char buf[1 << 16];
        while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
            h = fnv1a(buf, std::size_t(is.gcount()), h);
            if (!is)
                break;
        }
        return h;
    }();
    return hash;
}

void
ResultStore::clearDir(const std::string &dir)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && it->path().extension() == ".res")
            fs::remove(it->path(), ec);
    }
}

} // namespace bench
} // namespace hintm
