/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: workload
 * compilation caching, config sweeps, and result formatting helpers.
 */

#ifndef HINTM_BENCH_BENCH_UTIL_HH
#define HINTM_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "core/hintm.hh"
#include "workloads/workloads.hh"

namespace hintm
{
namespace bench
{

/** Command-line options shared by all harnesses. */
struct BenchArgs
{
    workloads::Scale scale = workloads::Scale::Small;
    /** True when the user passed an explicit scale flag. */
    bool scaleExplicit = false;
    /** Empty = the full suite. */
    std::vector<std::string> only;
    bool preserve = false;

    static BenchArgs parse(int argc, char **argv);
    std::vector<std::string> names() const;
};

/** A workload with hints compiled once, reusable across configs. */
struct PreparedWorkload
{
    workloads::Workload wl;
    compiler::SafetyReport compileReport;
};

PreparedWorkload prepare(const std::string &name, workloads::Scale s);

/** Run a prepared workload under the given options. */
sim::RunResult run(const PreparedWorkload &p, core::SystemOptions opts);

/** "2.98x"-style speedup formatting. */
std::string speedupStr(double s);

/** Abort-reduction percentage vs a baseline count (guards div by 0). */
double reduction(std::uint64_t base, std::uint64_t with);

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &v);

} // namespace bench
} // namespace hintm

#endif // HINTM_BENCH_BENCH_UTIL_HH
