/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: workload
 * compilation caching, config sweeps, the parallel experiment runner
 * (runMatrix), the process-wide result cache, JSON perf reporting, and
 * result formatting helpers.
 */

#ifndef HINTM_BENCH_BENCH_UTIL_HH
#define HINTM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/hintm.hh"
#include "workloads/workloads.hh"

namespace hintm
{
namespace bench
{

/** Command-line options shared by all harnesses. */
struct BenchArgs
{
    workloads::Scale scale = workloads::Scale::Small;
    /** True when the user passed an explicit scale flag. */
    bool scaleExplicit = false;
    /** Empty = the full suite. */
    std::vector<std::string> only;
    bool preserve = false;
    /** Concurrent simulations (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** When non-empty, a per-run perf report is written here at exit. */
    std::string jsonPath;
    /** --no-snoop-filter: run the reference broadcast memory path
     * (cross-check mode; also flips the process-wide default). */
    bool noSnoopFilter = false;
    /** --no-directory: broadcast coherence instead of the owning
     * directory (cross-check mode; flips the process-wide default).
     * Narrower than --no-snoop-filter, which also disables the
     * translation cache. */
    bool noDirectory = false;
    /** --no-decode-cache: run the reference Instr-walking interpreter
     * (cross-check mode; also flips the process-wide default). */
    bool noDecodeCache = false;
    /** --no-sched-index: run the reference O(contexts) scheduler scan
     * instead of the event-driven ready-context index (cross-check
     * mode; also flips the process-wide default). */
    bool noSchedIndex = false;
    /** --lint: run the static race-lint pass over every workload as it
     * is prepared and abort on any diagnostic (soundness gate). */
    bool lint = false;
    /** --journal: record every TX attempt (flips the process-wide
     * SystemOptions default; observation only, results bit-identical). */
    bool journal = false;
    /** --metrics: fold capacity-pressure metrics into every run (flips
     * the process-wide SystemOptions default; observation only, results
     * bit-identical). */
    bool metrics = false;
    /** --perfetto [FILE]: write a Chrome-trace timeline of every
     * journal-carrying run at exit (implies --journal). */
    std::string perfettoPath;
    /** --stats-json [FILE]: write machine-readable per-run stats
     * records at exit (journal sections when --journal is on). */
    std::string statsJsonPath;
    /** --cache-dir DIR: persistent result-cache location (default:
     * $XDG_CACHE_HOME/hintm or ~/.cache/hintm). */
    std::string cacheDir;
    /** --no-disk-cache: run without the persistent result cache. */
    bool noDiskCache = false;
    /** --cache-clear: wipe the cache directory before running. */
    bool cacheClear = false;
    /** --no-prefix-fork: cold-start every simulation instead of forking
     * groups from a shared init-phase prefix (A/B escape hatch). */
    bool noPrefixFork = false;

    static BenchArgs parse(int argc, char **argv);
    std::vector<std::string> names() const;
};

/** Process-wide switch behind BenchArgs::lint: when on, prepare()
 * re-derives the race obligations after hint compilation and fatals on
 * any diagnostic. Exposed so drivers with their own argument parsing
 * (hintm_run) can enable the same gate. */
void setLintOnPrepare(bool on);

/** A workload with hints compiled once, reusable across configs. */
struct PreparedWorkload
{
    workloads::Workload wl;
    compiler::SafetyReport compileReport;
    /** Scale the workload was built at (result-cache key component). */
    workloads::Scale scale = workloads::Scale::Small;
};

PreparedWorkload prepare(const std::string &name, workloads::Scale s);

/** Run a prepared workload under the given options (no cache). */
sim::RunResult run(const PreparedWorkload &p, core::SystemOptions opts);

/**
 * One simulation of the experiment matrix. The referenced workload must
 * outlive the runMatrix call.
 */
struct MatrixJob
{
    const PreparedWorkload *wl = nullptr;
    core::SystemOptions opts;
    /** 0 = the workload's own thread count. */
    unsigned threadsOverride = 0;
};

/**
 * Execute the jobs concurrently on @p host_jobs threads (0 = hardware
 * concurrency, clamped — see effectiveJobs) and return results in
 * submission order. Every simulation is deterministic and
 * self-contained, so the results are bit-identical to a sequential run
 * regardless of host_jobs. Identical (workload, scale, options,
 * threads) jobs — within this call or across calls — simulate once:
 * duplicates are deduped before scheduling, completed runs are served
 * from a process-wide cache, and (when configured via
 * setDiskResultCache) from the persistent on-disk store. Jobs sharing a
 * workload/thread-count/seed run their init phase once and fork the
 * divergent configs from the captured prefix; results stay
 * bit-identical (property-test-locked).
 */
std::vector<sim::RunResult> runMatrix(const std::vector<MatrixJob> &jobs,
                                      unsigned host_jobs = 0);

/**
 * The exact cache identity of one matrix job: workload name, scale,
 * thread count, a fingerprint of the (possibly mutated) module, and
 * every SystemOptions field. Two jobs with equal keys produce
 * bit-identical RunResults; the on-disk store additionally scopes keys
 * by a content hash of the simulator binary. Key changes must be
 * deliberate — a golden-string test locks the format.
 */
std::string matrixJobKey(const MatrixJob &job);

/**
 * Configure the persistent result cache behind runMatrix. Disabled
 * until called (library default), so tests and embedders are hermetic;
 * BenchArgs::parse enables it for every harness binary unless
 * --no-disk-cache is given. An empty @p dir disables regardless of
 * @p enabled.
 */
void setDiskResultCache(const std::string &dir, bool enabled);

/** Enable/disable init-phase prefix forking in runMatrix (default on;
 * --no-prefix-fork clears it for A/B comparisons). */
void setPrefixFork(bool on);

/**
 * Host worker threads runMatrix will actually use for @p requested
 * (0 = std::thread::hardware_concurrency(), clamped to [1, 64]).
 * @p sim_threads is the largest simulated-machine thread count among
 * the jobs: every in-flight simulation holds per-context state
 * proportional to it, so the default is additionally capped to keep
 * jobs x sim_threads bounded (8-thread sweeps are unaffected; 32/64-
 * thread sweeps get fewer concurrent machines). An explicit @p
 * requested is always honored, with a warn-once cap hint when it
 * oversubscribes.
 */
unsigned effectiveJobs(unsigned requested, unsigned sim_threads = 8);

/** Process-wide result-cache counters (testing/diagnostic aid). */
struct MatrixCacheStats
{
    /** Served from the in-memory cache (prior runMatrix calls). */
    std::uint64_t hits = 0;
    /** Simulated (not served from any cache). */
    std::uint64_t misses = 0;
    /** Duplicates of another job in the same call (never scheduled). */
    std::uint64_t deduped = 0;
    /** Served from the persistent on-disk store. */
    std::uint64_t diskHits = 0;
    /** Fresh results persisted to the on-disk store. */
    std::uint64_t diskStores = 0;
    /** Simulations seeded from a shared init-phase prefix. */
    std::uint64_t prefixForks = 0;
};

MatrixCacheStats matrixCacheStats();

/** Drop all in-memory cached results and zero the counters (tests).
 * The on-disk store is unaffected (--cache-clear wipes that). */
void clearMatrixCache();

/**
 * Arrange for a JSON array of per-run perf records (workload, config,
 * host wall-time, simulated cycles, instructions, abort breakdown) to
 * be written to @p path when the process exits. Called automatically by
 * BenchArgs::parse for --json.
 */
void setJsonReport(const std::string &path);

/**
 * Arrange for observability exports at process exit: a combined
 * Perfetto/Chrome-trace timeline (@p perfetto_path, one trace process
 * per run) and/or a stats-JSON array (@p stats_path, one record per
 * run, journal sections included when runs carried journals). Either
 * path may be empty. Runs executed through runMatrix/run after this
 * call are collected; called automatically by BenchArgs::parse for
 * --perfetto / --stats-json.
 */
void setObservabilityExport(const std::string &perfetto_path,
                            const std::string &stats_path);

/** "2.98x"-style speedup formatting. */
std::string speedupStr(double s);

/**
 * Abort reduction vs a baseline count, as a signed fraction: positive
 * when @p with is an improvement, negative when the mechanism made
 * things worse (guards division by zero).
 */
double reduction(std::uint64_t base, std::uint64_t with);

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &v);

} // namespace bench
} // namespace hintm

#endif // HINTM_BENCH_BENCH_UTIL_HH
