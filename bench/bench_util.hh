/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: workload
 * compilation caching, config sweeps, the parallel experiment runner
 * (runMatrix), the process-wide result cache, JSON perf reporting, and
 * result formatting helpers.
 */

#ifndef HINTM_BENCH_BENCH_UTIL_HH
#define HINTM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/hintm.hh"
#include "workloads/workloads.hh"

namespace hintm
{
namespace bench
{

/** Command-line options shared by all harnesses. */
struct BenchArgs
{
    workloads::Scale scale = workloads::Scale::Small;
    /** True when the user passed an explicit scale flag. */
    bool scaleExplicit = false;
    /** Empty = the full suite. */
    std::vector<std::string> only;
    bool preserve = false;
    /** Concurrent simulations (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** When non-empty, a per-run perf report is written here at exit. */
    std::string jsonPath;
    /** --no-snoop-filter: run the reference broadcast memory path
     * (cross-check mode; also flips the process-wide default). */
    bool noSnoopFilter = false;
    /** --no-decode-cache: run the reference Instr-walking interpreter
     * (cross-check mode; also flips the process-wide default). */
    bool noDecodeCache = false;
    /** --lint: run the static race-lint pass over every workload as it
     * is prepared and abort on any diagnostic (soundness gate). */
    bool lint = false;
    /** --journal: record every TX attempt (flips the process-wide
     * SystemOptions default; observation only, results bit-identical). */
    bool journal = false;
    /** --perfetto [FILE]: write a Chrome-trace timeline of every
     * journal-carrying run at exit (implies --journal). */
    std::string perfettoPath;
    /** --stats-json [FILE]: write machine-readable per-run stats
     * records at exit (journal sections when --journal is on). */
    std::string statsJsonPath;

    static BenchArgs parse(int argc, char **argv);
    std::vector<std::string> names() const;
};

/** Process-wide switch behind BenchArgs::lint: when on, prepare()
 * re-derives the race obligations after hint compilation and fatals on
 * any diagnostic. Exposed so drivers with their own argument parsing
 * (hintm_run) can enable the same gate. */
void setLintOnPrepare(bool on);

/** A workload with hints compiled once, reusable across configs. */
struct PreparedWorkload
{
    workloads::Workload wl;
    compiler::SafetyReport compileReport;
    /** Scale the workload was built at (result-cache key component). */
    workloads::Scale scale = workloads::Scale::Small;
};

PreparedWorkload prepare(const std::string &name, workloads::Scale s);

/** Run a prepared workload under the given options (no cache). */
sim::RunResult run(const PreparedWorkload &p, core::SystemOptions opts);

/**
 * One simulation of the experiment matrix. The referenced workload must
 * outlive the runMatrix call.
 */
struct MatrixJob
{
    const PreparedWorkload *wl = nullptr;
    core::SystemOptions opts;
    /** 0 = the workload's own thread count. */
    unsigned threadsOverride = 0;
};

/**
 * Execute the jobs concurrently on @p host_jobs threads (0 = hardware
 * concurrency) and return results in submission order. Every simulation
 * is deterministic and self-contained, so the results are bit-identical
 * to a sequential run regardless of host_jobs. Identical (workload,
 * scale, options, threads) jobs — within this call or across calls —
 * simulate once: completed runs are served from a process-wide cache.
 */
std::vector<sim::RunResult> runMatrix(const std::vector<MatrixJob> &jobs,
                                      unsigned host_jobs = 0);

/** Process-wide result-cache counters (testing/diagnostic aid). */
struct MatrixCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

MatrixCacheStats matrixCacheStats();

/** Drop all cached results and zero the counters (tests). */
void clearMatrixCache();

/**
 * Arrange for a JSON array of per-run perf records (workload, config,
 * host wall-time, simulated cycles, instructions, abort breakdown) to
 * be written to @p path when the process exits. Called automatically by
 * BenchArgs::parse for --json.
 */
void setJsonReport(const std::string &path);

/**
 * Arrange for observability exports at process exit: a combined
 * Perfetto/Chrome-trace timeline (@p perfetto_path, one trace process
 * per run) and/or a stats-JSON array (@p stats_path, one record per
 * run, journal sections included when runs carried journals). Either
 * path may be empty. Runs executed through runMatrix/run after this
 * call are collected; called automatically by BenchArgs::parse for
 * --perfetto / --stats-json.
 */
void setObservabilityExport(const std::string &perfetto_path,
                            const std::string &stats_path);

/** "2.98x"-style speedup formatting. */
std::string speedupStr(double s);

/**
 * Abort reduction vs a baseline count, as a signed fraction: positive
 * when @p with is an improvement, negative when the mechanism made
 * things worse (guards division by zero).
 */
double reduction(std::uint64_t base, std::uint64_t with);

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &v);

} // namespace bench
} // namespace hintm

#endif // HINTM_BENCH_BENCH_UTIL_HH
