file(REMOVE_RECURSE
  "CMakeFiles/fig7_p8s.dir/fig7_p8s.cc.o"
  "CMakeFiles/fig7_p8s.dir/fig7_p8s.cc.o.d"
  "fig7_p8s"
  "fig7_p8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_p8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
