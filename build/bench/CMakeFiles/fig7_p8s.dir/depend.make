# Empty dependencies file for fig7_p8s.
# This may be replaced when dependencies are built.
