# Empty compiler generated dependencies file for ablation_preabort.
# This may be replaced when dependencies are built.
