
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_preabort.cc" "bench/CMakeFiles/ablation_preabort.dir/ablation_preabort.cc.o" "gcc" "bench/CMakeFiles/ablation_preabort.dir/ablation_preabort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hintm_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hintm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hintm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hintm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/hintm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hintm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hintm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hintm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/tir/CMakeFiles/hintm_tir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hintm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
