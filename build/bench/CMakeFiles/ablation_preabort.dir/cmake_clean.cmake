file(REMOVE_RECURSE
  "CMakeFiles/ablation_preabort.dir/ablation_preabort.cc.o"
  "CMakeFiles/ablation_preabort.dir/ablation_preabort.cc.o.d"
  "ablation_preabort"
  "ablation_preabort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preabort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
