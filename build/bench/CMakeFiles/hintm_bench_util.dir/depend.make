# Empty dependencies file for hintm_bench_util.
# This may be replaced when dependencies are built.
