file(REMOVE_RECURSE
  "CMakeFiles/hintm_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/hintm_bench_util.dir/bench_util.cc.o.d"
  "libhintm_bench_util.a"
  "libhintm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
