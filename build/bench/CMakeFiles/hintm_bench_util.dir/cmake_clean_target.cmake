file(REMOVE_RECURSE
  "libhintm_bench_util.a"
)
