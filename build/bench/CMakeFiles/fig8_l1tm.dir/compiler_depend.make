# Empty compiler generated dependencies file for fig8_l1tm.
# This may be replaced when dependencies are built.
