file(REMOVE_RECURSE
  "CMakeFiles/fig8_l1tm.dir/fig8_l1tm.cc.o"
  "CMakeFiles/fig8_l1tm.dir/fig8_l1tm.cc.o.d"
  "fig8_l1tm"
  "fig8_l1tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_l1tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
