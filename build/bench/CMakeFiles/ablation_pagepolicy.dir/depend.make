# Empty dependencies file for ablation_pagepolicy.
# This may be replaced when dependencies are built.
