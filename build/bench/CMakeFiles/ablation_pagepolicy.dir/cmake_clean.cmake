file(REMOVE_RECURSE
  "CMakeFiles/ablation_pagepolicy.dir/ablation_pagepolicy.cc.o"
  "CMakeFiles/ablation_pagepolicy.dir/ablation_pagepolicy.cc.o.d"
  "ablation_pagepolicy"
  "ablation_pagepolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pagepolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
