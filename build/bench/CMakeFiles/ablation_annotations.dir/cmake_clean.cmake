file(REMOVE_RECURSE
  "CMakeFiles/ablation_annotations.dir/ablation_annotations.cc.o"
  "CMakeFiles/ablation_annotations.dir/ablation_annotations.cc.o.d"
  "ablation_annotations"
  "ablation_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
