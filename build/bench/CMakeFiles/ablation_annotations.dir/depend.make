# Empty dependencies file for ablation_annotations.
# This may be replaced when dependencies are built.
