# Empty compiler generated dependencies file for fig4_p8.
# This may be replaced when dependencies are built.
