file(REMOVE_RECURSE
  "CMakeFiles/fig4_p8.dir/fig4_p8.cc.o"
  "CMakeFiles/fig4_p8.dir/fig4_p8.cc.o.d"
  "fig4_p8"
  "fig4_p8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_p8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
