file(REMOVE_RECURSE
  "CMakeFiles/fig6_cdf.dir/fig6_cdf.cc.o"
  "CMakeFiles/fig6_cdf.dir/fig6_cdf.cc.o.d"
  "fig6_cdf"
  "fig6_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
