# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_htm[1]_include.cmake")
include("/root/repo/build/tests/test_tir[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_escape[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
