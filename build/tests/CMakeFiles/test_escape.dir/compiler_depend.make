# Empty compiler generated dependencies file for test_escape.
# This may be replaced when dependencies are built.
