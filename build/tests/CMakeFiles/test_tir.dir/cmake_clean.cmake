file(REMOVE_RECURSE
  "CMakeFiles/test_tir.dir/test_tir.cc.o"
  "CMakeFiles/test_tir.dir/test_tir.cc.o.d"
  "test_tir"
  "test_tir.pdb"
  "test_tir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
