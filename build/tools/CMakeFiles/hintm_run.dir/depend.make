# Empty dependencies file for hintm_run.
# This may be replaced when dependencies are built.
