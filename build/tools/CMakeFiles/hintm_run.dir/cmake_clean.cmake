file(REMOVE_RECURSE
  "CMakeFiles/hintm_run.dir/hintm_run.cc.o"
  "CMakeFiles/hintm_run.dir/hintm_run.cc.o.d"
  "hintm_run"
  "hintm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
