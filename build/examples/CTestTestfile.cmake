# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_transfers "/root/repo/build/examples/bank_transfers")
set_tests_properties(example_bank_transfers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_labyrinth_routing "/root/repo/build/examples/labyrinth_routing")
set_tests_properties(example_labyrinth_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_order_processing "/root/repo/build/examples/order_processing")
set_tests_properties(example_order_processing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
