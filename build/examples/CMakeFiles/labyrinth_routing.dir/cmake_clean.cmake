file(REMOVE_RECURSE
  "CMakeFiles/labyrinth_routing.dir/labyrinth_routing.cpp.o"
  "CMakeFiles/labyrinth_routing.dir/labyrinth_routing.cpp.o.d"
  "labyrinth_routing"
  "labyrinth_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labyrinth_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
