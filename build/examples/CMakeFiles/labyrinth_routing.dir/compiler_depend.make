# Empty compiler generated dependencies file for labyrinth_routing.
# This may be replaced when dependencies are built.
