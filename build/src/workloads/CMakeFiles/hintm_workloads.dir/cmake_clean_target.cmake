file(REMOVE_RECURSE
  "libhintm_workloads.a"
)
