file(REMOVE_RECURSE
  "CMakeFiles/hintm_workloads.dir/bayes.cc.o"
  "CMakeFiles/hintm_workloads.dir/bayes.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/genome.cc.o"
  "CMakeFiles/hintm_workloads.dir/genome.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/intruder.cc.o"
  "CMakeFiles/hintm_workloads.dir/intruder.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/kmeans.cc.o"
  "CMakeFiles/hintm_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/labyrinth.cc.o"
  "CMakeFiles/hintm_workloads.dir/labyrinth.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/registry.cc.o"
  "CMakeFiles/hintm_workloads.dir/registry.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/ssca2.cc.o"
  "CMakeFiles/hintm_workloads.dir/ssca2.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/tpcc.cc.o"
  "CMakeFiles/hintm_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/vacation.cc.o"
  "CMakeFiles/hintm_workloads.dir/vacation.cc.o.d"
  "CMakeFiles/hintm_workloads.dir/yada.cc.o"
  "CMakeFiles/hintm_workloads.dir/yada.cc.o.d"
  "libhintm_workloads.a"
  "libhintm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
