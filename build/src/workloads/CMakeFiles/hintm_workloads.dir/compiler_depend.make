# Empty compiler generated dependencies file for hintm_workloads.
# This may be replaced when dependencies are built.
