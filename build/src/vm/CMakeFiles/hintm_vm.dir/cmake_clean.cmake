file(REMOVE_RECURSE
  "CMakeFiles/hintm_vm.dir/page_table.cc.o"
  "CMakeFiles/hintm_vm.dir/page_table.cc.o.d"
  "CMakeFiles/hintm_vm.dir/tlb.cc.o"
  "CMakeFiles/hintm_vm.dir/tlb.cc.o.d"
  "CMakeFiles/hintm_vm.dir/vm.cc.o"
  "CMakeFiles/hintm_vm.dir/vm.cc.o.d"
  "libhintm_vm.a"
  "libhintm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
