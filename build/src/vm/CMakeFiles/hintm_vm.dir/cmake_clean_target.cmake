file(REMOVE_RECURSE
  "libhintm_vm.a"
)
