# Empty dependencies file for hintm_vm.
# This may be replaced when dependencies are built.
