# Empty dependencies file for hintm_mem.
# This may be replaced when dependencies are built.
