file(REMOVE_RECURSE
  "libhintm_mem.a"
)
