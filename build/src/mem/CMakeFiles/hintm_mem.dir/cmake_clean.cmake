file(REMOVE_RECURSE
  "CMakeFiles/hintm_mem.dir/cache_array.cc.o"
  "CMakeFiles/hintm_mem.dir/cache_array.cc.o.d"
  "CMakeFiles/hintm_mem.dir/mem_system.cc.o"
  "CMakeFiles/hintm_mem.dir/mem_system.cc.o.d"
  "libhintm_mem.a"
  "libhintm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
