
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_array.cc" "src/mem/CMakeFiles/hintm_mem.dir/cache_array.cc.o" "gcc" "src/mem/CMakeFiles/hintm_mem.dir/cache_array.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/mem/CMakeFiles/hintm_mem.dir/mem_system.cc.o" "gcc" "src/mem/CMakeFiles/hintm_mem.dir/mem_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hintm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
