file(REMOVE_RECURSE
  "CMakeFiles/hintm_sim.dir/machine.cc.o"
  "CMakeFiles/hintm_sim.dir/machine.cc.o.d"
  "CMakeFiles/hintm_sim.dir/profiler.cc.o"
  "CMakeFiles/hintm_sim.dir/profiler.cc.o.d"
  "libhintm_sim.a"
  "libhintm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
