# Empty compiler generated dependencies file for hintm_sim.
# This may be replaced when dependencies are built.
