file(REMOVE_RECURSE
  "libhintm_sim.a"
)
