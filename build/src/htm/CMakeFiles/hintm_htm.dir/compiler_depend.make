# Empty compiler generated dependencies file for hintm_htm.
# This may be replaced when dependencies are built.
