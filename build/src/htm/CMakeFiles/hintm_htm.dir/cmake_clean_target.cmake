file(REMOVE_RECURSE
  "libhintm_htm.a"
)
