file(REMOVE_RECURSE
  "CMakeFiles/hintm_htm.dir/controller.cc.o"
  "CMakeFiles/hintm_htm.dir/controller.cc.o.d"
  "CMakeFiles/hintm_htm.dir/signature.cc.o"
  "CMakeFiles/hintm_htm.dir/signature.cc.o.d"
  "CMakeFiles/hintm_htm.dir/tx_buffer.cc.o"
  "CMakeFiles/hintm_htm.dir/tx_buffer.cc.o.d"
  "libhintm_htm.a"
  "libhintm_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
