
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/controller.cc" "src/htm/CMakeFiles/hintm_htm.dir/controller.cc.o" "gcc" "src/htm/CMakeFiles/hintm_htm.dir/controller.cc.o.d"
  "/root/repo/src/htm/signature.cc" "src/htm/CMakeFiles/hintm_htm.dir/signature.cc.o" "gcc" "src/htm/CMakeFiles/hintm_htm.dir/signature.cc.o.d"
  "/root/repo/src/htm/tx_buffer.cc" "src/htm/CMakeFiles/hintm_htm.dir/tx_buffer.cc.o" "gcc" "src/htm/CMakeFiles/hintm_htm.dir/tx_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hintm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hintm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
