file(REMOVE_RECURSE
  "libhintm_tir.a"
)
