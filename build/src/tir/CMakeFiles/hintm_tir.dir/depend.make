# Empty dependencies file for hintm_tir.
# This may be replaced when dependencies are built.
