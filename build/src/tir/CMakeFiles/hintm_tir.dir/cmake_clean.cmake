file(REMOVE_RECURSE
  "CMakeFiles/hintm_tir.dir/address_space.cc.o"
  "CMakeFiles/hintm_tir.dir/address_space.cc.o.d"
  "CMakeFiles/hintm_tir.dir/allocator.cc.o"
  "CMakeFiles/hintm_tir.dir/allocator.cc.o.d"
  "CMakeFiles/hintm_tir.dir/builder.cc.o"
  "CMakeFiles/hintm_tir.dir/builder.cc.o.d"
  "CMakeFiles/hintm_tir.dir/interp.cc.o"
  "CMakeFiles/hintm_tir.dir/interp.cc.o.d"
  "CMakeFiles/hintm_tir.dir/ir.cc.o"
  "CMakeFiles/hintm_tir.dir/ir.cc.o.d"
  "CMakeFiles/hintm_tir.dir/verifier.cc.o"
  "CMakeFiles/hintm_tir.dir/verifier.cc.o.d"
  "libhintm_tir.a"
  "libhintm_tir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_tir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
