
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tir/address_space.cc" "src/tir/CMakeFiles/hintm_tir.dir/address_space.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/address_space.cc.o.d"
  "/root/repo/src/tir/allocator.cc" "src/tir/CMakeFiles/hintm_tir.dir/allocator.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/allocator.cc.o.d"
  "/root/repo/src/tir/builder.cc" "src/tir/CMakeFiles/hintm_tir.dir/builder.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/builder.cc.o.d"
  "/root/repo/src/tir/interp.cc" "src/tir/CMakeFiles/hintm_tir.dir/interp.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/interp.cc.o.d"
  "/root/repo/src/tir/ir.cc" "src/tir/CMakeFiles/hintm_tir.dir/ir.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/ir.cc.o.d"
  "/root/repo/src/tir/verifier.cc" "src/tir/CMakeFiles/hintm_tir.dir/verifier.cc.o" "gcc" "src/tir/CMakeFiles/hintm_tir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hintm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
