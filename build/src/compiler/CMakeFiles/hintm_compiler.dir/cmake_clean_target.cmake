file(REMOVE_RECURSE
  "libhintm_compiler.a"
)
