file(REMOVE_RECURSE
  "CMakeFiles/hintm_compiler.dir/points_to.cc.o"
  "CMakeFiles/hintm_compiler.dir/points_to.cc.o.d"
  "CMakeFiles/hintm_compiler.dir/safety.cc.o"
  "CMakeFiles/hintm_compiler.dir/safety.cc.o.d"
  "libhintm_compiler.a"
  "libhintm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
