# Empty dependencies file for hintm_compiler.
# This may be replaced when dependencies are built.
