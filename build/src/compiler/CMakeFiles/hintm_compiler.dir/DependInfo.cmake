
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/points_to.cc" "src/compiler/CMakeFiles/hintm_compiler.dir/points_to.cc.o" "gcc" "src/compiler/CMakeFiles/hintm_compiler.dir/points_to.cc.o.d"
  "/root/repo/src/compiler/safety.cc" "src/compiler/CMakeFiles/hintm_compiler.dir/safety.cc.o" "gcc" "src/compiler/CMakeFiles/hintm_compiler.dir/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hintm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tir/CMakeFiles/hintm_tir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
