file(REMOVE_RECURSE
  "libhintm_core.a"
)
