file(REMOVE_RECURSE
  "CMakeFiles/hintm_core.dir/hintm.cc.o"
  "CMakeFiles/hintm_core.dir/hintm.cc.o.d"
  "libhintm_core.a"
  "libhintm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
