# Empty dependencies file for hintm_core.
# This may be replaced when dependencies are built.
