# Empty dependencies file for hintm_common.
# This may be replaced when dependencies are built.
