file(REMOVE_RECURSE
  "CMakeFiles/hintm_common.dir/logging.cc.o"
  "CMakeFiles/hintm_common.dir/logging.cc.o.d"
  "CMakeFiles/hintm_common.dir/stats.cc.o"
  "CMakeFiles/hintm_common.dir/stats.cc.o.d"
  "CMakeFiles/hintm_common.dir/table.cc.o"
  "CMakeFiles/hintm_common.dir/table.cc.o.d"
  "CMakeFiles/hintm_common.dir/trace.cc.o"
  "CMakeFiles/hintm_common.dir/trace.cc.o.d"
  "libhintm_common.a"
  "libhintm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
