file(REMOVE_RECURSE
  "libhintm_common.a"
)
