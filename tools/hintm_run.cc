/**
 * @file
 * hintm_run: general-purpose command-line driver. Runs any workload of
 * the suite under any system configuration and prints a full report —
 * timing, abort breakdown, classification mix, footprint percentiles,
 * page statistics — plus optional gem5-style raw stat dumps.
 *
 * Examples:
 *   hintm_run --workload labyrinth --mech full
 *   hintm_run --workload vacation --htm p8s --scale large --preserve
 *   hintm_run --workload genome --mech dyn --cores 4 --smt 2 --htm l1tm
 *   hintm_run --list
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "core/hintm.hh"
#include "result_store.hh"
#include "sim/journal_io.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: hintm_run [options]\n"
        "  --workload NAME     workload to run (--list to enumerate; "
        "default kmeans)\n"
        "  --scale S           tiny | small | large (default small)\n"
        "  --tiny|--small|--large   shorthand for --scale S\n"
        "  --htm KIND          p8 | p8s | l1tm | infcap (default p8)\n"
        "  --mech M            baseline | static | dyn | full "
        "(default full)\n"
        "  --threads N         override the workload's thread count\n"
        "  --cores N           physical cores (default 8)\n"
        "  --smt N             hardware contexts per core (default 1)\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --buffer N          TX buffer entries (default 64)\n"
        "  --signature N       signature bits for p8s (default 1024)\n"
        "  --retries N         transient-abort retries (default 8)\n"
        "  --preserve          preserve-read-only page policy\n"
        "  --notary            honor programmer page annotations\n"
        "  --preabort          convert capacity overflows to critical "
        "sections\n"
        "  --policy P          conflict loser: attacker | requester\n"
        "  --validate          check safe-store initializing property\n"
        "  --profile           collect Fig.1-style sharing metrics\n"
        "  --cdf               collect TX footprint CDFs\n"
        "  --jobs N            host threads for the runner (default "
        "hardware concurrency)\n"
        "  --json FILE         write a per-run perf record to FILE\n"
        "  --stats             dump raw memory/VM statistics\n"
        "  --lint              run the static race-lint pass after hint\n"
        "                      compilation; abort on any diagnostic\n"
        "  --oracle            shadow-track safe accesses and report\n"
        "                      conflicting remote writes (observation "
        "only)\n"
        "  --journal           record every TX attempt (observation "
        "only)\n"
        "  --metrics           collect capacity-pressure metrics "
        "(observation only)\n"
        "  --journal-capacity N  journal ring size in records "
        "(default 65536)\n"
        "  --perfetto [FILE]   write a Chrome-trace timeline (implies\n"
        "                      --journal; default perfetto_trace.json)\n"
        "  --stats-json [FILE] write a machine-readable stats record\n"
        "                      (default stats.json)\n"
        "  --no-snoop-filter   reference broadcast memory path "
        "(cross-check)\n"
        "  --no-directory      broadcast coherence instead of the owning "
        "directory (cross-check)\n"
        "  --numa-nodes N      two-tier NUMA latency model with N home "
        "nodes (default 1 = flat)\n"
        "  --numa-latency N    extra cycles for a remote-home bus "
        "transaction (default 24)\n"
        "  --no-decode-cache   reference Instr-walking interpreter "
        "(cross-check)\n"
        "  --no-sched-index    reference O(contexts) scheduler scan "
        "(cross-check)\n"
        "  --cache-dir DIR     persistent result-cache location "
        "(default ~/.cache/hintm)\n"
        "  --no-disk-cache     run without the persistent result cache\n"
        "  --cache-clear       wipe the cache directory before running\n"
        "  --no-prefix-fork    cold-start every simulation (no shared "
        "init prefix)\n"
        "  --trace CATS        trace categories (tx,htm,vm,mem,sched|all)\n"
        "  --list              list workloads and exit\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "kmeans";
    workloads::Scale scale = workloads::Scale::Small;
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    unsigned threads_override = 0;
    unsigned host_jobs = 0;
    bool profile = false, cdf = false, stats = false;
    std::string perfettoPath, statsJsonPath;
    std::string cacheDir;
    bool noDiskCache = false, cacheClear = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(1);
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                scale = workloads::Scale::Tiny;
            else if (s == "small")
                scale = workloads::Scale::Small;
            else if (s == "large")
                scale = workloads::Scale::Large;
            else
                usage(1);
        } else if (a == "--tiny") {
            scale = workloads::Scale::Tiny;
        } else if (a == "--small") {
            scale = workloads::Scale::Small;
        } else if (a == "--large") {
            scale = workloads::Scale::Large;
        } else if (a == "--htm") {
            const std::string s = next();
            if (s == "p8")
                opts.htmKind = htm::HtmKind::P8;
            else if (s == "p8s")
                opts.htmKind = htm::HtmKind::P8S;
            else if (s == "l1tm")
                opts.htmKind = htm::HtmKind::L1TM;
            else if (s == "infcap")
                opts.htmKind = htm::HtmKind::InfCap;
            else
                usage(1);
        } else if (a == "--mech") {
            const std::string s = next();
            if (s == "baseline")
                opts.mechanism = core::Mechanism::Baseline;
            else if (s == "static")
                opts.mechanism = core::Mechanism::StaticOnly;
            else if (s == "dyn")
                opts.mechanism = core::Mechanism::DynamicOnly;
            else if (s == "full")
                opts.mechanism = core::Mechanism::Full;
            else
                usage(1);
        } else if (a == "--threads") {
            threads_override = unsigned(parseNum(next()));
        } else if (a == "--cores") {
            opts.numCores = unsigned(parseNum(next()));
        } else if (a == "--smt") {
            opts.smtPerCore = unsigned(parseNum(next()));
        } else if (a == "--seed") {
            opts.seed = parseNum(next());
        } else if (a == "--buffer") {
            opts.bufferEntries = unsigned(parseNum(next()));
        } else if (a == "--signature") {
            opts.signatureBits = unsigned(parseNum(next()));
        } else if (a == "--retries") {
            opts.maxRetries = unsigned(parseNum(next()));
        } else if (a == "--preserve") {
            opts.preserveReadOnly = true;
        } else if (a == "--notary") {
            opts.notaryAnnotations = true;
        } else if (a == "--preabort") {
            opts.preAbortHandler = true;
        } else if (a == "--policy") {
            const std::string s = next();
            if (s == "attacker")
                opts.conflictPolicy = htm::ConflictPolicy::AttackerWins;
            else if (s == "requester")
                opts.conflictPolicy =
                    htm::ConflictPolicy::RequesterLoses;
            else
                usage(1);
        } else if (a == "--validate") {
            opts.validateSafeStores = true;
        } else if (a == "--profile") {
            profile = true;
        } else if (a == "--cdf") {
            cdf = true;
        } else if (a == "--jobs") {
            host_jobs = unsigned(parseNum(next()));
        } else if (a == "--json") {
            bench::setJsonReport(next());
        } else if (a == "--stats") {
            stats = true;
        } else if (a == "--lint") {
            bench::setLintOnPrepare(true);
        } else if (a == "--oracle") {
            opts.hintOracle = true;
        } else if (a == "--journal") {
            opts.journal = true;
        } else if (a == "--metrics") {
            opts.metrics = true;
        } else if (a == "--journal-capacity") {
            opts.journalCapacity = std::size_t(parseNum(next()));
            opts.journal = true;
        } else if (a == "--perfetto") {
            perfettoPath = "perfetto_trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                perfettoPath = argv[++i];
            opts.journal = true; // a timeline needs records
        } else if (a == "--stats-json") {
            statsJsonPath = "stats.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                statsJsonPath = argv[++i];
        } else if (a == "--no-snoop-filter") {
            core::SystemOptions::setSnoopFilterDefault(false);
            opts.snoopFilter = false;
        } else if (a == "--no-directory") {
            core::SystemOptions::setDirectoryDefault(false);
            opts.directory = false;
        } else if (a == "--numa-nodes") {
            opts.numaNodes = unsigned(parseNum(next()));
        } else if (a == "--numa-latency") {
            opts.numaRemoteLatency = parseNum(next());
        } else if (a == "--no-decode-cache") {
            core::SystemOptions::setDecodeCacheDefault(false);
            opts.decodeCache = false;
        } else if (a == "--no-sched-index") {
            core::SystemOptions::setSchedIndexDefault(false);
            opts.schedIndex = false;
        } else if (a == "--cache-dir") {
            cacheDir = next();
        } else if (a == "--no-disk-cache") {
            noDiskCache = true;
        } else if (a == "--cache-clear") {
            cacheClear = true;
        } else if (a == "--no-prefix-fork") {
            bench::setPrefixFork(false);
        } else if (a == "--trace") {
            trace::enableFromSpec(next());
        } else if (a == "--list") {
            for (const auto &n : workloads::allNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(1);
        }
    }
    if (workload.empty())
        usage(1);

    const std::string cache_dir =
        cacheDir.empty() ? bench::ResultStore::defaultDir() : cacheDir;
    if (cacheClear)
        bench::ResultStore::clearDir(cache_dir);
    bench::setDiskResultCache(cache_dir, !noDiskCache);

    opts.profileSharing = profile;
    opts.collectTxSizes = cdf;
    opts.collectRawStats = stats;

    const bench::PreparedWorkload p = bench::prepare(workload, scale);
    const workloads::Workload &wl = p.wl;
    const unsigned threads =
        threads_override ? threads_override : wl.threads;

    std::printf("workload   : %s (%u threads)\n", wl.name.c_str(),
                threads);
    std::printf("config     : %s, %u cores x %u SMT, buffer %u\n",
                opts.label().c_str(), opts.numCores, opts.smtPerCore,
                opts.bufferEntries);
    std::printf("compiler   : %s\n\n", p.compileReport.summary().c_str());

    const std::vector<bench::MatrixJob> jobs = {
        {&p, opts, threads_override}};
    const sim::RunResult r = bench::runMatrix(jobs, host_jobs)[0];

    std::printf("cycles            : %llu\n",
                (unsigned long long)r.cycles);
    std::printf("instructions      : %llu (%.2f IPC aggregate)\n",
                (unsigned long long)r.instructions,
                r.cycles ? double(r.instructions) / double(r.cycles) : 0);
    std::printf("TXs committed     : %llu (%llu hardware, %llu "
                "fallback)\n",
                (unsigned long long)r.committedTxs,
                (unsigned long long)r.htm.commits,
                (unsigned long long)r.fallbackRuns);
    std::printf("aborts            :");
    for (unsigned a = 1; a < htm::numAbortReasons; ++a) {
        std::printf(" %s=%llu",
                    htm::abortReasonName(htm::AbortReason(a)),
                    (unsigned long long)r.htm.aborts[a]);
    }
    std::printf("\n");
    std::printf("tracked at commit : p50=%llu p95=%llu max=%llu "
                "blocks\n",
                (unsigned long long)r.htm.trackedAtCommit.quantile(0.5),
                (unsigned long long)r.htm.trackedAtCommit.quantile(0.95),
                (unsigned long long)r.htm.trackedAtCommit.max());

    const double total = double(r.txAccessesTotal());
    if (total > 0) {
        std::printf(
            "TX access mix     : %.1f%% static-safe, %.1f%% dyn-safe, "
            "%.1f%% annotated, %.1f%% unsafe\n",
            100 * (r.txReadsStaticSafe + r.txWritesStaticSafe) / total,
            100 * r.txReadsDynSafe / total,
            100 * r.txReadsAnnotated / total,
            100 * (r.txReadsUnsafe + r.txWritesUnsafe) / total);
    }
    std::printf("pages             : %llu touched, %llu safe at end\n",
                (unsigned long long)r.totalPages,
                (unsigned long long)r.safePages);
    std::printf("page-mode cycles  : %llu (%.2f%% of cycle-work)\n",
                (unsigned long long)r.pageModeOverheadCycles,
                r.cycles ? 100.0 * double(r.pageModeOverheadCycles) /
                               (double(r.cycles) * threads)
                         : 0);
    if (profile) {
        std::printf(
            "sharing (Fig.1)   : safe pages %.1f%%, safe blocks %.1f%%, "
            "safe tx-reads %.1f%% (pg) / %.1f%% (blk)\n",
            100 * r.pageSharing.safeRegionFraction(),
            100 * r.blockSharing.safeRegionFraction(),
            100 * r.pageSharing.safeTxReadFraction(),
            100 * r.blockSharing.safeTxReadFraction());
    }
    if (cdf) {
        std::printf("footprint CDF     : <=64 blocks: baseline %.1f%%, "
                    "no-static %.1f%%, unsafe-only %.1f%%\n",
                    100 * r.txSizeAll.cdfAt(64),
                    100 * r.txSizeNoStatic.cdfAt(64),
                    100 * r.txSizeUnsafe.cdfAt(64));
    }
    if (opts.hintOracle) {
        std::printf("hint oracle       : %llu safe accesses checked, "
                    "%llu tracking skips, %zu witness(es)\n",
                    (unsigned long long)r.oracleSafeChecked,
                    (unsigned long long)r.oracleSafeSkips,
                    r.oracleWitnesses.size());
        for (const std::string &w : r.oracleWitnesses)
            std::printf("  %s\n", w.c_str());
    }
    if (r.journal) {
        std::printf("%s", sim::journalSummary(r).c_str());
        std::printf("\n-- abort attribution (top 5 sites) --\n%s",
                    sim::renderAttributionTable(*r.journal, 5).c_str());
    }
    if (r.metrics)
        std::printf("%s", sim::metricsSummary(r).c_str());
    if (!perfettoPath.empty() || !statsJsonPath.empty()) {
        const std::vector<sim::JournalRun> runs = {
            {wl.name, opts.label(), threads, &r}};
        if (!perfettoPath.empty() &&
            sim::writePerfettoTrace(perfettoPath, runs))
            std::printf("perfetto trace    : %s\n", perfettoPath.c_str());
        if (!statsJsonPath.empty() &&
            sim::writeStatsJson(statsJsonPath, runs))
            std::printf("stats json        : %s\n",
                        statsJsonPath.c_str());
    }
    if (stats) {
        std::printf("\n-- raw statistics --\n%s", r.rawStats.c_str());
    }
    return opts.hintOracle && !r.oracleWitnesses.empty() ? 1 : 0;
}
