/**
 * @file
 * hintm_profile: transaction-level abort-attribution profiler. Runs a
 * workload with the TX journal enabled and prints where transactions
 * abort — the top TX sites ranked by cycles lost to aborts, with
 * per-reason breakdowns and the hottest conflicting block addresses —
 * plus the interval time series
 * (commit/abort rates, mean footprint, fallback-lock occupancy per
 * fixed-cycle window). Optional Perfetto / stats-JSON export.
 *
 * Examples:
 *   hintm_profile --workload intruder
 *   hintm_profile --workload genome --htm l1tm --mech baseline --top 20
 *   hintm_profile --workload kmeans --tiny --perfetto trace.json
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "core/hintm.hh"
#include "result_store.hh"
#include "sim/journal_io.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: hintm_profile [options]\n"
        "  --workload NAME     workload to profile (default intruder)\n"
        "  --scale S           tiny | small | large (default small)\n"
        "  --tiny|--small|--large   shorthand for --scale S\n"
        "  --htm KIND          p8 | p8s | l1tm | infcap (default p8)\n"
        "  --mech M            baseline | static | dyn | full "
        "(default baseline)\n"
        "  --threads N         override the workload's thread count\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --retries N         transient-abort retries (default 8)\n"
        "  --preabort          convert capacity overflows to critical "
        "sections\n"
        "  --preserve          preserve-read-only page policy\n"
        "  --top N             sites in the attribution table, ranked "
        "by cycles lost (default 10)\n"
        "  --metrics           also collect capacity-pressure metrics "
        "(observation only)\n"
        "  --window N          interval-sampler window in cycles "
        "(default: ~50 windows)\n"
        "  --capacity N        journal ring size in records "
        "(default 65536)\n"
        "  --no-intervals      skip the interval time-series table\n"
        "  --perfetto [FILE]   write a Chrome-trace timeline "
        "(default perfetto_trace.json)\n"
        "  --stats-json [FILE] write the machine-readable stats record "
        "(default stats.json)\n"
        "  --cache-dir DIR     persistent result-cache location "
        "(default ~/.cache/hintm)\n"
        "  --no-disk-cache     run without the persistent result cache\n"
        "  --cache-clear       wipe the cache directory before running\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "intruder";
    workloads::Scale scale = workloads::Scale::Small;
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Baseline;
    opts.journal = true;
    unsigned threads_override = 0;
    std::size_t top_n = 10;
    Cycle window = 0;
    bool intervals = true;
    std::string perfettoPath, statsJsonPath;
    std::string cacheDir;
    bool noDiskCache = false, cacheClear = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(1);
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                scale = workloads::Scale::Tiny;
            else if (s == "small")
                scale = workloads::Scale::Small;
            else if (s == "large")
                scale = workloads::Scale::Large;
            else
                usage(1);
        } else if (a == "--tiny") {
            scale = workloads::Scale::Tiny;
        } else if (a == "--small") {
            scale = workloads::Scale::Small;
        } else if (a == "--large") {
            scale = workloads::Scale::Large;
        } else if (a == "--htm") {
            const std::string s = next();
            if (s == "p8")
                opts.htmKind = htm::HtmKind::P8;
            else if (s == "p8s")
                opts.htmKind = htm::HtmKind::P8S;
            else if (s == "l1tm")
                opts.htmKind = htm::HtmKind::L1TM;
            else if (s == "infcap")
                opts.htmKind = htm::HtmKind::InfCap;
            else
                usage(1);
        } else if (a == "--mech") {
            const std::string s = next();
            if (s == "baseline")
                opts.mechanism = core::Mechanism::Baseline;
            else if (s == "static")
                opts.mechanism = core::Mechanism::StaticOnly;
            else if (s == "dyn")
                opts.mechanism = core::Mechanism::DynamicOnly;
            else if (s == "full")
                opts.mechanism = core::Mechanism::Full;
            else
                usage(1);
        } else if (a == "--threads") {
            threads_override = unsigned(parseNum(next()));
        } else if (a == "--seed") {
            opts.seed = parseNum(next());
        } else if (a == "--retries") {
            opts.maxRetries = unsigned(parseNum(next()));
        } else if (a == "--preabort") {
            opts.preAbortHandler = true;
        } else if (a == "--preserve") {
            opts.preserveReadOnly = true;
        } else if (a == "--top") {
            top_n = std::size_t(parseNum(next()));
        } else if (a == "--metrics") {
            opts.metrics = true;
        } else if (a == "--window") {
            window = Cycle(parseNum(next()));
        } else if (a == "--capacity") {
            opts.journalCapacity = std::size_t(parseNum(next()));
        } else if (a == "--no-intervals") {
            intervals = false;
        } else if (a == "--perfetto") {
            perfettoPath = "perfetto_trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                perfettoPath = argv[++i];
        } else if (a == "--stats-json") {
            statsJsonPath = "stats.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                statsJsonPath = argv[++i];
        } else if (a == "--cache-dir") {
            cacheDir = next();
        } else if (a == "--no-disk-cache") {
            noDiskCache = true;
        } else if (a == "--cache-clear") {
            cacheClear = true;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(1);
        }
    }

    // Journal-carrying runs are never persisted, but the flags still
    // configure the process-wide store (and --cache-clear works).
    const std::string cache_dir =
        cacheDir.empty() ? bench::ResultStore::defaultDir() : cacheDir;
    if (cacheClear)
        bench::ResultStore::clearDir(cache_dir);
    bench::setDiskResultCache(cache_dir, !noDiskCache);

    const bench::PreparedWorkload p = bench::prepare(workload, scale);
    const unsigned threads =
        threads_override ? threads_override : p.wl.threads;

    std::printf("profiling %s (%u threads) under %s\n\n",
                p.wl.name.c_str(), threads, opts.label().c_str());

    const std::vector<bench::MatrixJob> jobs = {
        {&p, opts, threads_override}};
    const sim::RunResult r = bench::runMatrix(jobs)[0];
    HINTM_ASSERT(r.journal != nullptr, "profiler run lost its journal");

    std::printf("cycles: %llu   committed TXs: %llu   aborts: %llu\n",
                (unsigned long long)r.cycles,
                (unsigned long long)r.committedTxs,
                (unsigned long long)r.htm.totalAborts());
    std::printf("%s", sim::journalSummary(r).c_str());
    if (r.metrics)
        std::printf("%s", sim::metricsSummary(r).c_str());

    std::printf("\n-- abort attribution (top %zu sites) --\n%s", top_n,
                sim::renderAttributionTable(*r.journal, top_n).c_str());
    if (intervals) {
        std::printf("\n-- interval time series --\n%s",
                    sim::renderIntervalTable(*r.journal, r.cycles, window)
                        .c_str());
    }

    if (!perfettoPath.empty() || !statsJsonPath.empty()) {
        const std::vector<sim::JournalRun> runs = {
            {p.wl.name, opts.label(), threads, &r}};
        if (!perfettoPath.empty() &&
            sim::writePerfettoTrace(perfettoPath, runs))
            std::printf("\nperfetto trace: %s\n", perfettoPath.c_str());
        if (!statsJsonPath.empty() &&
            sim::writeStatsJson(statsJsonPath, runs, window))
            std::printf("stats json: %s\n", statsJsonPath.c_str());
    }
    return 0;
}
