/**
 * @file
 * hintm_report: capacity-pressure and hint-effectiveness report. Runs a
 * workload twice — baseline (no hints) and the full mechanism — with
 * the TX journal and capacity-pressure metrics enabled, fuses the two
 * observability layers, and writes a deterministic self-contained
 * report (text or single-file HTML): per-site capacity pressure ranked
 * by capacity aborts, hint-reclaimed tracking lines/bytes, hint-saved
 * commits, the occupancy breakdown of the overflowing cache set at
 * capacity aborts, footprint growth curves, and fallback-lock
 * occupancy. The output contains no timestamps or host details, so two
 * runs of the same binary produce byte-identical reports.
 *
 * Examples:
 *   hintm_report --workload intruder
 *   hintm_report --workload genome --tiny --html -o report.html
 *   hintm_report --workload kmeans --htm l1tm --top 5
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/hintm.hh"
#include "sim/journal_io.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: hintm_report [options]\n"
        "  --workload NAME     workload to analyze (default intruder)\n"
        "  --scale S           tiny | small | large (default small)\n"
        "  --tiny|--small|--large   shorthand for --scale S\n"
        "  --htm KIND          p8 | p8s | l1tm | infcap (default p8)\n"
        "  --threads N         override the workload's thread count\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --retries N         transient-abort retries (default 8)\n"
        "  --buffer N          TX buffer entries (default 64; small "
        "values provoke capacity pressure)\n"
        "  --preabort          convert capacity overflows to critical "
        "sections\n"
        "  --top N             sites in the pressure ranking "
        "(default 10)\n"
        "  --html              write a self-contained HTML report\n"
        "  -o FILE             output file (default: stdout)\n"
        "  --jobs N            host threads for the runner\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

/** One report table, renderable as text or HTML. */
struct Section
{
    std::string title;
    std::string note;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '<')
            out += "&lt;";
        else if (c == '>')
            out += "&gt;";
        else if (c == '&')
            out += "&amp;";
        else
            out += c;
    }
    return out;
}

void
renderText(std::ostream &os, const std::string &title,
           const std::vector<std::string> &preamble,
           const std::vector<Section> &sections)
{
    os << title << "\n";
    for (const std::string &p : preamble)
        os << p << "\n";
    for (const Section &sec : sections) {
        os << "\n-- " << sec.title << " --\n";
        if (!sec.note.empty())
            os << sec.note << "\n";
        TextTable t;
        t.header(sec.headers);
        for (const auto &row : sec.rows)
            t.row(row);
        os << t;
    }
}

void
renderHtml(std::ostream &os, const std::string &title,
           const std::vector<std::string> &preamble,
           const std::vector<Section> &sections)
{
    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>" << htmlEscape(title) << "</title>\n"
       << "<style>\n"
       << "body{font-family:monospace;margin:2em;max-width:70em}\n"
       << "table{border-collapse:collapse;margin:0.5em 0}\n"
       << "th,td{border:1px solid #999;padding:0.2em 0.6em;"
       << "text-align:right}\n"
       << "th{background:#eee}td:first-child,th:first-child"
       << "{text-align:left}\n"
       << "h2{margin-top:1.5em}p.note{color:#555}\n"
       << "</style></head><body>\n"
       << "<h1>" << htmlEscape(title) << "</h1>\n";
    for (const std::string &p : preamble)
        os << "<p>" << htmlEscape(p) << "</p>\n";
    for (const Section &sec : sections) {
        os << "<h2>" << htmlEscape(sec.title) << "</h2>\n";
        if (!sec.note.empty())
            os << "<p class=\"note\">" << htmlEscape(sec.note)
               << "</p>\n";
        os << "<table><tr>";
        for (const std::string &h : sec.headers)
            os << "<th>" << htmlEscape(h) << "</th>";
        os << "</tr>\n";
        for (const auto &row : sec.rows) {
            os << "<tr>";
            for (const std::string &c : row)
                os << "<td>" << htmlEscape(c) << "</td>";
            os << "</tr>\n";
        }
        os << "</table>\n";
    }
    os << "</body></html>\n";
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
fixed1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "intruder";
    workloads::Scale scale = workloads::Scale::Small;
    core::SystemOptions base;
    unsigned threads_override = 0;
    unsigned host_jobs = 0;
    std::size_t top_n = 10;
    bool html = false;
    std::string outPath;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(1);
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                scale = workloads::Scale::Tiny;
            else if (s == "small")
                scale = workloads::Scale::Small;
            else if (s == "large")
                scale = workloads::Scale::Large;
            else
                usage(1);
        } else if (a == "--tiny") {
            scale = workloads::Scale::Tiny;
        } else if (a == "--small") {
            scale = workloads::Scale::Small;
        } else if (a == "--large") {
            scale = workloads::Scale::Large;
        } else if (a == "--htm") {
            const std::string s = next();
            if (s == "p8")
                base.htmKind = htm::HtmKind::P8;
            else if (s == "p8s")
                base.htmKind = htm::HtmKind::P8S;
            else if (s == "l1tm")
                base.htmKind = htm::HtmKind::L1TM;
            else if (s == "infcap")
                base.htmKind = htm::HtmKind::InfCap;
            else
                usage(1);
        } else if (a == "--threads") {
            threads_override = unsigned(parseNum(next()));
        } else if (a == "--seed") {
            base.seed = parseNum(next());
        } else if (a == "--retries") {
            base.maxRetries = unsigned(parseNum(next()));
        } else if (a == "--buffer") {
            base.bufferEntries = unsigned(parseNum(next()));
        } else if (a == "--preabort") {
            base.preAbortHandler = true;
        } else if (a == "--top") {
            top_n = std::size_t(parseNum(next()));
        } else if (a == "--html") {
            html = true;
        } else if (a == "-o" || a == "--output") {
            outPath = next();
        } else if (a == "--jobs") {
            host_jobs = unsigned(parseNum(next()));
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(1);
        }
    }

    base.journal = true;
    base.metrics = true;

    core::SystemOptions baseline = base;
    baseline.mechanism = core::Mechanism::Baseline;
    core::SystemOptions full = base;
    full.mechanism = core::Mechanism::Full;

    const bench::PreparedWorkload p = bench::prepare(workload, scale);
    const unsigned threads =
        threads_override ? threads_override : p.wl.threads;

    const std::vector<bench::MatrixJob> jobs = {
        {&p, baseline, threads_override}, {&p, full, threads_override}};
    const std::vector<sim::RunResult> results =
        bench::runMatrix(jobs, host_jobs);
    const sim::RunResult &rb = results[0];
    const sim::RunResult &rf = results[1];
    HINTM_ASSERT(rb.journal && rb.metrics && rf.journal && rf.metrics,
                 "report runs lost their observability payloads");

    const MetricsRegistry &mb = *rb.metrics;
    const MetricsRegistry &mf = *rf.metrics;
    const TxJournal &jb = *rb.journal;
    const TxJournal &jf = *rf.journal;

    // Journal site stats keyed by rendered site name, for fusing with
    // the metrics pressure ranking (both layers render sites the same
    // way, so the name is a stable join key).
    std::map<std::string, const TxJournal::SiteStats *> fullSites;
    for (const auto &kv : jf.sites())
        fullSites[jf.siteName(kv.second.fn, kv.second.block,
                              kv.second.instr)] = &kv.second;

    const std::string title =
        "HinTM capacity-pressure & hint-effectiveness report";
    std::vector<std::string> preamble;
    {
        std::ostringstream os;
        os << "workload: " << p.wl.name << " (" << threads
           << " threads), htm " << htm::htmKindName(base.htmKind)
           << ", seed " << base.seed;
        preamble.push_back(os.str());
        preamble.push_back(
            "configs: baseline (no hints) vs full (static + dynamic "
            "safety hints); both runs carry the TX journal and "
            "capacity-pressure metrics (observation only).");
    }

    std::vector<Section> sections;

    {
        Section s;
        s.title = "run comparison";
        s.headers = {"metric", "baseline", "full"};
        const double speedup =
            rf.cycles ? double(rb.cycles) / double(rf.cycles) : 0.0;
        s.rows.push_back({"cycles", u64(rb.cycles),
                          u64(rf.cycles) + " (" + fixed1(speedup) +
                              "x)"});
        s.rows.push_back({"hw commits", u64(rb.htm.commits),
                          u64(rf.htm.commits)});
        s.rows.push_back(
            {"capacity aborts",
             u64(rb.htm.aborts[unsigned(htm::AbortReason::Capacity)]),
             u64(rf.htm.aborts[unsigned(htm::AbortReason::Capacity)])});
        s.rows.push_back({"total aborts", u64(rb.htm.totalAborts()),
                          u64(rf.htm.totalAborts())});
        s.rows.push_back({"fallback runs", u64(rb.fallbackRuns),
                          u64(rf.fallbackRuns)});
        s.rows.push_back({"cycles lost to aborts",
                          u64(jb.totals().cyclesLostToAborts),
                          u64(jf.totals().cyclesLostToAborts)});
        s.rows.push_back({"safe-skipped accesses",
                          u64(mb.skipStaticAccesses +
                              mb.skipDynAccesses +
                              mb.skipAnnotAccesses),
                          u64(mf.skipStaticAccesses +
                              mf.skipDynAccesses +
                              mf.skipAnnotAccesses)});
        s.rows.push_back({"hint-saved commits", u64(mb.hintSavedCommits),
                          u64(mf.hintSavedCommits)});
        s.rows.push_back({"fallback-lock acquisitions",
                          u64(mb.fallbackAcquisitions),
                          u64(mf.fallbackAcquisitions)});
        sections.push_back(std::move(s));
    }

    {
        Section s;
        s.title = "overflow-set occupancy at capacity aborts";
        s.note = "lines resident in the overflowing L1 set when each "
                 "capacity abort fired: transactionally tracked, "
                 "safe-skipped by hints, or non-transactional.";
        s.headers = {"config", "scans", "tracked", "safe-skipped",
                     "other", "mean lines/scan"};
        auto row = [&](const char *name, const MetricsRegistry &m) {
            const std::uint64_t lines =
                m.ovTracked + m.ovSafeSkipped + m.ovOther;
            s.rows.push_back(
                {name, u64(m.ovScans), u64(m.ovTracked),
                 u64(m.ovSafeSkipped), u64(m.ovOther),
                 fixed1(m.ovScans ? double(lines) / m.ovScans : 0.0)});
        };
        row("baseline", mb);
        row("full", mf);
        sections.push_back(std::move(s));
    }

    {
        Section s;
        s.title = "capacity pressure by TX site (full config)";
        s.note = "ranked by capacity aborts, then peak tracked "
                 "footprint; hint-reclaimed lines = tracking slots "
                 "freed by safe-access skips.";
        s.headers = {"site", "cap aborts", "mean trk@cap",
                     "peak trk", "hint-reclaimed lines",
                     "reclaimed bytes", "hint-saved commits",
                     "cycles lost"};
        const auto sites = mf.sitesByPressure();
        const std::size_t n = std::min(top_n, sites.size());
        for (std::size_t i = 0; i < n; ++i) {
            const MetricsRegistry::SiteMetrics &sm = *sites[i];
            const std::string name =
                mf.siteName(sm.fn, sm.block, sm.instr);
            const auto it = fullSites.find(name);
            const std::uint64_t lost =
                it != fullSites.end() ? it->second->cyclesLostToAborts
                                      : 0;
            s.rows.push_back(
                {name, u64(sm.capacityAborts),
                 fixed1(sm.capacityAborts
                            ? double(sm.trackedAtCapacitySum) /
                                  sm.capacityAborts
                            : 0.0),
                 u64(sm.peakTrackedMax), u64(sm.skippedBlocksSum),
                 u64(sm.skippedBytes), u64(sm.hintSavedCommits),
                 u64(lost)});
        }
        if (sites.size() > n) {
            std::ostringstream os;
            os << "(" << sites.size() - n << " more sites)";
            s.rows.push_back({os.str(), "", "", "", "", "", "", ""});
        }
        sections.push_back(std::move(s));
    }

    {
        Section s;
        s.title = "footprint growth (full config)";
        s.note = "cycles from TX begin until the tracked read/write "
                 "set first reached each milestone, over all hardware "
                 "TX attempts.";
        s.headers = {"blocks", "reads: TXs", "mean cycles",
                     "writes: TXs", "mean cycles"};
        for (unsigned k = 0; k < MetricsRegistry::numMilestones; ++k) {
            const Log2Hist &hr = mf.growthRead[k];
            const Log2Hist &hw = mf.growthWrite[k];
            if (hr.empty() && hw.empty())
                continue;
            s.rows.push_back({u64(MetricsRegistry::milestoneBlocks(k)),
                              u64(hr.count), fixed1(hr.mean()),
                              u64(hw.count), fixed1(hw.mean())});
        }
        sections.push_back(std::move(s));
    }

    {
        Section s;
        s.title = "tracked footprint distribution (full config)";
        s.headers = {"statistic", "at commit", "at capacity abort"};
        s.rows.push_back({"TXs", u64(mf.trackedAtCommit.count),
                          u64(mf.trackedAtCapacityAbort.count)});
        s.rows.push_back({"mean blocks",
                          fixed1(mf.trackedAtCommit.mean()),
                          fixed1(mf.trackedAtCapacityAbort.mean())});
        s.rows.push_back({"max blocks", u64(mf.trackedAtCommit.max),
                          u64(mf.trackedAtCapacityAbort.max)});
        sections.push_back(std::move(s));
    }

    {
        Section s;
        s.title = "fallback-lock occupancy";
        s.headers = {"config", "acquisitions", "held cycles",
                     "run cycles", "held fraction"};
        auto row = [&](const char *name, const MetricsRegistry &m,
                       const sim::RunResult &r) {
            std::uint64_t held = 0;
            for (Cycle c : m.fallbackSeries.samples())
                held += c;
            s.rows.push_back(
                {name, u64(m.fallbackAcquisitions), u64(held),
                 u64(r.cycles),
                 fixed1(r.cycles ? 100.0 * double(held) / r.cycles
                                 : 0.0) +
                     "%"});
        };
        row("baseline", mb, rb);
        row("full", mf, rf);
        sections.push_back(std::move(s));
    }

    if (mf.numaNodes() > 1) {
        Section s;
        s.title = "NUMA traffic matrix (full config)";
        s.note = "bus transactions from each requester node to each "
                 "home node.";
        s.headers.push_back("from \\ to");
        for (unsigned to = 0; to < mf.numaNodes(); ++to)
            s.headers.push_back("node " + std::to_string(to));
        for (unsigned from = 0; from < mf.numaNodes(); ++from) {
            std::vector<std::string> row = {"node " +
                                            std::to_string(from)};
            for (unsigned to = 0; to < mf.numaNodes(); ++to)
                row.push_back(u64(
                    mf.numaMatrix()[std::size_t(from) * mf.numaNodes() +
                                    to]));
            s.rows.push_back(std::move(row));
        }
        sections.push_back(std::move(s));
    }

    std::ostringstream report;
    if (html)
        renderHtml(report, title, preamble, sections);
    else
        renderText(report, title, preamble, sections);

    if (outPath.empty()) {
        std::fputs(report.str().c_str(), stdout);
    } else {
        std::ofstream os(outPath);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 1;
        }
        os << report.str();
        std::printf("report: %s\n", outPath.c_str());
    }
    return 0;
}
