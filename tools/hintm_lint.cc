/**
 * @file
 * hintm_lint: soundness checker for HinTM safety hints. For every
 * registered workload it (1) runs the annotation pipeline, (2) runs the
 * static race-lint pass over the annotated TxIR, and (3) replays the
 * workload with the dynamic HintOracle armed, reporting any safe-hinted
 * access whose target is written by another thread. Exits non-zero on
 * any diagnostic or runtime witness, so CI can gate on it.
 *
 * --mutate flips deliberately-unsound hint bits post-pass and reports
 * which side of the checker catches each corruption (demonstration mode:
 * diagnostics are expected and do not affect the exit code).
 *
 * Examples:
 *   hintm_lint --tiny
 *   hintm_lint --workload kmeans --scale small
 *   hintm_lint --tiny --mutate
 */

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "compiler/race_lint.hh"
#include "core/hintm.hh"
#include "result_store.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: hintm_lint [options]\n"
        "  --workload NAME     lint a single workload (default: all)\n"
        "  --scale S           tiny | small | large (default tiny)\n"
        "  --tiny              shorthand for --scale tiny\n"
        "  --static-only       skip the dynamic-oracle simulation\n"
        "  --mutate            corrupt hints on purpose and show which\n"
        "                      side catches it (does not affect exit "
        "code)\n"
        "  --seed N            seed for --mutate bit selection\n"
        "  --jobs N            host threads for the oracle runs\n"
        "  --cache-dir DIR     persistent result-cache location "
        "(default ~/.cache/hintm)\n"
        "  --no-disk-cache     run without the persistent result cache\n"
        "  --cache-clear       wipe the cache directory before running\n"
        "  --list              list workloads and exit\n");
    std::exit(code);
}

/** Candidate hint bit to corrupt: a currently-unsafe access. */
struct FlipSite
{
    int fn, block, instr;
};

std::vector<FlipSite>
unsafeAccesses(const tir::Module &mod)
{
    std::vector<FlipSite> sites;
    for (int f = 0; f < int(mod.functions.size()); ++f) {
        const auto &fn = mod.functions[std::size_t(f)];
        for (int b = 0; b < int(fn.blocks.size()); ++b) {
            const auto &instrs = fn.blocks[std::size_t(b)].instrs;
            for (int i = 0; i < int(instrs.size()); ++i) {
                const tir::Instr &ins = instrs[std::size_t(i)];
                if (tir::isMemAccess(ins.op) && !ins.safe)
                    sites.push_back({f, b, i});
            }
        }
    }
    return sites;
}

struct LintOutcome
{
    unsigned staticDiags = 0;
    unsigned oracleWitnesses = 0;
};

LintOutcome
lintWorkload(const std::string &name, workloads::Scale scale,
             bool run_oracle, unsigned host_jobs, bool verbose)
{
    LintOutcome out;
    bench::PreparedWorkload p;
    p.wl = workloads::byName(name, scale);
    p.compileReport = core::compileHints(p.wl.module);
    p.scale = scale;

    const compiler::LintReport lint = compiler::lintRaces(p.wl.module);
    out.staticDiags = unsigned(lint.diagnostics.size());
    std::printf("%-10s static : %s\n", name.c_str(),
                lint.summary().c_str());
    if (!lint.clean())
        std::printf("%s", lint.render().c_str());

    if (run_oracle) {
        core::SystemOptions opts;
        opts.mechanism = core::Mechanism::Full;
        opts.hintOracle = true;
        const std::vector<bench::MatrixJob> jobs = {{&p, opts, 0}};
        const sim::RunResult r = bench::runMatrix(jobs, host_jobs)[0];
        out.oracleWitnesses = unsigned(r.oracleWitnesses.size());
        std::printf("%-10s oracle : %zu witness(es), %llu safe accesses "
                    "checked, %llu conflict-tracking skips\n",
                    name.c_str(), r.oracleWitnesses.size(),
                    (unsigned long long)r.oracleSafeChecked,
                    (unsigned long long)r.oracleSafeSkips);
        for (const auto &w : r.oracleWitnesses)
            std::printf("%s\n", w.c_str());
    }
    (void)verbose;
    return out;
}

void
mutateWorkload(const std::string &name, workloads::Scale scale,
               std::uint64_t seed, unsigned host_jobs, unsigned &caught,
               unsigned &total)
{
    bench::PreparedWorkload p;
    p.wl = workloads::byName(name, scale);
    p.compileReport = core::compileHints(p.wl.module);
    p.scale = scale;

    const std::vector<FlipSite> sites = unsafeAccesses(p.wl.module);
    if (sites.empty())
        return;
    std::mt19937_64 rng(seed);
    const FlipSite s =
        sites[std::size_t(rng() % std::uint64_t(sites.size()))];
    tir::Instr &ins = p.wl.module.functions[std::size_t(s.fn)]
                          .blocks[std::size_t(s.block)]
                          .instrs[std::size_t(s.instr)];
    ins.safe = true;
    ++total;

    const compiler::LintReport lint = compiler::lintRaces(p.wl.module);
    bool hit_static = false;
    for (const auto &d : lint.diagnostics) {
        if (d.fn == s.fn && d.block == s.block && d.instr == s.instr)
            hit_static = true;
    }

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    opts.hintOracle = true;
    const std::vector<bench::MatrixJob> jobs = {{&p, opts, 0}};
    const sim::RunResult r = bench::runMatrix(jobs, host_jobs)[0];
    const bool hit_oracle = !r.oracleWitnesses.empty();

    const char *verdict = hit_static && hit_oracle ? "both"
                          : hit_static             ? "static"
                          : hit_oracle             ? "oracle"
                                                   : "MISSED";
    if (hit_static || hit_oracle)
        ++caught;
    std::printf("%-10s mutate : flipped %s:%d:%d -> caught by %s\n",
                name.c_str(),
                p.wl.module.functions[std::size_t(s.fn)].name.c_str(),
                s.block, s.instr, verdict);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    workloads::Scale scale = workloads::Scale::Tiny;
    bool static_only = false;
    bool mutate = false;
    std::uint64_t seed = 1;
    unsigned host_jobs = 0;
    std::string cacheDir;
    bool noDiskCache = false, cacheClear = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(1);
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--scale") {
            const std::string s = next();
            if (s == "tiny")
                scale = workloads::Scale::Tiny;
            else if (s == "small")
                scale = workloads::Scale::Small;
            else if (s == "large")
                scale = workloads::Scale::Large;
            else
                usage(1);
        } else if (a == "--tiny") {
            scale = workloads::Scale::Tiny;
        } else if (a == "--static-only") {
            static_only = true;
        } else if (a == "--mutate") {
            mutate = true;
        } else if (a == "--seed") {
            seed = std::strtoull(next(), nullptr, 0);
        } else if (a == "--jobs") {
            host_jobs = unsigned(std::strtoull(next(), nullptr, 0));
        } else if (a == "--cache-dir") {
            cacheDir = next();
        } else if (a == "--no-disk-cache") {
            noDiskCache = true;
        } else if (a == "--cache-clear") {
            cacheClear = true;
        } else if (a == "--no-prefix-fork") {
            bench::setPrefixFork(false);
        } else if (a == "--list") {
            for (const auto &n : workloads::allNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(1);
        }
    }

    const std::string cache_dir =
        cacheDir.empty() ? bench::ResultStore::defaultDir() : cacheDir;
    if (cacheClear)
        bench::ResultStore::clearDir(cache_dir);
    bench::setDiskResultCache(cache_dir, !noDiskCache);

    std::vector<std::string> names;
    if (!workload.empty())
        names.push_back(workload);
    else
        names = workloads::allNames();

    if (mutate) {
        unsigned caught = 0, total = 0;
        for (const auto &n : names)
            mutateWorkload(n, scale, seed, host_jobs, caught, total);
        std::printf("\nmutation: %u/%u corrupted hints caught\n", caught,
                    total);
        return 0;
    }

    unsigned diags = 0, witnesses = 0;
    for (const auto &n : names) {
        const LintOutcome o =
            lintWorkload(n, scale, !static_only, host_jobs, true);
        diags += o.staticDiags;
        witnesses += o.oracleWitnesses;
    }
    std::printf("\nlint: %u static diagnostic(s), %u oracle witness(es) "
                "across %zu workload(s)\n",
                diags, witnesses, names.size());
    return diags + witnesses == 0 ? 0 : 1;
}
