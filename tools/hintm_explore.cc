/**
 * @file
 * hintm_explore: bounded schedule-space explorer driver. Runs one of
 * the adversarial micro-workloads (convoy, hintrace) across scheduler
 * interleavings up to a preemption bound, checks every trace against
 * the invariant oracle, and reports violations with a replayable
 * schedule file.
 *
 * Examples:
 *   hintm_explore --workload convoy --preemption-bound 2
 *   hintm_explore --workload hintrace --bug --preemption-bound 2 \
 *       --schedule-out fail.sched
 *   hintm_explore --replay fail.sched
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/hintm.hh"
#include "sim/explorer.hh"
#include "sim/schedule.hh"
#include "sim/snapshot.hh"
#include "sim/trace_check.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: hintm_explore [options]\n"
        "  --workload NAME     convoy | hintrace (default convoy)\n"
        "  --scale S           tiny | small | large (default tiny)\n"
        "  --tiny|--small|--large   shorthand for --scale S\n"
        "  --threads N         override the workload's thread count\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --retries N         transient-abort retries (default 2 — low,\n"
        "                      so the fallback lock sees traffic)\n"
        "  --bug               seeded-bug variant: a wrong safe hint\n"
        "                      (hintrace) or lazy lock subscription "
        "(convoy)\n"
        "  --preemption-bound N  max preemptions per schedule (default 1)\n"
        "  --max-schedules N   hard cap on schedules run (default 4096)\n"
        "  --livelock-threshold N  consecutive aborted attempts that\n"
        "                      count as a convoy warning (default 8)\n"
        "  --no-dpor           disable the independence filter (naive\n"
        "                      enumeration; for pruning comparisons)\n"
        "  --no-final-state    skip the final-memory determinism check\n"
        "                      (forced off for hintrace: its final state\n"
        "                      is legitimately schedule-dependent)\n"
        "  --jobs N            host threads over top-level branches "
        "(default 1)\n"
        "  --schedule-out FILE write the first fatal violation's "
        "schedule\n"
        "  --replay FILE       run one recorded schedule and re-check it\n"
        "  --json [FILE]       machine-readable report (default stdout)\n"
        "  --list              list explorable workloads and exit\n"
        "\n"
        "exit status: 0 = no fatal violation, 1 = fatal violation found,\n"
        "2 = usage or I/O error\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

const char *
scaleName(workloads::Scale s)
{
    switch (s) {
      case workloads::Scale::Tiny: return "tiny";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Large: return "large";
    }
    return "?";
}

/** Everything needed to rebuild a run from a schedule file. */
struct Setup
{
    std::string workload = "convoy";
    workloads::Scale scale = workloads::Scale::Tiny;
    unsigned threads = 0; // 0 = the workload's default
    std::uint64_t seed = 1;
    unsigned retries = 2;
    bool bug = false;
};

std::string
encodeConfig(const Setup &s)
{
    std::ostringstream os;
    os << "scale=" << scaleName(s.scale) << " threads=" << s.threads
       << " retries=" << s.retries << " bug=" << (s.bug ? 1 : 0);
    return os.str();
}

bool
decodeConfig(const std::string &str, Setup &s)
{
    std::istringstream is(str);
    std::string kv;
    while (is >> kv) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string k = kv.substr(0, eq);
        const std::string v = kv.substr(eq + 1);
        if (k == "scale") {
            if (v == "tiny")
                s.scale = workloads::Scale::Tiny;
            else if (v == "small")
                s.scale = workloads::Scale::Small;
            else if (v == "large")
                s.scale = workloads::Scale::Large;
            else
                return false;
        } else if (k == "threads") {
            s.threads = unsigned(parseNum(v.c_str()));
        } else if (k == "retries") {
            s.retries = unsigned(parseNum(v.c_str()));
        } else if (k == "bug") {
            s.bug = v != "0";
        } else {
            return false;
        }
    }
    return true;
}

workloads::Workload
buildWorkload(const Setup &s)
{
    if (s.workload == "convoy")
        return workloads::buildConvoy(s.scale, s.threads);
    if (s.workload == "hintrace")
        return workloads::buildHintRace(s.scale, s.threads, s.bug);
    std::fprintf(stderr, "unknown workload '%s' (want convoy or "
                         "hintrace)\n",
                 s.workload.c_str());
    std::exit(2);
}

sim::MachineConfig
makeConfig(const Setup &s)
{
    core::SystemOptions so;
    so.mechanism = s.workload == "hintrace"
                       ? core::Mechanism::StaticOnly
                       : core::Mechanism::Baseline;
    so.hintOracle = s.workload == "hintrace";
    so.journal = true;
    so.seed = s.seed;
    so.maxRetries = s.retries;
    sim::MachineConfig cfg = core::makeMachineConfig(so);
    if (s.workload == "convoy" && s.bug)
        cfg.unsafeLazySubscription = true;
    return cfg;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    for (const char c : in) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void
writeJson(std::ostream &os, const Setup &s,
          const sim::ExploreOptions &opt, const sim::ExploreReport &rep)
{
    os << "{\n"
       << "  \"workload\": \"" << s.workload << "\",\n"
       << "  \"config\": \"" << encodeConfig(s) << "\",\n"
       << "  \"seed\": " << s.seed << ",\n"
       << "  \"preemption_bound\": " << opt.preemptionBound << ",\n"
       << "  \"dpor\": " << (opt.dpor ? "true" : "false") << ",\n"
       << "  \"schedules_run\": " << rep.schedulesRun << ",\n"
       << "  \"branch_points\": " << rep.branchPoints << ",\n"
       << "  \"branches_pruned\": " << rep.branchesPruned << ",\n"
       << "  \"branches_capped\": " << rep.branchesCapped << ",\n"
       << "  \"snapshot_forks\": " << rep.snapshotForks << ",\n"
       << "  \"scratch_replays\": " << rep.scratchReplays << ",\n"
       << "  \"issues\": [";
    for (std::size_t i = 0; i < rep.issues.size(); ++i) {
        const sim::ExploreIssue &is = rep.issues[i];
        os << (i ? "," : "") << "\n    {\"kind\": \""
           << is.violation.kind << "\", \"fatal\": "
           << (is.violation.fatal ? "true" : "false") << ", \"plan\": [";
        for (std::size_t p = 0; p < is.plan.size(); ++p)
            os << (p ? "," : "") << is.plan[p];
        os << "], \"detail\": \"" << jsonEscape(is.violation.detail)
           << "\"}";
    }
    os << (rep.issues.empty() ? "" : "\n  ") << "]\n}\n";
}

int
replay(const std::string &path)
{
    sim::ScheduleFile sf;
    if (!sim::readScheduleFile(path, sf)) {
        std::fprintf(stderr, "cannot read schedule file %s\n",
                     path.c_str());
        return 2;
    }
    Setup s;
    s.workload = sf.workload;
    s.seed = sf.seed;
    if (sf.workload == "hintrace-bug") {
        s.workload = "hintrace";
        s.bug = true;
    }
    if (!decodeConfig(sf.config, s)) {
        std::fprintf(stderr, "bad config line in %s: '%s'\n",
                     path.c_str(), sf.config.c_str());
        return 2;
    }
    const workloads::Workload wl = buildWorkload(s);
    sim::MachineConfig cfg = makeConfig(s);
    sim::PlanScheduleController ctrl;
    ctrl.reset(sf.preemptAt);
    cfg.scheduleController = &ctrl;

    std::printf("replaying %s: %s, %s, %zu preemption(s)\n",
                path.c_str(), wl.name.c_str(), sf.config.c_str(),
                sf.preemptAt.size());
    sim::SimRun run(cfg, wl.module, s.threads ? s.threads : wl.threads);
    const sim::RunResult r = run.finish();
    std::printf("cycles %llu, TXs %llu (%llu fallback), decisions %u\n",
                (unsigned long long)r.cycles,
                (unsigned long long)r.committedTxs,
                (unsigned long long)r.fallbackRuns, ctrl.nextIndex());

    sim::TraceCheckOptions chk;
    const std::vector<sim::TraceViolation> v =
        sim::checkTrace(cfg, r, chk);
    for (const sim::TraceViolation &tv : v)
        std::printf("%s: [%s] %s\n", tv.fatal ? "VIOLATION" : "warning",
                    tv.kind.c_str(), tv.detail.c_str());
    if (v.empty())
        std::printf("all invariants hold\n");
    return sim::anyFatal(v) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Setup s;
    sim::ExploreOptions opt;
    opt.livelockThreshold = 8;
    std::string scheduleOut, replayPath, jsonPath;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--workload") {
            s.workload = next();
        } else if (a == "--scale") {
            const std::string v = next();
            if (v == "tiny")
                s.scale = workloads::Scale::Tiny;
            else if (v == "small")
                s.scale = workloads::Scale::Small;
            else if (v == "large")
                s.scale = workloads::Scale::Large;
            else
                usage(2);
        } else if (a == "--tiny") {
            s.scale = workloads::Scale::Tiny;
        } else if (a == "--small") {
            s.scale = workloads::Scale::Small;
        } else if (a == "--large") {
            s.scale = workloads::Scale::Large;
        } else if (a == "--threads") {
            s.threads = unsigned(parseNum(next()));
        } else if (a == "--seed") {
            s.seed = parseNum(next());
        } else if (a == "--retries") {
            s.retries = unsigned(parseNum(next()));
        } else if (a == "--bug") {
            s.bug = true;
        } else if (a == "--preemption-bound") {
            opt.preemptionBound = unsigned(parseNum(next()));
        } else if (a == "--max-schedules") {
            opt.maxSchedules = parseNum(next());
        } else if (a == "--livelock-threshold") {
            opt.livelockThreshold = unsigned(parseNum(next()));
        } else if (a == "--no-dpor") {
            opt.dpor = false;
        } else if (a == "--no-final-state") {
            opt.compareFinalState = false;
        } else if (a == "--jobs") {
            opt.jobs = unsigned(parseNum(next()));
        } else if (a == "--schedule-out") {
            scheduleOut = next();
        } else if (a == "--replay") {
            replayPath = next();
        } else if (a == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                jsonPath = argv[++i];
        } else if (a == "--list") {
            std::printf("convoy\nhintrace\n");
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(2);
        }
    }

    if (!replayPath.empty())
        return replay(replayPath);

    // A guarded-read scaffold's final state legitimately depends on the
    // schedule; comparing it would drown real violations in noise.
    if (s.workload == "hintrace")
        opt.compareFinalState = false;

    const workloads::Workload wl = buildWorkload(s);
    const sim::MachineConfig cfg = makeConfig(s);
    const unsigned threads = s.threads ? s.threads : wl.threads;

    std::printf("exploring %s (%u threads, %s): bound %u, %s\n",
                wl.name.c_str(), threads, encodeConfig(s).c_str(),
                opt.preemptionBound,
                opt.dpor ? "DPOR pruning on" : "naive enumeration");
    const sim::ExploreReport rep =
        sim::exploreSchedules(cfg, wl.module, threads, opt);

    std::printf("schedules run     : %llu (%llu forked, %llu replayed "
                "from scratch)\n",
                (unsigned long long)rep.schedulesRun,
                (unsigned long long)rep.snapshotForks,
                (unsigned long long)rep.scratchReplays);
    std::printf("branch points     : %llu (%llu pruned as independent, "
                "%llu capped)\n",
                (unsigned long long)rep.branchPoints,
                (unsigned long long)rep.branchesPruned,
                (unsigned long long)rep.branchesCapped);
    for (const sim::ExploreIssue &is : rep.issues) {
        std::ostringstream plan;
        for (std::size_t p = 0; p < is.plan.size(); ++p)
            plan << (p ? " " : "") << is.plan[p];
        std::printf("%s: [%s] plan [%s] (%u decisions): %s\n",
                    is.violation.fatal ? "VIOLATION" : "warning",
                    is.violation.kind.c_str(), plan.str().c_str(),
                    is.decisions, is.violation.detail.c_str());
    }
    if (rep.issues.empty())
        std::printf("all invariants hold on every explored schedule\n");

    if (!scheduleOut.empty()) {
        const sim::ExploreIssue *first = nullptr;
        for (const sim::ExploreIssue &is : rep.issues) {
            if (is.violation.fatal) {
                first = &is;
                break;
            }
        }
        if (first) {
            sim::ScheduleFile sf;
            sf.workload = wl.name;
            sf.config = encodeConfig(s);
            sf.seed = s.seed;
            sf.decisions = first->decisions;
            sf.preemptAt = first->plan;
            if (!sim::writeScheduleFile(scheduleOut, sf)) {
                std::fprintf(stderr, "cannot write %s\n",
                             scheduleOut.c_str());
                return 2;
            }
            std::printf("failing schedule  : %s\n", scheduleOut.c_str());
        }
    }

    if (json) {
        if (jsonPath.empty()) {
            writeJson(std::cout, s, opt, rep);
        } else {
            std::ofstream os(jsonPath);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             jsonPath.c_str());
                return 2;
            }
            writeJson(os, s, opt, rep);
            std::printf("json report       : %s\n", jsonPath.c_str());
        }
    }
    return rep.anyFatal() ? 1 : 0;
}
