/**
 * @file
 * Unit tests for the common infrastructure: address helpers, RNG
 * determinism, statistics (counters, distributions, CDF/quantiles) and
 * the text-table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include <set>

#include "common/flat_set.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace hintm;

TEST(AddrSet, InsertContainsAndDuplicates)
{
    AddrSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(42));
    EXPECT_TRUE(s.insert(42));
    EXPECT_FALSE(s.insert(42)); // duplicate
    EXPECT_TRUE(s.contains(42));
    EXPECT_FALSE(s.contains(43));
    EXPECT_EQ(s.size(), 1u);
}

TEST(AddrSet, GrowsPastInitialCapacityWithoutLosingKeys)
{
    AddrSet s(16);
    const std::size_t cap0 = s.capacity();
    // Colliding-ish keys: sequential block numbers, then sparse ones.
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_TRUE(s.insert(a * 64));
    EXPECT_EQ(s.size(), 1000u);
    EXPECT_GT(s.capacity(), cap0);
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_TRUE(s.contains(a * 64));
    EXPECT_FALSE(s.contains(1000 * 64));
}

TEST(AddrSet, ClearKeepsCapacity)
{
    AddrSet s;
    for (Addr a = 1; a <= 500; ++a)
        s.insert(a);
    const std::size_t cap = s.capacity();
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.capacity(), cap); // no realloc churn across TXs
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.insert(1));
}

TEST(AddrSet, ForEachVisitsEveryKeyOnce)
{
    AddrSet s;
    std::set<Addr> expect;
    for (Addr a = 0; a < 100; ++a) {
        s.insert(a * 4096);
        expect.insert(a * 4096);
    }
    std::set<Addr> seen;
    s.forEach([&](Addr a) { EXPECT_TRUE(seen.insert(a).second); });
    EXPECT_EQ(seen, expect);
}

TEST(AddrSet, ZeroIsAValidKey)
{
    AddrSet s;
    EXPECT_FALSE(s.contains(0));
    EXPECT_TRUE(s.insert(0));
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(s.insert(0));
}

TEST(Types, BlockAndPageMath)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(blockNumber(128), 2u);
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageNumber(8191), 1u);
    EXPECT_EQ(pageOffset(4100), 4u);
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double d = r.uniform();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(123);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d(1, 64);
    for (std::uint64_t v : {1, 2, 3, 4, 5})
        d.sample(v);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.sum(), 15u);
    EXPECT_EQ(d.min(), 1u);
    EXPECT_EQ(d.max(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Stats, DistributionCdf)
{
    stats::Distribution d(1, 128);
    for (std::uint64_t v = 0; v < 100; ++v)
        d.sample(v);
    EXPECT_NEAR(d.cdfAt(49), 0.5, 0.01);
    EXPECT_DOUBLE_EQ(d.cdfAt(99), 1.0);
    EXPECT_NEAR(double(d.quantile(0.5)), 50.0, 2.0);
    EXPECT_EQ(d.quantile(1.0), 99u);
}

TEST(Stats, DistributionOverflowBucket)
{
    stats::Distribution d(1, 4);
    d.sample(100);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.max(), 100u);
    EXPECT_DOUBLE_EQ(d.cdfAt(3), 0.0);
}

TEST(Stats, DistributionBucketWidth)
{
    stats::Distribution d(10, 10);
    d.sample(5);
    d.sample(15);
    d.sample(95);
    EXPECT_NEAR(d.cdfAt(9), 1.0 / 3, 1e-9);
    EXPECT_NEAR(d.cdfAt(19), 2.0 / 3, 1e-9);
}

TEST(Stats, GroupDump)
{
    stats::StatGroup g("top");
    ++g.counter("hits");
    g.counter("misses") += 3;
    stats::StatGroup child("sub");
    ++child.counter("x");
    g.addChild(&child);

    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("top.hits 1"), std::string::npos);
    EXPECT_NE(s.find("top.misses 3"), std::string::npos);
    EXPECT_NE(s.find("top.sub.x 1"), std::string::npos);

    g.reset();
    EXPECT_EQ(g.counter("hits").value(), 0u);
    EXPECT_EQ(child.counter("x").value(), 0u);
}

TEST(Table, PctRendersSignedFractions)
{
    EXPECT_EQ(TextTable::pct(0.42), "42.0%");
    // A negative reduction (mechanism made things worse) must show its
    // sign instead of being clamped or mangled.
    EXPECT_EQ(TextTable::pct(-0.5), "-50.0%");
    EXPECT_EQ(TextTable::pct(-1.0, 0), "-100%");
}

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"a", "bb"});
    t.row({"xxx", "y"});
    std::ostringstream os;
    os << t;
    const std::string s = os.str();
    EXPECT_NE(s.find("xxx"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.5, 1), "50.0%");
}
