/**
 * @file
 * Unit tests for the memory hierarchy: cache geometry, tag array and LRU
 * replacement (including transactional pinning), MESI state transitions
 * across the snoop bus, latency accounting, and listener notification
 * rules (bus-wide vs SMT-sibling).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache_array.hh"
#include "mem/mem_system.hh"

using namespace hintm;
using namespace hintm::mem;

namespace
{

/** Records every event it sees. */
struct RecordingListener : SnoopListener
{
    struct Remote
    {
        Addr block;
        AccessType type;
        ContextId from;
    };
    std::vector<Remote> remote;
    std::vector<Addr> evictions;

    void
    onRemoteAccess(Addr block, AccessType type, ContextId from) override
    {
        remote.push_back({block, type, from});
    }

    void
    onEviction(Addr block, bool) override
    {
        evictions.push_back(block);
    }
};

MemConfig
smallConfig()
{
    MemConfig c;
    c.l1SizeBytes = 1024; // 2 sets x 8 ways
    c.l1Assoc = 8;
    c.l2SizeBytes = 16 * 1024;
    return c;
}

} // namespace

TEST(Geometry, IndexTagRoundTrip)
{
    CacheGeometry g(32 * 1024, 8);
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.numLines(), 512u);
    for (Addr a : {Addr(0), Addr(0x12340), Addr(0xFFFFC0)}) {
        const Addr block = blockAlign(a);
        EXPECT_EQ(g.blockAddrOf(g.tagOf(block), g.indexOf(block)), block);
    }
}

TEST(CacheArray, HitMissAndLru)
{
    CacheArray arr(CacheGeometry(256, 2)); // 2 sets x 2 ways
    EXPECT_EQ(arr.lookup(0), nullptr);
    arr.insert(0, CoherState::Shared);
    EXPECT_NE(arr.lookup(0), nullptr);

    // Fill set 0 (same index: stride = 128).
    arr.insert(128, CoherState::Shared);
    // Touch 0 so 128 becomes LRU; next insert evicts 128.
    arr.lookup(0);
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u);
    EXPECT_FALSE(ev.dirty);
    EXPECT_NE(arr.probe(0), nullptr);
    EXPECT_EQ(arr.probe(128), nullptr);
}

TEST(CacheArray, DirtyEviction)
{
    CacheArray arr(CacheGeometry(128, 1)); // direct mapped, 2 sets
    arr.insert(0, CoherState::Modified);
    const Eviction ev = arr.insert(128, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_TRUE(ev.dirty);
}

TEST(CacheArray, InvalidatedLineIsReusedFirst)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    arr.invalidate(0);
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_FALSE(ev.happened); // reused the invalid way
    EXPECT_NE(arr.probe(128), nullptr);
}

TEST(CacheArray, PinnedLinesEvictedLast)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);   // will be pinned
    arr.insert(128, CoherState::Shared); // unpinned
    arr.lookup(0); // make the pinned line MRU-irrelevant: pin wins anyway
    arr.lookup(128);
    CacheArray::PinPredicate pin = [](Addr a) { return a == 0; };
    Eviction ev = arr.insert(256, CoherState::Shared, &pin);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u); // despite 128 being more recent

    // Now both resident lines (0 and 256) — pin both: eviction must fall
    // back to a pinned victim.
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    ev = arr.insert(384, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
}

TEST(CacheArray, PinnedFallbackPicksLruAmongPinned)
{
    CacheArray arr(CacheGeometry(256, 2)); // 2 sets x 2 ways
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    arr.lookup(0); // 128 is now LRU
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    const Eviction ev = arr.insert(256, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u); // LRU even within the pinned set
    EXPECT_NE(arr.probe(0), nullptr);
    EXPECT_NE(arr.probe(256), nullptr);
}

TEST(CacheArray, PinnedFallbackReportsDirtyVictim)
{
    CacheArray arr(CacheGeometry(128, 1)); // direct mapped
    arr.insert(0, CoherState::Modified);
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    const Eviction ev = arr.insert(128, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 0u);
    EXPECT_TRUE(ev.dirty); // writeback still owed for a pinned victim
}

TEST(CacheArray, ReinsertExistingBlockDoesNotEvict)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    // Re-inserting a resident block upgrades in place: no victim even
    // though the set is full.
    const Eviction ev = arr.insert(0, CoherState::Modified);
    EXPECT_FALSE(ev.happened);
    EXPECT_EQ(arr.countValid(), 2u);
    EXPECT_EQ(arr.probe(0)->state, CoherState::Modified);
}

TEST(CacheArray, ProbeDoesNotPerturbLru)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared); // 0 is LRU
    arr.probe(0);                        // must NOT refresh 0
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 0u);
}

TEST(CacheArray, LruVictimAcrossManyTouches)
{
    CacheArray arr(CacheGeometry(512, 4)); // 2 sets x 4 ways
    // Fill set 0 (stride 128 at 64B blocks x 2 sets).
    for (Addr a : {Addr(0), Addr(128), Addr(256), Addr(384)})
        arr.insert(a, CoherState::Shared);
    // Touch in an order that leaves 256 least-recent.
    arr.lookup(0);
    arr.lookup(384);
    arr.lookup(128);
    arr.lookup(0);
    const Eviction ev = arr.insert(512, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 256u);
}

TEST(CacheArray, CountValidAndSweep)
{
    CacheArray arr(CacheGeometry(512, 4));
    arr.insert(0, CoherState::Exclusive);
    arr.insert(64, CoherState::Modified);
    EXPECT_EQ(arr.countValid(), 2u);
    unsigned seen = 0;
    arr.forEachValid([&](Addr, CacheLine &) { ++seen; });
    EXPECT_EQ(seen, 2u);
}

TEST(MemSystem, LatencyTiers)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);

    // Cold: L1 miss + L2 miss -> memory.
    auto r = ms.access(c0, 0x1000, AccessType::Read);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u + 12u + 100u);

    // Warm: L1 hit.
    r = ms.access(c0, 0x1000, AccessType::Read);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u);
}

TEST(MemSystem, MesiReadSharing)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Exclusive);

    ms.access(c1, 0x40, AccessType::Read);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Shared);
}

TEST(MemSystem, MesiWriteInvalidates)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Write);
    EXPECT_EQ(ms.probeL1(c0, 0x40), nullptr); // invalidated
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Modified);
}

TEST(MemSystem, SilentUpgradeFromExclusive)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read); // E
    const auto r = ms.access(c0, 0x40, AccessType::Write);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u); // silent E->M
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Modified);
}

TEST(MemSystem, UpgradeFromSharedCostsBus)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Read); // both Shared
    const auto r = ms.access(c0, 0x40, AccessType::Write);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u + smallConfig().upgradeLatency);
    EXPECT_EQ(ms.probeL1(c1, 0x40), nullptr);
}

TEST(MemSystem, BusNotifiesAllButRequester)
{
    MemorySystem ms(smallConfig(), 3);
    RecordingListener l0, l1, l2;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    const ContextId c2 = ms.addContext(2);
    ms.setListener(c0, &l0);
    ms.setListener(c1, &l1);
    ms.setListener(c2, &l2);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_TRUE(l0.remote.empty());
    ASSERT_EQ(l1.remote.size(), 1u);
    EXPECT_EQ(l1.remote[0].block, 0x80u);
    EXPECT_EQ(l1.remote[0].type, AccessType::Write);
    EXPECT_EQ(l1.remote[0].from, c0);
    EXPECT_EQ(l2.remote.size(), 1u);
}

TEST(MemSystem, SiblingSeesEvenL1Hits)
{
    MemorySystem ms(smallConfig(), 1);
    RecordingListener l0, l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(0); // SMT sibling, same L1
    ms.setListener(c0, &l0);
    ms.setListener(c1, &l1);

    ms.access(c0, 0x40, AccessType::Read); // miss: sibling + bus
    ms.access(c0, 0x40, AccessType::Read); // hit: sibling only
    EXPECT_EQ(l1.remote.size(), 2u);
    EXPECT_TRUE(l0.remote.empty());
}

TEST(MemSystem, EvictionNotifiesSharers)
{
    MemConfig cfg = smallConfig(); // 2 sets x 8 ways
    MemorySystem ms(cfg, 1);
    RecordingListener l0;
    const ContextId c0 = ms.addContext(0);
    ms.setListener(c0, &l0);

    // Fill one set (stride 128 = 2 sets * 64B) past associativity.
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    ASSERT_EQ(l0.evictions.size(), 1u);
    EXPECT_EQ(l0.evictions[0], 0u); // LRU victim was the first block
}

TEST(MemSystem, DirtyPeerSuppliesAndL2Catches)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Write); // M in c0
    ms.access(c1, 0x40, AccessType::Read);  // c0 downgrades, wb to L2
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
    EXPECT_GE(ms.statGroup().counter("writebacks").value(), 1u);
}

// ---- directory: sharer/owner-state maintenance ---------------------

TEST(Directory, FillSetsMaskAndDecidesExclusiveVsShared)
{
    MemorySystem ms(smallConfig(), 2);
    ASSERT_TRUE(ms.directoryActive());
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b01u); // only L1 0
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Exclusive);
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Owned);
    EXPECT_EQ(ms.ownerOf(0x40), 0);

    ms.access(c1, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b11u); // both L1s
    // The directory found the peer: the fill must be Shared, and the
    // owner downgrade must be recorded.
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Shared);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Shared);
    EXPECT_EQ(ms.ownerOf(0x40), Directory::noOwner);
}

TEST(Directory, EvictionClearsMask)
{
    MemorySystem ms(smallConfig(), 1); // L1: 2 sets x 8 ways
    const ContextId c0 = ms.addContext(0);

    for (Addr i = 0; i <= 8; ++i) // overflow set 0; evicts block 0
        ms.access(c0, i * 128, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0), 0u);
    EXPECT_EQ(ms.dirStateOf(0), DirState::Uncached);
    EXPECT_EQ(ms.sharerMaskOf(8 * 128), 0b1u);
}

TEST(Directory, UpgradeAndReadExclInvalidatePeerBits)
{
    MemorySystem ms(smallConfig(), 3);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    const ContextId c2 = ms.addContext(2);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Read);
    ms.access(c2, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b111u);
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Shared);

    // Upgrade (write hit on Shared) invalidates both peers' copies and
    // their directory bits, and records the requester as owner.
    ms.access(c0, 0x40, AccessType::Write);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b001u);
    EXPECT_EQ(ms.ownerOf(0x40), 0);
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Owned);
    EXPECT_EQ(ms.probeL1(c1, 0x40), nullptr);
    EXPECT_EQ(ms.probeL1(c2, 0x40), nullptr);

    // ReadExcl (write miss) steals the block: ownership hands off.
    ms.access(c1, 0x40, AccessType::Write);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b010u);
    EXPECT_EQ(ms.ownerOf(0x40), 1);
    EXPECT_EQ(ms.probeL1(c0, 0x40), nullptr);
}

TEST(Directory, OwnerHandoffOnReadDowngradesThenStealBack)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Write); // M at L1 0
    EXPECT_EQ(ms.ownerOf(0x40), 0);
    ms.access(c1, 0x40, AccessType::Read); // downgrade: shared, no owner
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Shared);
    EXPECT_EQ(ms.ownerOf(0x40), Directory::noOwner);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b11u);
    ms.access(c1, 0x40, AccessType::Write); // upgrade: L1 1 owns
    EXPECT_EQ(ms.ownerOf(0x40), 1);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b10u);
}

TEST(Directory, PinnedLineEvictionStillClearsMask)
{
    MemConfig cfg = smallConfig();
    MemorySystem ms(cfg, 1);
    const ContextId c0 = ms.addContext(0);
    // Pin everything: insertions must still evict (pinned fallback) and
    // the directory must track the forced victim.
    ms.setPinChecker(0, [](Addr) { return true; });
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    std::uint64_t tracked = 0;
    for (Addr i = 0; i <= 8; ++i)
        tracked += ms.sharerMaskOf(i * 128) != 0 ? 1 : 0;
    EXPECT_EQ(tracked, 8u); // 9 fills, one eviction, 8 resident
}

TEST(Directory, StaleSharerBitHealsOnMissedProbe)
{
    // Force a stale directory bit by hand, then confirm a snooped
    // access heals it instead of misbehaving.
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    ms.addContext(1);
    Directory *dir = ms.directory();
    ASSERT_NE(dir, nullptr);
    dir->recordFill(0x40, /*l1=*/1, /*exclusive=*/false); // stale bit
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b10u);

    // c0's miss probes L1 1 (per the stale mask), finds nothing, and
    // heals the bit; with no real peer copy the fill is Exclusive,
    // exactly as the broadcast path would decide.
    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b01u);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Exclusive);
    EXPECT_EQ(ms.ownerOf(0x40), 0);
}

TEST(Directory, DisabledConfigFallsBackToBroadcast)
{
    MemConfig cfg = smallConfig();
    cfg.directory = false;
    MemorySystem ms(cfg, 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    EXPECT_FALSE(ms.directoryActive());
    EXPECT_EQ(ms.directory(), nullptr);

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0u); // directory not maintained
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Uncached);
    ms.access(c1, 0x40, AccessType::Read);
    // Broadcast snoop still finds the peer copy.
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
}

TEST(Directory, TrackerMaskRegistersAndClears)
{
    Directory dir;
    dir.txTrack(0x40, 3);
    dir.txTrack(0x40, 5);
    dir.txTrack(0x80, 3);
    EXPECT_EQ(dir.txTrackers(0x40), (1u << 3) | (1u << 5));
    EXPECT_EQ(dir.txTrackers(0x80), 1u << 3);
    dir.txUntrack(0x40, 3);
    EXPECT_EQ(dir.txTrackers(0x40), 1u << 5);
    dir.txUntrack(0x40, 5);
    EXPECT_EQ(dir.txTrackers(0x40), 0u);
    // Untracking an absent block is a no-op, not a crash.
    dir.txUntrack(0xF00, 1);
}

TEST(Directory, SigActiveMaskToggles)
{
    Directory dir;
    EXPECT_EQ(dir.sigActiveMask(), 0u);
    dir.setSigActive(2, true);
    dir.setSigActive(7, true);
    EXPECT_EQ(dir.sigActiveMask(), (1u << 2) | (1u << 7));
    dir.setSigActive(2, false);
    EXPECT_EQ(dir.sigActiveMask(), 1u << 7);
}

TEST(Directory, GrowRehashPreservesAllMasks)
{
    Directory dir(/*initial_slots=*/64);
    const std::size_t cap0 = dir.capacity();
    for (Addr i = 0; i < 256; ++i) {
        dir.recordFill(i * 64, unsigned(i % 8), /*exclusive=*/i % 2);
        dir.txTrack(i * 64, unsigned(i % 16));
    }
    EXPECT_GT(dir.capacity(), cap0); // grew at least once
    for (Addr i = 0; i < 256; ++i) {
        EXPECT_EQ(dir.sharers(i * 64), std::uint64_t(1) << (i % 8));
        EXPECT_EQ(dir.txTrackers(i * 64), std::uint64_t(1) << (i % 16));
        EXPECT_EQ(dir.owner(i * 64),
                  i % 2 ? std::int16_t(i % 8) : Directory::noOwner);
    }
    EXPECT_EQ(dir.trackedBlocks(), 256u);
}

TEST(Directory, WideMasksCoverSixtyFourL1s)
{
    MemorySystem ms(smallConfig(), 64);
    ASSERT_TRUE(ms.directoryActive());
    std::vector<ContextId> ids;
    for (unsigned i = 0; i < 64; ++i)
        ids.push_back(ms.addContext(i));
    for (unsigned i = 0; i < 64; ++i)
        ms.access(ids[i], 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), ~std::uint64_t(0));
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Shared);
    // A write from the highest L1 invalidates the other 63 copies.
    ms.access(ids[63], 0x40, AccessType::Write);
    EXPECT_EQ(ms.sharerMaskOf(0x40), std::uint64_t(1) << 63);
    EXPECT_EQ(ms.ownerOf(0x40), 63);
}

TEST(Directory, SaveLoadRoundTripsSharerOwnerAndTrackerState)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Write); // owned by L1 0
    ms.access(c1, 0x80, AccessType::Read);
    ms.access(c0, 0x80, AccessType::Read); // shared
    Directory *dir = ms.directory();
    ASSERT_NE(dir, nullptr);
    dir->txTrack(0x40, unsigned(c0));
    dir->txTrack(0x80, unsigned(c1));
    dir->setSigActive(unsigned(c1), true);

    const MemorySystem::State snap = ms.saveState();

    // Mutate everything the snapshot should shield.
    ms.access(c1, 0x40, AccessType::Write); // steal ownership
    dir->txUntrack(0x40, unsigned(c0));
    dir->setSigActive(unsigned(c1), false);
    dir->txTrack(0xC0, unsigned(c0));
    ASSERT_EQ(ms.ownerOf(0x40), 1);

    ms.loadState(snap);
    EXPECT_TRUE(ms.directoryActive());
    EXPECT_EQ(ms.ownerOf(0x40), 0);
    EXPECT_EQ(ms.dirStateOf(0x40), DirState::Owned);
    EXPECT_EQ(ms.sharerMaskOf(0x80), 0b11u);
    EXPECT_EQ(ms.dirStateOf(0x80), DirState::Shared);
    Directory *restored = ms.directory();
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->txTrackers(0x40), 1u << unsigned(c0));
    EXPECT_EQ(restored->txTrackers(0x80), 1u << unsigned(c1));
    EXPECT_EQ(restored->txTrackers(0xC0), 0u);
    EXPECT_EQ(restored->sigActiveMask(), 1u << unsigned(c1));
}

// ---- NUMA latency tiers --------------------------------------------

TEST(Numa, FlatConfigChargesNoPenalty)
{
    MemConfig cfg = smallConfig(); // numaNodes = 1
    MemorySystem ms(cfg, 2);
    const ContextId c0 = ms.addContext(0);
    const auto r = ms.access(c0, 0x1000, AccessType::Read);
    EXPECT_EQ(r.latency, 3u + 12u + 100u);
    EXPECT_EQ(ms.statGroup().counter("numa_remote").value(), 0u);
}

TEST(Numa, RemoteHomeMissPaysExtra)
{
    MemConfig cfg = smallConfig();
    cfg.numaNodes = 2;
    cfg.numaRemoteLatency = 24;
    MemorySystem ms(cfg, 4); // L1s 0,1 -> node 0; 2,3 -> node 1
    const ContextId c0 = ms.addContext(0);
    const ContextId c2 = ms.addContext(2);
    EXPECT_EQ(ms.nodeOfL1(0), 0u);
    EXPECT_EQ(ms.nodeOfL1(3), 1u);

    // Block 0 homes on node 0: local for c0, remote for c2.
    EXPECT_EQ(ms.homeNodeOf(0), 0u);
    auto r = ms.access(c0, 0, AccessType::Read);
    EXPECT_EQ(r.latency, 3u + 12u + 100u);
    r = ms.access(c2, 64, AccessType::Read); // block 1 homes on node 1
    EXPECT_EQ(ms.homeNodeOf(64), 1u);
    EXPECT_EQ(r.latency, 3u + 12u + 100u); // local to c2's node
    r = ms.access(c2, 128, AccessType::Read); // block 2 -> node 0: remote
    EXPECT_EQ(r.latency, 3u + 12u + 100u + 24u);
    EXPECT_EQ(ms.statGroup().counter("numa_remote").value(), 1u);
}

TEST(Numa, UpgradePaysRemotePenaltyAndL1HitsDoNot)
{
    MemConfig cfg = smallConfig();
    cfg.numaNodes = 2;
    cfg.numaRemoteLatency = 24;
    MemorySystem ms(cfg, 2); // L1 0 -> node 0, L1 1 -> node 1
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 128, AccessType::Read); // block 2 homes on node 0
    ms.access(c1, 128, AccessType::Read); // both Shared
    // L1 hits never touch the bus: no penalty regardless of home.
    const auto hit = ms.access(c1, 128, AccessType::Read);
    EXPECT_EQ(hit.latency, 3u);
    // c1's upgrade is a bus transaction homed on the remote node 0.
    const auto up = ms.access(c1, 128, AccessType::Write);
    EXPECT_EQ(up.latency, 3u + smallConfig().upgradeLatency + 24u);
}

TEST(Numa, PenaltyIsIdenticalWithAndWithoutDirectory)
{
    const auto run = [](bool directory_on) {
        MemConfig cfg = smallConfig();
        cfg.directory = directory_on;
        cfg.numaNodes = 2;
        MemorySystem ms(cfg, 4);
        std::vector<ContextId> ids;
        for (unsigned i = 0; i < 4; ++i)
            ids.push_back(ms.addContext(i));
        Cycle total = 0;
        for (unsigned step = 0; step < 300; ++step) {
            const Addr a = Addr(step * 7919 % 37) * 128;
            const AccessType t = (step % 4 == 0) ? AccessType::Write
                                                 : AccessType::Read;
            total += ms.access(ids[step % 4], a, t).latency;
        }
        return total;
    };
    EXPECT_EQ(run(true), run(false));
}

// ---- interest-gated listener delivery ------------------------------

TEST(InterestGating, PlainListenerStartsInterested)
{
    MemorySystem ms(smallConfig(), 2);
    RecordingListener l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    EXPECT_EQ(ms.listenerInterestMask(), 0u);
    ms.setListener(c1, &l1);
    EXPECT_EQ(ms.listenerInterestMask(), 0b10u);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_EQ(l1.remote.size(), 1u);
}

TEST(InterestGating, UninterestedListenerIsSkipped)
{
    MemorySystem ms(smallConfig(), 2);
    RecordingListener l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    ms.setListener(c1, &l1);
    ms.setListenerInterest(c1, false);
    EXPECT_EQ(ms.listenerInterestMask(), 0u);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_TRUE(l1.remote.empty());

    // Re-raising interest resumes delivery.
    ms.setListenerInterest(c1, true);
    ms.access(c0, 0xC0, AccessType::Write);
    ASSERT_EQ(l1.remote.size(), 1u);
    EXPECT_EQ(l1.remote[0].block, 0xC0u);
}

TEST(InterestGating, EvictionDeliveryIsGatedToo)
{
    MemorySystem ms(smallConfig(), 1);
    RecordingListener l0;
    const ContextId c0 = ms.addContext(0);
    ms.setListener(c0, &l0);
    ms.setListenerInterest(c0, false);
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    EXPECT_TRUE(l0.evictions.empty());
}

// ---- tracker-filtered listener delivery ----------------------------

TEST(TrackerFiltering, FilteredListenerSeesOnlyTrackedBlocks)
{
    MemorySystem ms(smallConfig(), 2);
    RecordingListener l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    ms.setListener(c1, &l1);
    ms.setListenerTxFiltered(c1, true);
    Directory *dir = ms.directory();
    ASSERT_NE(dir, nullptr);
    dir->txTrack(0x80, unsigned(c1));

    ms.access(c0, 0x80, AccessType::Write); // tracked -> delivered
    ms.access(c0, 0xC0, AccessType::Write); // untracked -> skipped
    ASSERT_EQ(l1.remote.size(), 1u);
    EXPECT_EQ(l1.remote[0].block, 0x80u);

    // Signature-active contexts see every remote write again.
    dir->setSigActive(unsigned(c1), true);
    ms.access(c0, 0x100, AccessType::Write);
    ASSERT_EQ(l1.remote.size(), 2u);
    EXPECT_EQ(l1.remote[1].block, 0x100u);

    // Dropping the filter restores full delivery.
    ms.setListenerTxFiltered(c1, false);
    dir->setSigActive(unsigned(c1), false);
    ms.access(c0, 0x140, AccessType::Write);
    EXPECT_EQ(l1.remote.size(), 3u);
}

// ---- filtered vs broadcast equivalence at the event level ----------

TEST(Directory, FilteredAndBroadcastDeliverIdenticalEventTraces)
{
    // Drive both modes through an access pattern exercising fills,
    // sharing, upgrades, write-steals and evictions; every listener
    // event and all final states/stats must match exactly.
    const auto drive = [](MemorySystem &ms, RecordingListener *ls) {
        const ContextId c0 = ms.addContext(0);
        const ContextId c1 = ms.addContext(1);
        const ContextId c2 = ms.addContext(0); // SMT sibling of c0
        ms.setListener(c0, &ls[0]);
        ms.setListener(c1, &ls[1]);
        ms.setListener(c2, &ls[2]);
        const ContextId ids[3] = {c0, c1, c2};
        for (unsigned step = 0; step < 200; ++step) {
            const ContextId c = ids[step % 3];
            const Addr a = Addr(step * 7919 % 23) * 128;
            const AccessType t = (step % 5 == 0) ? AccessType::Write
                                                 : AccessType::Read;
            ms.access(c, a, t);
        }
    };

    MemConfig on = smallConfig();
    MemConfig off = smallConfig();
    off.directory = false;
    MemorySystem msOn(on, 2), msOff(off, 2);
    RecordingListener lsOn[3], lsOff[3];
    drive(msOn, lsOn);
    drive(msOff, lsOff);

    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(lsOn[i].remote.size(), lsOff[i].remote.size());
        for (std::size_t j = 0; j < lsOn[i].remote.size(); ++j) {
            EXPECT_EQ(lsOn[i].remote[j].block, lsOff[i].remote[j].block);
            EXPECT_EQ(lsOn[i].remote[j].type, lsOff[i].remote[j].type);
            EXPECT_EQ(lsOn[i].remote[j].from, lsOff[i].remote[j].from);
        }
        EXPECT_EQ(lsOn[i].evictions, lsOff[i].evictions);
    }
    for (const auto &[name, ctr] : msOn.statGroup().counters()) {
        EXPECT_EQ(ctr.value(),
                  msOff.statGroup().counter(name).value())
            << "counter " << name;
    }
}
