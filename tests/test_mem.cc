/**
 * @file
 * Unit tests for the memory hierarchy: cache geometry, tag array and LRU
 * replacement (including transactional pinning), MESI state transitions
 * across the snoop bus, latency accounting, and listener notification
 * rules (bus-wide vs SMT-sibling).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache_array.hh"
#include "mem/mem_system.hh"

using namespace hintm;
using namespace hintm::mem;

namespace
{

/** Records every event it sees. */
struct RecordingListener : SnoopListener
{
    struct Remote
    {
        Addr block;
        AccessType type;
        ContextId from;
    };
    std::vector<Remote> remote;
    std::vector<Addr> evictions;

    void
    onRemoteAccess(Addr block, AccessType type, ContextId from) override
    {
        remote.push_back({block, type, from});
    }

    void
    onEviction(Addr block, bool) override
    {
        evictions.push_back(block);
    }
};

MemConfig
smallConfig()
{
    MemConfig c;
    c.l1SizeBytes = 1024; // 2 sets x 8 ways
    c.l1Assoc = 8;
    c.l2SizeBytes = 16 * 1024;
    return c;
}

} // namespace

TEST(Geometry, IndexTagRoundTrip)
{
    CacheGeometry g(32 * 1024, 8);
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.numLines(), 512u);
    for (Addr a : {Addr(0), Addr(0x12340), Addr(0xFFFFC0)}) {
        const Addr block = blockAlign(a);
        EXPECT_EQ(g.blockAddrOf(g.tagOf(block), g.indexOf(block)), block);
    }
}

TEST(CacheArray, HitMissAndLru)
{
    CacheArray arr(CacheGeometry(256, 2)); // 2 sets x 2 ways
    EXPECT_EQ(arr.lookup(0), nullptr);
    arr.insert(0, CoherState::Shared);
    EXPECT_NE(arr.lookup(0), nullptr);

    // Fill set 0 (same index: stride = 128).
    arr.insert(128, CoherState::Shared);
    // Touch 0 so 128 becomes LRU; next insert evicts 128.
    arr.lookup(0);
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u);
    EXPECT_FALSE(ev.dirty);
    EXPECT_NE(arr.probe(0), nullptr);
    EXPECT_EQ(arr.probe(128), nullptr);
}

TEST(CacheArray, DirtyEviction)
{
    CacheArray arr(CacheGeometry(128, 1)); // direct mapped, 2 sets
    arr.insert(0, CoherState::Modified);
    const Eviction ev = arr.insert(128, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_TRUE(ev.dirty);
}

TEST(CacheArray, InvalidatedLineIsReusedFirst)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    arr.invalidate(0);
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_FALSE(ev.happened); // reused the invalid way
    EXPECT_NE(arr.probe(128), nullptr);
}

TEST(CacheArray, PinnedLinesEvictedLast)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);   // will be pinned
    arr.insert(128, CoherState::Shared); // unpinned
    arr.lookup(0); // make the pinned line MRU-irrelevant: pin wins anyway
    arr.lookup(128);
    CacheArray::PinPredicate pin = [](Addr a) { return a == 0; };
    Eviction ev = arr.insert(256, CoherState::Shared, &pin);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u); // despite 128 being more recent

    // Now both resident lines (0 and 256) — pin both: eviction must fall
    // back to a pinned victim.
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    ev = arr.insert(384, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
}

TEST(CacheArray, PinnedFallbackPicksLruAmongPinned)
{
    CacheArray arr(CacheGeometry(256, 2)); // 2 sets x 2 ways
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    arr.lookup(0); // 128 is now LRU
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    const Eviction ev = arr.insert(256, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 128u); // LRU even within the pinned set
    EXPECT_NE(arr.probe(0), nullptr);
    EXPECT_NE(arr.probe(256), nullptr);
}

TEST(CacheArray, PinnedFallbackReportsDirtyVictim)
{
    CacheArray arr(CacheGeometry(128, 1)); // direct mapped
    arr.insert(0, CoherState::Modified);
    CacheArray::PinPredicate pin_all = [](Addr) { return true; };
    const Eviction ev = arr.insert(128, CoherState::Shared, &pin_all);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 0u);
    EXPECT_TRUE(ev.dirty); // writeback still owed for a pinned victim
}

TEST(CacheArray, ReinsertExistingBlockDoesNotEvict)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared);
    // Re-inserting a resident block upgrades in place: no victim even
    // though the set is full.
    const Eviction ev = arr.insert(0, CoherState::Modified);
    EXPECT_FALSE(ev.happened);
    EXPECT_EQ(arr.countValid(), 2u);
    EXPECT_EQ(arr.probe(0)->state, CoherState::Modified);
}

TEST(CacheArray, ProbeDoesNotPerturbLru)
{
    CacheArray arr(CacheGeometry(256, 2));
    arr.insert(0, CoherState::Shared);
    arr.insert(128, CoherState::Shared); // 0 is LRU
    arr.probe(0);                        // must NOT refresh 0
    const Eviction ev = arr.insert(256, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 0u);
}

TEST(CacheArray, LruVictimAcrossManyTouches)
{
    CacheArray arr(CacheGeometry(512, 4)); // 2 sets x 4 ways
    // Fill set 0 (stride 128 at 64B blocks x 2 sets).
    for (Addr a : {Addr(0), Addr(128), Addr(256), Addr(384)})
        arr.insert(a, CoherState::Shared);
    // Touch in an order that leaves 256 least-recent.
    arr.lookup(0);
    arr.lookup(384);
    arr.lookup(128);
    arr.lookup(0);
    const Eviction ev = arr.insert(512, CoherState::Shared);
    EXPECT_TRUE(ev.happened);
    EXPECT_EQ(ev.blockAddr, 256u);
}

TEST(CacheArray, CountValidAndSweep)
{
    CacheArray arr(CacheGeometry(512, 4));
    arr.insert(0, CoherState::Exclusive);
    arr.insert(64, CoherState::Modified);
    EXPECT_EQ(arr.countValid(), 2u);
    unsigned seen = 0;
    arr.forEachValid([&](Addr, CacheLine &) { ++seen; });
    EXPECT_EQ(seen, 2u);
}

TEST(MemSystem, LatencyTiers)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);

    // Cold: L1 miss + L2 miss -> memory.
    auto r = ms.access(c0, 0x1000, AccessType::Read);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u + 12u + 100u);

    // Warm: L1 hit.
    r = ms.access(c0, 0x1000, AccessType::Read);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u);
}

TEST(MemSystem, MesiReadSharing)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Exclusive);

    ms.access(c1, 0x40, AccessType::Read);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Shared);
}

TEST(MemSystem, MesiWriteInvalidates)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Write);
    EXPECT_EQ(ms.probeL1(c0, 0x40), nullptr); // invalidated
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Modified);
}

TEST(MemSystem, SilentUpgradeFromExclusive)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read); // E
    const auto r = ms.access(c0, 0x40, AccessType::Write);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u); // silent E->M
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Modified);
}

TEST(MemSystem, UpgradeFromSharedCostsBus)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Read); // both Shared
    const auto r = ms.access(c0, 0x40, AccessType::Write);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u + smallConfig().upgradeLatency);
    EXPECT_EQ(ms.probeL1(c1, 0x40), nullptr);
}

TEST(MemSystem, BusNotifiesAllButRequester)
{
    MemorySystem ms(smallConfig(), 3);
    RecordingListener l0, l1, l2;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    const ContextId c2 = ms.addContext(2);
    ms.setListener(c0, &l0);
    ms.setListener(c1, &l1);
    ms.setListener(c2, &l2);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_TRUE(l0.remote.empty());
    ASSERT_EQ(l1.remote.size(), 1u);
    EXPECT_EQ(l1.remote[0].block, 0x80u);
    EXPECT_EQ(l1.remote[0].type, AccessType::Write);
    EXPECT_EQ(l1.remote[0].from, c0);
    EXPECT_EQ(l2.remote.size(), 1u);
}

TEST(MemSystem, SiblingSeesEvenL1Hits)
{
    MemorySystem ms(smallConfig(), 1);
    RecordingListener l0, l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(0); // SMT sibling, same L1
    ms.setListener(c0, &l0);
    ms.setListener(c1, &l1);

    ms.access(c0, 0x40, AccessType::Read); // miss: sibling + bus
    ms.access(c0, 0x40, AccessType::Read); // hit: sibling only
    EXPECT_EQ(l1.remote.size(), 2u);
    EXPECT_TRUE(l0.remote.empty());
}

TEST(MemSystem, EvictionNotifiesSharers)
{
    MemConfig cfg = smallConfig(); // 2 sets x 8 ways
    MemorySystem ms(cfg, 1);
    RecordingListener l0;
    const ContextId c0 = ms.addContext(0);
    ms.setListener(c0, &l0);

    // Fill one set (stride 128 = 2 sets * 64B) past associativity.
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    ASSERT_EQ(l0.evictions.size(), 1u);
    EXPECT_EQ(l0.evictions[0], 0u); // LRU victim was the first block
}

TEST(MemSystem, DirtyPeerSuppliesAndL2Catches)
{
    MemorySystem ms(smallConfig(), 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Write); // M in c0
    ms.access(c1, 0x40, AccessType::Read);  // c0 downgrades, wb to L2
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
    EXPECT_GE(ms.statGroup().counter("writebacks").value(), 1u);
}

// ---- snoop filter: sharer-mask maintenance -------------------------

TEST(SnoopFilter, FillSetsMaskAndDecidesExclusiveVsShared)
{
    MemorySystem ms(smallConfig(), 2);
    ASSERT_TRUE(ms.filterActive());
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b01u); // only L1 0
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Exclusive);

    ms.access(c1, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b11u); // both L1s
    // The filter found the peer: the fill must be Shared, not Exclusive.
    EXPECT_EQ(ms.probeL1(c1, 0x40)->state, CoherState::Shared);
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
}

TEST(SnoopFilter, EvictionClearsMask)
{
    MemorySystem ms(smallConfig(), 1); // L1: 2 sets x 8 ways
    const ContextId c0 = ms.addContext(0);

    for (Addr i = 0; i <= 8; ++i) // overflow set 0; evicts block 0
        ms.access(c0, i * 128, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0), 0u);
    EXPECT_EQ(ms.sharerMaskOf(8 * 128), 0b1u);
}

TEST(SnoopFilter, UpgradeAndReadExclInvalidatePeerBits)
{
    MemorySystem ms(smallConfig(), 3);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    const ContextId c2 = ms.addContext(2);

    ms.access(c0, 0x40, AccessType::Read);
    ms.access(c1, 0x40, AccessType::Read);
    ms.access(c2, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b111u);

    // Upgrade (write hit on Shared) invalidates both peers' copies and
    // their filter bits.
    ms.access(c0, 0x40, AccessType::Write);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b001u);
    EXPECT_EQ(ms.probeL1(c1, 0x40), nullptr);
    EXPECT_EQ(ms.probeL1(c2, 0x40), nullptr);

    // ReadExcl (write miss) steals the block from the owner.
    ms.access(c1, 0x40, AccessType::Write);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0b010u);
    EXPECT_EQ(ms.probeL1(c0, 0x40), nullptr);
}

TEST(SnoopFilter, PinnedLineEvictionStillClearsMask)
{
    MemConfig cfg = smallConfig();
    MemorySystem ms(cfg, 1);
    const ContextId c0 = ms.addContext(0);
    // Pin everything: insertions must still evict (pinned fallback) and
    // the filter must track the forced victim.
    ms.setPinChecker(0, [](Addr) { return true; });
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    std::uint64_t tracked = 0;
    for (Addr i = 0; i <= 8; ++i)
        tracked += ms.sharerMaskOf(i * 128) != 0 ? 1 : 0;
    EXPECT_EQ(tracked, 8u); // 9 fills, one eviction, 8 resident
}

TEST(SnoopFilter, DisabledConfigFallsBackToBroadcast)
{
    MemConfig cfg = smallConfig();
    cfg.snoopFilter = false;
    MemorySystem ms(cfg, 2);
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    EXPECT_FALSE(ms.filterActive());

    ms.access(c0, 0x40, AccessType::Read);
    EXPECT_EQ(ms.sharerMaskOf(0x40), 0u); // filter not maintained
    ms.access(c1, 0x40, AccessType::Read);
    // Broadcast snoop still finds the peer copy.
    EXPECT_EQ(ms.probeL1(c0, 0x40)->state, CoherState::Shared);
}

// ---- interest-gated listener delivery ------------------------------

TEST(InterestGating, PlainListenerStartsInterested)
{
    MemorySystem ms(smallConfig(), 2);
    RecordingListener l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    EXPECT_EQ(ms.listenerInterestMask(), 0u);
    ms.setListener(c1, &l1);
    EXPECT_EQ(ms.listenerInterestMask(), 0b10u);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_EQ(l1.remote.size(), 1u);
}

TEST(InterestGating, UninterestedListenerIsSkipped)
{
    MemorySystem ms(smallConfig(), 2);
    RecordingListener l1;
    const ContextId c0 = ms.addContext(0);
    const ContextId c1 = ms.addContext(1);
    ms.setListener(c1, &l1);
    ms.setListenerInterest(c1, false);
    EXPECT_EQ(ms.listenerInterestMask(), 0u);

    ms.access(c0, 0x80, AccessType::Write);
    EXPECT_TRUE(l1.remote.empty());

    // Re-raising interest resumes delivery.
    ms.setListenerInterest(c1, true);
    ms.access(c0, 0xC0, AccessType::Write);
    ASSERT_EQ(l1.remote.size(), 1u);
    EXPECT_EQ(l1.remote[0].block, 0xC0u);
}

TEST(InterestGating, EvictionDeliveryIsGatedToo)
{
    MemorySystem ms(smallConfig(), 1);
    RecordingListener l0;
    const ContextId c0 = ms.addContext(0);
    ms.setListener(c0, &l0);
    ms.setListenerInterest(c0, false);
    for (Addr i = 0; i <= 8; ++i)
        ms.access(c0, i * 128, AccessType::Read);
    EXPECT_TRUE(l0.evictions.empty());
}

// ---- filtered vs broadcast equivalence at the event level ----------

TEST(SnoopFilter, FilteredAndBroadcastDeliverIdenticalEventTraces)
{
    // Drive both modes through an access pattern exercising fills,
    // sharing, upgrades, write-steals and evictions; every listener
    // event and all final states/stats must match exactly.
    const auto drive = [](MemorySystem &ms, RecordingListener *ls) {
        const ContextId c0 = ms.addContext(0);
        const ContextId c1 = ms.addContext(1);
        const ContextId c2 = ms.addContext(0); // SMT sibling of c0
        ms.setListener(c0, &ls[0]);
        ms.setListener(c1, &ls[1]);
        ms.setListener(c2, &ls[2]);
        const ContextId ids[3] = {c0, c1, c2};
        for (unsigned step = 0; step < 200; ++step) {
            const ContextId c = ids[step % 3];
            const Addr a = Addr(step * 7919 % 23) * 128;
            const AccessType t = (step % 5 == 0) ? AccessType::Write
                                                 : AccessType::Read;
            ms.access(c, a, t);
        }
    };

    MemConfig on = smallConfig();
    MemConfig off = smallConfig();
    off.snoopFilter = false;
    MemorySystem msOn(on, 2), msOff(off, 2);
    RecordingListener lsOn[3], lsOff[3];
    drive(msOn, lsOn);
    drive(msOff, lsOff);

    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(lsOn[i].remote.size(), lsOff[i].remote.size());
        for (std::size_t j = 0; j < lsOn[i].remote.size(); ++j) {
            EXPECT_EQ(lsOn[i].remote[j].block, lsOff[i].remote[j].block);
            EXPECT_EQ(lsOn[i].remote[j].type, lsOff[i].remote[j].type);
            EXPECT_EQ(lsOn[i].remote[j].from, lsOff[i].remote[j].from);
        }
        EXPECT_EQ(lsOn[i].evictions, lsOff[i].evictions);
    }
    for (const auto &[name, ctr] : msOn.statGroup().counters()) {
        EXPECT_EQ(ctr.value(),
                  msOff.statGroup().counter(name).value())
            << "counter " << name;
    }
}
