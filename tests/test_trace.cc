/**
 * @file
 * Tests for the trace facility: category parsing, spec handling, sink
 * redirection, and that a traced simulation actually emits the expected
 * event lines.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"
#include "core/hintm.hh"
#include "tir/builder.hh"

using namespace hintm;

namespace
{

struct TraceGuard
{
    ~TraceGuard()
    {
        trace::disableAll();
        trace::setSink(nullptr);
    }
};

} // namespace

TEST(Trace, CategoryParsing)
{
    EXPECT_EQ(trace::categoryFromName("tx"), trace::Category::Tx);
    EXPECT_EQ(trace::categoryFromName("vm"), trace::Category::Vm);
    EXPECT_EQ(trace::categoryFromName("sched"), trace::Category::Sched);
    EXPECT_EQ(trace::categoryFromName("journal"),
              trace::Category::Journal);
    EXPECT_THROW(trace::categoryFromName("bogus"), std::runtime_error);
}

TEST(Trace, UnknownCategoryErrorListsValidNames)
{
    try {
        trace::categoryFromName("bogus");
        FAIL() << "expected a fatal error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
        for (const char *name :
             {"tx", "htm", "vm", "mem", "sched", "journal", "all"})
            EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
}

TEST(Trace, SpecToleratesWhitespace)
{
    TraceGuard guard;
    trace::enableFromSpec(" tx , vm ");
    EXPECT_TRUE(trace::enabled(trace::Category::Tx));
    EXPECT_TRUE(trace::enabled(trace::Category::Vm));
    EXPECT_FALSE(trace::enabled(trace::Category::Mem));
    trace::disableAll();
    trace::enableFromSpec("  all  ");
    EXPECT_TRUE(trace::enabled(trace::Category::Journal));
    trace::disableAll();
    trace::enableFromSpec(""); // empty tokens are ignored, not errors
    EXPECT_FALSE(trace::enabled(trace::Category::Tx));
}

TEST(Trace, SpecEnablesMultipleCategories)
{
    TraceGuard guard;
    trace::enableFromSpec("tx,mem");
    EXPECT_TRUE(trace::enabled(trace::Category::Tx));
    EXPECT_TRUE(trace::enabled(trace::Category::Mem));
    EXPECT_FALSE(trace::enabled(trace::Category::Vm));
    trace::disableAll();
    trace::enableFromSpec("all");
    EXPECT_TRUE(trace::enabled(trace::Category::Sched));
}

TEST(Trace, DisabledCategoriesEmitNothing)
{
    TraceGuard guard;
    std::ostringstream os;
    trace::setSink(&os);
    trace::event(trace::Category::Tx, 5, "should not appear");
    EXPECT_TRUE(os.str().empty());
    trace::enable(trace::Category::Tx);
    trace::event(trace::Category::Tx, 7, "x=", 42);
    EXPECT_EQ(os.str(), "7: tx: x=42\n");
}

TEST(Trace, SimulationEmitsTxEvents)
{
    TraceGuard guard;
    std::ostringstream os;
    trace::setSink(&os);
    trace::enable(trace::Category::Tx);

    tir::Module m;
    m.globals.push_back({"g", 8, 0});
    tir::FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    f.store(f.globalAddr("g"), f.constI(1));
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    core::SystemOptions opts;
    core::simulate(opts, m, 2);

    const std::string log = os.str();
    EXPECT_NE(log.find("begins hardware TX"), std::string::npos);
    EXPECT_NE(log.find("commits"), std::string::npos);
}
