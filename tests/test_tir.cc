/**
 * @file
 * Unit tests for TxIR: builder/verifier well-formedness rules, the
 * interpreter's arithmetic/control/call semantics, memory and allocator
 * behavior (per-thread arenas), and the transactional functional layer
 * (checkpoint, undo, rollback, deferred frees, safe-store validation).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "tir/address_space.hh"
#include "tir/decode.hh"
#include "tir/allocator.hh"
#include "tir/builder.hh"
#include "tir/interp.hh"
#include "tir/verifier.hh"

using namespace hintm;
using namespace hintm::tir;

namespace
{

/** Drive a single thread functionally until Done; returns instrs run. */
std::uint64_t
runToCompletion(ThreadInterp &ti)
{
    while (true) {
        const Step st = ti.next();
        switch (st.kind) {
          case StepKind::Mem:
            ti.completeMem();
            break;
          case StepKind::TxBegin:
            ti.enterTx(true);
            break;
          case StepKind::TxEnd:
            ti.completeTxEnd();
            break;
          case StepKind::Barrier:
            ti.passBarrier();
            break;
          case StepKind::Annotate:
            ti.passAnnotate();
            break;
          case StepKind::Done:
            return ti.instrCount();
          case StepKind::Simple:
            break;
        }
    }
}

} // namespace

TEST(AddressSpace, ReadZeroWriteReadBack)
{
    AddressSpace as;
    EXPECT_EQ(as.read(0x1000), 0);
    as.write(0x1000, 42);
    EXPECT_EQ(as.read(0x1000), 42);
    as.write(0x1008, -7);
    EXPECT_EQ(as.read(0x1008), -7);
    EXPECT_EQ(as.pageCount(), 1u);
}

TEST(AddressSpace, MisalignedAccessPanics)
{
    AddressSpace as;
    EXPECT_THROW(as.read(0x1001), std::logic_error);
    EXPECT_THROW(as.write(0x1004, 1), std::logic_error);
    EXPECT_THROW(as.read(0), std::logic_error);
}

TEST(Allocator, ArenasAreDisjointPerThread)
{
    Allocator a(3);
    const Addr p0 = a.alloc(0, 100);
    const Addr p1 = a.alloc(1, 100);
    EXPECT_NE(pageNumber(p0), pageNumber(p1));
    EXPECT_GE(p1, layout::arenasBase + layout::arenaStride);
}

TEST(Allocator, FreeListReuse)
{
    Allocator a(1);
    const Addr p = a.alloc(0, 64);
    a.release(p);
    EXPECT_EQ(a.alloc(0, 64), p);
    EXPECT_EQ(a.liveBytes(), 64u);
}

TEST(Allocator, SizeTrackingAndErrors)
{
    Allocator a(1);
    const Addr p = a.alloc(0, 24);
    EXPECT_EQ(a.sizeOf(p), 24u);
    a.release(p);
    EXPECT_EQ(a.sizeOf(p), 0u);
    EXPECT_THROW(a.release(p), std::logic_error); // double free
}

TEST(Verifier, AcceptsMinimalModule)
{
    Module m;
    FunctionBuilder f(m, "worker", 1);
    f.retVoid();
    m.threadFunc = f.finish();
    EXPECT_FALSE(verify(m).has_value());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Module m;
    Function fn;
    fn.name = "bad";
    fn.numRegs = 1;
    fn.blocks.emplace_back();
    Instr c;
    c.op = Opcode::Const;
    c.dst = 0;
    fn.blocks[0].instrs.push_back(c); // no terminator
    m.functions.push_back(fn);
    const auto err = verify(m);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsBadRegister)
{
    Module m;
    Function fn;
    fn.name = "bad";
    fn.numRegs = 1;
    fn.blocks.emplace_back();
    Instr mv;
    mv.op = Opcode::Mov;
    mv.dst = 0;
    mv.a = 5; // out of range
    fn.blocks[0].instrs.push_back(mv);
    Instr ret;
    ret.op = Opcode::Ret;
    fn.blocks[0].instrs.push_back(ret);
    m.functions.push_back(fn);
    EXPECT_TRUE(verify(m).has_value());
}

TEST(Verifier, RejectsNestedTx)
{
    Module m;
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    f.txBegin();
    f.txEnd();
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    const auto err = verify(m);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("nested"), std::string::npos);
}

TEST(Verifier, RejectsBarrierInsideTx)
{
    Module m;
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    f.barrier();
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    EXPECT_TRUE(verify(m).has_value());
}

TEST(Verifier, RejectsTxCallingTxFunction)
{
    Module m;
    {
        FunctionBuilder g(m, "inner", 0);
        g.txBegin();
        g.txEnd();
        g.retVoid();
        g.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    f.callVoid("inner", {});
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    const auto err = verify(m);
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("TX-beginning"), std::string::npos);
}

TEST(Interp, ArithmeticAndControlFlow)
{
    // Compute sum of 0..9 and gcd-ish mixing; store to a global.
    Module m;
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 10, [&](Reg i) { f.set(acc, f.add(acc, i)); });
    const Reg mixed = f.xorOp(f.shlI(acc, 1), f.modI(acc, 7));
    f.store(f.globalAddr("out"), mixed);
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(verify(m).has_value());

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    runToCompletion(ti);
    // sum = 45; (45 << 1) ^ (45 % 7) = 90 ^ 3 = 89.
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out")), 89);
}

TEST(Interp, CallsReturnValuesAndRecursion)
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    declareFunction(m, "fib", 1);
    {
        FunctionBuilder f(m, "fib", 1);
        const Reg n = f.param(0);
        const Reg r = f.freshVar();
        f.ifThenElse(
            f.cmpLtI(n, 2), [&] { f.set(r, n); },
            [&] {
                const Reg a = f.call("fib", {f.subI(n, 1)});
                const Reg b = f.call("fib", {f.subI(n, 2)});
                f.set(r, f.add(a, b));
            });
        f.ret(r);
        f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    f.store(f.globalAddr("out"), f.call("fib", {f.constI(10)}));
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(verify(m).has_value());

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    runToCompletion(ti);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out")), 55);
}

TEST(Interp, AllocaStackDisciplineAcrossCalls)
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    {
        FunctionBuilder g(m, "leaf", 0);
        const Reg s = g.allocaBytes(64);
        g.storeI(s, 7);
        g.ret(g.load(s));
        g.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg a = f.allocaBytes(8);
    f.storeI(a, 1);
    const Reg v1 = f.call("leaf", {});
    const Reg v2 = f.call("leaf", {});
    // Both calls reuse the same stack region; outer slot is untouched.
    f.store(f.globalAddr("out"),
            f.add(f.load(a), f.add(v1, v2)));
    f.retVoid();
    m.threadFunc = f.finish();

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    runToCompletion(ti);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out")), 15);
}

TEST(Interp, RollbackRestoresRegistersMemoryAndHeap)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg gaddr = f.globalAddr("g");
    f.storeI(gaddr, 5);
    const Reg v = f.freshVar();
    f.setI(v, 1);
    f.txBegin();
    f.set(v, f.constI(99));
    f.store(gaddr, f.constI(77));
    const Reg h = f.mallocI(64);
    f.storeI(h, 3);
    f.txEnd();
    f.store(gaddr, v);
    f.retVoid();
    m.threadFunc = f.finish();

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    const std::uint64_t live0 = prog.allocator().liveBytes();

    // Step to TxBegin, enter, run the body up to TxEnd, then abort.
    Step st;
    while ((st = ti.next()).kind != StepKind::TxBegin)
        ti.completeMem();
    ti.enterTx(true);
    while ((st = ti.next()).kind == StepKind::Mem)
        ti.completeMem();
    ASSERT_EQ(st.kind, StepKind::TxEnd);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("g")), 77);
    EXPECT_GT(prog.allocator().liveBytes(), live0);

    ti.undoStores();          // the controller's abort hook
    ti.rollbackToTxBegin();   // thread-side completion
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("g")), 5);
    EXPECT_EQ(prog.allocator().liveBytes(), live0); // TX malloc released

    // Retry: the next step is TxBegin again; run to completion.
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::TxBegin);
    ti.enterTx(true);
    runToCompletion(ti);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("g")), 99);
}

TEST(Interp, DeferredFreeAppliedOnCommitOnly)
{
    Module m;
    m.globals.push_back({"p", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg h = f.mallocI(64);
    f.store(f.globalAddr("p"), h);
    f.txBegin();
    f.freePtr(h);
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    Step st;
    while ((st = ti.next()).kind != StepKind::TxBegin)
        ti.completeMem();
    ti.enterTx(true);
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::TxEnd);
    EXPECT_GT(prog.allocator().liveBytes(), 0u); // free deferred
    ti.completeTxEnd();
    EXPECT_EQ(prog.allocator().liveBytes(), 0u); // applied at commit
    runToCompletion(ti);
}

TEST(Interp, SafeStoreValidationCatchesNonInitializing)
{
    // A "safe" store whose location is read before being rewritten on
    // retry must trip the validation check.
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg buf = f.mallocI(64);
    f.txBegin();
    // Read-before-write: on retry this load sees the stale safe store.
    const Reg stale = f.load(buf, 0);
    f.store(buf, f.addI(stale, 1), 0);
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    // Manually mark the store instruction safe.
    for (auto &fn : m.functions) {
        for (auto &bb : fn.blocks) {
            for (auto &ins : bb.instrs) {
                if (ins.op == Opcode::Store)
                    ins.safe = true;
            }
        }
    }

    Program prog(m, 1);
    prog.validateSafeStores = true;
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    Step st;
    while ((st = ti.next()).kind != StepKind::TxBegin)
        ti.completeMem();
    ti.enterTx(true);
    while ((st = ti.next()).kind == StepKind::Mem)
        ti.completeMem();
    // Abort at TxEnd; the safe store's target is now stale.
    ti.undoStores();
    ti.rollbackToTxBegin();
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::TxBegin);
    ti.enterTx(true);
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::Mem);
    EXPECT_THROW(ti.completeMem(), std::logic_error);
}

TEST(Interp, RandIsPerThreadDeterministic)
{
    Module m;
    m.globals.push_back({"out", 8 * 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.store(f.gep(f.globalAddr("out"), tid, 8), f.randI(1000000));
    f.retVoid();
    m.threadFunc = f.finish();

    auto run = [&](unsigned seed) {
        Program prog(m, 2, seed);
        ThreadInterp t0(prog, 0, m.threadFunc, {0});
        ThreadInterp t1(prog, 1, m.threadFunc, {1});
        runToCompletion(t0);
        runToCompletion(t1);
        const Addr base = prog.globalAddrByName("out");
        return std::pair(prog.space().read(base),
                         prog.space().read(base + 8));
    };
    const auto [a0, a1] = run(1);
    const auto [b0, b1] = run(1);
    const auto [c0, c1] = run(2);
    EXPECT_EQ(a0, b0);
    EXPECT_EQ(a1, b1);
    EXPECT_NE(a0, a1);    // different thread streams
    EXPECT_NE(a0, c0);    // different seeds
    (void)c1;
}

TEST(Interp, ModulePrinterMentionsEverything)
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    f.store(f.globalAddr("out"), f.constI(1));
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    const std::string s = m.print();
    EXPECT_NE(s.find("fn worker"), std::string::npos);
    EXPECT_NE(s.find("txbegin"), std::string::npos);
    EXPECT_NE(s.find("global @out"), std::string::npos);
}

TEST(Interp, DivisionByZeroPanics)
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.store(f.globalAddr("out"), f.div(f.constI(1), f.param(0)));
    f.retVoid();
    m.threadFunc = f.finish();
    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    EXPECT_THROW(runToCompletion(ti), std::logic_error);
}

TEST(Interp, ShiftAmountsAreMasked)
{
    Module m;
    m.globals.push_back({"out", 8 * 2, 0});
    FunctionBuilder f(m, "worker", 1);
    // 1 << 65 == 1 << 1 under 6-bit masking; >> is logical.
    f.store(f.globalAddr("out"),
            f.shl(f.constI(1), f.constI(65)));
    f.store(f.globalAddr("out"),
            f.shrI(f.constI(-1), 60), 8);
    f.retVoid();
    m.threadFunc = f.finish();
    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    runToCompletion(ti);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out")), 2);
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out") + 8), 15);
}

TEST(Interp, DeepRecursionIsBounded)
{
    Module m;
    declareFunction(m, "down", 1);
    {
        FunctionBuilder f(m, "down", 1);
        const Reg n = f.param(0);
        const Reg r = f.freshVar();
        f.ifThenElse(f.cmpLtI(n, 1), [&] { f.setI(r, 0); },
                     [&] { f.set(r, f.call("down", {f.subI(n, 1)})); });
        f.ret(r);
        f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    f.callVoid("down", {f.constI(10000)});
    f.retVoid();
    m.threadFunc = f.finish();
    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    // The 512-frame guard fires rather than exhausting host memory.
    EXPECT_THROW(runToCompletion(ti), std::logic_error);
}

TEST(Interp, StackOverflowDetected)
{
    Module m;
    FunctionBuilder f(m, "worker", 1);
    // 2MB thread stacks: a 4MB alloca must trip the guard.
    f.allocaBytes(4 * 1024 * 1024);
    f.retVoid();
    m.threadFunc = f.finish();
    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});
    EXPECT_THROW(runToCompletion(ti), std::logic_error);
}

// ---------------------------------------------------------------------
// Decoder (interpreter fast path): translation of TxIR into the flat
// fused op stream, and the arena checkpoint machinery it runs on.

TEST(Decoder, BranchTargetsResolveToAbsoluteOpIndices)
{
    Module m;
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 10, [&](Reg i) {
        f.ifThenElse(
            f.cmpLtI(i, 5), [&] { f.set(acc, f.add(acc, i)); },
            [&] { f.set(acc, f.sub(acc, i)); });
    });
    f.ret(acc);
    m.threadFunc = f.finish();
    ASSERT_FALSE(verify(m).has_value());

    const DecodedFunction df =
        decodeFunction(m, m.functions[std::size_t(m.threadFunc)]);
    ASSERT_EQ(df.blockStart.size(),
              m.functions[std::size_t(m.threadFunc)].blocks.size());
    const auto is_block_start = [&](std::int32_t t) {
        return std::find(df.blockStart.begin(), df.blockStart.end(), t) !=
               df.blockStart.end();
    };
    unsigned jumps = 0, cond_branches = 0;
    for (const DecodedOp &o : df.ops) {
        switch (o.op) {
          case DOp::Jmp:
            ++jumps;
            EXPECT_TRUE(is_block_start(o.t1)) << "jmp to op " << o.t1;
            break;
          case DOp::CondJmp:
          case DOp::CmpBr:
          case DOp::CmpBrI:
            ++cond_branches;
            EXPECT_TRUE(is_block_start(o.t1)) << "branch to op " << o.t1;
            EXPECT_TRUE(is_block_start(o.t2)) << "branch to op " << o.t2;
            break;
          default:
            break;
        }
    }
    // The loop + if/else shape must have produced both target kinds.
    EXPECT_GT(jumps, 0u);
    EXPECT_GT(cond_branches, 0u);
}

TEST(Decoder, FusionPreservesSemanticsAndInstructionAccounting)
{
    Module m;
    m.globals.push_back({"arr", 80, 0});
    m.globals.push_back({"out", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg base = f.globalAddr("arr");
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 10, [&](Reg i) {
        // Const+Mul -> MulI; Gep immediately before Store -> GepStore.
        const Reg v = f.mulI(i, 3);
        const Reg p = f.gep(base, i, 8);
        f.store(p, v);
    });
    f.forRangeI(0, 10, [&](Reg i) {
        // Gep immediately before Load -> GepLoad.
        f.set(acc, f.add(acc, f.load(f.gep(base, i, 8))));
    });
    f.store(f.globalAddr("out"), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(verify(m).has_value());

    Program fast(m, 1, /*seed=*/1, /*decode_cache=*/true);
    Program ref(m, 1, /*seed=*/1, /*decode_cache=*/false);
    ASSERT_NE(fast.decoded(), nullptr);
    EXPECT_EQ(ref.decoded(), nullptr);

    // Every source instruction is accounted for by exactly one decoded
    // op: the op `n` fields sum to the source instruction count.
    const Function &fn = m.functions[std::size_t(m.threadFunc)];
    const DecodedFunction &df =
        fast.decoded()->fns[std::size_t(m.threadFunc)];
    std::uint64_t n_sum = 0, src_count = 0;
    bool saw_imm_alu = false, saw_cmp_br = false;
    bool saw_gep_load = false, saw_gep_store = false;
    bool saw_global_const = false;
    for (const DecodedOp &o : df.ops) {
        n_sum += o.n;
        switch (o.op) {
          case DOp::MulI: saw_imm_alu = true; EXPECT_EQ(o.n, 2); break;
          case DOp::CmpBr: saw_cmp_br = true; EXPECT_EQ(o.n, 2); break;
          case DOp::GepLoad: saw_gep_load = true; EXPECT_EQ(o.n, 2); break;
          case DOp::GepStore:
            saw_gep_store = true;
            EXPECT_EQ(o.n, 2);
            break;
          case DOp::Const:
            // GlobalAddr pre-resolves to the laid-out address.
            if (Addr(o.imm) == fast.globalAddrByName("arr"))
                saw_global_const = true;
            break;
          default: break;
        }
    }
    for (const BasicBlock &b : fn.blocks)
        src_count += b.instrs.size();
    EXPECT_EQ(n_sum, src_count);
    EXPECT_TRUE(saw_imm_alu);
    EXPECT_TRUE(saw_cmp_br);
    EXPECT_TRUE(saw_gep_load);
    EXPECT_TRUE(saw_gep_store);
    EXPECT_TRUE(saw_global_const);

    // Decoded and reference execution agree instruction-for-instruction.
    ThreadInterp td(fast, 0, m.threadFunc, {0});
    ThreadInterp tr(ref, 0, m.threadFunc, {0});
    EXPECT_EQ(runToCompletion(td), runToCompletion(tr));
    EXPECT_EQ(td.instrCount(), tr.instrCount());
    // sum of 3*i for i in 0..9 = 135.
    EXPECT_EQ(fast.space().read(fast.globalAddrByName("out")), 135);
    EXPECT_EQ(ref.space().read(ref.globalAddrByName("out")), 135);
}

TEST(Interp, ArenaRollbackAcrossNestedCallsWithAllocaLive)
{
    Module m;
    m.globals.push_back({"out", 8, 0});
    declareFunction(m, "helper", 1);
    {
        FunctionBuilder h(m, "helper", 1);
        const Reg p = h.param(0);
        const Reg s = h.allocaBytes(32);
        h.storeI(s, 21);                  // helper-local scratch
        h.store(p, h.mulI(h.load(s), 2)); // tracked store: *p = 42
        h.ret(h.load(s));
        h.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg a = f.allocaBytes(8);
    f.storeI(a, 5);
    const Reg acc = f.freshVar();
    f.setI(acc, 100);
    f.txBegin();
    f.set(acc, f.constI(200));
    const Reg r = f.call("helper", {a});
    f.txEnd();
    f.store(f.globalAddr("out"), f.add(f.add(f.load(a), r), acc));
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(verify(m).has_value());

    Program prog(m, 1);
    ThreadInterp ti(prog, 0, m.threadFunc, {0});

    Step st;
    while ((st = ti.next()).kind != StepKind::TxBegin)
        ti.completeMem();
    ti.enterTx(true);

    // First in-TX Mem boundary: helper's scratch store (we're now in the
    // nested frame, with its Alloca live).
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::Mem);
    const Addr scratch_first = st.addr;
    ti.completeMem();
    // Complete the load of the scratch and the tracked store through p.
    for (int i = 0; i < 2; ++i) {
        st = ti.next();
        ASSERT_EQ(st.kind, StepKind::Mem);
        ti.completeMem();
    }
    EXPECT_EQ(prog.space().read(Addr(layout::stackBase(0))), 42);

    // Abort with the nested frame and its Alloca live.
    ti.undoStores();
    ti.rollbackToTxBegin();
    EXPECT_EQ(prog.space().read(Addr(layout::stackBase(0))), 5);

    // Retry resumes AT TxBegin, back in the outer frame, with the stack
    // pointer rewound: helper's scratch lands at the same address.
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::TxBegin);
    ti.enterTx(true);
    st = ti.next();
    ASSERT_EQ(st.kind, StepKind::Mem);
    EXPECT_EQ(st.addr, scratch_first);
    ti.completeMem();
    runToCompletion(ti);
    // out = *a (42) + helper return (21) + acc (200).
    EXPECT_EQ(prog.space().read(prog.globalAddrByName("out")), 263);
}
