/**
 * @file
 * Property tests for the sweep-throughput snapshot/fork machinery.
 * The contract under test is bit-identity: a machine forked from a
 * captured init-phase prefix, or restored from a mid-run snapshot,
 * must produce exactly the RunResult of an uninterrupted cold run —
 * cycles, abort breakdowns, distributions, raw stats and final globals
 * included. encodeRunResult() serializes every persisted field, so
 * string equality of the encodings is a full-width comparison.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "../bench/result_store.hh"
#include "core/hintm.hh"
#include "sim/journal_io.hh"
#include "sim/snapshot.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

core::SystemOptions
observedOpts(htm::HtmKind kind)
{
    core::SystemOptions o;
    o.htmKind = kind;
    o.mechanism = core::Mechanism::Full;
    o.collectTxSizes = true;
    o.collectRawStats = true;
    o.profileSharing = true;
    return o;
}

void
expectSameResult(const sim::RunResult &a, const sim::RunResult &b,
                 const std::string &what)
{
    // Spot checks first (readable failures), then the full encoding.
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.committedTxs, b.committedTxs) << what;
    EXPECT_EQ(a.htm.totalAborts(), b.htm.totalAborts()) << what;
    EXPECT_EQ(a.rawStats, b.rawStats) << what;
    EXPECT_EQ(bench::encodeRunResult(a), bench::encodeRunResult(b))
        << what;
}

} // namespace

TEST(PrefixFork, BitIdenticalToColdRunAcrossWorkloadsAndBackends)
{
    for (const char *name : {"kmeans", "intruder"}) {
        workloads::Workload wl =
            workloads::byName(name, workloads::Scale::Tiny);
        core::compileHints(wl.module);
        for (const htm::HtmKind kind :
             {htm::HtmKind::P8, htm::HtmKind::P8S, htm::HtmKind::L1TM}) {
            const core::SystemOptions opts = observedOpts(kind);
            const sim::RunResult cold =
                core::simulate(opts, wl.module, wl.threads);
            const auto prefix =
                core::buildPrefix(opts, wl.module, wl.threads);
            const sim::RunResult forked = core::simulate(
                opts, wl.module, wl.threads, prefix.get());
            expectSameResult(cold, forked,
                             std::string(name) + "/" +
                                 htm::htmKindName(kind));
        }
    }
}

TEST(PrefixFork, OnePrefixServesDivergentConfigs)
{
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    // Built from a Baseline/P8 config on purpose: the prefix must be
    // config-independent, so forks with other backends/mechanisms have
    // to match their own cold runs exactly.
    core::SystemOptions base;
    base.htmKind = htm::HtmKind::P8;
    base.mechanism = core::Mechanism::Baseline;
    const auto prefix = core::buildPrefix(base, wl.module, wl.threads);

    for (const htm::HtmKind kind :
         {htm::HtmKind::P8S, htm::HtmKind::L1TM}) {
        core::SystemOptions opts = observedOpts(kind);
        const sim::RunResult cold =
            core::simulate(opts, wl.module, wl.threads);
        const sim::RunResult forked =
            core::simulate(opts, wl.module, wl.threads, prefix.get());
        expectSameResult(cold, forked, htm::htmKindName(kind));
    }
}

TEST(Snapshot, RestoreIntoFreshMachineResumesBitIdentical)
{
    workloads::Workload wl =
        workloads::byName("intruder", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    const core::SystemOptions opts = observedOpts(htm::HtmKind::P8);
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    const sim::RunResult cold =
        sim::runMachine(cfg, wl.module, wl.threads);

    sim::SimRun a(cfg, wl.module, wl.threads);
    a.runUntilCommits(cold.committedTxs / 2);
    ASSERT_FALSE(a.finished());
    const sim::MachineSnapshot snap = a.snapshot();
    const sim::RunResult resumedSelf = a.finish();
    expectSameResult(cold, resumedSelf, "self-resume");

    sim::SimRun b(cfg, wl.module, wl.threads);
    b.restore(snap);
    const sim::RunResult resumedFresh = b.finish();
    expectSameResult(cold, resumedFresh, "fresh-restore");
}

TEST(Snapshot, DirectoryStateRidesThroughAtThirtyTwoContexts)
{
    // A mid-run snapshot on the 32-context directory machine carries
    // live sharer/owner/tracker state; restoring into a fresh machine
    // must still finish bit-identical to the uninterrupted run.
    workloads::Workload wl =
        workloads::byName("intruder@32", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts = observedOpts(htm::HtmKind::P8S);
    opts.numCores = 32;
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    const sim::RunResult cold =
        sim::runMachine(cfg, wl.module, wl.threads);
    ASSERT_GT(cold.committedTxs, 0u);

    sim::SimRun a(cfg, wl.module, wl.threads);
    a.runUntilCommits(cold.committedTxs / 2);
    ASSERT_FALSE(a.finished());
    const sim::MachineSnapshot snap = a.snapshot();

    sim::SimRun b(cfg, wl.module, wl.threads);
    b.restore(snap);
    expectSameResult(cold, b.finish(), "32-context fresh-restore");
}

TEST(Snapshot, SchedulerIndexRidesThroughAtThirtyTwoContexts)
{
    // The event-driven scheduler index (bitmasks + readyAt heap) is
    // derived state: a snapshot stores only per-context
    // (done, atBarrier, readyAt) plus now/rr, and restore() rebuilds
    // the index from those. A mid-run restore on the 32-context
    // machine — heap populated, rotation pointer mid-cycle — must
    // finish bit-identical to the uninterrupted run, and the same
    // snapshot must also replay exactly under the reference scan
    // (cfg.schedIndex only selects how the identical schedule is
    // computed, so snapshots are interchangeable across it).
    workloads::Workload wl =
        workloads::byName("kmeans@32", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts = observedOpts(htm::HtmKind::P8);
    opts.numCores = 32;
    ASSERT_TRUE(opts.schedIndex);
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    const sim::RunResult cold =
        sim::runMachine(cfg, wl.module, wl.threads);
    ASSERT_GT(cold.committedTxs, 0u);

    sim::SimRun a(cfg, wl.module, wl.threads);
    a.runUntilCommits(cold.committedTxs / 2);
    ASSERT_FALSE(a.finished());
    const sim::MachineSnapshot snap = a.snapshot();
    expectSameResult(cold, a.finish(), "32-context indexed self-resume");

    sim::SimRun b(cfg, wl.module, wl.threads);
    b.restore(snap);
    expectSameResult(cold, b.finish(),
                     "32-context indexed fresh-restore");

    sim::MachineConfig scan_cfg = cfg;
    scan_cfg.schedIndex = false;
    sim::SimRun c(scan_cfg, wl.module, wl.threads);
    c.restore(snap);
    expectSameResult(cold, c.finish(),
                     "32-context scan-restore of indexed snapshot");
}

TEST(Snapshot, AllBlockedContextsPanicWithDiagnosticsDump)
{
    // A snapshot doctored so every live context waits at a barrier no
    // arrival will ever release is undispatchable. Both schedulers
    // must refuse to spin: the pick comes back empty and the machine
    // panics with the per-context diagnostics dump (readyAt, barrier,
    // TX and fallback state) instead of hanging or silently finishing.
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    const core::SystemOptions opts = observedOpts(htm::HtmKind::P8);
    sim::MachineConfig cfg = core::makeMachineConfig(opts);

    sim::SimRun probe(cfg, wl.module, wl.threads);
    probe.runUntilCommits(3);
    ASSERT_FALSE(probe.finished());
    sim::MachineSnapshot snap = probe.snapshot();
    for (sim::MachineContextSnapshot &cs : snap.ctxs)
        if (!cs.done)
            cs.atBarrier = true;

    for (const bool use_index : {true, false}) {
        cfg.schedIndex = use_index;
        sim::SimRun doomed(cfg, wl.module, wl.threads);
        doomed.restore(snap);
        try {
            doomed.finish();
            FAIL() << "deadlocked machine finished (schedIndex="
                   << use_index << ")";
        } catch (const std::logic_error &e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("deadlock: all live contexts blocked"),
                      std::string::npos)
                << msg;
            // The dump must name every context with its
            // scheduler-visible state and the fallback-lock holder.
            EXPECT_NE(msg.find("fallbackLockHolder="),
                      std::string::npos)
                << msg;
            EXPECT_NE(msg.find("ctx 0: readyAt="), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("atBarrier=1"), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("retries="), std::string::npos) << msg;
        }
    }
}

TEST(Snapshot, CarriesTheJournalAcrossRestore)
{
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts = observedOpts(htm::HtmKind::P8);
    opts.journal = true;
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    sim::SimRun a(cfg, wl.module, wl.threads);
    a.runUntilCommits(3);
    const sim::MachineSnapshot snap = a.snapshot();
    ASSERT_TRUE(snap.hasJournal);
    const sim::RunResult cold = a.finish();
    ASSERT_NE(cold.journal, nullptr);

    sim::SimRun b(cfg, wl.module, wl.threads);
    b.restore(snap);
    const sim::RunResult resumed = b.finish();
    ASSERT_NE(resumed.journal, nullptr);
    EXPECT_EQ(resumed.journal->size(), cold.journal->size());
    EXPECT_EQ(sim::journalSummary(resumed), sim::journalSummary(cold));
    EXPECT_EQ(bench::encodeRunResult(resumed),
              bench::encodeRunResult(cold));
}

TEST(Snapshot, CarriesTheMetricsAcrossRestore)
{
    // Same shape as the journal round-trip: a snapshot taken mid-run
    // must carry the metrics registry (and each context's in-flight
    // measurement) so a restored machine finishes with the exact
    // aggregates of the uninterrupted one.
    workloads::Workload wl =
        workloads::byName("intruder", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts = observedOpts(htm::HtmKind::P8);
    opts.metrics = true;
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    sim::SimRun a(cfg, wl.module, wl.threads);
    a.runUntilCommits(3);
    const sim::MachineSnapshot snap = a.snapshot();
    ASSERT_TRUE(snap.hasMetrics);
    const sim::RunResult cold = a.finish();
    ASSERT_NE(cold.metrics, nullptr);

    sim::SimRun b(cfg, wl.module, wl.threads);
    b.restore(snap);
    const sim::RunResult resumed = b.finish();
    ASSERT_NE(resumed.metrics, nullptr);
    EXPECT_EQ(bench::encodeRunResult(resumed),
              bench::encodeRunResult(cold));

    // The registries themselves must match field for field, including
    // state that was mid-flight at snapshot time.
    const MetricsRegistry &mc = *cold.metrics;
    const MetricsRegistry &mr = *resumed.metrics;
    EXPECT_EQ(mr.capacityAborts, mc.capacityAborts);
    EXPECT_EQ(mr.hintSavedCommits, mc.hintSavedCommits);
    EXPECT_EQ(mr.skipStaticAccesses, mc.skipStaticAccesses);
    EXPECT_EQ(mr.skipDynAccesses, mc.skipDynAccesses);
    EXPECT_EQ(mr.trackedAtCommit.count, mc.trackedAtCommit.count);
    EXPECT_EQ(mr.trackedAtCommit.sum, mc.trackedAtCommit.sum);
    EXPECT_EQ(mr.sharersAtBus.count, mc.sharersAtBus.count);
    EXPECT_EQ(mr.fallbackSeries.samples(), mc.fallbackSeries.samples());
    EXPECT_EQ(mr.numaMatrix(), mc.numaMatrix());
    ASSERT_EQ(mr.sites().size(), mc.sites().size());
    for (const auto &kv : mc.sites()) {
        const auto it = mr.sites().find(kv.first);
        ASSERT_NE(it, mr.sites().end());
        EXPECT_EQ(it->second.commits, kv.second.commits);
        EXPECT_EQ(it->second.skippedBlocksSum,
                  kv.second.skippedBlocksSum);
        EXPECT_EQ(it->second.peakTrackedSum, kv.second.peakTrackedSum);
    }
    EXPECT_EQ(sim::metricsSummary(resumed), sim::metricsSummary(cold));
}

TEST(Snapshot, SnapshotItselfPerturbsNothing)
{
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    const core::SystemOptions opts = observedOpts(htm::HtmKind::P8S);
    const sim::MachineConfig cfg = core::makeMachineConfig(opts);

    const sim::RunResult cold =
        sim::runMachine(cfg, wl.module, wl.threads);

    // Snapshot at several points along one run; the run must still
    // finish exactly like a never-observed one.
    sim::SimRun a(cfg, wl.module, wl.threads);
    for (std::uint64_t target = 1; target < 8; target += 3) {
        a.runUntilCommits(target);
        (void)a.snapshot();
    }
    expectSameResult(cold, a.finish(), "observed-run");
}
