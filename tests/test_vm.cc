/**
 * @file
 * Unit tests for the virtual-memory subsystem: the Fig. 2 page safety
 * state machine (including the preserve-read-only variant), TLB
 * behavior, shootdown cost accounting and the translate() fast path.
 */

#include <gtest/gtest.h>

#include "vm/page_table.hh"
#include "vm/tlb.hh"
#include "vm/vm.hh"

using namespace hintm;
using namespace hintm::vm;

namespace
{
constexpr Addr pageA = 0x10000;
constexpr Addr pageB = 0x20000;
} // namespace

TEST(PageTable, FirstTouchClassifiesPrivate)
{
    PageTable pt;
    auto tr = pt.touch(0, pageA, AccessType::Read);
    EXPECT_EQ(tr.before, PageState::Untouched);
    EXPECT_EQ(tr.after, PageState::PrivateRo);
    EXPECT_EQ(pt.ownerOf(pageA), 0);

    tr = pt.touch(1, pageB, AccessType::Write);
    EXPECT_EQ(tr.after, PageState::PrivateRw);
    EXPECT_EQ(pt.ownerOf(pageB), 1);
}

TEST(PageTable, OwnerWriteUpgradesWithMinorFault)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Read);
    const auto tr = pt.touch(0, pageA, AccessType::Write);
    EXPECT_EQ(tr.after, PageState::PrivateRw);
    EXPECT_TRUE(tr.minorFault);
    EXPECT_FALSE(tr.becameUnsafe);
}

TEST(PageTable, SecondReaderMakesSharedRoStillSafe)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Read);
    const auto tr = pt.touch(1, pageA, AccessType::Read);
    EXPECT_EQ(tr.after, PageState::SharedRo);
    EXPECT_FALSE(tr.becameUnsafe);
    EXPECT_TRUE(pageStateSafe(tr.after));
}

TEST(PageTable, WriteToSharedRoIsUnsafeTransition)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Read);
    pt.touch(1, pageA, AccessType::Read);
    const auto tr = pt.touch(0, pageA, AccessType::Write);
    EXPECT_EQ(tr.after, PageState::SharedRw);
    EXPECT_TRUE(tr.becameUnsafe);
}

TEST(PageTable, SecondThreadOnPrivateRwIsUnsafe)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Write);
    const auto tr = pt.touch(1, pageA, AccessType::Read);
    EXPECT_EQ(tr.after, PageState::SharedRw);
    EXPECT_TRUE(tr.becameUnsafe);
}

TEST(PageTable, PreservePolicyDemotesToSharedRo)
{
    PageTable pt(/*preserve_read_only=*/true);
    pt.touch(0, pageA, AccessType::Write);
    const auto tr = pt.touch(1, pageA, AccessType::Read);
    EXPECT_EQ(tr.after, PageState::SharedRo);
    EXPECT_FALSE(tr.becameUnsafe);
    EXPECT_TRUE(tr.minorFault);
    // The owner's next write now triggers the unsafe transition.
    const auto tr2 = pt.touch(0, pageA, AccessType::Write);
    EXPECT_EQ(tr2.after, PageState::SharedRw);
    EXPECT_TRUE(tr2.becameUnsafe);
}

TEST(PageTable, SharedRwIsAbsorbing)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Write);
    pt.touch(1, pageA, AccessType::Write);
    for (ThreadId t = 0; t < 4; ++t) {
        const auto tr = pt.touch(t, pageA, AccessType::Write);
        EXPECT_EQ(tr.after, PageState::SharedRw);
        EXPECT_FALSE(tr.becameUnsafe);
        EXPECT_FALSE(tr.stateChanged);
    }
}

TEST(PageTable, CountsSafePages)
{
    PageTable pt;
    pt.touch(0, pageA, AccessType::Read); // private-ro: safe
    pt.touch(0, pageB, AccessType::Write);
    pt.touch(1, pageB, AccessType::Write); // shared-rw: unsafe
    EXPECT_EQ(pt.totalPages(), 2u);
    EXPECT_EQ(pt.countPages(true), 1u);
}

TEST(Tlb, InsertLookupEvict)
{
    Tlb tlb(2);
    tlb.insert(1, PageState::PrivateRo);
    tlb.insert(2, PageState::SharedRo);
    PageState st;
    EXPECT_TRUE(tlb.lookup(1, &st));
    EXPECT_EQ(st, PageState::PrivateRo);
    // 2 is now LRU; inserting 3 evicts it.
    tlb.insert(3, PageState::SharedRw);
    EXPECT_FALSE(tlb.contains(2));
    EXPECT_TRUE(tlb.contains(1));
    EXPECT_TRUE(tlb.contains(3));
}

TEST(Tlb, InvalidateAndUpdate)
{
    Tlb tlb(4);
    tlb.insert(7, PageState::PrivateRw);
    EXPECT_TRUE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.invalidate(7));
    tlb.insert(8, PageState::PrivateRo);
    tlb.updateState(8, PageState::SharedRo);
    PageState st;
    tlb.lookup(8, &st);
    EXPECT_EQ(st, PageState::SharedRo);
}

TEST(Vm, DisabledClassificationOnlyModelsTlb)
{
    VmConfig cfg;
    cfg.dynamicClassification = false;
    Vm vm(cfg);
    const int c = vm.addContext();
    auto r = vm.translate(c, 0, pageA, AccessType::Read);
    EXPECT_FALSE(r.safeRead);
    EXPECT_EQ(r.cost, cfg.pageWalkCycles); // TLB miss walk
    r = vm.translate(c, 0, pageA, AccessType::Read);
    EXPECT_EQ(r.cost, 0u); // TLB hit
    EXPECT_FALSE(r.becameUnsafe);
}

TEST(Vm, SafeReadFlagFollowsPageState)
{
    Vm vm(VmConfig{});
    const int c0 = vm.addContext();
    const int c1 = vm.addContext();

    auto r = vm.translate(c0, 0, pageA, AccessType::Read);
    EXPECT_TRUE(r.safeRead); // private-ro

    r = vm.translate(c1, 1, pageA, AccessType::Read);
    EXPECT_TRUE(r.safeRead); // shared-ro

    r = vm.translate(c1, 1, pageA, AccessType::Write);
    EXPECT_TRUE(r.becameUnsafe);

    r = vm.translate(c0, 0, pageA, AccessType::Read);
    EXPECT_FALSE(r.safeRead); // shared-rw
}

TEST(Vm, WritesAreNeverDynamicallySafe)
{
    Vm vm(VmConfig{});
    const int c = vm.addContext();
    const auto r = vm.translate(c, 0, pageA, AccessType::Write);
    EXPECT_FALSE(r.safeRead);
}

TEST(Vm, ShootdownChargesCachingContextsOnly)
{
    VmConfig cfg;
    Vm vm(cfg);
    const int c0 = vm.addContext();
    const int c1 = vm.addContext();
    const int c2 = vm.addContext();

    // c0 and c1 cache the translation; c2 never touches the page.
    vm.translate(c0, 0, pageA, AccessType::Read);
    vm.translate(c1, 1, pageA, AccessType::Read);

    const auto r = vm.translate(c1, 1, pageA, AccessType::Write);
    ASSERT_TRUE(r.becameUnsafe);
    EXPECT_GE(r.cost, cfg.shootdownInitiatorCycles);
    ASSERT_EQ(r.slaveCosts.size(), 1u);
    EXPECT_EQ(r.slaveCosts[0].first, c0);
    EXPECT_EQ(r.slaveCosts[0].second, cfg.shootdownSlaveCycles);
    (void)c2;
}

TEST(Vm, MinorFaultChargedOnOwnerUpgrade)
{
    VmConfig cfg;
    Vm vm(cfg);
    const int c = vm.addContext();
    vm.translate(c, 0, pageA, AccessType::Read);
    const auto r = vm.translate(c, 0, pageA, AccessType::Write);
    EXPECT_FALSE(r.becameUnsafe);
    EXPECT_EQ(r.cost, cfg.minorFaultCycles);
}

TEST(Vm, FastPathSkipsWalkOnStableStates)
{
    Vm vm(VmConfig{});
    const int c = vm.addContext();
    vm.translate(c, 0, pageA, AccessType::Read);
    const auto before = vm.statGroup().counter("tlb_hits").value();
    // Repeated reads of a private-ro page hit the TLB fast path.
    for (int i = 0; i < 5; ++i) {
        const auto r = vm.translate(c, 0, pageA, AccessType::Read);
        EXPECT_TRUE(r.safeRead);
        EXPECT_EQ(r.cost, 0u);
    }
    EXPECT_EQ(vm.statGroup().counter("tlb_hits").value(), before + 5);
}

TEST(Vm, BenignTransitionUpdatesRemoteTlbInPlace)
{
    Vm vm(VmConfig{});
    const int c0 = vm.addContext();
    const int c1 = vm.addContext();
    vm.translate(c0, 0, pageA, AccessType::Read);     // private-ro @ c0
    vm.translate(c1, 1, pageA, AccessType::Read);     // -> shared-ro
    // c0's cached entry must now be shared-ro: a write by thread 0 has
    // to take the slow path and flag the unsafe transition.
    const auto r = vm.translate(c0, 0, pageA, AccessType::Write);
    EXPECT_TRUE(r.becameUnsafe);
}

TEST(Vm, TlbEvictionForcesRewalk)
{
    VmConfig cfg;
    cfg.tlbEntries = 2;
    Vm vm(cfg);
    const int c = vm.addContext();
    vm.translate(c, 0, 0x10000, AccessType::Read);
    vm.translate(c, 0, 0x20000, AccessType::Read);
    vm.translate(c, 0, 0x30000, AccessType::Read); // evicts 0x10000
    const auto r = vm.translate(c, 0, 0x10000, AccessType::Read);
    EXPECT_EQ(r.cost, cfg.pageWalkCycles); // rewalk, state preserved
    EXPECT_TRUE(r.safeRead);
}

TEST(Vm, PreserveCountsRemoteDemotionFault)
{
    VmConfig cfg;
    cfg.preserveReadOnly = true;
    Vm vm(cfg);
    const int c0 = vm.addContext();
    const int c1 = vm.addContext();
    vm.translate(c0, 0, 0x10000, AccessType::Write); // private-rw @ t0
    const auto r = vm.translate(c1, 1, 0x10000, AccessType::Read);
    EXPECT_TRUE(r.safeRead); // demoted to shared-ro, still safe
    EXPECT_FALSE(r.becameUnsafe);
    EXPECT_GE(r.cost, cfg.minorFaultCycles);
}

// ---- translateFast: the memoized classification probe --------------

TEST(Vm, TranslateFastHitMatchesTranslateAndCountsAsTlbHit)
{
    Vm vm(VmConfig{});
    const int c = vm.addContext();
    vm.translate(c, 0, pageA, AccessType::Read); // fill TLB + memo
    const auto before = vm.statGroup().counter("tlb_hits").value();

    TranslateResult fast;
    ASSERT_TRUE(vm.translateFast(c, pageA + 64, AccessType::Read, fast));
    const auto slow = vm.translate(c, 0, pageA + 128, AccessType::Read);
    EXPECT_EQ(fast.safeRead, slow.safeRead);
    EXPECT_EQ(fast.revocable, slow.revocable);
    EXPECT_EQ(fast.cost, 0u);
    EXPECT_EQ(fast.pageNum, slow.pageNum);
    // Both paths bill the same counter.
    EXPECT_EQ(vm.statGroup().counter("tlb_hits").value(), before + 2);
}

TEST(Vm, TranslateFastMissesOnColdAndTransitioningAccesses)
{
    Vm vm(VmConfig{});
    const int c = vm.addContext();
    TranslateResult r;
    // Cold page: no memo yet.
    EXPECT_FALSE(vm.translateFast(c, pageA, AccessType::Read, r));
    vm.translate(c, 0, pageA, AccessType::Read); // private-ro
    // A write to private-ro transitions the FSM: must take translate().
    EXPECT_FALSE(vm.translateFast(c, pageA, AccessType::Write, r));
    vm.translate(c, 0, pageA, AccessType::Write); // now private-rw
    // Writes to private-rw are stable: fast path applies.
    EXPECT_TRUE(vm.translateFast(c, pageA, AccessType::Write, r));
    EXPECT_FALSE(r.safeRead);
}

TEST(Vm, TranslateFastInvalidatedByShootdown)
{
    Vm vm(VmConfig{});
    const int c0 = vm.addContext();
    const int c1 = vm.addContext();
    vm.translate(c0, 0, pageA, AccessType::Read);
    vm.translate(c1, 1, pageA, AccessType::Read); // shared-ro everywhere
    TranslateResult r;
    ASSERT_TRUE(vm.translateFast(c1, pageA, AccessType::Read, r));
    EXPECT_TRUE(r.safeRead);

    // Thread 0 writes: unsafe transition shoots down c1's TLB entry and
    // must kill its memo too.
    vm.translate(c0, 0, pageA, AccessType::Write);
    EXPECT_FALSE(vm.translateFast(c1, pageA, AccessType::Read, r));
    const auto ref = vm.translate(c1, 1, pageA, AccessType::Read);
    EXPECT_FALSE(ref.safeRead); // shared-rw now
}

TEST(Vm, TranslateFastInvalidatedByTlbEviction)
{
    VmConfig cfg;
    cfg.tlbEntries = 2;
    Vm vm(cfg);
    const int c = vm.addContext();
    vm.translate(c, 0, 0x10000, AccessType::Read);
    vm.translate(c, 0, 0x20000, AccessType::Read);
    TranslateResult r;
    ASSERT_TRUE(vm.translateFast(c, 0x10000, AccessType::Read, r));
    vm.translate(c, 0, 0x20000, AccessType::Read); // refresh 0x20000
    vm.translate(c, 0, 0x30000, AccessType::Read); // evicts 0x10000
    // The memoized entry for the evicted page must be gone: a fast
    // probe that succeeded here would skip the page-walk cost.
    EXPECT_FALSE(vm.translateFast(c, 0x10000, AccessType::Read, r));
}

TEST(Vm, TranslateFastInvalidatedByAnnotation)
{
    Vm vm(VmConfig{});
    const int c = vm.addContext();
    vm.translate(c, 0, pageA, AccessType::Read); // private-ro, revocable
    TranslateResult r;
    ASSERT_TRUE(vm.translateFast(c, pageA, AccessType::Read, r));
    EXPECT_TRUE(r.revocable);

    vm.annotateRange(pageA, 64); // irrevocably safe now
    // The in-place TLB state change must kill the stale memo.
    EXPECT_FALSE(vm.translateFast(c, pageA, AccessType::Read, r));
    const auto ref = vm.translate(c, 0, pageA, AccessType::Read);
    EXPECT_TRUE(ref.safeRead);
    EXPECT_FALSE(ref.revocable);
    // After the refill, the fast path must agree with the annotation.
    ASSERT_TRUE(vm.translateFast(c, pageA, AccessType::Read, r));
    EXPECT_TRUE(r.safeRead);
    EXPECT_FALSE(r.revocable);
}

TEST(Vm, TranslationCacheDisabledNeverFastPaths)
{
    VmConfig cfg;
    cfg.translationCache = false;
    Vm vm(cfg);
    const int c = vm.addContext();
    vm.translate(c, 0, pageA, AccessType::Read);
    TranslateResult r;
    EXPECT_FALSE(vm.translateFast(c, pageA, AccessType::Read, r));
}
