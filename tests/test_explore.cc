/**
 * @file
 * Schedule-explorer tests: default-controller bit-identity against the
 * controller-free scheduler paths, plan replay determinism, fork-vs-
 * scratch branch identity, schedule-file round-trips, the seeded-bug
 * catches (hint-oracle race, lazy lock subscription, convoy livelock),
 * DPOR pruning soundness, and scheduler-index wake edge cases under a
 * non-default tie-break.
 */

#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hintm.hh"
#include "sim/explorer.hh"
#include "sim/sched_index.hh"
#include "sim/schedule.hh"
#include "sim/snapshot.hh"
#include "sim/trace_check.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

void
expectSameResult(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.committedTxs, b.committedTxs);
    EXPECT_EQ(a.fallbackRuns, b.fallbackRuns);
    EXPECT_EQ(a.htm.begins, b.htm.begins);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    for (unsigned r = 0; r < htm::numAbortReasons; ++r) {
        EXPECT_EQ(a.htm.aborts[r], b.htm.aborts[r]) << "reason " << r;
        EXPECT_EQ(a.htm.cyclesLost[r], b.htm.cyclesLost[r]);
    }
    EXPECT_EQ(a.subscriptionViolations, b.subscriptionViolations);
    EXPECT_EQ(a.pageModeOverheadCycles, b.pageModeOverheadCycles);
    EXPECT_EQ(a.safePages, b.safePages);
    EXPECT_EQ(a.totalPages, b.totalPages);
    EXPECT_EQ(a.finalGlobals, b.finalGlobals);
    if (a.journal && b.journal) {
        const TxJournal::Totals &ta = a.journal->totals();
        const TxJournal::Totals &tb = b.journal->totals();
        EXPECT_EQ(ta.commits, tb.commits);
        EXPECT_EQ(ta.fallbackCommits, tb.fallbackCommits);
        EXPECT_EQ(ta.totalAborts(), tb.totalAborts());
        EXPECT_EQ(ta.cyclesLostToAborts, tb.cyclesLostToAborts);
        EXPECT_EQ(a.journal->size(), b.journal->size());
    }
}

core::SystemOptions
convoyOptions()
{
    core::SystemOptions so;
    so.mechanism = core::Mechanism::Baseline;
    so.journal = true;
    so.maxRetries = 2; // low, so the fallback lock sees traffic
    return so;
}

core::SystemOptions
hintraceOptions()
{
    core::SystemOptions so;
    so.mechanism = core::Mechanism::StaticOnly;
    so.hintOracle = true;
    so.journal = true;
    so.maxRetries = 2;
    return so;
}

std::multiset<std::string>
fatalKinds(const sim::ExploreReport &rep)
{
    std::multiset<std::string> kinds;
    for (const sim::ExploreIssue &is : rep.issues) {
        if (is.violation.fatal)
            kinds.insert(is.violation.kind);
    }
    return kinds;
}

} // namespace

/**
 * Attaching the default controller must not change anything: the
 * controlled scheduler loop with the rotate-from-rr tie-break has to be
 * bit-identical to both controller-free paths (indexed and reference
 * scan) on every kernel of the suite.
 */
class DefaultControllerEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DefaultControllerEquivalence, MatchesControllerFreeRun)
{
    workloads::Workload w1 =
        workloads::byName(GetParam(), workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::byName(GetParam(), workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    opts.journal = true;
    const sim::RunResult ref =
        core::simulate(opts, w1.module, w1.threads);

    sim::DefaultScheduleController ctrl;
    sim::MachineConfig cfg = core::makeMachineConfig(opts);
    cfg.scheduleController = &ctrl;
    const sim::RunResult controlled =
        sim::runMachine(cfg, w2.module, w2.threads);
    expectSameResult(controlled, ref);

    // And through the reference O(contexts) scan as well.
    cfg.schedIndex = false;
    const sim::RunResult scanned =
        sim::runMachine(cfg, w2.module, w2.threads);
    expectSameResult(scanned, ref);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DefaultControllerEquivalence,
                         ::testing::ValuesIn(workloads::allNames()));

/** The same preemption plan must reproduce the same trace, run after
 * run — the replay contract behind every schedule file. */
TEST(PlanReplay, SamePlanIsByteIdentical)
{
    const std::vector<std::uint32_t> plan = {0};
    sim::RunResult r[2];
    std::uint32_t decisions[2] = {};
    for (int i = 0; i < 2; ++i) {
        workloads::Workload wl =
            workloads::buildHintRace(workloads::Scale::Tiny, 0, true);
        sim::PlanScheduleController ctrl;
        ctrl.reset(plan);
        sim::MachineConfig cfg =
            core::makeMachineConfig(hintraceOptions());
        cfg.scheduleController = &ctrl;
        sim::SimRun run(cfg, wl.module, wl.threads);
        r[i] = run.finish();
        decisions[i] = ctrl.nextIndex();
    }
    EXPECT_EQ(decisions[0], decisions[1]);
    expectSameResult(r[0], r[1]);
    EXPECT_FALSE(r[0].oracleWitnesses.empty());
}

/**
 * Branching from a mid-run snapshot (restore + preempt the decision's
 * context) must be bit-identical to replaying the extended plan from a
 * cold start — the property that lets the explorer fork instead of
 * re-running prefixes.
 */
TEST(ExplorerFork, ForkedBranchMatchesScratchReplay)
{
    const std::uint32_t k = 5;
    workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    sim::MachineConfig cfg = core::makeMachineConfig(convoyOptions());

    // Base run: record, and capture the machine at decision k.
    sim::PlanScheduleController ctrl;
    cfg.scheduleController = &ctrl;
    ctrl.reset({});
    std::shared_ptr<const sim::MachineSnapshot> snap;
    unsigned preempt_ctx = 0;
    sim::SimRun base(cfg, wl.module, wl.threads);
    ctrl.hook = [&](const sim::SchedDecision &d, std::uint32_t idx) {
        if (idx == k) {
            snap = std::make_shared<sim::MachineSnapshot>(
                base.snapshot());
            preempt_ctx = d.ctx;
        }
    };
    base.finish();
    ctrl.hook = nullptr;
    ASSERT_TRUE(snap) << "base trace never reached decision " << k;

    // Scratch: cold start, full plan.
    sim::PlanScheduleController sctrl;
    sctrl.reset({k});
    sim::MachineConfig scfg = core::makeMachineConfig(convoyOptions());
    scfg.scheduleController = &sctrl;
    sim::SimRun scratch(scfg, wl.module, wl.threads);
    const sim::RunResult a = scratch.finish();

    // Fork: restore the snapshot and apply the preemption.
    sim::PlanScheduleController fctrl;
    fctrl.reset({k}, k + 1);
    sim::MachineConfig fcfg = core::makeMachineConfig(convoyOptions());
    fcfg.scheduleController = &fctrl;
    sim::SimRun fork(fcfg, wl.module, wl.threads);
    fork.restore(*snap);
    fork.preemptContext(preempt_ctx);
    const sim::RunResult b = fork.finish();

    expectSameResult(a, b);
    EXPECT_EQ(sctrl.nextIndex(), fctrl.nextIndex());
}

TEST(ScheduleFile, RoundTripsAndRejectsGarbage)
{
    sim::ScheduleFile sf;
    sf.workload = "hintrace-bug";
    sf.config = "scale=tiny threads=0 retries=2 bug=1";
    sf.seed = 7;
    sf.decisions = 29;
    sf.preemptAt = {0, 27};
    const std::string path =
        ::testing::TempDir() + "/explore_roundtrip.sched";
    ASSERT_TRUE(sim::writeScheduleFile(path, sf));

    sim::ScheduleFile in;
    ASSERT_TRUE(sim::readScheduleFile(path, in));
    EXPECT_EQ(in.workload, sf.workload);
    EXPECT_EQ(in.config, sf.config);
    EXPECT_EQ(in.seed, sf.seed);
    EXPECT_EQ(in.decisions, sf.decisions);
    EXPECT_EQ(in.preemptAt, sf.preemptAt);

    const std::string bad = ::testing::TempDir() + "/explore_bad.sched";
    std::FILE *f = std::fopen(bad.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a schedule\n", f);
    std::fclose(f);
    EXPECT_FALSE(sim::readScheduleFile(bad, in));
    EXPECT_FALSE(sim::readScheduleFile("/nonexistent/x.sched", in));
}

/** The wrong safe hint on the guarded read must surface as a
 * hint-oracle violation within preemption bound 2; the clean variant
 * must explore silently under the same options. */
TEST(ExplorerCatches, SeededHintOracleRaceAtBoundTwo)
{
    sim::ExploreOptions opt;
    opt.preemptionBound = 2;
    opt.compareFinalState = false; // guarded reads: schedule-dependent
    const sim::MachineConfig cfg =
        core::makeMachineConfig(hintraceOptions());

    workloads::Workload bug =
        workloads::buildHintRace(workloads::Scale::Tiny, 0, true);
    const sim::ExploreReport rep =
        sim::exploreSchedules(cfg, bug.module, bug.threads, opt);
    EXPECT_TRUE(rep.anyFatal());
    EXPECT_TRUE(fatalKinds(rep).count("hint-oracle"));
    // Every violation carries a replayable plan within the bound.
    for (const sim::ExploreIssue &is : rep.issues)
        EXPECT_LE(is.plan.size(), 2u);
    // Oracle configs cannot fork (shadow state is outside snapshots).
    EXPECT_EQ(rep.snapshotForks, 0u);
    EXPECT_GT(rep.scratchReplays, 0u);

    workloads::Workload clean =
        workloads::buildHintRace(workloads::Scale::Tiny, 0, false);
    const sim::ExploreReport ok =
        sim::exploreSchedules(cfg, clean.module, clean.threads, opt);
    EXPECT_FALSE(ok.anyFatal());
    EXPECT_TRUE(fatalKinds(ok).empty());
}

/** Lazy lock subscription must surface as a subscription violation
 * within bound 2; the sound convoy must not, but must report the
 * bounded-livelock convoy warning. */
TEST(ExplorerCatches, SeededLazySubscriptionAtBoundTwo)
{
    sim::ExploreOptions opt;
    opt.preemptionBound = 2;
    opt.maxSchedules = 512; // the bug shows up long before the cap
    sim::MachineConfig cfg = core::makeMachineConfig(convoyOptions());
    cfg.unsafeLazySubscription = true;

    workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    const sim::ExploreReport rep =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);
    EXPECT_TRUE(rep.anyFatal());
    EXPECT_TRUE(fatalKinds(rep).count("subscription"));
    EXPECT_GT(rep.snapshotForks, 0u); // no oracle: forking allowed
}

TEST(ExplorerCatches, CleanConvoyPassesWithLivelockWarning)
{
    sim::ExploreOptions opt;
    opt.preemptionBound = 1;
    opt.livelockThreshold = 8;
    const sim::MachineConfig cfg =
        core::makeMachineConfig(convoyOptions());

    workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    const sim::ExploreReport rep =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);
    EXPECT_FALSE(rep.anyFatal());
    bool livelock = false;
    for (const sim::ExploreIssue &is : rep.issues) {
        if (is.violation.kind == "livelock") {
            EXPECT_FALSE(is.violation.fatal);
            livelock = true;
        }
    }
    EXPECT_TRUE(livelock)
        << "expected at least one convoy warning across "
        << rep.schedulesRun << " schedules";
}

/** The independence filter must cut the schedule count without losing
 * any violation class the naive enumeration finds. */
TEST(ExplorerDpor, PrunesSchedulesWithoutLosingViolations)
{
    sim::ExploreOptions opt;
    opt.preemptionBound = 2;
    opt.compareFinalState = false;
    const sim::MachineConfig cfg =
        core::makeMachineConfig(hintraceOptions());
    workloads::Workload wl =
        workloads::buildHintRace(workloads::Scale::Tiny, 0, true);

    const sim::ExploreReport pruned =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);
    opt.dpor = false;
    const sim::ExploreReport naive =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);

    EXPECT_GT(pruned.branchesPruned, 0u);
    EXPECT_EQ(naive.branchesPruned, 0u);
    EXPECT_LT(pruned.schedulesRun, naive.schedulesRun);

    // Same violation *classes* on both sides (DPOR guarantees a
    // representative of every bug, not the same schedule multiset).
    std::set<std::string> pk, nk;
    for (const std::string &k : fatalKinds(pruned))
        pk.insert(k);
    for (const std::string &k : fatalKinds(naive))
        nk.insert(k);
    EXPECT_EQ(pk, nk);
    EXPECT_TRUE(pk.count("hint-oracle"));
}

/** Exploration fans out over host threads without changing the report:
 * the merge is in deterministic branch order. */
TEST(ExplorerJobs, ParallelMatchesSequential)
{
    sim::ExploreOptions opt;
    opt.preemptionBound = 1; // stay under maxSchedules: a binding cap
                             // makes *which* branches get dropped
                             // depend on worker arrival order
    const sim::MachineConfig cfg =
        core::makeMachineConfig(convoyOptions());
    workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);

    const sim::ExploreReport seq =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);
    opt.jobs = 4;
    const sim::ExploreReport par =
        sim::exploreSchedules(cfg, wl.module, wl.threads, opt);

    EXPECT_EQ(seq.branchPoints, par.branchPoints);
    EXPECT_EQ(seq.branchesPruned, par.branchesPruned);
    EXPECT_EQ(fatalKinds(seq), fatalKinds(par));
}

// ---------------------------------------------------------------------
// Scheduler-index wake edges under a non-default tie-break chooser.
// ---------------------------------------------------------------------

namespace
{

/** Deliberately not the rotate-from-rr default: highest set bit. */
unsigned
highestBit(std::uint64_t mask, unsigned)
{
    return 63u - unsigned(std::countl_zero(mask));
}

} // namespace

TEST(SchedIndexWake, WakeOfRetiredContextIsIgnored)
{
    sim::SchedIndex idx;
    // 20 contexts forces the heap path (dense mode covers <= 16).
    idx.reset(20);
    for (unsigned c = 0; c < 20; ++c)
        idx.sync(c, false, false, 5);
    idx.retire(3);
    idx.setReady(3, 0); // stale wake of a finished context
    const sim::SchedIndex::Pick p = idx.pick(0, highestBit);
    EXPECT_EQ(p.winner, 19);
    EXPECT_EQ(p.key, 5u);
}

TEST(SchedIndexWake, DoubleWakeInOneStepLastKeyWins)
{
    sim::SchedIndex idx;
    idx.reset(20);
    for (unsigned c = 0; c < 20; ++c)
        idx.sync(c, false, false, 10);
    // Context 7 publishes twice before the next pick (e.g. a barrier
    // release immediately re-priced by a preemption rebuild): only the
    // final key may be observable.
    idx.setReady(7, 2);
    idx.setReady(7, 4);
    sim::SchedIndex::Pick p = idx.pick(0, highestBit);
    EXPECT_EQ(p.winner, 7);
    EXPECT_EQ(p.key, 4u);
    // After consuming 7's entry the stale key-2 entry must not
    // resurface: the runner-up is the key-10 crowd.
    idx.setReady(7, 20);
    p = idx.pick(0, highestBit);
    EXPECT_EQ(p.key, 10u);
    EXPECT_EQ(p.winner, 19);
}

TEST(SchedIndexWake, DenseModeHonorsChooser)
{
    sim::SchedIndex idx;
    idx.reset(4); // dense mode
    for (unsigned c = 0; c < 4; ++c)
        idx.sync(c, false, false, 1);
    const sim::SchedIndex::Pick p = idx.pick(1, highestBit);
    EXPECT_EQ(p.winner, 3);
    // The default chooser from the same state rotates from rr instead.
    sim::SchedIndex idx2;
    idx2.reset(4);
    for (unsigned c = 0; c < 4; ++c)
        idx2.sync(c, false, false, 1);
    EXPECT_EQ(idx2.pick(1).winner, 1);
}

/** Restoring a snapshot mid-branch rebuilds the index from context
 * state: a run driven restore -> finish twice must be identical. */
TEST(SchedIndexWake, SnapshotRestoreMidBranchIsRepeatable)
{
    workloads::Workload wl =
        workloads::buildConvoy(workloads::Scale::Tiny, 0);
    sim::PlanScheduleController ctrl;
    ctrl.reset({3});
    sim::MachineConfig cfg = core::makeMachineConfig(convoyOptions());
    cfg.scheduleController = &ctrl;
    sim::SimRun run(cfg, wl.module, wl.threads);
    run.runUntilCommits(4);
    const sim::MachineSnapshot snap = run.snapshot();

    ctrl.reset({3}, ctrl.nextIndex());
    const std::uint32_t mark = ctrl.nextIndex();
    run.restore(snap);
    const sim::RunResult a = run.finish();
    const std::uint32_t da = ctrl.nextIndex();

    ctrl.reset({3}, mark);
    run.restore(snap);
    const sim::RunResult b = run.finish();
    expectSameResult(a, b);
    EXPECT_EQ(da, ctrl.nextIndex());
}
