/**
 * @file
 * End-to-end integration tests: small TxIR programs run on the full
 * machine (interpreter + VM + MESI hierarchy + HTM) under every HTM kind
 * and HinTM mechanism. The core invariant: whatever the abort/retry
 * history, committed results must equal the serial semantics.
 */

#include <gtest/gtest.h>

#include "core/hintm.hh"
#include "sim/machine.hh"
#include "tir/builder.hh"
#include "tir/interp.hh"
#include "tir/verifier.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

/** threads x iters transactional increments of one shared counter. */
Module
counterModule(int iters)
{
    Module m;
    m.globals.push_back({"counter", 8, 0});

    FunctionBuilder tf(m, "worker", 1);
    tf.forRangeI(0, iters, [&](Reg) {
        tf.txBegin();
        const Reg g = tf.globalAddr("counter");
        const Reg v = tf.load(g);
        tf.store(g, tf.addI(v, 1));
        tf.txEnd();
    });
    tf.retVoid();
    m.threadFunc = tf.finish();
    return m;
}

/** Each thread sums a private heap array inside TXs, writing the result
 * to its own slot of a shared result array. */
Module
privateSumModule(int n)
{
    Module m;
    m.globals.push_back({"results", 8 * 32, 0});

    FunctionBuilder tf(m, "worker", 1);
    const Reg tid = tf.param(0);
    const Reg buf = tf.mallocI(std::uint64_t(n) * 8);
    tf.forRangeI(0, n, [&](Reg i) {
        tf.store(tf.gep(buf, i, 8), tf.add(i, tid));
    });
    const Reg acc = tf.freshVar();
    tf.setI(acc, 0);
    tf.txBegin();
    tf.forRangeI(0, n, [&](Reg i) {
        tf.set(acc, tf.add(acc, tf.load(tf.gep(buf, i, 8))));
    });
    tf.store(tf.gep(tf.globalAddr("results"), tid, 8), acc);
    tf.txEnd();
    tf.freePtr(buf);
    tf.retVoid();
    m.threadFunc = tf.finish();
    return m;
}

} // namespace

TEST(SimVerify, ModulesVerify)
{
    Module m1 = counterModule(10);
    EXPECT_FALSE(tir::verify(m1).has_value())
        << *tir::verify(m1);
    Module m2 = privateSumModule(64);
    EXPECT_FALSE(tir::verify(m2).has_value()) << *tir::verify(m2);
}

class SimEndToEnd
    : public ::testing::TestWithParam<std::tuple<htm::HtmKind,
                                                 core::Mechanism>>
{
};

TEST_P(SimEndToEnd, CounterIsAtomic)
{
    const auto [kind, mech] = GetParam();
    Module m = counterModule(50);
    core::compileHints(m);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = mech;
    opts.validateSafeStores = true;
    const unsigned threads = 8;

    sim::RunResult res = core::simulate(opts, m, threads);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_EQ(res.committedTxs, threads * 50u);
    // Atomicity: every increment must survive, whatever the abort mix.
    EXPECT_EQ(res.finalGlobals.at("counter")[0], 8 * 50);
    EXPECT_GT(res.htm.commits + res.fallbackRuns, 0u);
}

TEST_P(SimEndToEnd, PrivateSumsCommit)
{
    const auto [kind, mech] = GetParam();
    Module m = privateSumModule(128);
    core::compileHints(m);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = mech;
    opts.validateSafeStores = true;

    sim::RunResult res = core::simulate(opts, m, 8);
    EXPECT_EQ(res.committedTxs, 8u);
    // 128 words = 16 blocks: fits even P8, so no capacity aborts.
    EXPECT_EQ(res.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    // Each thread's sum: sum_{i<128}(i + tid) = 8128 + 128*tid.
    const auto &results = res.finalGlobals.at("results");
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(results[std::size_t(t)], 8128 + 128 * t) << "tid " << t;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SimEndToEnd,
    ::testing::Combine(
        ::testing::Values(htm::HtmKind::P8, htm::HtmKind::P8S,
                          htm::HtmKind::L1TM, htm::HtmKind::InfCap),
        ::testing::Values(core::Mechanism::Baseline,
                          core::Mechanism::StaticOnly,
                          core::Mechanism::DynamicOnly,
                          core::Mechanism::Full)));

TEST(SimCapacity, BigTxCapacityAbortsOnP8Only)
{
    // One TX touching 200 distinct blocks: overflows P8 (64), fits
    // InfCap.
    Module m;
    m.globals.push_back({"sink", 8, 0});
    FunctionBuilder tf(m, "worker", 1);
    const Reg buf = tf.mallocI(200 * 64);
    const Reg acc = tf.freshVar();
    tf.setI(acc, 0);
    tf.txBegin();
    tf.forRangeI(0, 200, [&](Reg i) {
        tf.set(acc, tf.add(acc, tf.load(tf.gep(buf, i, 64))));
    });
    tf.store(tf.globalAddr("sink"), acc);
    tf.txEnd();
    tf.freePtr(buf);
    tf.retVoid();
    m.threadFunc = tf.finish();

    core::SystemOptions p8;
    p8.htmKind = htm::HtmKind::P8;
    sim::RunResult r1 = core::simulate(p8, m, 1);
    EXPECT_GT(r1.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_EQ(r1.fallbackRuns, 1u);
    EXPECT_EQ(r1.committedTxs, 1u);

    core::SystemOptions inf;
    inf.htmKind = htm::HtmKind::InfCap;
    sim::RunResult r2 = core::simulate(inf, m, 1);
    EXPECT_EQ(r2.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_EQ(r2.fallbackRuns, 0u);
    EXPECT_EQ(r2.htm.commits, 1u);
}

TEST(SimCapacity, StaticHintsAvoidCapacityAbort)
{
    // Thread-private buffer read inside the TX: HinTM-st marks the loads
    // safe, so the footprint shrinks below P8 capacity.
    Module m = privateSumModule(1024); // 128 blocks > 64
    const auto report = core::compileHints(m);
    EXPECT_GT(report.safeLoads, 0u);

    core::SystemOptions base;
    base.htmKind = htm::HtmKind::P8;
    sim::RunResult r1 = core::simulate(base, m, 4);
    EXPECT_GT(r1.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);

    core::SystemOptions st = base;
    st.mechanism = core::Mechanism::StaticOnly;
    sim::RunResult r2 = core::simulate(st, m, 4);
    EXPECT_EQ(r2.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_LT(r2.cycles, r1.cycles);
}

// ---- sharing profiler ----------------------------------------------

TEST(SharingProfiler, OverflowTidsSaturateToUnknown)
{
    // Tids past the 64 tracked bitmask slots used to alias via an
    // undefined shift; they must set no bit and poison the region to
    // "unknown" (conservatively unsafe) instead.
    sim::SharingProfiler p;
    p.record(0, 0x1000, AccessType::Read, true);
    p.record(70, 0x1000, AccessType::Read, true);  // overflow tid
    p.record(0, 0x2000, AccessType::Write, false); // private, tracked

    const sim::SharingSummary s = p.blockSummary();
    EXPECT_EQ(s.totalRegions, 2u);
    EXPECT_EQ(s.unknownRegions, 1u);
    // The overflow-touched block is unknown: not safe even though the
    // observed pattern (two readers) looks safe.
    EXPECT_EQ(s.safeRegions, 1u);
    EXPECT_EQ(s.txReads, 2u);
    EXPECT_EQ(s.txReadsToSafe, 0u);
}

TEST(SharingProfiler, DistinctOverflowTidsShareOneBucket)
{
    // Two different overflow tids set no bits at all; without the
    // unknown flag the region would be miscounted as safe.
    sim::SharingProfiler p;
    p.record(64, 0x1000, AccessType::Write, false);
    p.record(77, 0x1000, AccessType::Read, false);

    const sim::SharingSummary s = p.blockSummary();
    EXPECT_EQ(s.totalRegions, 1u);
    EXPECT_EQ(s.unknownRegions, 1u);
    EXPECT_EQ(s.safeRegions, 0u);
}

TEST(SharingProfiler, TrackedTidsStayExact)
{
    sim::SharingProfiler p;
    p.record(sim::SharingProfiler::maxTrackedTid, 0x1000,
             AccessType::Read, true);
    p.record(3, 0x1000, AccessType::Read, true);

    const sim::SharingSummary s = p.blockSummary();
    EXPECT_EQ(s.totalRegions, 1u);
    EXPECT_EQ(s.unknownRegions, 0u);
    EXPECT_EQ(s.safeRegions, 1u); // read-only sharing is safe
    EXPECT_EQ(s.txReadsToSafe, 2u);
}
