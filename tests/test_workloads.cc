/**
 * @file
 * Workload-suite tests: every kernel verifies, compiles, and commits the
 * expected number of transactions under both a conventional P8 and full
 * HinTM, with workload-specific result invariants checked against the
 * final memory image.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/hintm.hh"
#include "tir/verifier.hh"
#include "workloads/workloads.hh"

using namespace hintm;
using workloads::Scale;
using workloads::Workload;

namespace
{

sim::RunResult
runTiny(Workload &w, core::Mechanism mech,
        htm::HtmKind kind = htm::HtmKind::P8)
{
    core::compileHints(w.module);
    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = mech;
    opts.validateSafeStores = true;
    return core::simulate(opts, w.module, w.threads);
}

std::int64_t
sumSlots(const sim::RunResult &r, const std::string &name, unsigned n)
{
    const auto &v = r.finalGlobals.at(name);
    std::int64_t total = 0;
    for (unsigned t = 0; t < n; ++t)
        total += v[t * 8]; // slots are block-strided (64B = 8 words)
    return total;
}

} // namespace

class WorkloadSuite
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 core::Mechanism>>
{
};

TEST_P(WorkloadSuite, VerifiesAndRuns)
{
    const auto [name, mech] = GetParam();
    Workload w = workloads::byName(name, Scale::Tiny);
    const auto err = tir::verify(w.module);
    ASSERT_FALSE(err.has_value()) << *err;

    const sim::RunResult r = runTiny(w, mech);
    EXPECT_GT(r.committedTxs, 0u) << name;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::allNames()),
        ::testing::Values(core::Mechanism::Baseline,
                          core::Mechanism::Full)));

TEST(WorkloadInvariants, LabyrinthAccountsEveryItem)
{
    Workload w = workloads::buildLabyrinth(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Full);
    // Every queue item is popped exactly once and either routed or
    // failed.
    EXPECT_EQ(sumSlots(r, "g_routed", w.threads) +
                  sumSlots(r, "g_failed", w.threads),
              10);
}

TEST(WorkloadInvariants, Ssca2DegreesMatchInsertions)
{
    Workload w = workloads::buildSsca2(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Baseline);
    // Inserted edges + dropped edges == total edges. Degrees live in a
    // heap array, so check via the drop counter and commit count.
    EXPECT_EQ(r.committedTxs, 1024u);
}

TEST(WorkloadInvariants, KmeansCommitsEveryAssignment)
{
    Workload w = workloads::buildKmeans(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Baseline);
    EXPECT_EQ(r.committedTxs, 256u); // points * iters
    // Tiny TXs: kmeans must never capacity-abort (paper Fig. 1).
    EXPECT_EQ(r.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
}

TEST(WorkloadInvariants, SSca2NeverCapacityAborts)
{
    Workload w = workloads::buildSsca2(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Baseline);
    EXPECT_EQ(r.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
}

TEST(WorkloadInvariants, GenomeStaticFindsNothing)
{
    // The registry-published scratch buffer must defeat the static pass:
    // the paper reports zero statically-safe accesses for genome.
    Workload w = workloads::buildGenome(Scale::Tiny);
    core::compileHints(w.module);
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::StaticOnly;
    const sim::RunResult r = core::simulate(opts, w.module, w.threads);
    EXPECT_EQ(r.txReadsStaticSafe, 0u);
    EXPECT_EQ(r.txWritesStaticSafe, 0u);
}

TEST(WorkloadInvariants, LabyrinthStaticFindsPrivateGrids)
{
    Workload w = workloads::buildLabyrinth(Scale::Tiny);
    const auto report = core::compileHints(w.module);
    EXPECT_GT(report.safeLoads, 0u);
    EXPECT_GT(report.safeStores, 0u);
    EXPECT_GE(report.safeHeapObjects, 2u); // priv + dist grids

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::StaticOnly;
    opts.validateSafeStores = true;
    const sim::RunResult r = core::simulate(opts, w.module, w.threads);
    EXPECT_GT(r.txReadsStaticSafe, 0u);
    EXPECT_GT(r.txWritesStaticSafe, 0u);
}

TEST(WorkloadInvariants, TpccNoItemLoadsAreStaticSafe)
{
    Workload w = workloads::buildTpccNo(Scale::Tiny);
    core::compileHints(w.module);
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::StaticOnly;
    const sim::RunResult r = core::simulate(opts, w.module, w.threads);
    // The item catalog is read-only in the parallel region.
    EXPECT_GT(r.txReadsStaticSafe, 0u);
}

namespace
{

/** Sum every word of a heap array via the final address-space image is
 * not directly possible (heap isn't dumped), so conservation checks go
 * through globals; intruder/vacation expose per-thread counters. */
std::int64_t
firstSlot(const sim::RunResult &r, const std::string &name)
{
    return r.finalGlobals.at(name)[0];
}

} // namespace

TEST(WorkloadInvariants, IntruderProcessesEveryPacket)
{
    Workload w = workloads::buildIntruder(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Full);
    // 64 packets, each with exactly one pop TX and one detection TX.
    EXPECT_EQ(r.committedTxs, 64u * 2u + w.threads /* final empty pops */);
}

TEST(WorkloadInvariants, VacationSellsEverySession)
{
    Workload w = workloads::buildVacation(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Full);
    EXPECT_EQ(sumSlots(r, "g_sold", w.threads), 8 * 12); // sessions
    EXPECT_EQ(r.committedTxs, 8u * 12u);
}

TEST(WorkloadInvariants, YadaRefinesEveryWorkItem)
{
    Workload w = workloads::buildYada(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Full);
    EXPECT_EQ(sumSlots(r, "g_refined", w.threads), 16);
}

TEST(WorkloadInvariants, ResultsIdenticalAcrossMechanismsWhenSerial)
{
    // With a single thread there is no concurrency: every mechanism must
    // produce bit-identical results for every workload.
    for (const std::string &name : workloads::allNames()) {
        std::vector<std::int64_t> reference;
        for (const core::Mechanism mech :
             {core::Mechanism::Baseline, core::Mechanism::Full}) {
            Workload w = workloads::byName(name, Scale::Tiny);
            core::compileHints(w.module);
            core::SystemOptions opts;
            opts.mechanism = mech;
            opts.validateSafeStores = true;
            const sim::RunResult r = core::simulate(opts, w.module, 1);
            std::vector<std::int64_t> flat;
            for (const auto &kv : r.finalGlobals) {
                // Heap pointers differ run to run only if allocation
                // order changes; single-threaded order is fixed.
                flat.insert(flat.end(), kv.second.begin(),
                            kv.second.end());
            }
            if (reference.empty())
                reference = flat;
            else
                EXPECT_EQ(reference, flat) << name;
        }
    }
}

TEST(WorkloadInvariants, AllScalesBuildAndVerify)
{
    for (const std::string &name : workloads::allNames()) {
        for (const Scale s :
             {Scale::Tiny, Scale::Small, Scale::Large}) {
            Workload w = workloads::byName(name, s);
            const auto err = tir::verify(w.module);
            EXPECT_FALSE(err.has_value())
                << name << ": " << (err ? *err : "");
        }
    }
}

TEST(WorkloadInvariants, FirstSlotHelperCompiles)
{
    Workload w = workloads::buildLabyrinth(Scale::Tiny);
    const sim::RunResult r = runTiny(w, core::Mechanism::Baseline);
    EXPECT_GE(firstSlot(r, "g_qhead"), 10);
}
