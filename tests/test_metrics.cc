/**
 * @file
 * Tests for the capacity-pressure metrics layer: Log2Hist bucketing,
 * the adaptive TimeSeries fold, registry fold-on-close accounting,
 * cross-checks between the registry and the simulator's own HTM
 * statistics, bit-identity of simulation results with metrics on and
 * off, and hint-saved commit detection under capacity pressure.
 */

#include <gtest/gtest.h>

#include "common/metrics.hh"
#include "core/hintm.hh"
#include "htm/abort.hh"
#include "workloads/workloads.hh"

using namespace hintm;

// ---- Log2Hist -------------------------------------------------------

TEST(Log2Hist, BucketBoundaries)
{
    EXPECT_EQ(Log2Hist::bucketOf(0), 0u);
    EXPECT_EQ(Log2Hist::bucketOf(1), 1u);
    EXPECT_EQ(Log2Hist::bucketOf(2), 2u);
    EXPECT_EQ(Log2Hist::bucketOf(3), 2u);
    EXPECT_EQ(Log2Hist::bucketOf(4), 3u);
    EXPECT_EQ(Log2Hist::bucketOf(7), 3u);
    EXPECT_EQ(Log2Hist::bucketOf(8), 4u);
    EXPECT_EQ(Log2Hist::bucketOf(~std::uint64_t(0)),
              Log2Hist::numBuckets - 1);
}

TEST(Log2Hist, AddFoldsCountSumMax)
{
    Log2Hist h;
    EXPECT_TRUE(h.empty());
    h.add(0);
    h.add(3);
    h.add(9);
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.sum, 12u);
    EXPECT_EQ(h.max, 9u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[4], 1u);
}

// ---- TimeSeries -----------------------------------------------------

TEST(TimeSeries, AccumulatesIntoFixedWindows)
{
    TimeSeries ts(100, 8);
    ts.add(0, 5);
    ts.add(50, 2);
    ts.add(150, 7);
    EXPECT_EQ(ts.window(), 100u);
    ASSERT_EQ(ts.samples().size(), 2u);
    EXPECT_EQ(ts.samples()[0], 7u);
    EXPECT_EQ(ts.samples()[1], 7u);
}

TEST(TimeSeries, DoublesWindowAndFoldsPastSlotBudget)
{
    TimeSeries ts(100, 4); // covers [0, 400) initially
    ts.add(50, 1);
    ts.add(150, 2);
    ts.add(250, 4);
    ts.add(350, 8);
    ASSERT_EQ(ts.samples().size(), 4u);

    // A sample at 450 forces one double-and-fold: window 200, adjacent
    // slots merged, then the new sample lands in slot 2.
    ts.add(450, 16);
    EXPECT_EQ(ts.window(), 200u);
    ASSERT_EQ(ts.samples().size(), 3u);
    EXPECT_EQ(ts.samples()[0], 1u + 2u);
    EXPECT_EQ(ts.samples()[1], 4u + 8u);
    EXPECT_EQ(ts.samples()[2], 16u);
}

TEST(TimeSeries, FarFutureSampleFoldsRepeatedly)
{
    TimeSeries ts(1, 2);
    ts.add(0, 1);
    ts.add(1024, 1); // forces ~10 doublings from window 1
    EXPECT_GE(ts.window() * ts.maxSlots(), 1025u);
    std::uint64_t total = 0;
    for (std::uint64_t v : ts.samples())
        total += v;
    EXPECT_EQ(total, 2u); // folding never loses mass
}

TEST(TimeSeries, AddSpanSpreadsOverlap)
{
    TimeSeries ts(100, 8);
    ts.addSpan(50, 250);
    ASSERT_EQ(ts.samples().size(), 3u);
    EXPECT_EQ(ts.samples()[0], 50u);
    EXPECT_EQ(ts.samples()[1], 100u);
    EXPECT_EQ(ts.samples()[2], 50u);
    ts.addSpan(10, 10); // empty span is a no-op
    EXPECT_EQ(ts.samples()[0], 50u);
}

// ---- registry fold-on-close -----------------------------------------

TEST(MetricsRegistry, CommitFoldsSiteAndGlobalAggregates)
{
    MetricsRegistry reg;
    TxMetricsCtx m;
    reg.beginTx(m, 100, 1, 2, 3);
    ASSERT_TRUE(m.open);

    // 3 distinct tracked reads, 1 tracked write, 2 skips of one block.
    reg.onTrackedGrowth(m, true, false, 110);
    reg.onTrackedGrowth(m, true, false, 120);
    reg.onTrackedGrowth(m, true, false, 130);
    reg.onTrackedGrowth(m, false, true, 140);
    reg.onSafeSkip(m, 0x3000, MetricsRegistry::SkipKind::Static);
    reg.onSafeSkip(m, 0x3000, MetricsRegistry::SkipKind::Dynamic);
    reg.closeCommit(m, true);
    EXPECT_FALSE(m.open);

    const auto sites = reg.sitesByPressure();
    ASSERT_EQ(sites.size(), 1u);
    const MetricsRegistry::SiteMetrics &s = *sites[0];
    EXPECT_EQ(s.fn, 1);
    EXPECT_EQ(s.commits, 1u);
    EXPECT_EQ(s.peakTrackedSum, 4u);
    EXPECT_EQ(s.peakTrackedMax, 4u);
    EXPECT_EQ(s.skipStatic, 1u);
    EXPECT_EQ(s.skipDyn, 1u);
    EXPECT_EQ(s.skippedBlocksSum, 1u); // one distinct block
    EXPECT_EQ(s.skippedBytes, 16u);    // two 8-byte accesses
    EXPECT_EQ(s.hintSavedCommits, 1u);
    EXPECT_EQ(reg.hintSavedCommits, 1u);
    EXPECT_EQ(reg.trackedAtCommit.count, 1u);
    EXPECT_EQ(reg.trackedAtCommit.max, 4u);

    // Growth milestones 1 and 2 blocks were crossed for reads, with
    // cycles measured from TX begin.
    EXPECT_EQ(reg.growthRead[0].count, 1u);
    EXPECT_EQ(reg.growthRead[0].sum, 10u);
    EXPECT_EQ(reg.growthRead[1].count, 1u);
    EXPECT_EQ(reg.growthRead[1].sum, 20u);
    EXPECT_EQ(reg.growthRead[2].count, 0u); // never reached 4 blocks
    EXPECT_EQ(reg.growthWrite[0].count, 1u);
}

TEST(MetricsRegistry, DuplicateAccessesDoNotResampleGrowth)
{
    MetricsRegistry reg;
    TxMetricsCtx m;
    reg.beginTx(m, 0, 0, 0, 0);
    // Repeat accesses to an already-tracked block arrive with no
    // newly-tracked bits (the controller deduplicates).
    reg.onTrackedGrowth(m, true, false, 5);
    reg.onTrackedGrowth(m, false, false, 50);
    reg.onTrackedGrowth(m, false, false, 500);
    EXPECT_EQ(reg.growthRead[0].count, 1u);
    EXPECT_EQ(reg.growthRead[0].sum, 5u); // first touch only
    reg.closeCommit(m, false);
    EXPECT_EQ(reg.trackedAtCommit.max, 1u);
}

TEST(MetricsRegistry, CapacityAbortAndOtherClosesFoldSkips)
{
    MetricsRegistry reg;
    TxMetricsCtx m;

    reg.beginTx(m, 0, 1, 0, 0);
    reg.onSafeSkip(m, 0x100, MetricsRegistry::SkipKind::Annotation);
    reg.closeCapacityAbort(m, 66);
    EXPECT_EQ(reg.capacityAborts, 1u);
    EXPECT_EQ(reg.trackedAtCapacityAbort.count, 1u);
    EXPECT_EQ(reg.trackedAtCapacityAbort.max, 66u);
    EXPECT_EQ(reg.skipAnnotAccesses, 1u);

    reg.beginTx(m, 10, 1, 0, 0);
    reg.onSafeSkip(m, 0x200, MetricsRegistry::SkipKind::Static);
    reg.closeOther(m);
    EXPECT_EQ(reg.skipStaticAccesses, 1u);
    EXPECT_EQ(reg.capacityAborts, 1u); // closeOther is not an abort
    EXPECT_EQ(reg.trackedAtCommit.count, 0u);

    const auto sites = reg.sitesByPressure();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0]->trackedAtCapacitySum, 66u);
    EXPECT_EQ(sites[0]->skippedBlocksSum, 2u);
}

TEST(MetricsRegistry, OverflowLineClassification)
{
    MetricsRegistry reg;
    reg.recordOverflowScan();
    reg.recordOverflowLine(true, false);
    reg.recordOverflowLine(true, true); // tracked wins over skipped
    reg.recordOverflowLine(false, true);
    reg.recordOverflowLine(false, false);
    EXPECT_EQ(reg.ovScans, 1u);
    EXPECT_EQ(reg.ovTracked, 2u);
    EXPECT_EQ(reg.ovSafeSkipped, 1u);
    EXPECT_EQ(reg.ovOther, 1u);
}

TEST(MetricsRegistry, SitesByPressureRanksCapacityThenFootprint)
{
    MetricsRegistry reg;
    TxMetricsCtx m;

    // Site 1: one commit, large footprint, no capacity aborts.
    reg.beginTx(m, 0, 1, 0, 0);
    for (unsigned i = 0; i < 8; ++i)
        reg.onTrackedGrowth(m, true, false, i);
    reg.closeCommit(m, false);

    // Site 2: a capacity abort — outranks any abort-free site.
    reg.beginTx(m, 0, 2, 0, 0);
    reg.closeCapacityAbort(m, 3);

    const auto sites = reg.sitesByPressure();
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0]->fn, 2);
    EXPECT_EQ(sites[1]->fn, 1);
}

TEST(MetricsRegistry, NumaMatrixAccumulates)
{
    MetricsRegistry reg;
    reg.initNuma(2);
    ++reg.numaTraffic(0, 1);
    ++reg.numaTraffic(0, 1);
    ++reg.numaTraffic(1, 0);
    EXPECT_EQ(reg.numaNodes(), 2u);
    ASSERT_EQ(reg.numaMatrix().size(), 4u);
    EXPECT_EQ(reg.numaMatrix()[1], 2u); // [0][1]
    EXPECT_EQ(reg.numaMatrix()[2], 1u); // [1][0]
    reg.initNuma(2); // idempotent: nothing reset
    EXPECT_EQ(reg.numaMatrix()[1], 2u);
}

// ---- simulation integration -----------------------------------------

namespace
{

sim::RunResult
runWithMetrics(const std::string &workload, htm::HtmKind kind,
               core::Mechanism mech, unsigned buffer = 64)
{
    workloads::Workload wl =
        workloads::byName(workload, workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = mech;
    opts.bufferEntries = buffer;
    opts.metrics = true;
    return core::simulate(opts, wl.module, wl.threads);
}

} // namespace

TEST(Metrics, ObservationOnlyResultsAreBitIdentical)
{
    for (const char *workload : {"kmeans", "intruder"}) {
        SCOPED_TRACE(workload);
        workloads::Workload wl =
            workloads::byName(workload, workloads::Scale::Tiny);
        core::compileHints(wl.module);

        core::SystemOptions base;
        base.mechanism = core::Mechanism::Full;
        base.collectRawStats = true;
        base.metrics = false;
        core::SystemOptions with = base;
        with.metrics = true;

        tir::Module m1 = wl.module;
        tir::Module m2 = wl.module;
        const sim::RunResult r1 = core::simulate(base, m1, wl.threads);
        const sim::RunResult r2 = core::simulate(with, m2, wl.threads);

        EXPECT_EQ(r1.cycles, r2.cycles);
        EXPECT_EQ(r1.instructions, r2.instructions);
        EXPECT_EQ(r1.committedTxs, r2.committedTxs);
        EXPECT_EQ(r1.fallbackRuns, r2.fallbackRuns);
        EXPECT_EQ(r1.htm.commits, r2.htm.commits);
        for (unsigned a = 0; a < htm::numAbortReasons; ++a)
            EXPECT_EQ(r1.htm.aborts[a], r2.htm.aborts[a]);
        EXPECT_EQ(r1.txAccessesTotal(), r2.txAccessesTotal());
        EXPECT_EQ(r1.pageModeOverheadCycles, r2.pageModeOverheadCycles);
        EXPECT_EQ(r1.rawStats, r2.rawStats);
        EXPECT_EQ(r1.finalGlobals, r2.finalGlobals);

        EXPECT_EQ(r1.metrics, nullptr);
        ASSERT_NE(r2.metrics, nullptr);
        EXPECT_GT(r2.metrics->trackedAtCommit.count, 0u);
    }
}

TEST(Metrics, RegistryCrossChecksHtmStats)
{
    for (const char *workload : {"kmeans", "intruder"}) {
        for (htm::HtmKind kind :
             {htm::HtmKind::P8, htm::HtmKind::P8S, htm::HtmKind::L1TM}) {
            SCOPED_TRACE(std::string(workload) + " / " +
                         htm::htmKindName(kind));
            const sim::RunResult r = runWithMetrics(
                workload, kind, core::Mechanism::Full);
            ASSERT_NE(r.metrics, nullptr);
            const MetricsRegistry &m = *r.metrics;

            // Every hardware commit closed exactly one measured
            // attempt; every capacity abort the controllers counted was
            // folded with the same reason.
            EXPECT_EQ(m.trackedAtCommit.count, r.htm.commits);
            EXPECT_EQ(
                m.capacityAborts,
                r.htm.aborts[unsigned(htm::AbortReason::Capacity)]);

            // Per-site aggregates fold to the same totals.
            std::uint64_t commits = 0, caps = 0, saved = 0;
            for (const auto &kv : m.sites()) {
                commits += kv.second.commits;
                caps += kv.second.capacityAborts;
                saved += kv.second.hintSavedCommits;
            }
            EXPECT_EQ(commits, r.htm.commits);
            EXPECT_EQ(caps, m.capacityAborts);
            EXPECT_EQ(saved, m.hintSavedCommits);
        }
    }
}

TEST(Metrics, CapacityPressureProducesScansAndHintSavedCommits)
{
    // A 2-entry buffer overflows intruder's baseline TXs; the hinted
    // run skips enough tracking to fit, so its commits are hint-saved.
    const sim::RunResult base = runWithMetrics(
        "intruder", htm::HtmKind::P8, core::Mechanism::Baseline, 2);
    ASSERT_NE(base.metrics, nullptr);
    EXPECT_GT(base.metrics->capacityAborts, 0u);
    EXPECT_GT(base.metrics->ovScans, 0u);
    EXPECT_EQ(base.metrics->hintSavedCommits, 0u); // nothing skipped
    EXPECT_EQ(base.metrics->skipStaticAccesses +
                  base.metrics->skipDynAccesses +
                  base.metrics->skipAnnotAccesses,
              0u);

    const sim::RunResult full = runWithMetrics(
        "intruder", htm::HtmKind::P8, core::Mechanism::Full, 2);
    ASSERT_NE(full.metrics, nullptr);
    EXPECT_GT(full.metrics->hintSavedCommits, 0u);
    EXPECT_LT(full.metrics->capacityAborts,
              base.metrics->capacityAborts);
    // Hints excluded real lines at some site.
    std::uint64_t reclaimed = 0;
    for (const auto &kv : full.metrics->sites())
        reclaimed += kv.second.skippedBlocksSum;
    EXPECT_GT(reclaimed, 0u);
}

TEST(Metrics, InfCapNeverReportsHintSavedCommits)
{
    const sim::RunResult r = runWithMetrics(
        "intruder", htm::HtmKind::InfCap, core::Mechanism::Full, 2);
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_EQ(r.metrics->hintSavedCommits, 0u);
    EXPECT_EQ(r.metrics->capacityAborts, 0u);
}

TEST(Metrics, SharerHistogramIdenticalAcrossCoherenceModes)
{
    // The sharer histogram probes peer L1s directly, so directory and
    // broadcast coherence must sample identical distributions.
    workloads::Workload wl =
        workloads::byName("intruder", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions dir;
    dir.mechanism = core::Mechanism::Full;
    dir.metrics = true;
    dir.directory = true;
    core::SystemOptions bc = dir;
    bc.directory = false;

    tir::Module m1 = wl.module;
    tir::Module m2 = wl.module;
    const sim::RunResult r1 = core::simulate(dir, m1, wl.threads);
    const sim::RunResult r2 = core::simulate(bc, m2, wl.threads);
    ASSERT_NE(r1.metrics, nullptr);
    ASSERT_NE(r2.metrics, nullptr);
    EXPECT_EQ(r1.metrics->sharersAtBus.count,
              r2.metrics->sharersAtBus.count);
    for (unsigned b = 0; b < Log2Hist::numBuckets; ++b)
        EXPECT_EQ(r1.metrics->sharersAtBus.buckets[b],
                  r2.metrics->sharersAtBus.buckets[b]);
}
