/**
 * @file
 * Tests for the host-side parallel runner: the thread pool itself,
 * parallelFor, and the determinism / caching guarantees of
 * bench::runMatrix (results must be bit-identical regardless of how
 * many host threads execute the matrix).
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"
#include "common/parallel.hh"

using namespace hintm;

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST(ThreadPool, FirstExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (const unsigned workers : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(workers, hits.size(),
                    [&](std::size_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    parallelFor(4, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ExceptionPropagates)
{
    EXPECT_THROW(parallelFor(2, 8,
                             [](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("bad");
                             }),
                 std::runtime_error);
}

namespace
{

std::vector<bench::MatrixJob>
sampleJobs(const bench::PreparedWorkload &p)
{
    std::vector<bench::MatrixJob> jobs;
    for (const core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::StaticOnly,
          core::Mechanism::DynamicOnly, core::Mechanism::Full}) {
        core::SystemOptions o;
        o.htmKind = htm::HtmKind::P8;
        o.mechanism = m;
        jobs.push_back({&p, o});
    }
    return jobs;
}

} // namespace

TEST(RunMatrix, DeterministicAcrossHostJobCounts)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    const std::vector<bench::MatrixJob> jobs = sampleJobs(p);

    bench::clearMatrixCache();
    const auto seq = bench::runMatrix(jobs, 1);
    bench::clearMatrixCache(); // don't let jobs=8 trivially hit cache
    const auto par = bench::runMatrix(jobs, 8);

    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(seq[i].cycles, par[i].cycles) << "job " << i;
        EXPECT_EQ(seq[i].instructions, par[i].instructions) << "job "
                                                            << i;
        EXPECT_EQ(seq[i].committedTxs, par[i].committedTxs) << "job "
                                                            << i;
        EXPECT_EQ(seq[i].htm.totalAborts(), par[i].htm.totalAborts())
            << "job " << i;
    }
    bench::clearMatrixCache();
}

TEST(RunMatrix, ResultsArriveInSubmissionOrder)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    std::vector<bench::MatrixJob> jobs = sampleJobs(p);

    bench::clearMatrixCache();
    const auto res = bench::runMatrix(jobs, 4);
    // Re-run each job individually and check slot alignment.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const sim::RunResult direct = bench::run(p, jobs[i].opts);
        EXPECT_EQ(res[i].cycles, direct.cycles) << "job " << i;
        EXPECT_EQ(res[i].htm.commits, direct.htm.commits) << "job " << i;
    }
    bench::clearMatrixCache();
}

TEST(RunMatrix, CacheDedupsWithinAndAcrossCalls)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    core::SystemOptions o;
    o.htmKind = htm::HtmKind::P8;

    bench::clearMatrixCache();
    // Three identical jobs in one matrix: one miss, two in-call dedups
    // (never scheduled, distinct from cross-call cache hits).
    const auto res = bench::runMatrix({{&p, o}, {&p, o}, {&p, o}}, 2);
    auto st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.deduped, 2u);
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(res[0].cycles, res[1].cycles);
    EXPECT_EQ(res[0].cycles, res[2].cycles);

    // Same job again in a new call: served from the cross-call cache.
    const auto res2 = bench::runMatrix({{&p, o}}, 2);
    st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.deduped, 2u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(res2[0].cycles, res[0].cycles);

    // A different config is a fresh miss.
    core::SystemOptions full = o;
    full.mechanism = core::Mechanism::Full;
    (void)bench::runMatrix({{&p, full}}, 2);
    st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 2u);
    bench::clearMatrixCache();
}

TEST(RunMatrix, ThreadsOverrideIsPartOfTheCacheKey)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    core::SystemOptions o;
    o.htmKind = htm::HtmKind::P8;

    bench::clearMatrixCache();
    const auto res =
        bench::runMatrix({{&p, o, 0}, {&p, o, 2}}, 2);
    const auto st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 2u); // different thread counts: both simulate
    EXPECT_NE(res[0].cycles, res[1].cycles);
    bench::clearMatrixCache();
}
