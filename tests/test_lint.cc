/**
 * @file
 * Tests for the two-sided hint-soundness checker: the static race-lint
 * pass (compiler/race_lint.hh) and the dynamic HintOracle
 * (htm/hint_oracle.hh), cross-validated against each other.
 *
 * The mutation scenarios flip a deliberately-unsound `safe` bit after
 * hint compilation — one per corruption class (load/store crossed with
 * stack/heap/read-only provenance) — and assert which side of the
 * checker catches it. Two scenarios are asymmetric by construction: a
 * non-initializing store to a genuinely private object is invisible to
 * the oracle (no remote writer exists), and an out-of-bounds write that
 * lands in a statically-read-only global is invisible to the lint pass
 * (the points-to object model has no aliasing path); each is caught by
 * exactly the other side.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/race_lint.hh"
#include "compiler/safety.hh"
#include "core/hintm.hh"
#include "tir/builder.hh"
#include "tir/verifier.hh"
#include "workloads/workloads.hh"

using namespace hintm;
using namespace hintm::compiler;
using tir::FunctionBuilder;
using tir::Module;
using tir::Opcode;
using tir::Reg;

namespace
{

struct Site
{
    int fn = -1;
    int block = -1;
    int instr = -1;
};

/** Flip the nth instruction of kind @p op in @p fn_name to safe. The
 * target must currently be unsafe (flipping a legitimately-safe access
 * would not be a corruption). */
Site
flipNth(Module &m, const std::string &fn_name, Opcode op, unsigned nth)
{
    const int fi = m.findFunction(fn_name);
    EXPECT_GE(fi, 0) << fn_name;
    unsigned seen = 0;
    auto &fn = m.functions[std::size_t(fi)];
    for (int b = 0; b < int(fn.blocks.size()); ++b) {
        auto &instrs = fn.blocks[std::size_t(b)].instrs;
        for (int i = 0; i < int(instrs.size()); ++i) {
            if (instrs[std::size_t(i)].op != op)
                continue;
            if (seen++ != nth)
                continue;
            EXPECT_FALSE(instrs[std::size_t(i)].safe)
                << fn_name << ":" << b << ":" << i
                << " is already safe; the scenario would not corrupt";
            instrs[std::size_t(i)].safe = true;
            return Site{fi, b, i};
        }
    }
    ADD_FAILURE() << "no " << nth << "th " << tir::opcodeName(op)
                  << " in " << fn_name;
    return Site{};
}

bool
hasDiagAt(const LintReport &rep, const Site &s, int obligation = 0)
{
    for (const auto &d : rep.diagnostics) {
        if (d.fn == s.fn && d.block == s.block && d.instr == s.instr &&
            (obligation == 0 || d.obligation == obligation))
            return true;
    }
    return false;
}

/** Simulate with the oracle armed (static hints only, so every checked
 * access is one the lint pass also reasons about). */
sim::RunResult
runOracle(const Module &m, unsigned threads, bool decode_cache = true)
{
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::StaticOnly;
    opts.hintOracle = true;
    opts.decodeCache = decode_cache;
    return core::simulate(opts, m, threads);
}

/** The flagged safe access must be named in some oracle witness. */
bool
witnessNames(const sim::RunResult &r, const Module &m, const Site &s)
{
    std::ostringstream os;
    os << m.functions[std::size_t(s.fn)].name << ":" << s.block << ":"
       << s.instr;
    for (const auto &w : r.oracleWitnesses) {
        if (w.find(os.str()) != std::string::npos)
            return true;
    }
    return false;
}

// ---- scenario modules ----------------------------------------------

/** tid 1 reads a global array in TXs; every other thread writes it. */
Module
sharedReaderModule()
{
    Module m;
    m.globals.push_back({"data", 8 * 8, 0});
    m.globals.push_back({"sink", 8 * 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.ifThenElse(
        f.cmpEqI(tid, 1),
        [&] {
            const Reg acc = f.freshVar();
            f.setI(acc, 0);
            f.forRangeI(0, 40, [&](Reg i) {
                f.txBegin();
                f.set(acc,
                      f.add(acc, f.load(f.gep(f.globalAddr("data"),
                                              f.modI(i, 8), 8))));
                f.txEnd();
            });
            f.store(f.gep(f.globalAddr("sink"), tid, 8), acc);
        },
        [&] {
            f.forRangeI(0, 40, [&](Reg i) {
                f.txBegin();
                f.store(f.gep(f.globalAddr("data"), f.modI(i, 8), 8), i);
                f.txEnd();
            });
        });
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

/** Every thread stores to the same global words in TXs. */
Module
sharedWritersModule()
{
    Module m;
    m.globals.push_back({"data", 8 * 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.forRangeI(0, 40, [&](Reg i) {
        f.txBegin();
        f.store(f.gep(f.globalAddr("data"), f.modI(i, 8), 8), tid);
        f.txEnd();
    });
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

/**
 * Each of two threads publishes a 64-byte buffer (stack or heap) to a
 * global registry, then transactionally writes the *other* thread's
 * buffer while reading its own — textbook escaped-object sharing.
 * Buffer loads/stores are all correctly classified unsafe.
 */
Module
crossBufferModule(bool heap)
{
    Module m;
    m.globals.push_back({"pub", 8 * 2, 0});
    m.globals.push_back({"sink", 8 * 2, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg buf = heap ? f.mallocI(64) : f.allocaBytes(64);
    f.store(f.gep(f.globalAddr("pub"), tid, 8), buf);
    f.barrier();
    const Reg other =
        f.load(f.gep(f.globalAddr("pub"), f.sub(f.constI(1), tid), 8));
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 40, [&](Reg i) {
        f.txBegin();
        f.store(f.gep(other, f.modI(i, 8), 8), i);
        f.set(acc, f.add(acc, f.load(f.gep(buf, f.modI(i, 8), 8))));
        f.txEnd();
    });
    f.store(f.gep(f.globalAddr("sink"), tid, 8), acc);
    if (heap)
        f.freePtr(buf);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

/** Thread-private heap object whose first in-TX access is a load: its
 * store is correctly left unsafe by the initializing-store rule. */
Module
nonInitStoreModule()
{
    Module m;
    m.globals.push_back({"sink", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 10, [&](Reg) {
        const Reg p = f.mallocI(64);
        f.txBegin();
        f.set(acc, f.add(acc, f.load(p, 0)));
        f.store(p, acc, 0);
        f.txEnd();
        f.freePtr(p);
    });
    f.store(f.globalAddr("sink"), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

/** A leaf called with both a private and a shared pointer: replication
 * clones it; the original keeps the (racy) shared call sites. */
Module
replicatedLeafModule()
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    m.globals.push_back({"sink", 8 * 2, 0});
    tir::declareFunction(m, "leaf", 1);
    {
        FunctionBuilder f(m, "leaf", 1);
        f.ret(f.load(f.param(0), 0));
        f.finish();
    }
    {
        FunctionBuilder f(m, "init", 0);
        const Reg shared = f.mallocI(64);
        f.store(f.globalAddr("g"), shared);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg priv = f.mallocI(64);
    const Reg shared = f.load(f.globalAddr("g"));
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 20, [&](Reg i) {
        f.txBegin();
        f.store(f.gep(shared, f.modI(i, 8), 8), tid);
        const Reg a = f.call("leaf", {priv});
        const Reg b = f.call("leaf", {shared});
        f.set(acc, f.add(acc, f.add(a, b)));
        f.txEnd();
    });
    f.freePtr(priv);
    f.store(f.gep(f.globalAddr("sink"), tid, 8), acc);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

/**
 * tid 0 stores 64 bytes past the end of `src`, which lands exactly on
 * `victim` (globals are laid out block-aligned, 64 bytes apart). The
 * points-to object model attributes the store to `src`, so `victim`
 * looks read-only to the classifier AND to the lint pass — only the
 * oracle sees the runtime overlap.
 */
Module
oobWriteModule()
{
    Module m;
    m.globals.push_back({"src", 8, 0});
    m.globals.push_back({"victim", 8, 0});
    m.globals.push_back({"sink", 8 * 2, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.ifThenElse(
        f.cmpEqI(tid, 0),
        [&] {
            f.forRangeI(0, 20, [&](Reg i) {
                f.txBegin();
                f.store(f.globalAddr("src"), i, 64); // lands on victim
                f.txEnd();
            });
        },
        [&] {
            const Reg acc = f.freshVar();
            f.setI(acc, 0);
            f.forRangeI(0, 20, [&](Reg) {
                f.txBegin();
                f.set(acc, f.add(acc, f.load(f.globalAddr("victim"))));
                f.txEnd();
            });
            f.store(f.gep(f.globalAddr("sink"), tid, 8), acc);
        });
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

// ---- clean-module baseline ------------------------------------------

TEST(RaceLint, ScenarioModulesAreCleanBeforeCorruption)
{
    for (Module m : {sharedReaderModule(), sharedWritersModule(),
                     crossBufferModule(false), crossBufferModule(true),
                     nonInitStoreModule(), replicatedLeafModule()}) {
        ASSERT_FALSE(tir::verify(m).has_value());
        core::compileHints(m);
        const LintReport rep = lintRaces(m);
        EXPECT_TRUE(rep.clean()) << rep.render();
    }
}

TEST(RaceLint, RealWorkloadsLintCleanWithZeroWitnesses)
{
    for (const char *name : {"kmeans", "vacation"}) {
        workloads::Workload wl =
            workloads::byName(name, workloads::Scale::Tiny);
        core::compileHints(wl.module);
        const LintReport rep = lintRaces(wl.module);
        EXPECT_TRUE(rep.clean()) << name << "\n" << rep.render();

        const sim::RunResult r = runOracle(wl.module, wl.threads);
        EXPECT_TRUE(r.oracleWitnesses.empty())
            << name << ": " << r.oracleWitnesses.front();
    }
}

// ---- mutation scenarios ---------------------------------------------
// Corruption classes: {load, store} x {read-only/global, stack, heap}.

TEST(RaceLint, CorruptLoadOfWrittenGlobalCaughtByBoth)
{
    Module m = sharedReaderModule();
    core::compileHints(m);
    const Site s = flipNth(m, "worker", Opcode::Load, 0);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();

    const sim::RunResult r = runOracle(m, 3);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    EXPECT_TRUE(witnessNames(r, m, s)) << r.oracleWitnesses.front();
}

TEST(RaceLint, CorruptStoreToSharedGlobalCaughtByBoth)
{
    Module m = sharedWritersModule();
    core::compileHints(m);
    const Site s = flipNth(m, "worker", Opcode::Store, 0);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    EXPECT_TRUE(witnessNames(r, m, s)) << r.oracleWitnesses.front();
}

TEST(RaceLint, CorruptLoadOfEscapedStackBufferCaughtByBoth)
{
    Module m = crossBufferModule(false);
    core::compileHints(m);
    // Load 0 reads the registry; load 1 is the own-buffer read inside
    // the TX (the other thread writes those words).
    const Site s = flipNth(m, "worker", Opcode::Load, 1);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    EXPECT_TRUE(witnessNames(r, m, s)) << r.oracleWitnesses.front();
}

TEST(RaceLint, CorruptStoreToEscapedStackBufferCaughtByStatic)
{
    Module m = crossBufferModule(false);
    core::compileHints(m);
    // Store 0 publishes the buffer; store 1 is the cross-thread write.
    const Site s = flipNth(m, "worker", Opcode::Store, 1);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();
}

TEST(RaceLint, CorruptLoadOfEscapedHeapBufferCaughtByBoth)
{
    Module m = crossBufferModule(true);
    core::compileHints(m);
    const Site s = flipNth(m, "worker", Opcode::Load, 1);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    EXPECT_TRUE(witnessNames(r, m, s)) << r.oracleWitnesses.front();
}

TEST(RaceLint, CorruptStoreToEscapedHeapBufferCaughtByStatic)
{
    Module m = crossBufferModule(true);
    core::compileHints(m);
    const Site s = flipNth(m, "worker", Opcode::Store, 1);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();
}

TEST(RaceLint, CorruptNonInitializingStoreCaughtByStaticOnly)
{
    Module m = nonInitStoreModule();
    core::compileHints(m);
    // The object is genuinely thread-private, so obligation 1 holds and
    // the oracle (which only sees cross-thread writes) stays silent;
    // only the initializing-store dataflow catches the corruption.
    const Site s = flipNth(m, "worker", Opcode::Store, 0);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 2)) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    EXPECT_TRUE(r.oracleWitnesses.empty())
        << r.oracleWitnesses.front();
    EXPECT_GT(r.oracleSafeChecked, 0u); // the private loads were checked
}

TEST(RaceLint, CorruptReplicatedLeafOriginalCaughtByBoth)
{
    Module m = replicatedLeafModule();
    const SafetyReport sr = core::compileHints(m);
    ASSERT_GE(sr.replicatedFunctions, 1u);
    // The original leaf keeps the shared call site after replication;
    // its load must stay unsafe. Corrupt it.
    const Site s = flipNth(m, "leaf", Opcode::Load, 0);

    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    EXPECT_TRUE(witnessNames(r, m, s)) << r.oracleWitnesses.front();
}

TEST(RaceLint, OutOfBoundsWriteCaughtByOracleOnly)
{
    Module m = oobWriteModule();
    core::compileHints(m);
    // The victim load is marked safe by the classifier itself (the
    // global looks read-only), and the lint pass agrees — the static
    // object model cannot see the out-of-bounds aliasing.
    const LintReport rep = lintRaces(m);
    EXPECT_TRUE(rep.clean()) << rep.render();

    const sim::RunResult r = runOracle(m, 2);
    ASSERT_FALSE(r.oracleWitnesses.empty());
    // The witness names the offending writer in `worker` (the OOB
    // store), not just the victim access.
    EXPECT_NE(r.oracleWitnesses.front().find("overlaps a write"),
              std::string::npos)
        << r.oracleWitnesses.front();
}

// ---- obligation 3: replicated-variant consistency -------------------

TEST(RaceLint, DivergentFlaggedVariantHintRaisesObligation3)
{
    // Hand-craft a replication family: `helper` and a structural twin
    // `helper$safe1_0` whose load is (unsoundly) marked safe while both
    // receive a shared, parallel-written object. No classifier run —
    // the lint pass is judging foreign annotations.
    Module m;
    m.globals.push_back({"g", 8 * 8, 0});
    tir::declareFunction(m, "helper", 1);
    tir::declareFunction(m, "helper$safe1_0", 1);
    {
        FunctionBuilder f(m, "helper", 1);
        f.ret(f.load(f.param(0), 0));
        f.finish();
    }
    {
        FunctionBuilder f(m, "helper$safe1_0", 1);
        f.ret(f.load(f.param(0), 0));
        f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg g = f.globalAddr("g");
    f.txBegin();
    f.store(f.gep(g, tid, 8), tid);
    const Reg a = f.call("helper", {g});
    const Reg b = f.call("helper$safe1_0", {g});
    f.store(f.gep(g, tid, 8), f.add(a, b));
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(tir::verify(m).has_value());

    const int clone = m.findFunction("helper$safe1_0");
    ASSERT_GE(clone, 0);
    m.functions[std::size_t(clone)].blocks[0].instrs[0].safe = true;

    const LintReport rep = lintRaces(m);
    const Site s{clone, 0, 0};
    EXPECT_TRUE(hasDiagAt(rep, s, 1)) << rep.render();
    EXPECT_TRUE(hasDiagAt(rep, s, 3)) << rep.render();
}

// ---- oracle invariants ----------------------------------------------

TEST(HintOracle, ObservationOnlyResultsAreBitIdentical)
{
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);

    core::SystemOptions base;
    base.mechanism = core::Mechanism::Full;
    base.collectRawStats = true;
    core::SystemOptions with = base;
    with.hintOracle = true;

    Module m1 = wl.module;
    Module m2 = wl.module;
    const sim::RunResult r1 = core::simulate(base, m1, wl.threads);
    const sim::RunResult r2 = core::simulate(with, m2, wl.threads);

    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.committedTxs, r2.committedTxs);
    EXPECT_EQ(r1.htm.commits, r2.htm.commits);
    EXPECT_EQ(r1.htm.totalAborts(), r2.htm.totalAborts());
    EXPECT_EQ(r1.txAccessesTotal(), r2.txAccessesTotal());
    EXPECT_EQ(r1.rawStats, r2.rawStats);
    EXPECT_EQ(r1.finalGlobals, r2.finalGlobals);

    EXPECT_GT(r2.oracleSafeChecked, 0u);
    EXPECT_GE(r2.oracleSafeSkips, r2.oracleSafeChecked);
    EXPECT_TRUE(r2.oracleWitnesses.empty());
    EXPECT_EQ(r1.oracleSafeChecked, 0u); // oracle off: nothing counted
}

TEST(HintOracle, DecodedAndReferencePathsReportIdenticalWitnesses)
{
    // The decoded interpreter reports source positions through the
    // fused-op srcRefs table; the reference interpreter walks Instr
    // storage directly. Their witnesses must match exactly.
    Module m = sharedReaderModule();
    core::compileHints(m);
    flipNth(m, "worker", Opcode::Load, 0);

    const sim::RunResult dec = runOracle(m, 3, true);
    const sim::RunResult ref = runOracle(m, 3, false);
    ASSERT_FALSE(dec.oracleWitnesses.empty());
    EXPECT_EQ(dec.oracleWitnesses, ref.oracleWitnesses);
    EXPECT_EQ(dec.oracleSafeChecked, ref.oracleSafeChecked);
    EXPECT_EQ(dec.oracleSafeSkips, ref.oracleSafeSkips);
}
