/**
 * @file
 * Tests for the transactional runtime inside sim::Machine: fallback-lock
 * acquisition and subscription aborts, retry escalation, barriers, SMT
 * context placement, end-to-end page-mode aborts, preserve policy, and
 * the statistics the figures depend on (footprint CDFs, access mix).
 */

#include <gtest/gtest.h>

#include "core/hintm.hh"
#include "sim/machine.hh"
#include "tir/builder.hh"
#include "tir/verifier.hh"
#include "workloads/workloads.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

sim::RunResult
run(Module &m, core::SystemOptions opts, unsigned threads)
{
    core::compileHints(m);
    opts.validateSafeStores = true;
    return core::simulate(opts, m, threads);
}

/** Every TX overflows: all work must be serialized via the lock. */
Module
overflowModule(int txs)
{
    Module m;
    m.globals.push_back({"done", 8 * 64, 0});
    m.globals.push_back({"registry", 8 * 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg buf = f.mallocI(2048 * 8);
    f.store(f.gep(f.globalAddr("registry"), tid, 8), buf);
    const Reg n = f.freshVar();
    f.setI(n, 0);
    f.forRangeI(0, txs, [&](Reg) {
        f.txBegin();
        const Reg acc = f.freshVar();
        f.setI(acc, 0);
        // 100 scattered unsafe-ish writes + reads: > 64 blocks.
        f.forRangeI(0, 100, [&](Reg i) {
            const Reg slot = f.gep(buf, f.mulI(i, 16), 8);
            f.store(slot, f.add(acc, i));
            f.set(acc, f.add(acc, f.load(slot)));
        });
        f.txEnd();
        f.set(n, f.addI(n, 1));
    });
    f.store(f.gep(f.globalAddr("done"), tid, 64), n);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

TEST(Machine, CapacityAbortFallsBackImmediately)
{
    Module m = overflowModule(5);
    core::SystemOptions opts; // P8 baseline
    const sim::RunResult r = run(m, opts, 4);
    // Every TX: exactly one capacity abort, then fallback. No retries
    // of a deterministic abort.
    EXPECT_EQ(r.fallbackRuns, 4u * 5u);
    EXPECT_EQ(r.htm.aborts[unsigned(htm::AbortReason::Capacity)],
              4u * 5u);
    EXPECT_EQ(r.htm.commits, 0u);
    EXPECT_EQ(r.committedTxs, 4u * 5u);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(r.finalGlobals.at("done")[std::size_t(t) * 8], 5);
}

TEST(Machine, FallbackLockAbortsSubscribedTxs)
{
    // One overflowing thread repeatedly takes the lock; other threads
    // run small TXs that subscribe and must be aborted by acquisition.
    Module m;
    m.globals.push_back({"counter", 8, 0});
    m.globals.push_back({"registry", 8 * 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.ifThenElse(
        f.cmpEqI(tid, 0),
        [&] {
            const Reg buf = f.mallocI(2048 * 8);
            f.store(f.globalAddr("registry"), buf);
            f.forRangeI(0, 8, [&](Reg) {
                f.txBegin();
                f.forRangeI(0, 100, [&](Reg i) {
                    f.store(f.gep(buf, f.mulI(i, 16), 8), i);
                });
                f.txEnd();
            });
        },
        [&] {
            f.forRangeI(0, 200, [&](Reg) {
                f.txBegin();
                const Reg g = f.globalAddr("counter");
                f.store(g, f.addI(f.load(g), 1));
                f.txEnd();
            });
        });
    f.retVoid();
    m.threadFunc = f.finish();

    core::SystemOptions opts;
    const sim::RunResult r = run(m, opts, 4);
    EXPECT_EQ(r.finalGlobals.at("counter")[0], 3 * 200);
    EXPECT_GT(r.htm.aborts[unsigned(htm::AbortReason::FallbackLock)],
              0u);
}

TEST(Machine, RetryEscalationEventuallyFallsBack)
{
    // maxRetries = 0: the first transient abort sends a TX to the lock.
    Module m;
    m.globals.push_back({"counter", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.forRangeI(0, 50, [&](Reg) {
        f.txBegin();
        const Reg g = f.globalAddr("counter");
        f.store(g, f.addI(f.load(g), 1));
        f.txEnd();
    });
    f.retVoid();
    m.threadFunc = f.finish();

    core::SystemOptions strict;
    strict.maxRetries = 0;
    const sim::RunResult r0 = run(m, strict, 8);
    EXPECT_EQ(r0.finalGlobals.at("counter")[0], 8 * 50);
    EXPECT_GT(r0.fallbackRuns, 0u);

    Module m2 = m;
    core::SystemOptions lax;
    lax.maxRetries = 64;
    const sim::RunResult r1 = run(m2, lax, 8);
    EXPECT_EQ(r1.finalGlobals.at("counter")[0], 8 * 50);
    EXPECT_LT(r1.fallbackRuns, r0.fallbackRuns);
}

TEST(Machine, BarriersSynchronizePhases)
{
    // Phase 1 writes; all threads must observe every phase-1 write in
    // phase 2 — only true if the barrier is a real rendezvous.
    Module m;
    m.globals.push_back({"phase1", 8 * 64, 0});
    m.globals.push_back({"sums", 8 * 64, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.store(f.gep(f.globalAddr("phase1"), tid, 64), f.addI(tid, 1));
    f.barrier();
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 8, [&](Reg t) {
        f.set(acc,
              f.add(acc, f.load(f.gep(f.globalAddr("phase1"), t, 64))));
    });
    f.store(f.gep(f.globalAddr("sums"), tid, 64), acc);
    f.retVoid();
    m.threadFunc = f.finish();

    const sim::RunResult r = run(m, core::SystemOptions{}, 8);
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(r.finalGlobals.at("sums")[std::size_t(t) * 8], 36);
}

TEST(Machine, SmtSiblingsConflictThroughSharedL1)
{
    // Two SMT contexts on one core: their TXs conflict via the sibling
    // notification path even though no bus transaction occurs.
    Module m;
    m.globals.push_back({"counter", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.forRangeI(0, 100, [&](Reg) {
        f.txBegin();
        const Reg g = f.globalAddr("counter");
        f.store(g, f.addI(f.load(g), 1));
        f.txEnd();
    });
    f.retVoid();
    m.threadFunc = f.finish();

    core::SystemOptions opts;
    opts.numCores = 1;
    opts.smtPerCore = 2;
    const sim::RunResult r = run(m, opts, 2);
    EXPECT_EQ(r.finalGlobals.at("counter")[0], 200);
    EXPECT_GT(r.htm.totalAborts(), 0u);
}

TEST(Machine, PageModeAbortEndToEnd)
{
    // Thread 1 reads a page as dyn-safe inside a long TX; thread 0 then
    // writes that page, forcing a page-mode abort of thread 1's TX. The
    // retry tracks the page normally and commits.
    Module m;
    m.globals.push_back({"shared_buf", 8, 0});
    m.globals.push_back({"out", 8 * 64, 0});
    {
        FunctionBuilder f(m, "init", 0);
        const Reg buf = f.mallocI(512 * 8); // one page
        f.forRangeI(0, 512, [&](Reg i) { f.store(f.gep(buf, i, 8), i); });
        f.store(f.globalAddr("shared_buf"), buf);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg buf = f.load(f.globalAddr("shared_buf"));
    f.ifThenElse(
        f.cmpEqI(tid, 1),
        [&] {
            // Long read-only TX over the shared page.
            f.forRangeI(0, 30, [&](Reg) {
                f.txBegin();
                const Reg acc = f.freshVar();
                f.setI(acc, 0);
                f.forRangeI(0, 48, [&](Reg i) {
                    f.set(acc,
                          f.add(acc, f.load(f.gep(buf, f.mulI(i, 8), 8))));
                });
                f.store(f.gep(f.globalAddr("out"), tid, 64), acc);
                f.txEnd();
            });
        },
        [&] {
            // Belated writer: flips the page to shared-rw mid-run.
            f.forRangeI(0, 3, [&](Reg) {
                f.txBegin();
                f.store(buf, f.constI(0));
                f.txEnd();
            });
        });
    f.retVoid();
    m.threadFunc = f.finish();

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::DynamicOnly;
    const sim::RunResult r = run(m, opts, 2);
    EXPECT_GT(r.htm.aborts[unsigned(htm::AbortReason::PageMode)], 0u);
    EXPECT_GT(r.pageModeOverheadCycles, 0u);
    EXPECT_EQ(r.committedTxs, 33u);
}

TEST(Machine, TxSizeCdfsAreOrdered)
{
    workloads::Scale scale = workloads::Scale::Tiny;
    workloads::Workload wl = workloads::buildLabyrinth(scale);
    core::compileHints(wl.module);
    core::SystemOptions opts;
    opts.htmKind = htm::HtmKind::InfCap;
    opts.mechanism = core::Mechanism::Full;
    opts.collectTxSizes = true;
    const sim::RunResult r = core::simulate(opts, wl.module, wl.threads);
    ASSERT_GT(r.txSizeAll.count(), 0u);
    EXPECT_EQ(r.txSizeAll.count(), r.txSizeUnsafe.count());
    // Dropping hints can only shrink footprints: CDFs are ordered.
    for (std::uint64_t x : {4u, 16u, 64u, 256u}) {
        EXPECT_LE(r.txSizeAll.cdfAt(x), r.txSizeNoStatic.cdfAt(x) + 1e-9);
        EXPECT_LE(r.txSizeNoStatic.cdfAt(x),
                  r.txSizeUnsafe.cdfAt(x) + 1e-9);
    }
    // Mean tracked size must shrink strictly for labyrinth.
    EXPECT_LT(r.txSizeUnsafe.mean(), r.txSizeAll.mean());
}

TEST(Machine, PreservePolicyReducesPageModeAborts)
{
    workloads::Workload w1 =
        workloads::buildVacation(workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::buildVacation(workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions sticky;
    sticky.mechanism = core::Mechanism::Full;
    const sim::RunResult rs = core::simulate(sticky, w1.module, 8);

    core::SystemOptions pres = sticky;
    pres.preserveReadOnly = true;
    const sim::RunResult rp = core::simulate(pres, w2.module, 8);

    // Preserve demotes instead of revoking, so page-mode aborts should
    // not grow materially; allow small timing-induced wobble at this
    // tiny scale (the Small-scale effect is checked by the ablation).
    EXPECT_LE(rp.htm.aborts[unsigned(htm::AbortReason::PageMode)],
              rs.htm.aborts[unsigned(htm::AbortReason::PageMode)] + 3);
}

TEST(Machine, ThreadCountMustFitContexts)
{
    Module m = overflowModule(1);
    core::compileHints(m);
    core::SystemOptions opts;
    opts.numCores = 2;
    opts.smtPerCore = 1;
    EXPECT_THROW(core::simulate(opts, m, 4), std::logic_error);
}

TEST(Machine, PreAbortHandlerConvertsInsteadOfAborting)
{
    Module m = overflowModule(5);
    core::compileHints(m);

    core::SystemOptions opts;
    opts.preAbortHandler = true;
    opts.validateSafeStores = true;
    const sim::RunResult r = core::simulate(opts, m, 4);
    // Overflowing TXs convert rather than capacity-abort. A TX that got
    // lock-aborted repeatedly may still take the plain fallback path,
    // so conversions + fallbacks account for every TX.
    EXPECT_EQ(r.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_GT(r.htm.preAbortConversions, 0u);
    EXPECT_EQ(r.htm.preAbortConversions + r.fallbackRuns, 4u * 5u);
    EXPECT_EQ(r.committedTxs, 4u * 5u);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(r.finalGlobals.at("done")[std::size_t(t) * 8], 5);

    // Conversion skips the wasted attempt, so it beats plain fallback.
    Module m2 = overflowModule(5);
    core::compileHints(m2);
    core::SystemOptions plain;
    plain.validateSafeStores = true;
    const sim::RunResult rp = core::simulate(plain, m2, 4);
    EXPECT_LT(r.cycles, rp.cycles);
}

TEST(Machine, PreAbortConversionDeclinedWhenLockHeld)
{
    // With many threads overflowing simultaneously only one can hold
    // the lock; the rest must abort and retry/convert later, but the
    // results stay correct.
    Module m = overflowModule(3);
    core::compileHints(m);
    core::SystemOptions opts;
    opts.preAbortHandler = true;
    opts.validateSafeStores = true;
    const sim::RunResult r = core::simulate(opts, m, 8);
    EXPECT_EQ(r.committedTxs, 8u * 3u);
    EXPECT_GT(r.htm.preAbortConversions, 0u);
    for (int t = 0; t < 8; ++t)
        EXPECT_EQ(r.finalGlobals.at("done")[std::size_t(t) * 8], 3);
}

TEST(Machine, RequesterLosesPolicyStaysSerializable)
{
    Module m;
    m.globals.push_back({"counter", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.forRangeI(0, 60, [&](Reg) {
        f.txBegin();
        const Reg g = f.globalAddr("counter");
        f.store(g, f.addI(f.load(g), 1));
        f.txEnd();
    });
    f.retVoid();
    m.threadFunc = f.finish();

    core::SystemOptions opts;
    opts.conflictPolicy = htm::ConflictPolicy::RequesterLoses;
    const sim::RunResult r = run(m, opts, 8);
    EXPECT_EQ(r.finalGlobals.at("counter")[0], 8 * 60);
    EXPECT_EQ(r.committedTxs, 8u * 60u);
    // Conflicts now charge the requester; there must still be some.
    EXPECT_GT(r.htm.aborts[unsigned(htm::AbortReason::Conflict)], 0u);
}
