/**
 * @file
 * Property-based tests: randomized sweeps asserting system invariants
 * rather than example-specific values.
 *
 *  - MESI single-writer invariant over random access traces;
 *  - page-FSM monotonicity (safety never resurrects) over random
 *    multi-thread access sequences;
 *  - signature completeness (no false negatives) over random sets;
 *  - end-to-end serializability: a shared counter workload commits
 *    exactly its increment count under every (seed, HTM, mechanism)
 *    combination;
 *  - determinism: identical (seed, config) runs produce identical cycle
 *    counts and final memory.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "core/hintm.hh"
#include "htm/signature.hh"
#include "mem/mem_system.hh"
#include "tir/builder.hh"
#include "vm/page_table.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

/** Verify MESI invariants across all L1 copies of every block. */
void
checkMesi(mem::MemorySystem &ms, const std::vector<mem::ContextId> &ctxs,
          const std::vector<Addr> &blocks)
{
    for (const Addr b : blocks) {
        unsigned valid = 0, exclusive_like = 0;
        for (const auto c : ctxs) {
            const mem::CacheLine *line = ms.probeL1(c, b);
            if (!line)
                continue;
            ++valid;
            if (line->state == mem::CoherState::Modified ||
                line->state == mem::CoherState::Exclusive)
                ++exclusive_like;
        }
        // M/E implies sole ownership.
        if (exclusive_like > 0) {
            EXPECT_EQ(exclusive_like, 1u) << "block " << b;
            EXPECT_EQ(valid, 1u) << "block " << b;
        }
    }
}

} // namespace

class MesiProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MesiProperty, SingleWriterInvariantHoldsUnderRandomTraffic)
{
    Rng rng(GetParam());
    mem::MemConfig cfg;
    cfg.l1SizeBytes = 2048;
    cfg.l1Assoc = 4;
    mem::MemorySystem ms(cfg, 4);
    std::vector<mem::ContextId> ctxs;
    for (unsigned i = 0; i < 4; ++i)
        ctxs.push_back(ms.addContext(i));

    std::vector<Addr> blocks;
    for (unsigned i = 0; i < 32; ++i)
        blocks.push_back(Addr(i) * 64);

    for (unsigned step = 0; step < 2000; ++step) {
        const auto c = ctxs[rng.below(ctxs.size())];
        const Addr b = blocks[rng.below(blocks.size())];
        const AccessType t =
            rng.chance(0.4) ? AccessType::Write : AccessType::Read;
        ms.access(c, b, t);
        if (step % 50 == 0)
            checkMesi(ms, ctxs, blocks);
    }
    checkMesi(ms, ctxs, blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesiProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class PageFsmProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(PageFsmProperty, SafetyIsMonotonicallyRevoked)
{
    const auto [seed, preserve] = GetParam();
    Rng rng(seed);
    vm::PageTable pt(preserve);

    std::map<Addr, bool> was_unsafe;
    for (unsigned step = 0; step < 5000; ++step) {
        const ThreadId tid = ThreadId(rng.below(4));
        const Addr addr = rng.below(16) * pageBytes;
        const AccessType t =
            rng.chance(0.3) ? AccessType::Write : AccessType::Read;
        const auto tr = pt.touch(tid, addr, t);

        // A page that ever became unsafe must stay shared-rw forever.
        bool &unsafe = was_unsafe[pageNumber(addr)];
        if (unsafe) {
            EXPECT_EQ(tr.after, vm::PageState::SharedRw);
            EXPECT_FALSE(tr.becameUnsafe); // fires at most once
        }
        if (tr.becameUnsafe) {
            EXPECT_FALSE(unsafe);
            unsafe = true;
        }
        // becameUnsafe if and only if safe -> shared-rw edge.
        EXPECT_EQ(tr.becameUnsafe,
                  vm::pageStateSafe(tr.before) &&
                      tr.after == vm::PageState::SharedRw &&
                      tr.before != vm::PageState::Untouched);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, PageFsmProperty,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Bool()));

class SignatureProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(SignatureProperty, NeverForgetsAnInsertedAddress)
{
    const auto [bits, seed] = GetParam();
    Rng rng(seed);
    htm::Signature sig(bits, 2);
    std::vector<Addr> inserted;
    for (unsigned i = 0; i < 500; ++i) {
        const Addr a = blockAlign(rng.below(1 << 24));
        sig.insert(a);
        inserted.push_back(a);
        // Every inserted address still tests positive.
        for (unsigned k = 0; k < 5; ++k) {
            const Addr probe = inserted[rng.below(inserted.size())];
            EXPECT_TRUE(sig.test(probe));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSeeds, SignatureProperty,
    ::testing::Combine(::testing::Values(128u, 1024u, 4096u),
                       ::testing::Values(7u, 8u)));

namespace
{

tir::Module
counterModule(int iters)
{
    tir::Module m;
    m.globals.push_back({"counter", 8, 0});
    tir::FunctionBuilder tf(m, "worker", 1);
    tf.forRangeI(0, iters, [&](tir::Reg) {
        tf.txBegin();
        const tir::Reg g = tf.globalAddr("counter");
        tf.store(g, tf.addI(tf.load(g), 1));
        tf.txEnd();
    });
    tf.retVoid();
    m.threadFunc = tf.finish();
    return m;
}

} // namespace

class SerializabilityProperty
    : public ::testing::TestWithParam<
          std::tuple<unsigned, htm::HtmKind, core::Mechanism>>
{
};

TEST_P(SerializabilityProperty, CounterNeverLosesIncrements)
{
    const auto [seed, kind, mech] = GetParam();
    tir::Module m = counterModule(40);
    core::compileHints(m);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = mech;
    opts.seed = seed;
    opts.validateSafeStores = true;
    const sim::RunResult r = core::simulate(opts, m, 8);
    EXPECT_EQ(r.finalGlobals.at("counter")[0], 8 * 40);
    EXPECT_EQ(r.committedTxs, 8u * 40u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializabilityProperty,
    ::testing::Combine(
        ::testing::Values(101u, 202u, 303u),
        ::testing::Values(htm::HtmKind::P8, htm::HtmKind::P8S,
                          htm::HtmKind::L1TM),
        ::testing::Values(core::Mechanism::Baseline,
                          core::Mechanism::Full)));

class DeterminismProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DeterminismProperty, IdenticalSeedsProduceIdenticalRuns)
{
    workloads::Workload w1 =
        workloads::byName(GetParam(), workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::byName(GetParam(), workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    opts.seed = 12345;
    const sim::RunResult r1 = core::simulate(opts, w1.module, w1.threads);
    const sim::RunResult r2 = core::simulate(opts, w2.module, w2.threads);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.htm.commits, r2.htm.commits);
    EXPECT_EQ(r1.finalGlobals, r2.finalGlobals);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DeterminismProperty,
                         ::testing::ValuesIn(workloads::allNames()));

/**
 * The directory coherence fast path (owning sharer/owner state +
 * tracker-filtered listener delivery + interest gating + translation
 * cache) must be invisible: end-to-end runs with it on and off produce
 * identical results — cycle counts, abort breakdowns, classification
 * mixes, final memory, and the raw stat dumps — at every machine size,
 * including the 32-context configuration where the directory iterates
 * sparse sharer masks instead of all cores.
 */
class DirectoryEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, htm::HtmKind, unsigned>>
{
};

TEST_P(DirectoryEquivalence, DirectoryMatchesBroadcastExactly)
{
    const auto &[base, kind, contexts] = GetParam();
    // "name@N" re-partitions the kernel for N worker threads; the plain
    // name keeps the paper's 8-thread deployment.
    const std::string name =
        contexts == 8 ? base : base + "@" + std::to_string(contexts);
    workloads::Workload w1 =
        workloads::byName(name, workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::byName(name, workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = core::Mechanism::Full;
    opts.numCores = contexts;
    opts.collectTxSizes = true;
    opts.collectRawStats = true;
    opts.directory = true;
    const sim::RunResult fast =
        core::simulate(opts, w1.module, w1.threads);
    opts.directory = false;
    const sim::RunResult ref = core::simulate(opts, w2.module, w2.threads);

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.instructions, ref.instructions);
    EXPECT_EQ(fast.committedTxs, ref.committedTxs);
    EXPECT_EQ(fast.fallbackRuns, ref.fallbackRuns);
    EXPECT_EQ(fast.htm.commits, ref.htm.commits);
    for (unsigned a = 0; a < htm::numAbortReasons; ++a) {
        EXPECT_EQ(fast.htm.aborts[a], ref.htm.aborts[a]) << "reason " << a;
        EXPECT_EQ(fast.htm.cyclesLost[a], ref.htm.cyclesLost[a]);
    }
    EXPECT_EQ(fast.txReadsStaticSafe, ref.txReadsStaticSafe);
    EXPECT_EQ(fast.txReadsDynSafe, ref.txReadsDynSafe);
    EXPECT_EQ(fast.txReadsAnnotated, ref.txReadsAnnotated);
    EXPECT_EQ(fast.txReadsUnsafe, ref.txReadsUnsafe);
    EXPECT_EQ(fast.txWritesStaticSafe, ref.txWritesStaticSafe);
    EXPECT_EQ(fast.txWritesUnsafe, ref.txWritesUnsafe);
    EXPECT_EQ(fast.pageModeOverheadCycles, ref.pageModeOverheadCycles);
    EXPECT_EQ(fast.safePages, ref.safePages);
    EXPECT_EQ(fast.totalPages, ref.totalPages);
    EXPECT_EQ(fast.finalGlobals, ref.finalGlobals);
    EXPECT_EQ(fast.rawStats, ref.rawStats);
}

INSTANTIATE_TEST_SUITE_P(
    TwoWorkloadsThreeHtmsTwoSizes, DirectoryEquivalence,
    ::testing::Combine(::testing::Values(std::string("kmeans"),
                                         std::string("intruder")),
                       ::testing::Values(htm::HtmKind::P8,
                                         htm::HtmKind::P8S,
                                         htm::HtmKind::L1TM),
                       ::testing::Values(8u, 32u)));

/**
 * The event-driven scheduler index (bitmask + lazy-deletion min-heap
 * pick, wake events, batched stepping) must reproduce the reference
 * rotating scan's step sequence exactly: full-RunResult bit-identity
 * across every kernel, backend and machine size — including the
 * 64-context machine the index exists for, where round-robin
 * tie-breaking and barrier wake ordering get the most exercise.
 */
class SchedulerEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, htm::HtmKind, unsigned>>
{
};

TEST_P(SchedulerEquivalence, IndexMatchesReferenceScanExactly)
{
    const auto &[base, kind, contexts] = GetParam();
    const std::string name =
        contexts == 8 ? base : base + "@" + std::to_string(contexts);
    workloads::Workload w1 =
        workloads::byName(name, workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::byName(name, workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = core::Mechanism::Full;
    opts.numCores = contexts;
    opts.collectTxSizes = true;
    opts.collectRawStats = true;
    opts.schedIndex = true;
    const sim::RunResult fast =
        core::simulate(opts, w1.module, w1.threads);
    opts.schedIndex = false;
    const sim::RunResult ref = core::simulate(opts, w2.module, w2.threads);

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.instructions, ref.instructions);
    EXPECT_EQ(fast.committedTxs, ref.committedTxs);
    EXPECT_EQ(fast.fallbackRuns, ref.fallbackRuns);
    EXPECT_EQ(fast.htm.commits, ref.htm.commits);
    for (unsigned a = 0; a < htm::numAbortReasons; ++a) {
        EXPECT_EQ(fast.htm.aborts[a], ref.htm.aborts[a]) << "reason " << a;
        EXPECT_EQ(fast.htm.cyclesLost[a], ref.htm.cyclesLost[a]);
    }
    EXPECT_EQ(fast.txReadsStaticSafe, ref.txReadsStaticSafe);
    EXPECT_EQ(fast.txReadsDynSafe, ref.txReadsDynSafe);
    EXPECT_EQ(fast.txReadsAnnotated, ref.txReadsAnnotated);
    EXPECT_EQ(fast.txReadsUnsafe, ref.txReadsUnsafe);
    EXPECT_EQ(fast.txWritesStaticSafe, ref.txWritesStaticSafe);
    EXPECT_EQ(fast.txWritesUnsafe, ref.txWritesUnsafe);
    EXPECT_EQ(fast.pageModeOverheadCycles, ref.pageModeOverheadCycles);
    EXPECT_EQ(fast.safePages, ref.safePages);
    EXPECT_EQ(fast.totalPages, ref.totalPages);
    EXPECT_EQ(fast.finalGlobals, ref.finalGlobals);
    EXPECT_EQ(fast.rawStats, ref.rawStats);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsThreeHtmsThreeSizes, SchedulerEquivalence,
    ::testing::Combine(::testing::ValuesIn(workloads::allNames()),
                       ::testing::Values(htm::HtmKind::P8,
                                         htm::HtmKind::P8S,
                                         htm::HtmKind::L1TM),
                       ::testing::Values(8u, 32u, 64u)));

// Every kernel re-partitioned for the full 64-context machine must run
// end-to-end (NUMA tiers on, directory on) and still satisfy its basic
// outcome invariants. This is the scaling counterpart of the 8-thread
// DeterminismProperty sweep above.
class SixtyFourContextProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SixtyFourContextProperty, RunsEndToEnd)
{
    workloads::Workload w =
        workloads::byName(GetParam() + "@64", workloads::Scale::Tiny);
    core::compileHints(w.module);

    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    opts.numCores = 64;
    opts.numaNodes = 4;
    const sim::RunResult r = core::simulate(opts, w.module, w.threads);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.committedTxs, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SixtyFourContextProperty,
                         ::testing::ValuesIn(workloads::allNames()));

// ---------------------------------------------------------------------
// Interpreter fast path: the pre-decoded fused op stream + flat frame
// arena must be a pure performance change. Full RunResult equality —
// cycle counts, instruction counts, per-reason abort breakdowns, final
// memory contents and the raw stats dump — across workloads and HTM
// kinds, decoded versus the reference Instr-walking interpreter.

class DecodeCacheEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, htm::HtmKind>>
{
};

TEST_P(DecodeCacheEquivalence, DecodedMatchesReferenceExactly)
{
    const auto &[name, kind] = GetParam();
    workloads::Workload w1 =
        workloads::byName(name, workloads::Scale::Tiny);
    workloads::Workload w2 =
        workloads::byName(name, workloads::Scale::Tiny);
    core::compileHints(w1.module);
    core::compileHints(w2.module);

    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = core::Mechanism::Full;
    opts.collectTxSizes = true;
    opts.collectRawStats = true;
    opts.decodeCache = true;
    const sim::RunResult fast =
        core::simulate(opts, w1.module, w1.threads);
    opts.decodeCache = false;
    const sim::RunResult ref = core::simulate(opts, w2.module, w2.threads);

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.instructions, ref.instructions);
    EXPECT_EQ(fast.committedTxs, ref.committedTxs);
    EXPECT_EQ(fast.fallbackRuns, ref.fallbackRuns);
    EXPECT_EQ(fast.htm.commits, ref.htm.commits);
    for (unsigned a = 0; a < htm::numAbortReasons; ++a) {
        EXPECT_EQ(fast.htm.aborts[a], ref.htm.aborts[a]) << "reason " << a;
        EXPECT_EQ(fast.htm.cyclesLost[a], ref.htm.cyclesLost[a]);
    }
    EXPECT_EQ(fast.txReadsStaticSafe, ref.txReadsStaticSafe);
    EXPECT_EQ(fast.txReadsDynSafe, ref.txReadsDynSafe);
    EXPECT_EQ(fast.txReadsAnnotated, ref.txReadsAnnotated);
    EXPECT_EQ(fast.txReadsUnsafe, ref.txReadsUnsafe);
    EXPECT_EQ(fast.txWritesStaticSafe, ref.txWritesStaticSafe);
    EXPECT_EQ(fast.txWritesUnsafe, ref.txWritesUnsafe);
    EXPECT_EQ(fast.pageModeOverheadCycles, ref.pageModeOverheadCycles);
    EXPECT_EQ(fast.safePages, ref.safePages);
    EXPECT_EQ(fast.totalPages, ref.totalPages);
    EXPECT_EQ(fast.finalGlobals, ref.finalGlobals);
    EXPECT_EQ(fast.rawStats, ref.rawStats);
}

INSTANTIATE_TEST_SUITE_P(
    TwoWorkloadsThreeHtms, DecodeCacheEquivalence,
    ::testing::Combine(::testing::Values(std::string("kmeans"),
                                         std::string("intruder")),
                       ::testing::Values(htm::HtmKind::P8,
                                         htm::HtmKind::P8S,
                                         htm::HtmKind::L1TM)));
