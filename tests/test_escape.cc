/**
 * @file
 * Tests for the two explicit hint mechanisms layered on top of HinTM's
 * automatic classification (§VII): suspend/resume escape actions
 * (accesses in the window are neither tracked nor versioned) and
 * Notary-style page annotations (programmer-declared thread-private
 * regions honored with or without the dynamic mechanism).
 */

#include <gtest/gtest.h>

#include "core/hintm.hh"
#include "tir/builder.hh"
#include "tir/verifier.hh"
#include "vm/page_table.hh"
#include "vm/vm.hh"

using namespace hintm;
using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

/** One TX over a large buffer; hint style selected by flags. */
Module
bigTxModule(bool suspend_window, bool annotate)
{
    Module m;
    m.globals.push_back({"out", 8 * 64, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg buf = f.mallocI(1024 * 8); // 128 blocks
    // Publish so automatic static analysis cannot prove privacy.
    m.globals.push_back({"registry", 8 * 8, 0});
    f.store(f.gep(f.globalAddr("registry"), tid, 8), buf);
    f.forRangeI(0, 1024, [&](Reg i) {
        f.store(f.gep(buf, i, 8), i);
    });
    if (annotate)
        f.annotateSafe(buf, f.constI(1024 * 8));

    f.txBegin();
    if (suspend_window)
        f.txSuspend();
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 1024, [&](Reg i) {
        f.set(acc, f.add(acc, f.load(f.gep(buf, i, 8))));
    });
    if (suspend_window)
        f.txResume();
    f.store(f.gep(f.globalAddr("out"), tid, 8), acc);
    f.txEnd();
    f.freePtr(buf);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

TEST(Verifier, SuspendResumePairingEnforced)
{
    {
        Module m;
        FunctionBuilder f(m, "worker", 1);
        f.txBegin();
        f.txSuspend();
        f.txEnd(); // while suspended: invalid
        f.retVoid();
        m.threadFunc = f.finish();
        const auto err = tir::verify(m);
        ASSERT_TRUE(err.has_value());
        EXPECT_NE(err->find("suspended"), std::string::npos);
    }
    {
        Module m;
        FunctionBuilder f(m, "worker", 1);
        f.txBegin();
        f.txResume(); // no suspend
        f.txEnd();
        f.retVoid();
        m.threadFunc = f.finish();
        EXPECT_TRUE(tir::verify(m).has_value());
    }
    {
        Module m;
        FunctionBuilder f(m, "worker", 1);
        f.txSuspend(); // outside TX
        f.retVoid();
        m.threadFunc = f.finish();
        EXPECT_TRUE(tir::verify(m).has_value());
    }
}

TEST(Escape, SuspendedAccessesAreNotTracked)
{
    Module m = bigTxModule(/*suspend_window=*/true, /*annotate=*/false);
    ASSERT_FALSE(tir::verify(m).has_value());

    core::SystemOptions opts;
    opts.htmKind = htm::HtmKind::P8;
    const sim::RunResult r = core::simulate(opts, m, 4);
    // 128 untracked blocks: no capacity aborts, everything commits.
    EXPECT_EQ(r.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_EQ(r.fallbackRuns, 0u);
    EXPECT_GT(r.txAccessesSuspended, 4000u);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(r.finalGlobals.at("out")[std::size_t(t)],
                  1024 * 1023 / 2);
}

TEST(Escape, WithoutWindowTheSameTxOverflows)
{
    Module m = bigTxModule(false, false);
    core::SystemOptions opts;
    opts.htmKind = htm::HtmKind::P8;
    const sim::RunResult r = core::simulate(opts, m, 4);
    EXPECT_GT(r.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_GT(r.fallbackRuns, 0u);
}

TEST(Escape, SuspendedStoresSurviveAborts)
{
    // A suspended store persists across a rollback (it is
    // non-transactional), unlike a tracked store.
    Module m;
    m.globals.push_back({"side", 8 * 64, 0});
    m.globals.push_back({"data", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    f.txBegin();
    f.txSuspend();
    // Per-thread block-strided slot: suspended accesses are plain
    // (racy) memory, so a shared counter would lose increments.
    const Reg s = f.gep(f.globalAddr("side"), tid, 64);
    f.store(s, f.addI(f.load(s), 1)); // counts attempts, not commits
    f.txResume();
    const Reg d = f.globalAddr("data");
    f.store(d, f.addI(f.load(d), 1)); // transactional: counts commits
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(tir::verify(m).has_value());

    core::SystemOptions opts;
    opts.htmKind = htm::HtmKind::P8;
    const sim::RunResult r = core::simulate(opts, m, 8);
    EXPECT_EQ(r.finalGlobals.at("data")[0], 8);
    // Attempts >= commits per thread; totals can only exceed 8 when
    // aborts re-ran the suspended window.
    long long attempts = 0;
    for (int t = 0; t < 8; ++t) {
        const long long a = r.finalGlobals.at("side")[std::size_t(t) * 8];
        EXPECT_GE(a, 1) << "thread " << t;
        attempts += a;
    }
    EXPECT_GE(attempts, 8);
}

TEST(Annotation, PageTableStateIsSticky)
{
    vm::PageTable pt;
    pt.annotateRange(0x10000, 3 * pageBytes);
    EXPECT_TRUE(pt.hasAnnotations());
    EXPECT_EQ(pt.stateOf(0x10000), vm::PageState::Annotated);
    EXPECT_EQ(pt.stateOf(0x10000 + 2 * pageBytes),
              vm::PageState::Annotated);
    // Touches never transition an annotated page.
    for (ThreadId t = 0; t < 4; ++t) {
        const auto tr = pt.touch(t, 0x10000, AccessType::Write);
        EXPECT_EQ(tr.after, vm::PageState::Annotated);
        EXPECT_FALSE(tr.becameUnsafe);
    }
}

TEST(Annotation, HonoredWithoutDynamicMechanism)
{
    vm::VmConfig cfg;
    cfg.dynamicClassification = false;
    vm::Vm vm(cfg);
    const int c = vm.addContext();
    vm.pageTable().annotateRange(0x20000, pageBytes);

    auto r = vm.translate(c, 0, 0x20000, AccessType::Read);
    EXPECT_TRUE(r.safeRead);
    EXPECT_FALSE(r.revocable);
    // Unannotated pages stay unsafe.
    r = vm.translate(c, 0, 0x40000, AccessType::Read);
    EXPECT_FALSE(r.safeRead);
    // Writes are never safe, annotation or not.
    r = vm.translate(c, 0, 0x20000, AccessType::Write);
    EXPECT_FALSE(r.safeRead);
}

TEST(Annotation, NotaryModeFixesCapacityWithoutDynFsm)
{
    Module m = bigTxModule(false, /*annotate=*/true);
    ASSERT_FALSE(tir::verify(m).has_value());

    // Baseline without annotation consumption: overflows.
    core::SystemOptions base;
    base.htmKind = htm::HtmKind::P8;
    const sim::RunResult rb = core::simulate(base, m, 4);
    EXPECT_GT(rb.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);

    // Notary mode: annotations honored, no page FSM, no shootdowns.
    core::SystemOptions notary = base;
    notary.notaryAnnotations = true;
    const sim::RunResult rn = core::simulate(notary, m, 4);
    EXPECT_EQ(rn.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_GT(rn.txReadsAnnotated, 4000u);
    EXPECT_EQ(rn.pageModeOverheadCycles, 0u);
    EXPECT_LT(rn.cycles, rb.cycles);

    // Under full HinTM the annotation is honored too (and bypasses the
    // FSM, so no page-mode aborts arise from the annotated region).
    core::SystemOptions full = base;
    full.mechanism = core::Mechanism::Full;
    const sim::RunResult rf = core::simulate(full, m, 4);
    EXPECT_EQ(rf.htm.aborts[unsigned(htm::AbortReason::Capacity)], 0u);
    EXPECT_GT(rf.txReadsAnnotated, 4000u);
}
