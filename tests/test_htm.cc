/**
 * @file
 * Unit tests for the HTM layer: transactional buffer, PBX signature
 * (no false negatives, clear semantics, measurable aliasing), and the
 * controller's behavior per configuration — capacity rules, conflict
 * detection against read/write sets, signature spills and false
 * conflicts, L1TM eviction aborts, page-mode aborts, abort bookkeeping
 * and the undo-hook contract.
 */

#include <gtest/gtest.h>

#include "htm/controller.hh"
#include "htm/signature.hh"
#include "htm/tx_buffer.hh"

using namespace hintm;
using namespace hintm::htm;

namespace
{

Addr
blk(unsigned i)
{
    return Addr(i) * blockBytes;
}

struct ControllerFixture
{
    HtmStats stats;
    HtmConfig cfg;
    std::unique_ptr<HtmController> ctl;
    unsigned undoCalls = 0;

    explicit ControllerFixture(HtmKind kind, unsigned entries = 4)
    {
        cfg.kind = kind;
        cfg.bufferEntries = entries;
        cfg.signatureBits = 256;
        ctl = std::make_unique<HtmController>(cfg, 0, &stats);
        ctl->setUndoHook([this] { ++undoCalls; });
    }
};

} // namespace

TEST(TxBuffer, TracksUntilCapacity)
{
    TxBuffer buf(2);
    EXPECT_EQ(buf.track(blk(1), AccessType::Read), Tracked | NewlyRead);
    // Same entry: tracked, write bit newly set.
    EXPECT_EQ(buf.track(blk(1), AccessType::Write),
              Tracked | NewlyWritten);
    // Repeats set no new direction bit.
    EXPECT_EQ(buf.track(blk(1), AccessType::Read), Tracked);
    EXPECT_EQ(buf.track(blk(2), AccessType::Read), Tracked | NewlyRead);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.track(blk(3), AccessType::Read), TrackFailed);
    EXPECT_EQ(buf.size(), 2u);

    const TxBufferEntry *e = buf.find(blk(1));
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->read);
    EXPECT_TRUE(e->written);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
}

TEST(TxBuffer, ReadOnlyVictimSelection)
{
    TxBuffer buf(3);
    buf.track(blk(1), AccessType::Write);
    buf.track(blk(2), AccessType::Read);
    const Addr v = buf.findReadOnlyVictim();
    EXPECT_EQ(v, blk(2));
    buf.track(blk(2), AccessType::Write);
    EXPECT_EQ(buf.findReadOnlyVictim(), ~Addr(0));
}

TEST(Signature, NoFalseNegatives)
{
    Signature sig(1024, 2);
    for (unsigned i = 0; i < 200; ++i)
        sig.insert(blk(i * 7));
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_TRUE(sig.test(blk(i * 7))) << i;
}

TEST(Signature, EmptyMatchesNothing)
{
    Signature sig(1024, 2);
    EXPECT_TRUE(sig.empty());
    EXPECT_FALSE(sig.test(blk(1)));
    sig.insert(blk(1));
    EXPECT_FALSE(sig.empty());
    sig.clear();
    EXPECT_TRUE(sig.empty());
    EXPECT_FALSE(sig.test(blk(1)));
}

TEST(Signature, AliasingGrowsWithOccupancy)
{
    Signature sig(256, 2);
    unsigned false_hits = 0;
    for (unsigned i = 0; i < 300; ++i)
        sig.insert(blk(i));
    for (unsigned i = 1000; i < 1300; ++i)
        false_hits += sig.test(blk(i));
    // A near-saturated 256-bit vector must alias heavily.
    EXPECT_GT(false_hits, 100u);
    EXPECT_GT(sig.occupancy(), 0.5);
}

TEST(Controller, CommitClearsState)
{
    ControllerFixture f(HtmKind::P8);
    f.ctl->beginTx(100);
    f.ctl->trackAccess(blk(1), AccessType::Write, false);
    EXPECT_EQ(f.ctl->trackedBlocks(), 1u);
    f.ctl->commitTx(200);
    EXPECT_FALSE(f.ctl->inTx());
    EXPECT_EQ(f.ctl->trackedBlocks(), 0u);
    EXPECT_EQ(f.stats.commits, 1u);
    EXPECT_EQ(f.stats.trackedAtCommit.max(), 1u);
}

TEST(Controller, SafeAccessesAreNotTracked)
{
    ControllerFixture f(HtmKind::P8);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 100; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Read, /*safe=*/true);
    EXPECT_EQ(f.ctl->trackedBlocks(), 0u);
    EXPECT_FALSE(f.ctl->abortPending());
    // A remote write to a safe (untracked) block cannot conflict.
    f.ctl->onRemoteAccess(blk(5), AccessType::Write, 1);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->commitTx(10);
}

TEST(Controller, P8CapacityAbortsAndRunsUndoHook)
{
    ControllerFixture f(HtmKind::P8, 4);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 4; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Read, false);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->trackAccess(blk(99), AccessType::Read, false);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Capacity);
    EXPECT_EQ(f.undoCalls, 1u);

    const AbortReason r = f.ctl->acknowledgeAbort(500);
    EXPECT_EQ(r, AbortReason::Capacity);
    EXPECT_FALSE(f.ctl->inTx());
    EXPECT_EQ(f.stats.aborts[unsigned(AbortReason::Capacity)], 1u);
    EXPECT_GE(f.stats.cyclesLost[unsigned(AbortReason::Capacity)], 500u);
}

TEST(Controller, ConflictRules)
{
    ControllerFixture f(HtmKind::P8, 8);
    f.ctl->beginTx(0);
    f.ctl->trackAccess(blk(1), AccessType::Read, false);
    f.ctl->trackAccess(blk(2), AccessType::Write, false);

    // Remote read vs our read: no conflict.
    f.ctl->onRemoteAccess(blk(1), AccessType::Read, 1);
    EXPECT_FALSE(f.ctl->abortPending());
    // Remote read vs our write: conflict.
    f.ctl->onRemoteAccess(blk(2), AccessType::Read, 1);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Conflict);
    f.ctl->acknowledgeAbort(10);

    // Remote write vs our read: conflict.
    f.ctl->beginTx(20);
    f.ctl->trackAccess(blk(1), AccessType::Read, false);
    f.ctl->onRemoteAccess(blk(1), AccessType::Write, 1);
    EXPECT_TRUE(f.ctl->abortPending());
}

TEST(Controller, FirstAbortReasonWins)
{
    ControllerFixture f(HtmKind::P8, 8);
    f.ctl->beginTx(0);
    f.ctl->trackAccess(blk(1), AccessType::Write, false);
    f.ctl->onRemoteAccess(blk(1), AccessType::Write, 1);
    ASSERT_TRUE(f.ctl->abortPending());
    f.ctl->requestAbort(AbortReason::FallbackLock);
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Conflict);
    EXPECT_EQ(f.undoCalls, 1u); // hook ran exactly once
}

TEST(Controller, P8SReadsSpillToSignature)
{
    ControllerFixture f(HtmKind::P8S, 4);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 20; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Read, false);
    EXPECT_FALSE(f.ctl->abortPending());
    EXPECT_EQ(f.stats.signatureSpills, 16u);
    // A spilled read is still precisely conflict-checked.
    f.ctl->onRemoteAccess(blk(10), AccessType::Write, 1);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Conflict);
}

TEST(Controller, P8SWriteDisplacesReadOnlyEntry)
{
    ControllerFixture f(HtmKind::P8S, 4);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 4; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Read, false);
    // Buffer full of reads; a new write displaces one read.
    f.ctl->trackAccess(blk(50), AccessType::Write, false);
    EXPECT_FALSE(f.ctl->abortPending());
    EXPECT_TRUE(f.ctl->writesBlock(blk(50)));

    // Fill the buffer with writes; the next write aborts.
    for (unsigned i = 51; i < 54; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Write, false);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->trackAccess(blk(60), AccessType::Write, false);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Capacity);
}

TEST(Controller, P8SFalseConflictFromAliasing)
{
    // 1-hash tiny signature: trivial to alias deliberately.
    HtmStats stats;
    HtmConfig cfg;
    cfg.kind = HtmKind::P8S;
    cfg.bufferEntries = 1;
    cfg.signatureBits = 64;
    cfg.signatureHashes = 1;
    HtmController ctl(cfg, 0, &stats);
    ctl.beginTx(0);
    ctl.trackAccess(blk(0), AccessType::Read, false);
    ctl.trackAccess(blk(1), AccessType::Read, false); // spills: bit 1
    // blk(65) hashes to the same bit as blk(1) under pure low-bit
    // folding (65 % 64 == 1 with a zero high field contribution).
    bool aliased = false;
    for (unsigned i = 2; i < 4096 && !aliased; ++i) {
        if (!ctl.readsBlock(blk(i))) {
            ctl.onRemoteAccess(blk(i), AccessType::Write, 1);
            aliased = ctl.abortPending();
            if (aliased) {
                EXPECT_EQ(ctl.pendingReason(),
                          AbortReason::FalseConflict);
            }
        }
    }
    EXPECT_TRUE(aliased);
}

TEST(Controller, L1TMEvictionOfTrackedLineAborts)
{
    ControllerFixture f(HtmKind::L1TM);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 200; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Read, false);
    EXPECT_FALSE(f.ctl->abortPending()); // unbounded controller side
    f.ctl->onEviction(blk(77), false);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Capacity);
}

TEST(Controller, L1TMEvictionOfUntrackedLineIsHarmless)
{
    ControllerFixture f(HtmKind::L1TM);
    f.ctl->beginTx(0);
    f.ctl->trackAccess(blk(1), AccessType::Read, false);
    f.ctl->onEviction(blk(99), true);
    EXPECT_FALSE(f.ctl->abortPending());
}

TEST(Controller, InfCapNeverCapacityAborts)
{
    ControllerFixture f(HtmKind::InfCap);
    f.ctl->beginTx(0);
    for (unsigned i = 0; i < 5000; ++i)
        f.ctl->trackAccess(blk(i), AccessType::Write, false);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->onEviction(blk(3), true);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->commitTx(1);
    EXPECT_EQ(f.stats.trackedAtCommit.max(), 5000u);
}

TEST(Controller, PageModeAbortOnlyForTouchedSafePages)
{
    ControllerFixture f(HtmKind::P8);
    f.ctl->beginTx(0);
    f.ctl->noteSafePageRead(10);
    f.ctl->onPageBecameUnsafe(11);
    EXPECT_FALSE(f.ctl->abortPending());
    f.ctl->onPageBecameUnsafe(10);
    EXPECT_TRUE(f.ctl->abortPending());
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::PageMode);
}

TEST(Controller, NoConflictCheckingOutsideTx)
{
    ControllerFixture f(HtmKind::P8);
    f.ctl->onRemoteAccess(blk(1), AccessType::Write, 1);
    f.ctl->onEviction(blk(1), false);
    f.ctl->onPageBecameUnsafe(1);
    EXPECT_FALSE(f.ctl->abortPending());
}

TEST(AbortTaxonomy, TransienceClassification)
{
    EXPECT_TRUE(abortIsTransient(AbortReason::Conflict));
    EXPECT_TRUE(abortIsTransient(AbortReason::FalseConflict));
    EXPECT_TRUE(abortIsTransient(AbortReason::PageMode));
    EXPECT_TRUE(abortIsTransient(AbortReason::FallbackLock));
    EXPECT_FALSE(abortIsTransient(AbortReason::Capacity));
}

// ---- interest hook: the controller publishes exactly when it needs
// coherence events (in a live TX), matching its own early-return
// predicate in onRemoteAccess/onEviction ---------------------------

TEST(Controller, InterestHookPublishesImmediatelyAndOnBeginCommit)
{
    ControllerFixture f(HtmKind::P8);
    bool interested = true;
    unsigned calls = 0;
    f.ctl->setInterestHook([&](bool on) {
        interested = on;
        ++calls;
    });
    // Installed outside a TX: published false right away.
    EXPECT_EQ(calls, 1u);
    EXPECT_FALSE(interested);

    f.ctl->beginTx(0);
    EXPECT_TRUE(interested);
    f.ctl->commitTx(10);
    EXPECT_FALSE(interested);
}

TEST(Controller, InterestDropsAtAbortNotAtAcknowledge)
{
    ControllerFixture f(HtmKind::P8);
    bool interested = false;
    f.ctl->setInterestHook([&](bool on) { interested = on; });

    f.ctl->beginTx(0);
    EXPECT_TRUE(interested);
    // The instant the abort fires the controller ignores all further
    // events, so interest must drop with it — not at acknowledge time.
    f.ctl->requestAbort(AbortReason::FallbackLock);
    EXPECT_FALSE(interested);
    f.ctl->acknowledgeAbort(50);
    EXPECT_FALSE(interested);
}

TEST(Controller, InterestSurvivesFallbackSubscribeUntilConversion)
{
    ControllerFixture f(HtmKind::P8, 2);
    f.cfg.preAbortHandler = true;
    f.ctl = std::make_unique<HtmController>(f.cfg, 0, &f.stats);
    bool interested = false;
    f.ctl->setInterestHook([&](bool on) { interested = on; });

    f.ctl->beginTx(0);
    // Lock subscription: the fallback-lock word joins the readset, so
    // the TX stays interested while subscribed.
    f.ctl->trackAccess(blk(1), AccessType::Read, false);
    EXPECT_TRUE(interested);

    // Overflow with the pre-abort handler: capacity pends but the TX is
    // still live (and must still see a lock write to be conflicted out).
    f.ctl->trackAccess(blk(2), AccessType::Read, false);
    f.ctl->trackAccess(blk(3), AccessType::Write, false);
    ASSERT_TRUE(f.ctl->capacityPending());
    EXPECT_TRUE(interested);

    // Conversion to a critical section stops hardware monitoring:
    // events are ignored from here on, so interest drops.
    f.ctl->convertToCriticalSection();
    EXPECT_FALSE(interested);
}

TEST(Controller, InterestMatchesEventProcessingPredicate)
{
    // Property: whenever the hook says "uninterested", delivering an
    // event anyway must be a no-op (gating can never change behavior).
    ControllerFixture f(HtmKind::P8, 2);
    bool interested = false;
    f.ctl->setInterestHook([&](bool on) { interested = on; });

    ASSERT_FALSE(interested);
    f.ctl->onRemoteAccess(blk(1), AccessType::Write, 1);
    EXPECT_FALSE(f.ctl->abortPending());

    f.ctl->beginTx(0);
    f.ctl->trackAccess(blk(1), AccessType::Read, false);
    ASSERT_TRUE(interested);
    f.ctl->onRemoteAccess(blk(1), AccessType::Write, 1);
    EXPECT_TRUE(f.ctl->abortPending()); // interested -> event mattered
    ASSERT_FALSE(interested);           // ...and the abort dropped it
    f.ctl->onEviction(blk(1), false);   // ignored while abort pending
    EXPECT_EQ(f.ctl->pendingReason(), AbortReason::Conflict);
}
