/**
 * @file
 * Tests for the per-TX observability journal: cross-checks between the
 * journal's exact aggregates and the simulator's own HTM statistics,
 * bit-identity of simulation results with the journal on and off,
 * bounded-ring drop accounting, the interval sampler, per-site abort
 * attribution, and the Perfetto / stats-JSON exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/journal.hh"
#include "core/hintm.hh"
#include "htm/abort.hh"
#include "sim/journal_io.hh"
#include "workloads/workloads.hh"

using namespace hintm;

namespace
{

sim::RunResult
runWithJournal(const std::string &workload, htm::HtmKind kind,
               std::size_t capacity = 1u << 16)
{
    workloads::Workload wl =
        workloads::byName(workload, workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts;
    opts.htmKind = kind;
    opts.mechanism = core::Mechanism::Full;
    opts.journal = true;
    opts.journalCapacity = capacity;
    return core::simulate(opts, wl.module, wl.threads);
}

} // namespace

// ---- journal <-> simulator cross-checks -----------------------------

TEST(TxJournal, AggregatesMatchHtmStatsAcrossWorkloadsAndKinds)
{
    for (const char *workload : {"kmeans", "intruder"}) {
        for (htm::HtmKind kind :
             {htm::HtmKind::P8, htm::HtmKind::P8S, htm::HtmKind::L1TM}) {
            SCOPED_TRACE(std::string(workload) + " / " +
                         htm::htmKindName(kind));
            const sim::RunResult r = runWithJournal(workload, kind);
            ASSERT_NE(r.journal, nullptr);
            const TxJournal &j = *r.journal;

            // Every hardware commit produced exactly one Commit record.
            EXPECT_EQ(j.totals().commits, r.htm.commits);
            // Every committed TX (hardware, fallback, converted)
            // produced exactly one committing record.
            EXPECT_EQ(j.totals().committedAttempts(), r.committedTxs);
            // Every abort the controllers counted was journaled with
            // the same reason.
            for (unsigned a = 1; a < htm::numAbortReasons; ++a) {
                SCOPED_TRACE(
                    htm::abortReasonName(htm::AbortReason(a)));
                EXPECT_EQ(j.totals().aborts[a], r.htm.aborts[a]);
            }
            // Ring bookkeeping is conserved.
            EXPECT_EQ(j.pushed(), j.size() + j.dropped());
            EXPECT_LE(j.size(), j.capacity());

            // Per-site aggregates fold to the same totals.
            std::uint64_t site_commits = 0, site_aborts = 0;
            for (const auto &kv : j.sites()) {
                site_commits += kv.second.commits;
                site_aborts += kv.second.totalAborts();
            }
            EXPECT_EQ(site_commits, j.totals().commits);
            EXPECT_EQ(site_aborts, j.totals().totalAborts());
        }
    }
}

TEST(TxJournal, RecordsCarryTxSites)
{
    const sim::RunResult r = runWithJournal("kmeans", htm::HtmKind::P8);
    const TxJournal &j = *r.journal;
    ASSERT_GT(j.size(), 0u);
    for (std::size_t i = 0; i < j.size(); ++i) {
        const TxRecord &rec = j.at(i);
        EXPECT_GE(rec.fn, 0) << "record " << i << " lost its TX site";
        EXPECT_GE(rec.end, rec.begin);
        EXPECT_NE(j.siteName(rec.fn, rec.block, rec.instr), "(unknown)");
    }
}

TEST(TxJournal, ConflictAbortsNameOffenderBlockAndContext)
{
    // intruder's shared queue guarantees conflicts at tiny scale.
    const sim::RunResult r =
        runWithJournal("intruder", htm::HtmKind::P8);
    const TxJournal &j = *r.journal;
    const unsigned conflict = unsigned(htm::AbortReason::Conflict);
    ASSERT_GT(j.totals().aborts[conflict], 0u);

    bool sawAttributedConflict = false;
    for (std::size_t i = 0; i < j.size(); ++i) {
        const TxRecord &rec = j.at(i);
        if (rec.outcome != TxOutcome::Abort || rec.reason != conflict)
            continue;
        if (rec.offendingValid && rec.offendingCtx >= 0) {
            sawAttributedConflict = true;
            EXPECT_NE(std::uint32_t(rec.offendingCtx), rec.ctx)
                << "a TX cannot conflict with itself";
        }
    }
    EXPECT_TRUE(sawAttributedConflict);

    // ... and the attribution reaches the per-site hot-block lists.
    bool sawHotBlock = false;
    for (const auto &kv : j.sites())
        sawHotBlock |= !kv.second.hotBlocks.empty();
    EXPECT_TRUE(sawHotBlock);
}

// ---- bit-identity ---------------------------------------------------

TEST(TxJournal, ObservationOnlyResultsAreBitIdentical)
{
    for (const char *workload : {"kmeans", "intruder"}) {
        SCOPED_TRACE(workload);
        workloads::Workload wl =
            workloads::byName(workload, workloads::Scale::Tiny);
        core::compileHints(wl.module);

        core::SystemOptions base;
        base.mechanism = core::Mechanism::Full;
        base.collectRawStats = true;
        base.journal = false;
        core::SystemOptions with = base;
        with.journal = true;

        tir::Module m1 = wl.module;
        tir::Module m2 = wl.module;
        const sim::RunResult r1 = core::simulate(base, m1, wl.threads);
        const sim::RunResult r2 = core::simulate(with, m2, wl.threads);

        EXPECT_EQ(r1.cycles, r2.cycles);
        EXPECT_EQ(r1.instructions, r2.instructions);
        EXPECT_EQ(r1.committedTxs, r2.committedTxs);
        EXPECT_EQ(r1.fallbackRuns, r2.fallbackRuns);
        EXPECT_EQ(r1.htm.commits, r2.htm.commits);
        for (unsigned a = 0; a < htm::numAbortReasons; ++a)
            EXPECT_EQ(r1.htm.aborts[a], r2.htm.aborts[a]);
        EXPECT_EQ(r1.txAccessesTotal(), r2.txAccessesTotal());
        EXPECT_EQ(r1.pageModeOverheadCycles, r2.pageModeOverheadCycles);
        EXPECT_EQ(r1.rawStats, r2.rawStats);
        EXPECT_EQ(r1.finalGlobals, r2.finalGlobals);

        EXPECT_EQ(r1.journal, nullptr);
        ASSERT_NE(r2.journal, nullptr);
        EXPECT_GT(r2.journal->pushed(), 0u);
    }
}

// ---- bounded ring ---------------------------------------------------

TEST(TxJournal, RingOverflowCountsDropsAndKeepsAggregatesExact)
{
    const sim::RunResult full =
        runWithJournal("intruder", htm::HtmKind::P8);
    const std::size_t tiny_cap = 8;
    const sim::RunResult capped =
        runWithJournal("intruder", htm::HtmKind::P8, tiny_cap);

    const TxJournal &jf = *full.journal;
    const TxJournal &jc = *capped.journal;
    ASSERT_GT(jf.pushed(), tiny_cap);

    // Same simulation, same attempts pushed; the small ring dropped the
    // overflow but kept the exact aggregates.
    EXPECT_EQ(jc.pushed(), jf.pushed());
    EXPECT_EQ(jc.size(), tiny_cap);
    EXPECT_EQ(jc.dropped(), jf.pushed() - tiny_cap);
    EXPECT_EQ(jc.totals().commits, jf.totals().commits);
    EXPECT_EQ(jc.totals().totalAborts(), jf.totals().totalAborts());
    EXPECT_EQ(jc.totals().committedAttempts(),
              jf.totals().committedAttempts());

    // Retained records are the chronologically newest ones.
    const TxRecord &oldest_kept = jc.at(0);
    const TxRecord &newest_full = jf.at(jf.size() - 1);
    EXPECT_EQ(jc.at(jc.size() - 1).end, newest_full.end);
    EXPECT_GE(oldest_kept.end,
              jf.at(jf.size() - tiny_cap).begin);
}

// ---- synthetic-record unit tests ------------------------------------

namespace
{

TxRecord
mkRecord(Cycle begin, Cycle end, TxOutcome outcome, unsigned reason = 0,
         std::int32_t fn = 0, std::int32_t block = 0,
         std::int32_t instr = 0)
{
    TxRecord r;
    r.begin = begin;
    r.end = end;
    r.outcome = outcome;
    r.reason = std::uint8_t(reason);
    r.fn = fn;
    r.block = block;
    r.instr = instr;
    r.readBlocks = 2;
    r.writeBlocks = 1;
    return r;
}

} // namespace

TEST(TxJournal, IntervalSamplerFoldsByEndCycle)
{
    TxJournal j(64);
    j.push(mkRecord(10, 50, TxOutcome::Commit));
    j.push(mkRecord(60, 120, TxOutcome::Abort, 1));
    j.push(mkRecord(130, 250, TxOutcome::Commit));

    const auto samples = j.sampleIntervals(100);
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].start, 0u);
    EXPECT_EQ(samples[0].commits, 1u);
    EXPECT_EQ(samples[0].totalAborts(), 0u);
    EXPECT_EQ(samples[1].aborts[1], 1u);
    EXPECT_EQ(samples[2].commits, 1u);
    EXPECT_DOUBLE_EQ(samples[0].meanFootprint(), 3.0);
}

TEST(TxJournal, IntervalSamplerSpreadsFallbackOccupancy)
{
    TxJournal j(64);
    // Fallback run holding the lock across [50, 250): 50 cycles in
    // window 0, all of window 1, 50 cycles of window 2.
    j.push(mkRecord(50, 250, TxOutcome::FallbackCommit));

    const auto samples = j.sampleIntervals(100);
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].fallbackCycles, 50u);
    EXPECT_EQ(samples[1].fallbackCycles, 100u);
    EXPECT_EQ(samples[2].fallbackCycles, 50u);
    EXPECT_EQ(samples[2].commits, 1u); // attributed to its end window
}

TEST(TxJournal, SiteAggregationAndHotBlockSaturation)
{
    TxJournal j(4); // tiny ring: aggregates must not care
    // Site A: hotBlockCap+2 distinct offending blocks.
    for (unsigned i = 0; i < TxJournal::hotBlockCap + 2; ++i) {
        TxRecord r = mkRecord(i, i + 1, TxOutcome::Abort, 1, 1, 2, 3);
        r.offendingAddr = 0x1000 + 64 * i;
        r.offendingValid = true;
        j.push(r);
    }
    // Site B: commits only.
    for (unsigned i = 0; i < 5; ++i)
        j.push(mkRecord(100 + i, 101 + i, TxOutcome::Commit, 0, 7, 0, 0));

    EXPECT_EQ(j.size(), 4u);
    EXPECT_EQ(j.dropped(), TxJournal::hotBlockCap + 2 + 5 - 4);
    ASSERT_EQ(j.sites().size(), 2u);

    const auto order = j.sitesByAborts();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0]->fn, 1); // most aborts first
    EXPECT_EQ(order[0]->totalAborts(), TxJournal::hotBlockCap + 2);
    EXPECT_EQ(order[0]->hotBlocks.size(), TxJournal::hotBlockCap);
    EXPECT_EQ(order[0]->otherOffenders, 2u);
    // Saturation is an explicit flag, not just a nonzero overflow
    // counter: consumers can tell a partial ranking from a full one.
    EXPECT_TRUE(order[0]->hotBlocksSaturated);
    EXPECT_FALSE(order[1]->hotBlocksSaturated);
    EXPECT_EQ(order[1]->fn, 7);
    EXPECT_EQ(order[1]->commits, 5u);
    EXPECT_EQ(order[1]->footprintSum, 5u * 3u);
}

TEST(TxJournal, HotBlockListAtExactCapIsNotSaturated)
{
    TxJournal j(64);
    for (unsigned i = 0; i < TxJournal::hotBlockCap; ++i) {
        TxRecord r = mkRecord(i, i + 1, TxOutcome::Abort, 1, 1, 2, 3);
        r.offendingAddr = 0x1000 + 64 * i;
        r.offendingValid = true;
        j.push(r);
    }
    const auto order = j.sitesByAborts();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0]->hotBlocks.size(), TxJournal::hotBlockCap);
    EXPECT_EQ(order[0]->otherOffenders, 0u);
    EXPECT_FALSE(order[0]->hotBlocksSaturated);
}

TEST(TxJournal, SitesByCyclesLostRanksCostNotCount)
{
    TxJournal j(64);
    // Site 1: many cheap aborts (10 x 1 cycle).
    for (unsigned i = 0; i < 10; ++i)
        j.push(mkRecord(i * 10, i * 10 + 1, TxOutcome::Abort, 1, 1, 0,
                        0));
    // Site 2: one expensive abort (500 cycles).
    j.push(mkRecord(1000, 1500, TxOutcome::Abort, 1, 2, 0, 0));

    const auto byAborts = j.sitesByAborts();
    ASSERT_EQ(byAborts.size(), 2u);
    EXPECT_EQ(byAborts[0]->fn, 1); // count ranking: many cheap first

    const auto byCost = j.sitesByCyclesLost();
    ASSERT_EQ(byCost.size(), 2u);
    EXPECT_EQ(byCost[0]->fn, 2); // cost ranking: expensive first
    EXPECT_EQ(byCost[0]->cyclesLostToAborts, 500u);
    EXPECT_EQ(byCost[1]->cyclesLostToAborts, 10u);
}

// ---- interval-sampler edge cases ------------------------------------

TEST(TxJournal, IntervalSamplerZeroWindowReturnsNoSamples)
{
    TxJournal j(64);
    j.push(mkRecord(10, 50, TxOutcome::Commit));
    EXPECT_TRUE(j.sampleIntervals(0).empty());
}

TEST(TxJournal, IntervalSamplerHugeWindowFoldsToOneSample)
{
    TxJournal j(64);
    j.push(mkRecord(10, 50, TxOutcome::Commit));
    j.push(mkRecord(60, 120, TxOutcome::Abort, 1));
    j.push(mkRecord(130, 250, TxOutcome::Commit));

    const auto samples = j.sampleIntervals(1'000'000'000);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].start, 0u);
    EXPECT_EQ(samples[0].commits, 2u);
    EXPECT_EQ(samples[0].totalAborts(), 1u);
}

TEST(TxJournal, IntervalSamplerRunShorterThanOneWindow)
{
    TxJournal j(64);
    j.push(mkRecord(3, 7, TxOutcome::Commit));
    const auto samples = j.sampleIntervals(100);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].commits, 1u);
    EXPECT_DOUBLE_EQ(samples[0].meanFootprint(), 3.0);
}

TEST(TxJournal, IntervalSamplerEmptyJournalAndRingDrops)
{
    TxJournal empty(8);
    EXPECT_TRUE(empty.sampleIntervals(100).empty());

    // A 4-slot ring over 10 records: only the newest 4 survive, so the
    // early windows under-count while the exact totals stay complete.
    TxJournal j(4);
    for (unsigned i = 0; i < 10; ++i)
        j.push(mkRecord(i * 100, i * 100 + 10, TxOutcome::Commit));
    ASSERT_EQ(j.dropped(), 6u);

    const auto samples = j.sampleIntervals(100);
    ASSERT_EQ(samples.size(), 10u);
    std::uint64_t sampled = 0;
    for (const auto &s : samples)
        sampled += s.commits;
    EXPECT_EQ(sampled, 4u);           // only retained records fold
    EXPECT_EQ(samples[0].commits, 0u); // oldest windows dropped
    EXPECT_EQ(samples[9].commits, 1u); // newest window intact
    EXPECT_EQ(j.totals().commits, 10u); // aggregates stay exact
}

TEST(TxJournal, SiteNamesRender)
{
    TxJournal j(4);
    j.setFunctionNames({"main", "worker"});
    EXPECT_EQ(j.siteName(1, 3, 7), "worker:3:7");
    EXPECT_EQ(j.siteName(5, 0, 0), "fn5:0:0"); // past the name table
    EXPECT_EQ(j.siteName(-1, 0, 0), "(unknown)");
}

// ---- exporters ------------------------------------------------------

TEST(JournalIo, PerfettoTraceIsWellFormed)
{
    const sim::RunResult r = runWithJournal("kmeans", htm::HtmKind::P8);
    const std::vector<sim::JournalRun> runs = {
        {"kmeans", "P8/HinTM", 8, &r}};
    std::ostringstream os;
    sim::writePerfettoTrace(os, runs);
    const std::string trace = os.str();

    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    // Balanced braces/brackets (cheap structural validity check; CI
    // re-validates with a real JSON parser).
    long depth = 0;
    for (char c : trace) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(JournalIo, StatsJsonRecordCarriesJournalSections)
{
    const sim::RunResult r =
        runWithJournal("intruder", htm::HtmKind::P8);
    const sim::JournalRun run = {"intruder", "P8/HinTM", 8, &r};
    const std::string rec = sim::statsJsonRecord(run);

    for (const char *key :
         {"\"workload\"", "\"htm\"", "\"journal\"", "\"totals\"",
          "\"sites\"", "\"intervals\"", "\"hot_blocks\"",
          "\"hot_blocks_saturated\"", "\"conflict\"", "\"dropped\""})
        EXPECT_NE(rec.find(key), std::string::npos) << key;
    EXPECT_EQ(rec.find("\"journal\":null"), std::string::npos);
    // No metrics were collected: the section is present but null.
    EXPECT_NE(rec.find("\"metrics\":null"), std::string::npos);

    // Journal-off runs still export the simulation sections.
    workloads::Workload wl =
        workloads::byName("kmeans", workloads::Scale::Tiny);
    core::compileHints(wl.module);
    core::SystemOptions opts;
    const sim::RunResult plain = core::simulate(opts, wl.module, 2);
    const sim::JournalRun off = {"kmeans", "P8/baseline", 2, &plain};
    const std::string rec2 = sim::statsJsonRecord(off);
    EXPECT_NE(rec2.find("\"journal\":null"), std::string::npos);
    EXPECT_NE(rec2.find("\"metrics\":null"), std::string::npos);
    EXPECT_NE(rec2.find("\"htm\""), std::string::npos);
}

TEST(JournalIo, AttributionTableNamesOffendingBlocks)
{
    const sim::RunResult r =
        runWithJournal("intruder", htm::HtmKind::P8);
    const std::string table =
        sim::renderAttributionTable(*r.journal, 10);
    EXPECT_NE(table.find("tx site"), std::string::npos);
    EXPECT_NE(table.find("0x"), std::string::npos)
        << "no concrete offending block address in:\n"
        << table;
    EXPECT_NE(table.find("worker"), std::string::npos) << table;
}

TEST(JournalIo, DefaultIntervalWindowIsSane)
{
    EXPECT_EQ(sim::defaultIntervalWindow(0), 1000u);
    EXPECT_GE(sim::defaultIntervalWindow(100), 100u);
    const Cycle w = sim::defaultIntervalWindow(5'000'000);
    EXPECT_GE(5'000'000u / w, 10u); // enough windows to plot
    EXPECT_LE(5'000'000u / w, 1000u);
}
