/**
 * @file
 * Tests for the benchmark-harness plumbing: argument parsing, reduction
 * and geomean math, and the prepare/run round trip.
 */

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"

using namespace hintm;
using bench::BenchArgs;

namespace
{

BenchArgs
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "bench");
    return BenchArgs::parse(int(argv.size()),
                            const_cast<char **>(argv.data()));
}

} // namespace

TEST(BenchArgs, Defaults)
{
    const BenchArgs a = parse({});
    EXPECT_EQ(a.scale, workloads::Scale::Small);
    EXPECT_FALSE(a.scaleExplicit);
    EXPECT_FALSE(a.preserve);
    EXPECT_EQ(a.names(), workloads::allNames());
}

TEST(BenchArgs, ExplicitScaleAndWorkloads)
{
    const BenchArgs a =
        parse({"--large", "--workload", "genome", "--workload", "yada",
               "--preserve"});
    EXPECT_EQ(a.scale, workloads::Scale::Large);
    EXPECT_TRUE(a.scaleExplicit);
    EXPECT_TRUE(a.preserve);
    EXPECT_EQ(a.names(),
              (std::vector<std::string>{"genome", "yada"}));
}

TEST(BenchArgs, UnknownArgumentFatals)
{
    EXPECT_THROW(parse({"--bogus"}), std::runtime_error);
}

TEST(BenchArgs, JobsFlag)
{
    EXPECT_EQ(parse({}).jobs, 0u); // 0 = hardware concurrency
    EXPECT_EQ(parse({"--jobs", "4"}).jobs, 4u);
    EXPECT_EQ(parse({"--jobs", "1"}).jobs, 1u);
}

TEST(BenchMath, Reduction)
{
    EXPECT_DOUBLE_EQ(bench::reduction(100, 40), 0.6);
    EXPECT_DOUBLE_EQ(bench::reduction(100, 0), 1.0);
    EXPECT_DOUBLE_EQ(bench::reduction(0, 5), 0.0); // no baseline
    // Regressions render as negative reductions, not a 0% clamp.
    EXPECT_DOUBLE_EQ(bench::reduction(10, 20), -1.0);
    EXPECT_DOUBLE_EQ(bench::reduction(100, 150), -0.5);
}

TEST(BenchMath, Geomean)
{
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({}), 0.0);
    EXPECT_NEAR(bench::geomean({1.0, 1.0, 8.0}), 2.0, 1e-9);
    // Non-positive entries are ignored rather than poisoning the mean.
    EXPECT_DOUBLE_EQ(bench::geomean({0.0, 4.0}), 4.0);
}

TEST(BenchMath, SpeedupFormat)
{
    EXPECT_EQ(bench::speedupStr(2.984), "2.98x");
    EXPECT_EQ(bench::speedupStr(1.0), "1.00x");
}

TEST(BenchPrepare, CompilesAndRuns)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    EXPECT_EQ(p.wl.name, "kmeans");
    EXPECT_GT(p.compileReport.totalLoads, 0u);

    core::SystemOptions opts;
    const sim::RunResult r = bench::run(p, opts);
    EXPECT_GT(r.committedTxs, 0u);
}
