/**
 * @file
 * Tests for the benchmark-harness plumbing: argument parsing, reduction
 * and geomean math, the prepare/run round trip, the matrix job-key
 * format, and the persistent on-disk result store (round trip,
 * corruption tolerance, runMatrix integration).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"
#include "../bench/result_store.hh"

using namespace hintm;
using bench::BenchArgs;

namespace
{

BenchArgs
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "bench");
    return BenchArgs::parse(int(argv.size()),
                            const_cast<char **>(argv.data()));
}

/** Fresh scratch directory for disk-cache tests. */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/hintm_cache_test_XXXXXX";
    const char *d = mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

/** The single .res entry under @p dir (empty when none). */
std::string
onlyEntry(const std::string &dir)
{
    namespace fs = std::filesystem;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (e.is_regular_file() && e.path().extension() == ".res")
            return e.path().string();
    }
    return "";
}

} // namespace

TEST(BenchArgs, Defaults)
{
    const BenchArgs a = parse({});
    EXPECT_EQ(a.scale, workloads::Scale::Small);
    EXPECT_FALSE(a.scaleExplicit);
    EXPECT_FALSE(a.preserve);
    EXPECT_EQ(a.names(), workloads::allNames());
}

TEST(BenchArgs, ExplicitScaleAndWorkloads)
{
    const BenchArgs a =
        parse({"--large", "--workload", "genome", "--workload", "yada",
               "--preserve"});
    EXPECT_EQ(a.scale, workloads::Scale::Large);
    EXPECT_TRUE(a.scaleExplicit);
    EXPECT_TRUE(a.preserve);
    EXPECT_EQ(a.names(),
              (std::vector<std::string>{"genome", "yada"}));
}

TEST(BenchArgs, UnknownArgumentFatals)
{
    EXPECT_THROW(parse({"--bogus"}), std::runtime_error);
}

TEST(BenchArgs, JobsFlag)
{
    EXPECT_EQ(parse({}).jobs, 0u); // 0 = hardware concurrency
    EXPECT_EQ(parse({"--jobs", "4"}).jobs, 4u);
    EXPECT_EQ(parse({"--jobs", "1"}).jobs, 1u);
}

TEST(BenchMath, Reduction)
{
    EXPECT_DOUBLE_EQ(bench::reduction(100, 40), 0.6);
    EXPECT_DOUBLE_EQ(bench::reduction(100, 0), 1.0);
    EXPECT_DOUBLE_EQ(bench::reduction(0, 5), 0.0); // no baseline
    // Regressions render as negative reductions, not a 0% clamp.
    EXPECT_DOUBLE_EQ(bench::reduction(10, 20), -1.0);
    EXPECT_DOUBLE_EQ(bench::reduction(100, 150), -0.5);
}

TEST(BenchMath, Geomean)
{
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({}), 0.0);
    EXPECT_NEAR(bench::geomean({1.0, 1.0, 8.0}), 2.0, 1e-9);
    // Non-positive entries are ignored rather than poisoning the mean.
    EXPECT_DOUBLE_EQ(bench::geomean({0.0, 4.0}), 4.0);
}

TEST(BenchMath, SpeedupFormat)
{
    EXPECT_EQ(bench::speedupStr(2.984), "2.98x");
    EXPECT_EQ(bench::speedupStr(1.0), "1.00x");
}

TEST(BenchPrepare, CompilesAndRuns)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    EXPECT_EQ(p.wl.name, "kmeans");
    EXPECT_GT(p.compileReport.totalLoads, 0u);

    core::SystemOptions opts;
    const sim::RunResult r = bench::run(p, opts);
    EXPECT_GT(r.committedTxs, 0u);
}

TEST(BenchArgs, CacheFlags)
{
    // --no-disk-cache everywhere: parse() wires the process-wide store,
    // and these parses must not point it at the user's real cache dir.
    BenchArgs a = parse({"--no-disk-cache"});
    EXPECT_TRUE(a.cacheDir.empty());
    EXPECT_TRUE(a.noDiskCache);
    EXPECT_FALSE(a.cacheClear);
    EXPECT_FALSE(a.noPrefixFork);

    const std::string dir = makeTempDir();
    a = parse({"--cache-dir", dir.c_str(), "--no-disk-cache",
               "--cache-clear", "--no-prefix-fork"});
    EXPECT_EQ(a.cacheDir, dir);
    EXPECT_TRUE(a.noDiskCache);
    EXPECT_TRUE(a.cacheClear);
    EXPECT_TRUE(a.noPrefixFork);

    // Undo the process-wide side effects for the rest of the binary.
    bench::setDiskResultCache("", false);
    bench::setPrefixFork(true);
    std::filesystem::remove_all(dir);
}

TEST(EffectiveJobs, PassesThroughAndClampsTheDefault)
{
    EXPECT_EQ(bench::effectiveJobs(5), 5u);
    EXPECT_EQ(bench::effectiveJobs(1), 1u);
    const unsigned d = bench::effectiveJobs(0);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 64u);
}

TEST(JobKey, GoldenFormatIsStable)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    const core::SystemOptions o; // paper defaults
    const bench::MatrixJob job{&p, o, 0};

    // The module fingerprint is recomputed independently so the golden
    // string stays valid when workload content evolves; everything else
    // is spelled out verbatim. Changing the key format invalidates every
    // persisted cache entry — this test makes that a deliberate act.
    const std::string text = p.wl.module.print();
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      bench::fnv1a(text.data(), text.size())));
    std::ostringstream expect;
    expect << "kmeans|0|" << p.wl.threads << '|' << fp
           << "|0|0|0000|8x1|1|000|64|1024|8|11110000|65536|1|24";
    EXPECT_EQ(bench::matrixJobKey(job), expect.str());
}

TEST(JobKey, TracksInPlaceModuleMutation)
{
    // hintm_lint --mutate flips hint bits on the same module object and
    // reruns; the key must change with the content, not the pointer.
    bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    const core::SystemOptions o;
    const bench::MatrixJob job{&p, o, 0};
    const std::string before = bench::matrixJobKey(job);

    for (auto &fn : p.wl.module.functions) {
        for (auto &bb : fn.blocks) {
            for (auto &in : bb.instrs) {
                if (in.op == tir::Opcode::Load && !in.safe) {
                    in.safe = true;
                    const std::string after = bench::matrixJobKey(job);
                    EXPECT_NE(before, after);
                    in.safe = false;
                    EXPECT_EQ(before, bench::matrixJobKey(job));
                    return;
                }
            }
        }
    }
    FAIL() << "no unsafe load found to mutate";
}

TEST(ResultStore, EncodeDecodeRoundTrip)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    core::SystemOptions opts;
    opts.mechanism = core::Mechanism::Full;
    opts.collectTxSizes = true;
    opts.collectRawStats = true;
    opts.profileSharing = true;
    const sim::RunResult r = bench::run(p, opts);

    const std::string payload = bench::encodeRunResult(r);
    sim::RunResult out;
    ASSERT_TRUE(bench::decodeRunResult(payload, out));
    EXPECT_EQ(out.cycles, r.cycles);
    EXPECT_EQ(out.committedTxs, r.committedTxs);
    EXPECT_EQ(out.rawStats, r.rawStats);
    EXPECT_EQ(bench::encodeRunResult(out), payload);

    // Truncations and trailing garbage are rejected, never misread.
    for (const std::size_t cut : {std::size_t(0), payload.size() / 2,
                                  payload.size() - 1}) {
        sim::RunResult bad;
        EXPECT_FALSE(
            bench::decodeRunResult(payload.substr(0, cut), bad));
    }
    sim::RunResult bad;
    EXPECT_FALSE(bench::decodeRunResult(payload + "x", bad));
}

TEST(ResultStore, LoadSurvivesCorruptionAndVersionSkew)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    const sim::RunResult r = bench::run(p, {});
    const std::string dir = makeTempDir();

    const bench::ResultStore store(dir, 0x1234);
    sim::RunResult out;
    EXPECT_FALSE(store.load("some-key", out)); // absent = miss

    store.store("some-key", r);
    ASSERT_TRUE(store.load("some-key", out));
    EXPECT_EQ(bench::encodeRunResult(out), bench::encodeRunResult(r));
    EXPECT_FALSE(store.load("other-key", out));

    // A rebuilt binary (different content hash) must not see entries.
    const bench::ResultStore rebuilt(dir, 0x9999);
    EXPECT_FALSE(rebuilt.load("some-key", out));

    // Flip one payload byte: the checksum rejects the entry.
    const std::string path = onlyEntry(dir);
    ASSERT_FALSE(path.empty());
    std::string bytes;
    {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream ss;
        ss << is.rdbuf();
        bytes = ss.str();
    }
    std::string flipped = bytes;
    flipped[flipped.size() - 12] ^= 0x40;
    std::ofstream(path, std::ios::binary) << flipped;
    EXPECT_FALSE(store.load("some-key", out));

    // Truncation reads as a miss too.
    std::ofstream(path, std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);
    EXPECT_FALSE(store.load("some-key", out));

    // Restore the pristine entry, then --cache-clear semantics.
    std::ofstream(path, std::ios::binary) << bytes;
    ASSERT_TRUE(store.load("some-key", out));
    bench::ResultStore::clearDir(dir);
    EXPECT_FALSE(store.load("some-key", out));

    std::filesystem::remove_all(dir);
}

TEST(ResultStore, RunMatrixServesSecondRunFromDisk)
{
    const bench::PreparedWorkload p =
        bench::prepare("kmeans", workloads::Scale::Tiny);
    core::SystemOptions a, b;
    a.htmKind = htm::HtmKind::P8;
    b.htmKind = htm::HtmKind::P8S;
    const std::string dir = makeTempDir();

    bench::setDiskResultCache(dir, true);
    bench::clearMatrixCache();
    const auto first = bench::runMatrix({{&p, a}, {&p, b}}, 2);
    auto st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.diskHits, 0u);
    EXPECT_EQ(st.diskStores, 2u);
    // Both jobs share workload/threads/seed: one init prefix, two forks.
    EXPECT_EQ(st.prefixForks, 2u);

    // Drop the in-memory cache (a "new process"): disk serves both.
    bench::clearMatrixCache();
    const auto second = bench::runMatrix({{&p, a}, {&p, b}}, 2);
    st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 0u);
    EXPECT_EQ(st.diskHits, 2u);
    EXPECT_EQ(st.diskStores, 0u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(bench::encodeRunResult(second[i]),
                  bench::encodeRunResult(first[i]));
    }

    // Journal-carrying jobs never touch the store.
    core::SystemOptions j = a;
    j.journal = true;
    bench::clearMatrixCache();
    (void)bench::runMatrix({{&p, j}}, 1);
    st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.diskStores, 0u);
    bench::clearMatrixCache();
    (void)bench::runMatrix({{&p, j}}, 1);
    st = bench::matrixCacheStats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.diskHits, 0u);

    bench::setDiskResultCache("", false);
    bench::clearMatrixCache();
    std::filesystem::remove_all(dir);
}
