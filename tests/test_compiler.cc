/**
 * @file
 * Unit tests for HinTM's static classification: Andersen points-to
 * (copy/load/store/call/return propagation, escape via globals), capture
 * tracking on stack objects, Algorithm 1's thread-private heap
 * detection (including the free-in-region criterion), read-only-shared
 * analysis, the initializing-store rule, function replication, and
 * idempotence / ablation switches.
 */

#include <gtest/gtest.h>

#include "compiler/points_to.hh"
#include "compiler/race_lint.hh"
#include "compiler/safety.hh"
#include "tir/builder.hh"
#include "tir/verifier.hh"

using namespace hintm;
using namespace hintm::compiler;
using tir::FunctionBuilder;
using tir::Module;
using tir::Opcode;
using tir::Reg;

namespace
{

/** Collect the safety flags of all loads/stores in one function. */
struct Flags
{
    unsigned safeLoads = 0, loads = 0, safeStores = 0, stores = 0;
};

Flags
flagsOf(const Module &m, const std::string &fn_name)
{
    Flags fl;
    const int idx = m.findFunction(fn_name);
    EXPECT_GE(idx, 0) << fn_name;
    for (const auto &bb : m.functions[std::size_t(idx)].blocks) {
        for (const auto &ins : bb.instrs) {
            if (ins.op == Opcode::Load) {
                ++fl.loads;
                fl.safeLoads += ins.safe;
            } else if (ins.op == Opcode::Store) {
                ++fl.stores;
                fl.safeStores += ins.safe;
            }
        }
    }
    return fl;
}

} // namespace

TEST(PointsTo, TracksAllocationSitesThroughCopies)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg a = f.mallocI(64);
    const Reg b = f.gep(a, -1, 0, 8); // derived pointer
    const Reg c = f.freshVar();
    f.set(c, b);
    f.store(c, f.constI(1));
    f.freePtr(a);
    f.retVoid();
    m.threadFunc = f.finish();
    ASSERT_FALSE(tir::verify(m).has_value());

    PointsTo pt(m);
    const int fn = m.threadFunc;
    // c must point to the malloc site only.
    const ObjSet &pts = pt.regPts(fn, c);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pt.objects()[std::size_t(*pts.begin())].kind,
              ObjKind::Malloc);
}

TEST(PointsTo, EscapeViaGlobalStore)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg a = f.mallocI(64);  // escapes
    const Reg b = f.mallocI(64);  // stays private
    f.store(f.globalAddr("g"), a);
    f.storeI(b, 0);
    f.freePtr(a);
    f.freePtr(b);
    f.retVoid();
    m.threadFunc = f.finish();

    PointsTo pt(m);
    const int fn = m.threadFunc;
    EXPECT_TRUE(pt.isEscaped(*pt.regPts(fn, a).begin()));
    EXPECT_FALSE(pt.isEscaped(*pt.regPts(fn, b).begin()));
}

TEST(PointsTo, EscapeIsTransitiveThroughHeap)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg outer = f.mallocI(64);
    const Reg inner = f.mallocI(64);
    f.store(outer, inner);             // inner reachable from outer
    f.store(f.globalAddr("g"), outer); // outer escapes -> so does inner
    f.retVoid();
    m.threadFunc = f.finish();

    PointsTo pt(m);
    EXPECT_TRUE(pt.isEscaped(*pt.regPts(m.threadFunc, inner).begin()));
}

TEST(PointsTo, CallPropagatesArgsAndReturn)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    declareFunction(m, "id", 1);
    {
        FunctionBuilder f(m, "id", 1);
        f.ret(f.param(0));
        f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg a = f.mallocI(64);
    const Reg r = f.call("id", {a});
    f.storeI(r, 1);
    f.retVoid();
    m.threadFunc = f.finish();

    PointsTo pt(m);
    const ObjSet &pts = pt.regPts(m.threadFunc, r);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pt.objects()[std::size_t(*pts.begin())].kind,
              ObjKind::Malloc);
    // Call graph captured.
    EXPECT_EQ(pt.callees(m.threadFunc).size(), 1u);
    EXPECT_EQ(pt.reachableFrom(m.threadFunc).size(), 2u);
}

TEST(Safety, StackObjectLoadsAndInitStoresSafe)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    const Reg s = f.allocaBytes(64);
    f.storeI(s, 7);                           // init store -> safe
    f.store(f.globalAddr("g"), f.load(s));    // load safe, global unsafe
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport rep = annotateSafety(m);
    EXPECT_EQ(rep.safeStackObjects, 1u);
    const Flags fl = flagsOf(m, "worker");
    EXPECT_EQ(fl.safeLoads, 1u);
    EXPECT_EQ(fl.safeStores, 1u);
    EXPECT_EQ(fl.stores, 2u); // the global store stays unsafe
}

TEST(Safety, EscapedStackObjectRejected)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    f.txBegin();
    const Reg s = f.allocaBytes(64);
    f.store(f.globalAddr("g"), s); // escapes
    f.storeI(s, 7);
    const Reg v = f.load(s);
    f.store(s, v, 8);
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    annotateSafety(m);
    const Flags fl = flagsOf(m, "worker");
    EXPECT_EQ(fl.safeLoads, 0u);
    EXPECT_EQ(fl.safeStores, 0u);
}

TEST(Safety, Algorithm1RequiresFree)
{
    // Identical private mallocs, one freed in the region, one not.
    auto build = [](bool with_free) {
        Module m;
        m.globals.push_back({"g", 8, 0});
        FunctionBuilder f(m, "worker", 1);
        const Reg h = f.mallocI(256);
        f.txBegin();
        f.storeI(h, 1);
        const Reg v = f.load(h);
        f.store(f.globalAddr("g"), v);
        f.txEnd();
        if (with_free)
            f.freePtr(h);
        f.retVoid();
        m.threadFunc = f.finish();
        return m;
    };

    Module with = build(true);
    const SafetyReport r1 = annotateSafety(with);
    EXPECT_EQ(r1.safeHeapObjects, 1u);

    Module without = build(false);
    const SafetyReport r2 = annotateSafety(without);
    EXPECT_EQ(r2.safeHeapObjects, 0u);

    SafetyOptions relaxed;
    relaxed.requireFreeForHeapPrivate = false;
    Module without2 = build(false);
    const SafetyReport r3 = annotateSafety(without2, relaxed);
    EXPECT_EQ(r3.safeHeapObjects, 1u);
}

TEST(Safety, InitPhaseAllocationsNeverHeapPrivate)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    {
        FunctionBuilder f(m, "init", 0);
        const Reg h = f.mallocI(256);
        f.store(f.globalAddr("g"), h);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg h = f.load(f.globalAddr("g"));
    f.txBegin();
    f.store(h, f.load(h));
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport rep = annotateSafety(m);
    EXPECT_EQ(rep.safeHeapObjects, 0u);
    const Flags fl = flagsOf(m, "worker");
    EXPECT_EQ(fl.safeStores, 0u);
}

TEST(Safety, ReadOnlySharedLoadsSafe)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    {
        FunctionBuilder f(m, "init", 0);
        const Reg t = f.mallocI(1024);
        f.forRangeI(0, 128, [&](Reg i) {
            f.store(f.gep(t, i, 8), i);
        });
        f.store(f.globalAddr("g"), t);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg t = f.load(f.globalAddr("g"));
    f.txBegin();
    const Reg v = f.load(f.gep(t, f.param(0), 8));
    (void)v;
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport rep = annotateSafety(m);
    EXPECT_GE(rep.readOnlyObjects, 1u);
    const Flags fl = flagsOf(m, "worker");
    // Both the table load and the pointer load from `g` are safe (the
    // global pointer itself is never written in the parallel region).
    EXPECT_EQ(fl.safeLoads, fl.loads);
}

TEST(Safety, WriteAnywhereInParallelRegionKillsReadOnly)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    {
        FunctionBuilder f(m, "init", 0);
        f.store(f.globalAddr("g"), f.mallocI(1024));
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg t = f.load(f.globalAddr("g"));
    f.txBegin();
    const Reg v = f.load(t);
    f.store(t, v, 8); // a single write disqualifies the object
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    annotateSafety(m);
    const Flags fl = flagsOf(m, "worker");
    EXPECT_EQ(fl.safeStores, 0u);
    // The load of `t`'s cells is unsafe; only the pointer load from the
    // (unwritten) global remains safe.
    EXPECT_EQ(fl.safeLoads, 1u);
}

TEST(Safety, NonInitializingStoreRejected)
{
    // Private heap object read before written inside the TX: stores must
    // stay unsafe (an abort would expose the stale value).
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg h = f.mallocI(256);
    f.storeI(h, 1);
    f.txBegin();
    const Reg v = f.load(h);     // first access in region: a load
    f.store(h, f.addI(v, 1));    // not initializing
    f.store(f.globalAddr("g"), v);
    f.txEnd();
    f.freePtr(h);
    f.retVoid();
    m.threadFunc = f.finish();

    annotateSafety(m);
    const Flags fl = flagsOf(m, "worker");
    EXPECT_EQ(fl.safeStores, 0u);
    EXPECT_EQ(fl.safeLoads, 1u); // the private load is still safe
}

TEST(Safety, InitializingStoreAcceptedAcrossCallee)
{
    // The labyrinth pattern: a callee fills the private object before
    // any region load touches it.
    Module m;
    m.globals.push_back({"g", 8, 0});
    declareFunction(m, "fill", 1);
    {
        FunctionBuilder f(m, "fill", 1);
        f.forRangeI(0, 32, [&](Reg i) {
            f.store(f.gep(f.param(0), i, 8), i);
        });
        f.retVoid();
        f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg h = f.mallocI(256);
    f.txBegin();
    f.callVoid("fill", {h});
    const Reg acc = f.freshVar();
    f.setI(acc, 0);
    f.forRangeI(0, 32, [&](Reg i) {
        f.set(acc, f.add(acc, f.load(f.gep(h, i, 8))));
    });
    f.store(f.globalAddr("g"), acc);
    f.txEnd();
    f.freePtr(h);
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport rep = annotateSafety(m);
    EXPECT_EQ(rep.safeHeapObjects, 1u);
    const Flags fill = flagsOf(m, "fill");
    EXPECT_EQ(fill.safeStores, fill.stores);
}

TEST(Safety, RegistryPublicationDefeatsStaticAnalysis)
{
    // The pattern used by genome/intruder/yada/bayes workloads.
    Module m;
    m.globals.push_back({"registry", 64, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg buf = f.mallocI(4096);
    f.store(f.gep(f.globalAddr("registry"), f.param(0), 8), buf);
    f.txBegin();
    const Reg v = f.load(buf);
    f.store(buf, f.addI(v, 1), 8);
    f.txEnd();
    f.freePtr(buf);
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport rep = annotateSafety(m);
    EXPECT_EQ(rep.safeHeapObjects, 0u);
    EXPECT_EQ(rep.safeLoads, 0u);
    EXPECT_EQ(rep.safeStores, 0u);
}

TEST(Safety, FunctionReplicationSplitsMixedCallers)
{
    // One helper called with a private buffer from inside a TX and with
    // a shared buffer elsewhere: replication must recover safety for
    // the private call site.
    Module m;
    m.globals.push_back({"g", 8, 0});
    declareFunction(m, "sum8", 1);
    {
        FunctionBuilder f(m, "sum8", 1);
        const Reg acc = f.freshVar();
        f.setI(acc, 0);
        f.forRangeI(0, 8, [&](Reg i) {
            f.set(acc, f.add(acc, f.load(f.gep(f.param(0), i, 8))));
        });
        f.ret(acc);
        f.finish();
    }
    {
        FunctionBuilder f(m, "init", 0);
        const Reg shared = f.mallocI(64);
        f.store(f.globalAddr("g"), shared);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg priv = f.mallocI(64);
    f.forRangeI(0, 8, [&](Reg i) { f.store(f.gep(priv, i, 8), i); });
    const Reg shared = f.load(f.globalAddr("g"));
    f.store(shared, f.param(0)); // written in parallel: not read-only
    const Reg a = f.call("sum8", {shared}); // unsafe caller
    f.txBegin();
    const Reg b = f.call("sum8", {priv});   // safe caller
    f.store(f.globalAddr("g"), f.add(a, b), 0);
    f.txEnd();
    f.freePtr(priv);
    f.retVoid();
    m.threadFunc = f.finish();

    SafetyOptions no_rep;
    no_rep.functionReplication = false;
    Module m1 = m;
    const SafetyReport r1 = annotateSafety(m1, no_rep);
    // Merged view: sum8's loads are polluted by the shared caller.
    EXPECT_EQ(flagsOf(m1, "sum8").safeLoads, 0u);

    const SafetyReport r2 = annotateSafety(m);
    EXPECT_GE(r2.replicatedFunctions, 1u);
    // The clone serving the private call site has safe loads.
    bool clone_found = false;
    for (const auto &fn : m.functions) {
        if (fn.name.find("sum8$safe") != std::string::npos) {
            clone_found = true;
            const Flags fl = flagsOf(m, fn.name);
            EXPECT_EQ(fl.safeLoads, fl.loads);
        }
    }
    EXPECT_TRUE(clone_found);
    EXPECT_GT(r2.safeLoads, r1.safeLoads);
}

TEST(Safety, IdempotentAcrossReruns)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg s = f.allocaBytes(32);
    f.txBegin();
    f.storeI(s, 3);
    f.store(f.globalAddr("g"), f.load(s));
    f.txEnd();
    f.retVoid();
    m.threadFunc = f.finish();

    const SafetyReport r1 = annotateSafety(m);
    const SafetyReport r2 = annotateSafety(m);
    EXPECT_EQ(r1.safeLoads, r2.safeLoads);
    EXPECT_EQ(r1.safeStores, r2.safeStores);
}

TEST(Safety, AblationSwitchesDisableMechanisms)
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg s = f.allocaBytes(32);
    const Reg h = f.mallocI(64);
    f.txBegin();
    f.storeI(s, 1);
    f.storeI(h, 2);
    f.store(f.globalAddr("g"), f.add(f.load(s), f.load(h)));
    f.txEnd();
    f.freePtr(h);
    f.retVoid();
    m.threadFunc = f.finish();

    SafetyOptions none;
    none.stackAnalysis = false;
    none.heapAnalysis = false;
    none.readOnlyAnalysis = false;
    Module m1 = m;
    const SafetyReport r = annotateSafety(m1, none);
    EXPECT_EQ(r.safeLoads, 0u);
    EXPECT_EQ(r.safeStores, 0u);
    EXPECT_EQ(r.safeStackObjects + r.safeHeapObjects + r.readOnlyObjects,
              0u);
}

TEST(PointsTo, PlainAddSubKeepsProvenance)
{
    // Pointer arithmetic through Add/Sub (not Gep) must stay
    // conservative: provenance flows through both operands.
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg h = f.mallocI(64);
    const Reg p = f.addI(h, 8);   // derived via plain add
    const Reg q = f.subI(p, 8);
    f.store(q, f.constI(1));
    f.freePtr(h);
    f.retVoid();
    m.threadFunc = f.finish();

    PointsTo pt(m);
    const ObjSet &pts = pt.regPts(m.threadFunc, q);
    ASSERT_FALSE(pts.empty());
    EXPECT_EQ(pt.objects()[std::size_t(*pts.begin())].kind,
              ObjKind::Malloc);
}

TEST(Safety, MixedPointerTargetsStayUnsafe)
{
    // A load whose address may point to both a private and a shared
    // object must remain unsafe.
    Module m;
    m.globals.push_back({"g", 8, 0});
    FunctionBuilder f(m, "worker", 1);
    const Reg priv = f.mallocI(64);
    const Reg shared = f.load(f.globalAddr("g"));
    f.store(shared, f.constI(0)); // shared is written: not read-only
    const Reg sel = f.freshVar();
    f.ifThenElse(f.cmpEqI(f.param(0), 0),
                 [&] { f.set(sel, priv); },
                 [&] { f.set(sel, shared); });
    f.txBegin();
    const Reg v = f.load(sel);
    f.store(f.globalAddr("g"), v, 0);
    f.txEnd();
    f.freePtr(priv);
    f.retVoid();
    m.threadFunc = f.finish();

    annotateSafety(m);
    const Flags fl = flagsOf(m, "worker");
    // Only the pointer-load from `g` could even be considered; the
    // selected-pointer load must be unsafe.
    const int fn = m.findFunction("worker");
    PointsTo pt(m);
    for (const auto &bb : m.functions[std::size_t(fn)].blocks) {
        for (const auto &ins : bb.instrs) {
            if (ins.op == Opcode::Load &&
                pt.regPts(fn, ins.a).size() > 1)
                EXPECT_FALSE(ins.safe);
        }
    }
    (void)fl;
}

TEST(Safety, SafetyReportSummaryIsReadable)
{
    SafetyReport rep;
    rep.totalLoads = 10;
    rep.safeLoads = 4;
    rep.replicatedFunctions = 1;
    const std::string s = rep.summary();
    EXPECT_NE(s.find("4/10"), std::string::npos);
    EXPECT_NE(s.find("clones 1"), std::string::npos);
}

namespace
{

/**
 * A forwarding chain worker -> l1 -> l2 -> l3(leaf load), entered once
 * with a thread-private buffer (inside a TX) and once with a shared
 * one. Recovering safety for the private entry requires one replication
 * round per layer: l1 splits first, which makes l2's callers mixed,
 * which makes l3's callers mixed.
 */
Module
deepChainModule()
{
    Module m;
    m.globals.push_back({"g", 8, 0});
    declareFunction(m, "l1", 1);
    declareFunction(m, "l2", 1);
    declareFunction(m, "l3", 1);
    {
        FunctionBuilder f(m, "l3", 1);
        const Reg acc = f.freshVar();
        f.setI(acc, 0);
        f.forRangeI(0, 8, [&](Reg i) {
            f.set(acc, f.add(acc, f.load(f.gep(f.param(0), i, 8))));
        });
        f.ret(acc);
        f.finish();
    }
    {
        FunctionBuilder f(m, "l2", 1);
        f.ret(f.call("l3", {f.param(0)}));
        f.finish();
    }
    {
        FunctionBuilder f(m, "l1", 1);
        f.ret(f.call("l2", {f.param(0)}));
        f.finish();
    }
    {
        FunctionBuilder f(m, "init", 0);
        const Reg shared = f.mallocI(64);
        f.store(f.globalAddr("g"), shared);
        f.retVoid();
        m.initFunc = f.finish();
    }
    FunctionBuilder f(m, "worker", 1);
    const Reg priv = f.mallocI(64);
    f.forRangeI(0, 8, [&](Reg i) { f.store(f.gep(priv, i, 8), i); });
    const Reg shared = f.load(f.globalAddr("g"));
    f.store(shared, f.param(0)); // written in parallel: not read-only
    const Reg a = f.call("l1", {shared});
    f.txBegin();
    const Reg b = f.call("l1", {priv});
    f.store(f.globalAddr("g"), f.add(a, b), 0);
    f.txEnd();
    f.freePtr(priv);
    f.retVoid();
    m.threadFunc = f.finish();
    return m;
}

} // namespace

TEST(Safety, ReplicationPropagatesThroughDeepCallChains)
{
    Module m = deepChainModule();
    ASSERT_FALSE(tir::verify(m).has_value());
    const SafetyReport rep = annotateSafety(m);

    // One clone per layer: the safe context reaches the leaf only after
    // every intermediate forwarder has been split.
    EXPECT_GE(rep.replicatedFunctions, 3u);
    bool leaf_clone = false;
    for (const auto &fn : m.functions) {
        if (fn.name.find("l3$safe") == std::string::npos)
            continue;
        leaf_clone = true;
        const Flags fl = flagsOf(m, fn.name);
        EXPECT_EQ(fl.safeLoads, fl.loads) << fn.name;
    }
    EXPECT_TRUE(leaf_clone);
    // The original leaf still serves the shared chain: all unsafe.
    EXPECT_EQ(flagsOf(m, "l3").safeLoads, 0u);
    // The re-derived obligations accept the whole annotation.
    EXPECT_TRUE(lintRaces(m).clean()) << lintRaces(m).render();
}

TEST(Safety, ReplicationBudgetExhaustionStaysConservative)
{
    // With the round budget cut below the chain depth the split never
    // reaches the leaf: hints must stay conservative (leaf unsafe, no
    // safety invented), never unsound.
    Module full_m = deepChainModule();
    const SafetyReport full = annotateSafety(full_m);

    Module m = deepChainModule();
    SafetyOptions starved;
    starved.replicationRounds = 1;
    const SafetyReport rep = annotateSafety(m, starved);

    EXPECT_LT(rep.replicatedFunctions, full.replicatedFunctions);
    EXPECT_LE(rep.safeLoads, full.safeLoads);
    // The leaf was never split, so the merged view keeps it unsafe.
    EXPECT_EQ(flagsOf(m, "l3").safeLoads, 0u);
    for (const auto &fn : m.functions) {
        if (fn.name.find("l3$safe") != std::string::npos)
            ADD_FAILURE() << "leaf was cloned despite a 1-round budget";
    }
    // Conservative is still sound: the lint pass stays clean.
    EXPECT_TRUE(lintRaces(m).clean()) << lintRaces(m).render();
}
