#!/usr/bin/env python3
"""Interleaved-pair A/B wall-clock comparison for HinTM harnesses.

The benchmark machines are noisy (identical binaries can vary >10% run
to run), so single before/after timings mislead. This harness runs the
two commands as interleaved pairs — alternating which side goes first
in successive pairs to cancel ordering/thermal drift — and reports
medians and minimums with the derived deltas as JSON.

Stdlib only. Commands run through the shell with output discarded; a
non-zero exit from either side aborts the comparison.

Usage:
  bench_compare.py --label-a HEAD --cmd-a './head/fig4_p8 --small' \
      --label-b PR  --cmd-b './build/fig4_p8 --small' \
      --pairs 11 [--warmup 1] [--out deltas.json]
"""

import argparse
import json
import statistics
import subprocess
import sys
import time


def run_timed(cmd):
    t0 = time.monotonic_ns()
    r = subprocess.run(cmd, shell=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
    dt = (time.monotonic_ns() - t0) / 1e9
    if r.returncode != 0:
        sys.exit(f"command failed ({r.returncode}): {cmd}")
    return dt


def side_stats(times):
    return {
        "median_s": round(statistics.median(times), 4),
        "min_s": round(min(times), 4),
        "times_s": [round(t, 4) for t in times],
    }


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--label-a", default="A")
    ap.add_argument("--cmd-a", required=True)
    ap.add_argument("--label-b", default="B")
    ap.add_argument("--cmd-b", required=True)
    ap.add_argument("--pairs", type=int, default=11,
                    help="interleaved pairs to run (default 11)")
    ap.add_argument("--warmup", type=int, default=1,
                    help="untimed warmup runs of each side (default 1)")
    ap.add_argument("--out", help="write the JSON here (default stdout)")
    args = ap.parse_args()

    for _ in range(args.warmup):
        run_timed(args.cmd_a)
        run_timed(args.cmd_b)

    times_a, times_b = [], []
    for pair in range(args.pairs):
        # Alternate order so systematic drift hits both sides equally.
        first_is_a = pair % 2 == 0
        if first_is_a:
            times_a.append(run_timed(args.cmd_a))
            times_b.append(run_timed(args.cmd_b))
        else:
            times_b.append(run_timed(args.cmd_b))
            times_a.append(run_timed(args.cmd_a))
        print(f"pair {pair + 1}/{args.pairs}: "
              f"{args.label_a}={times_a[-1]:.3f}s "
              f"{args.label_b}={times_b[-1]:.3f}s"
              f"{'' if first_is_a else '  (order flipped)'}",
              file=sys.stderr)

    med_a = statistics.median(times_a)
    med_b = statistics.median(times_b)
    min_a, min_b = min(times_a), min(times_b)
    report = {
        "label_a": args.label_a,
        "label_b": args.label_b,
        "cmd_a": args.cmd_a,
        "cmd_b": args.cmd_b,
        "pairs": args.pairs,
        "a": side_stats(times_a),
        "b": side_stats(times_b),
        "delta": {
            # Positive = B is slower than A by this fraction.
            "median_pct": round(100 * (med_b - med_a) / med_a, 2),
            "min_pct": round(100 * (min_b - min_a) / min_a, 2),
        },
        "speedup": {
            # >1 = B is faster than A.
            "median": round(med_a / med_b, 3),
            "min": round(min_a / min_b, 3),
        },
    }
    text = json.dumps(report, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
