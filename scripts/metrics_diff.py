#!/usr/bin/env python3
"""Threshold-gated diff of two HinTM stats-JSON exports.

Stdlib only (CI runs it with a bare python3). Matches records across the
two files by (workload, config, threads) and compares a set of scalar
metrics; any relative difference beyond --threshold fails the gate
(exit 1). With --threshold 0 the gate demands exact equality, which is
how CI checks that observability layers stay observation-only: a run
with metrics on must report the same simulation results as one without.

Metrics sections are compared when both records carry them; a record
with metrics in one file and null in the other is only an error under
--require-metrics (the sections are optional payloads, not results).

Usage:
  metrics_diff.py baseline.json candidate.json
  metrics_diff.py --threshold 0 a.json b.json      # exact-equality gate
  metrics_diff.py --keys cycles,committed_txs a.json b.json
"""

import argparse
import json
import sys

# Record-level scalars compared by default. Paths are dotted; "aborts"
# drills into the htm abort map.
DEFAULT_KEYS = [
    "cycles",
    "instructions",
    "committed_txs",
    "fallback_runs",
    "htm.commits",
    "htm.aborts.total",
    "htm.aborts.capacity",
]

# Metrics-section scalars compared whenever both records carry metrics.
METRICS_KEYS = [
    "metrics.capacity_aborts",
    "metrics.hint_saved_commits",
    "metrics.overflow_set.scans",
    "metrics.fallback.acquisitions",
]


def lookup(record, dotted):
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def record_key(r):
    return (r.get("workload"), r.get("config"), r.get("threads"))


def rel_diff(a, b):
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    return abs(a - b) / denom if denom else 0.0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="max relative difference per metric "
                         "(default 0 = exact equality)")
    ap.add_argument("--keys", default=",".join(DEFAULT_KEYS),
                    help="comma-separated dotted record paths to compare")
    ap.add_argument("--require-metrics", action="store_true",
                    help="fail when matched records disagree about "
                         "carrying a metrics section")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = {record_key(r): r for r in json.load(f)}
    with open(args.candidate) as f:
        cand = {record_key(r): r for r in json.load(f)}

    keys = [k for k in args.keys.split(",") if k]
    failures = []
    compared = 0

    common = sorted(set(base) & set(cand), key=str)
    if not common:
        print("FAIL: no records match between the two files",
              file=sys.stderr)
        return 1
    for missing in sorted(set(base) ^ set(cand), key=str):
        side = args.candidate if missing in base else args.baseline
        print(f"note: {missing} only absent from {side}")

    for rk in common:
        rb, rc = base[rk], cand[rk]
        label = f"{rk[0]}/{rk[1]}/t{rk[2]}"

        paths = list(keys)
        has_b = bool(rb.get("metrics"))
        has_c = bool(rc.get("metrics"))
        if has_b != has_c and args.require_metrics:
            failures.append(f"{label}: metrics section present in only "
                            f"one file")
        if has_b and has_c:
            paths += METRICS_KEYS

        for path in paths:
            vb = lookup(rb, path)
            vc = lookup(rc, path)
            if vb is None and vc is None:
                continue
            if vb is None or vc is None:
                failures.append(f"{label}: {path} missing on one side")
                continue
            compared += 1
            d = rel_diff(vb, vc)
            marker = "FAIL" if d > args.threshold else "ok"
            if d > 0 or marker == "FAIL":
                print(f"{marker:4} {label}: {path}  {vb} -> {vc}  "
                      f"({100 * d:.2f}%)")
            if d > args.threshold:
                failures.append(f"{label}: {path} differs by "
                                f"{100 * d:.2f}% "
                                f"(threshold {100 * args.threshold:.2f}%)")

    for fmsg in failures:
        print(f"FAIL: {fmsg}", file=sys.stderr)
    if failures:
        return 1
    print(f"OK: {len(common)} record(s), {compared} metric(s) within "
          f"{100 * args.threshold:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
