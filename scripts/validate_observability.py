#!/usr/bin/env python3
"""Validate HinTM observability exports against the checked-in schemas.

Stdlib only (CI runs it with a bare python3): loads the JSON, then walks
it against the JSON-Schema subset the schemas in docs/schemas/ use —
type / required / properties / items / enum / local $ref. Extra semantic
checks make sure the files are not just well-formed but non-trivial: the
Perfetto trace must contain TX events, --expect-journal requires at
least one stats record with a populated journal section, and
--expect-metrics requires a populated metrics section with a consistent
overflow-set breakdown.

Usage:
  validate_observability.py --schema docs/schemas/stats.schema.json \
      --expect-journal --expect-metrics stats.json
  validate_observability.py --schema docs/schemas/perfetto_trace.schema.json \
      perfetto_trace.json
"""

import argparse
import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the taxonomy strict.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path="$", root=None):
    """Yield error strings for every schema violation under value."""
    if root is None:
        root = schema
    if "$ref" in schema:
        # Local refs only: "#/definitions/name".
        node = root
        for part in schema["$ref"].lstrip("#/").split("/"):
            node = node[part]
        yield from validate(value, node, path, root)
        return
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            yield f"{path}: expected {'/'.join(types)}, got " \
                  f"{type(value).__name__}"
            return
        if value is None:
            return  # a null that matched ["object","null"] needs no keys

    if "enum" in schema and value not in schema["enum"]:
        yield f"{path}: {value!r} not in {schema['enum']}"

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                yield f"{path}: missing required key '{key}'"
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                yield from validate(value[key], sub, f"{path}.{key}",
                                    root)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            yield from validate(item, schema["items"], f"{path}[{i}]",
                                root)


def check_perfetto(doc):
    events = doc.get("traceEvents", [])
    tx = [e for e in events if e.get("ph") == "X"]
    if not tx:
        yield "$.traceEvents: no TX duration (ph=X) events"
    meta = [e for e in events if e.get("ph") == "M"]
    if not meta:
        yield "$.traceEvents: no metadata (ph=M) naming events"
    for e in tx:
        args = e.get("args", {})
        if "outcome" not in args:
            yield f"TX event '{e.get('name')}' lacks args.outcome"
            break


def check_metrics(doc, expect_metrics):
    metrics = [r for r in doc if r.get("metrics")]
    if expect_metrics and not metrics:
        yield "$: --expect-metrics but every record has metrics=null"
    for r in metrics:
        m = r["metrics"]
        ov = m["overflow_set"]
        if ov["tracked"] + ov["safe_skipped"] + ov["other"] > 0 \
                and ov["scans"] == 0:
            yield (f"$: {r['workload']}: overflow-set lines counted "
                   f"without any scans")
        for name in ("tracked_at_commit", "tracked_at_capacity_abort",
                     "sharers_at_bus"):
            h = m[name]
            if sum(b["count"] for b in h["buckets"]) != h["count"]:
                yield (f"$: {r['workload']}: {name} bucket counts do "
                       f"not sum to count")
        site_saved = sum(s["hint_saved_commits"] for s in m["sites"])
        if site_saved != m["hint_saved_commits"]:
            yield (f"$: {r['workload']}: per-site hint_saved_commits "
                   f"{site_saved} != total {m['hint_saved_commits']}")


def check_stats(doc, expect_journal, expect_metrics):
    if not doc:
        yield "$: empty stats array"
        return
    yield from check_metrics(doc, expect_metrics)
    journals = [r for r in doc if r.get("journal")]
    if expect_journal and not journals:
        yield "$: --expect-journal but every record has journal=null"
    for r in journals:
        j = r["journal"]
        t = j["totals"]
        if j["pushed"] != j["recorded"] + j["dropped"]:
            yield (f"$: {r['workload']}: pushed != recorded + dropped "
                   f"({j['pushed']} != {j['recorded']} + {j['dropped']})")
        if t["commits"] != r["htm"]["commits"]:
            yield (f"$: {r['workload']}: journal commits "
                   f"{t['commits']} != htm commits "
                   f"{r['htm']['commits']}")
        if t["committed_attempts"] != r["committed_txs"]:
            yield (f"$: {r['workload']}: journal committed attempts "
                   f"{t['committed_attempts']} != committed_txs "
                   f"{r['committed_txs']}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--schema", required=True)
    ap.add_argument("--expect-journal", action="store_true",
                    help="require at least one populated journal section")
    ap.add_argument("--expect-metrics", action="store_true",
                    help="require at least one populated metrics section")
    ap.add_argument("file")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.file) as f:
        doc = json.load(f)

    errors = list(validate(doc, schema))
    if isinstance(doc, dict) and "traceEvents" in doc:
        errors += list(check_perfetto(doc))
    elif isinstance(doc, list):
        errors += list(check_stats(doc, args.expect_journal,
                                   args.expect_metrics))

    for e in errors:
        print(f"FAIL {args.file}: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"OK {args.file}: valid against {args.schema}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
