#!/usr/bin/env bash
# Regenerate every paper figure/table plus the ablations into results/.
# Usage: scripts/reproduce_all.sh [build-dir] (default: build)
# Env:   JOBS=N  host threads per harness (default: nproc)
set -euo pipefail
BUILD="${1:-build}"
OUT="results"
JOBS="${JOBS:-$(nproc)}"
mkdir -p "$OUT"

benches=(
    table2_config
    fig1_motivation
    fig4_p8
    fig5_breakdown
    fig6_cdf
    fig7_p8s
    fig8_l1tm
    ablation_buffer
    ablation_signature
    ablation_pagepolicy
    ablation_retry
    ablation_annotations
    ablation_preabort
    ablation_policy
)

for b in "${benches[@]}"; do
    echo "== $b (jobs=$JOBS) =="
    "$BUILD/bench/$b" --jobs "$JOBS" --json "$OUT/$b.json" \
        | tee "$OUT/$b.txt"
    echo
done

echo "== micro_components (google-benchmark) =="
"$BUILD/bench/micro_components" --benchmark_min_time=0.1s \
    | tee "$OUT/micro_components.txt"

echo
echo "All outputs written to $OUT/. Compare against EXPERIMENTS.md."
