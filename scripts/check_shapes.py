#!/usr/bin/env python3
"""Reproduction CI: verify the paper's qualitative claims against a
benchmark sweep.

Parses the output of `for b in build/bench/*; do $b; done` (or
`scripts/reproduce_all.sh` results) and checks the *shape* assertions
recorded in EXPERIMENTS.md — who wins, by roughly what factor, and where
each mechanism stops helping. Exits non-zero if any shape regressed.

Usage: scripts/check_shapes.py [bench_output.txt]
"""

import re
import sys


def fail(msg):
    print(f"FAIL  {msg}")
    return 1


def ok(msg):
    print(f"ok    {msg}")
    return 0


def parse_fig4(text):
    """Returns {workload: row-dict} for Fig. 4a/4b."""
    rows = {}
    m = re.search(r"== Fig\. 4a.*?==\n(.*?)\n\n== Fig\. 4b.*?==\n(.*?)\n\n",
                  text, re.S)
    if not m:
        return rows
    a_lines = m.group(1).splitlines()[2:]
    b_lines = m.group(2).splitlines()[2:]
    for la, lb in zip(a_lines, b_lines):
        ca, cb = la.split(), lb.split()
        if not ca:
            continue
        rows[ca[0]] = {
            "base_cap": int(ca[1]),
            "st_red": float(ca[2].rstrip("%")),
            "dyn_red": float(ca[3].rstrip("%")),
            "full_red": float(ca[4].rstrip("%")),
            "st_sp": float(cb[1].rstrip("x")),
            "dyn_sp": float(cb[2].rstrip("x")),
            "full_sp": float(cb[3].rstrip("x")),
            "inf_sp": float(cb[4].rstrip("x")),
        }
    return rows


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    text = open(path).read()
    failures = 0

    # --- Fig. 4 shapes -------------------------------------------------
    fig4 = parse_fig4(text)
    if not fig4:
        return fail("could not parse Fig. 4 tables")

    for app in ("kmeans", "ssca2"):
        r = fig4.get(app)
        failures += (ok if r and r["base_cap"] == 0 else fail)(
            f"{app}: no capacity aborts (paper Fig. 1)")

    lab = fig4.get("labyrinth")
    failures += (ok if lab and lab["st_red"] > 50 else fail)(
        "labyrinth: HinTM-st removes most capacity aborts (paper ~80%)")
    failures += (ok if lab and lab["st_sp"] > 1.5 else fail)(
        "labyrinth: HinTM-st multi-x speedup (paper 2.98x)")

    gen = fig4.get("genome")
    failures += (ok if gen and gen["st_red"] == 0 else fail)(
        "genome: static finds nothing (paper Fig. 5)")
    failures += (ok if gen and gen["dyn_red"] > 80 else fail)(
        "genome: dynamic removes the capacity aborts")

    # Mean reduction and mechanism ordering.
    m = re.search(r"mean capacity-abort reduction: ([\d.]+)%", text)
    failures += (ok if m and float(m.group(1)) > 50 else fail)(
        "suite mean capacity-abort reduction > 50% (paper 62-64%)")

    m = re.search(
        r"geomean speedup  st ([\d.]+)x  dyn ([\d.]+)x  HinTM ([\d.]+)x"
        r"  InfCap ([\d.]+)x", text)
    if m:
        st, dyn, full, inf = map(float, m.groups())
        failures += (ok if dyn > st else fail)(
            "dynamic mechanism outperforms static overall (paper §VI-A)")
        failures += (ok if full >= 1.3 else fail)(
            f"HinTM mean speedup {full}x >= 1.3x (paper 1.4x)")
        failures += (ok if inf >= full else fail)(
            "InfCap bounds HinTM from above")
    else:
        failures += fail("could not parse Fig. 4 geomeans")

    # Every app: InfCap >= HinTM (upper bound), within tolerance.
    for app, r in fig4.items():
        if r["inf_sp"] + 0.05 < r["full_sp"]:
            failures += fail(f"{app}: HinTM exceeds InfCap bound")

    # --- Fig. 7: P8S ----------------------------------------------------
    m = re.search(r"geomean HinTM speedup on P8S: ([\d.]+)x", text)
    failures += (ok if m and float(m.group(1)) >= 1.0 else fail)(
        "P8S: HinTM remains beneficial (paper 1.28x)")
    m = re.search(r"labyrinth\s+\d+\s+\d+\s+100\.0%", text)
    failures += (ok if m else fail)(
        "P8S labyrinth: static eliminates writeset capacity aborts")

    # --- Fig. 8: L1TM ---------------------------------------------------
    m = re.search(r"geomean HinTM speedup on L1TM\+SMT: ([\d.]+)x", text)
    failures += (ok if m and float(m.group(1)) >= 1.3 else fail)(
        "L1TM+SMT: solid mean gains (paper 1.7x)")

    # --- Fig. 1 ---------------------------------------------------------
    m = re.search(r"averages: cap-abort time ([\d.]+)%.*safe pages "
                  r"([\d.]+)%.*page granularity ([\d.]+)%", text)
    if m:
        cap, pages, reads = map(float, m.groups())
        failures += (ok if pages > 50 else fail)(
            f"safe-page fraction {pages}% > 50% (paper 62%)")
        failures += (ok if reads > 30 else fail)(
            f"safe tx-read fraction {reads}% > 30% (paper 40%)")
    else:
        failures += fail("could not parse Fig. 1 averages")

    # --- Fig. 5 ---------------------------------------------------------
    m = re.search(r"average safe fraction: ([\d.]+)%", text)
    failures += (ok if m and 30 <= float(m.group(1)) <= 70 else fail)(
        "Fig. 5 mean safe fraction in the paper's ballpark (~50%)")

    print()
    if failures:
        print(f"{failures} shape check(s) FAILED")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
