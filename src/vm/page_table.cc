#include "page_table.hh"

#include "common/logging.hh"

namespace hintm
{
namespace vm
{

const char *
pageStateName(PageState s)
{
    switch (s) {
      case PageState::Untouched: return "untouched";
      case PageState::PrivateRo: return "private-ro";
      case PageState::PrivateRw: return "private-rw";
      case PageState::SharedRo: return "shared-ro";
      case PageState::SharedRw: return "shared-rw";
      case PageState::Annotated: return "annotated";
    }
    return "?";
}

PageTransition
PageTable::touch(ThreadId tid, Addr addr, AccessType type)
{
    Entry &e = entries_[pageNumber(addr)];
    PageTransition tr;
    tr.before = e.state;

    const bool is_write = type == AccessType::Write;
    switch (e.state) {
      case PageState::Untouched:
        e.owner = tid;
        e.state = is_write ? PageState::PrivateRw : PageState::PrivateRo;
        tr.stateChanged = true;
        break;

      case PageState::PrivateRo:
        if (tid == e.owner) {
            if (is_write) {
                // Owner upgrades its own page: minor page fault.
                e.state = PageState::PrivateRw;
                tr.minorFault = true;
                tr.stateChanged = true;
            }
        } else if (!is_write) {
            // Second reader: page becomes shared read-only, still safe.
            e.state = PageState::SharedRo;
            tr.stateChanged = true;
        } else {
            e.state = PageState::SharedRw;
            tr.becameUnsafe = true;
            tr.stateChanged = true;
        }
        break;

      case PageState::PrivateRw:
        if (tid != e.owner) {
            if (!is_write && preserveReadOnly_) {
                // Preserve policy: demote to shared-ro, revoking the
                // owner's write permission (its next write faults).
                e.state = PageState::SharedRo;
                tr.minorFault = true;
                tr.stateChanged = true;
            } else {
                e.state = PageState::SharedRw;
                tr.becameUnsafe = true;
                tr.stateChanged = true;
            }
        }
        break;

      case PageState::SharedRo:
        if (is_write) {
            e.state = PageState::SharedRw;
            tr.becameUnsafe = true;
            tr.stateChanged = true;
        }
        break;

      case PageState::SharedRw:
      case PageState::Annotated:
        break;
    }

    tr.after = e.state;
    return tr;
}

void
PageTable::annotateRange(Addr base, std::uint64_t len)
{
    HINTM_ASSERT(len > 0, "empty annotation range");
    const Addr first = pageNumber(base);
    const Addr last = pageNumber(base + len - 1);
    for (Addr page = first; page <= last; ++page) {
        Entry &e = entries_[page];
        e.state = PageState::Annotated;
    }
    hasAnnotations_ = true;
}

PageState
PageTable::stateOf(Addr addr) const
{
    auto it = entries_.find(pageNumber(addr));
    return it == entries_.end() ? PageState::Untouched : it->second.state;
}

ThreadId
PageTable::ownerOf(Addr addr) const
{
    auto it = entries_.find(pageNumber(addr));
    return it == entries_.end() ? invalidThreadId : it->second.owner;
}

std::uint64_t
PageTable::countPages(bool safe_only) const
{
    std::uint64_t n = 0;
    for (const auto &kv : entries_) {
        if (!safe_only || pageStateSafe(kv.second.state))
            ++n;
    }
    return n;
}

} // namespace vm
} // namespace hintm
