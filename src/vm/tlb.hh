/**
 * @file
 * Per-context data TLB holding each cached translation's page safety bits.
 * Fully associative with true LRU; sized per config (default 64 entries).
 */

#ifndef HINTM_VM_TLB_HH
#define HINTM_VM_TLB_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "vm/page_table.hh"

namespace hintm
{
namespace vm
{

/** Small fully-associative TLB. Keys are page numbers. */
class Tlb
{
  public:
    explicit Tlb(unsigned num_entries = 64) : capacity_(num_entries) {}

    /** @return true on hit; hit refreshes LRU and exposes the state. */
    bool lookup(Addr page_num, PageState *state_out = nullptr);

    /** Install (or refresh) a translation with its safety state. */
    void insert(Addr page_num, PageState state);

    /** Drop one translation (shootdown); @return true if it was present. */
    bool invalidate(Addr page_num);

    /** Update the cached state in place if the translation is present. */
    void updateState(Addr page_num, PageState state);

    /** Presence probe without LRU effects. */
    bool contains(Addr page_num) const
    {
        return entries_.count(page_num) != 0;
    }

    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

  private:
    struct Entry
    {
        PageState state;
        std::uint64_t lruStamp;
    };

    void evictLru();

    unsigned capacity_;
    std::uint64_t clock_ = 0;
    std::unordered_map<Addr, Entry> entries_;
};

} // namespace vm
} // namespace hintm

#endif // HINTM_VM_TLB_HH
