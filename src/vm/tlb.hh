/**
 * @file
 * Per-context data TLB holding each cached translation's page safety bits.
 * Fully associative with true LRU; sized per config (default 64 entries).
 */

#ifndef HINTM_VM_TLB_HH
#define HINTM_VM_TLB_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hh"
#include "vm/page_table.hh"

namespace hintm
{
namespace vm
{

/** Small fully-associative TLB. Keys are page numbers. */
class Tlb
{
  public:
    /** One cached translation. Node-stable: pointers handed out by
     * lookupEntry()/insert() stay valid until the entry itself is
     * evicted or invalidated (announced via the evict observer). */
    struct Entry
    {
        PageState state;
        std::uint64_t lruStamp;
    };

    explicit Tlb(unsigned num_entries = 64) : capacity_(num_entries) {}

    /** @return true on hit; hit refreshes LRU and exposes the state. */
    bool lookup(Addr page_num, PageState *state_out = nullptr);

    /** Pointer-returning hit probe (refreshes LRU), or nullptr. */
    Entry *lookupEntry(Addr page_num);

    /** Refresh an entry's LRU stamp without re-finding it — lets a
     * higher-level memo keep this TLB's replacement behavior exact. */
    void touch(Entry *e) { e->lruStamp = ++clock_; }

    /** Install (or refresh) a translation with its safety state.
     * @return the (stable) entry node. */
    Entry *insert(Addr page_num, PageState state);

    /** Drop one translation (shootdown); @return true if it was present. */
    bool invalidate(Addr page_num);

    /** Update the cached state in place if the translation is present. */
    void updateState(Addr page_num, PageState state);

    /**
     * Observer called whenever a cached translation stops being valid to
     * memoize: LRU eviction, invalidation, or an in-place state change
     * (insert-overwrite/updateState). Receives the page number.
     */
    void setEvictObserver(std::function<void(Addr)> fn)
    {
        evictObserver_ = std::move(fn);
    }

    /** Presence probe without LRU effects. */
    bool contains(Addr page_num) const
    {
        return entries_.count(page_num) != 0;
    }

    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Exact TLB contents including LRU stamps and the clock. */
    struct State
    {
        std::uint64_t clock = 0;
        std::unordered_map<Addr, Entry> entries;
    };

    State saveState() const { return {clock_, entries_}; }

    /** Restore contents. Keeps the evict observer; invalidates any Entry
     * pointers previously handed out (callers re-derive their memos). */
    void loadState(const State &s)
    {
        clock_ = s.clock;
        entries_ = s.entries;
    }

  private:
    void evictLru();

    void
    notifyEvict(Addr page_num)
    {
        if (evictObserver_)
            evictObserver_(page_num);
    }

    unsigned capacity_;
    std::uint64_t clock_ = 0;
    std::unordered_map<Addr, Entry> entries_;
    std::function<void(Addr)> evictObserver_;
};

} // namespace vm
} // namespace hintm

#endif // HINTM_VM_TLB_HH
