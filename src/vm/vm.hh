/**
 * @file
 * Virtual-memory facade for HinTM's dynamic classification: combines the
 * thread-level page table (Fig. 2 state machine), per-context TLBs with
 * safety bits, and the published cost model for minor faults and TLB
 * shootdowns (§V: 6600-cycle initiator, 1450-cycle slaves, 1450-cycle
 * minor fault).
 */

#ifndef HINTM_VM_VM_HH
#define HINTM_VM_VM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace hintm
{
namespace vm
{

/** Configuration of the VM subsystem. */
struct VmConfig
{
    /** Master switch: false models a conventional system (no safety
     * tracking, no HinTM-induced faults). */
    bool dynamicClassification = true;
    /** The "HinTM + preserve" read-only-preserving policy (§VI-B). */
    bool preserveReadOnly = false;

    unsigned tlbEntries = 64;
    Cycle pageWalkCycles = 30;
    Cycle minorFaultCycles = 1450;
    Cycle shootdownInitiatorCycles = 6600;
    Cycle shootdownSlaveCycles = 1450;
};

/** Result of translating (and safety-classifying) one access. */
struct TranslateResult
{
    /** The access may be treated as dynamically safe (reads only). */
    bool safeRead = false;
    /** Safety comes from the sharing FSM and can be revoked by a page
     * transition (false for irrevocable programmer annotations). */
    bool revocable = true;
    /** Cycles charged to the accessing context (walk/fault/shootdown). */
    Cycle cost = 0;
    /** Page moved to shared-rw: active TXs that read it as safe must
     * abort, and remote TLBs were shot down. */
    bool becameUnsafe = false;
    /** Per-context stall cycles for shootdown slaves (index = context). */
    std::vector<std::pair<int, Cycle>> slaveCosts;
    /** Page number of the access. */
    Addr pageNum = 0;
};

/**
 * The VM subsystem. One instance per simulated machine; contexts are
 * registered up front (one per hardware thread).
 */
class Vm
{
  public:
    explicit Vm(const VmConfig &cfg);

    /** Register a hardware context; @return its id (dense from 0). */
    int addContext();

    /**
     * Translate an access by software thread @p tid running on hardware
     * context @p ctx. Updates page/TLB state and returns the safety
     * classification plus all modeled costs.
     */
    TranslateResult translate(int ctx, ThreadId tid, Addr addr,
                              AccessType type);

    /**
     * Apply a Notary-style annotation: mark the pages covering
     * [base, base+len) permanently safe and refresh every TLB's cached
     * state so no stale classification survives.
     */
    void annotateRange(Addr base, std::uint64_t len);

    const PageTable &pageTable() const { return *pt_; }
    PageTable &pageTable() { return *pt_; }
    const VmConfig &config() const { return cfg_; }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    VmConfig cfg_;
    std::unique_ptr<PageTable> pt_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    stats::StatGroup stats_{"vm"};
};

} // namespace vm
} // namespace hintm

#endif // HINTM_VM_VM_HH
