/**
 * @file
 * Virtual-memory facade for HinTM's dynamic classification: combines the
 * thread-level page table (Fig. 2 state machine), per-context TLBs with
 * safety bits, and the published cost model for minor faults and TLB
 * shootdowns (§V: 6600-cycle initiator, 1450-cycle slaves, 1450-cycle
 * minor fault).
 *
 * A per-context translation/classification cache (translateFast) memoizes
 * the fused TLB-hit + safety derivation per page so the simulator's inner
 * loop does one direct-mapped probe instead of a hash lookup plus FSM
 * logic per access. It is invalidated through the TLB's evict observer on
 * every event that could change a page's classification, and it refreshes
 * the underlying TLB entry's LRU stamp on each hit, so results (timing,
 * stats, classifications) are bit-identical to the uncached path.
 */

#ifndef HINTM_VM_VM_HH
#define HINTM_VM_VM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace hintm
{
namespace vm
{

/** Configuration of the VM subsystem. */
struct VmConfig
{
    /** Master switch: false models a conventional system (no safety
     * tracking, no HinTM-induced faults). */
    bool dynamicClassification = true;
    /** The "HinTM + preserve" read-only-preserving policy (§VI-B). */
    bool preserveReadOnly = false;

    unsigned tlbEntries = 64;
    Cycle pageWalkCycles = 30;
    Cycle minorFaultCycles = 1450;
    Cycle shootdownInitiatorCycles = 6600;
    Cycle shootdownSlaveCycles = 1450;

    /** Enable the per-context translation/classification memo
     * (translateFast). Off = reference path for cross-checking. */
    bool translationCache = true;
};

/** Result of translating (and safety-classifying) one access. */
struct TranslateResult
{
    /** The access may be treated as dynamically safe (reads only). */
    bool safeRead = false;
    /** Safety comes from the sharing FSM and can be revoked by a page
     * transition (false for irrevocable programmer annotations). */
    bool revocable = true;
    /** Cycles charged to the accessing context (walk/fault/shootdown). */
    Cycle cost = 0;
    /** Page moved to shared-rw: active TXs that read it as safe must
     * abort, and remote TLBs were shot down. */
    bool becameUnsafe = false;
    /** Per-context stall cycles for shootdown slaves (index = context). */
    std::vector<std::pair<int, Cycle>> slaveCosts;
    /** Page number of the access. */
    Addr pageNum = 0;
};

/**
 * The VM subsystem. One instance per simulated machine; contexts are
 * registered up front (one per hardware thread).
 */
class Vm
{
  public:
    explicit Vm(const VmConfig &cfg);

    /** Register a hardware context; @return its id (dense from 0). */
    int addContext();

    /**
     * Translate an access by software thread @p tid running on hardware
     * context @p ctx. Updates page/TLB state and returns the safety
     * classification plus all modeled costs.
     */
    TranslateResult translate(int ctx, ThreadId tid, Addr addr,
                              AccessType type);

    /**
     * Memoized fast path: resolve a TLB-hit, non-transitioning access
     * from the per-context classification cache. @return true when
     * @p res was filled (bit-identical to what translate() would
     * produce, including stat/LRU effects); false means the caller must
     * take translate().
     */
    bool
    translateFast(int ctx, Addr addr, AccessType type,
                  TranslateResult &res)
    {
        if (!fastEnabled_)
            return false;
        const Addr page = pageNumber(addr);
        ClassEntry &e = classCaches_[ctx][page & (classSlots - 1)];
        if (e.page != page)
            return false;
        const bool is_write = type == AccessType::Write;
        if (is_write && !e.writeOk)
            return false; // write would transition the page: slow path
        ++*cTlbHits_;
        tlbs_[ctx]->touch(e.tlbEntry);
        res.pageNum = page;
        res.safeRead = !is_write && e.readSafe;
        res.revocable = is_write ? e.writeRevocable : e.readRevocable;
        return true;
    }

    /**
     * Apply a Notary-style annotation: mark the pages covering
     * [base, base+len) permanently safe and refresh every TLB's cached
     * state so no stale classification survives.
     */
    void annotateRange(Addr base, std::uint64_t len);

    const PageTable &pageTable() const { return *pt_; }
    PageTable &pageTable() { return *pt_; }
    const VmConfig &config() const { return cfg_; }

    stats::StatGroup &statGroup() { return stats_; }

    /**
     * Page table, per-context TLB images and stat values. The
     * classification memo is deliberately not captured: loadState()
     * clears it, and a cleared memo is behavior-neutral (a miss falls
     * back to translate(), which produces the identical result — the
     * same property --no-translation-cache cross-checks).
     */
    struct State
    {
        PageTable pageTable;
        std::vector<Tlb::State> tlbs;
        stats::StatGroup::Values stats;
    };

    State saveState() const;
    void loadState(const State &s);

  private:
    static constexpr unsigned classSlots = 256;

    /** One memoized (context, page) classification. Direct-mapped. */
    struct ClassEntry
    {
        Addr page = ~Addr(0);
        Tlb::Entry *tlbEntry = nullptr;
        bool readSafe = false;
        bool readRevocable = true;
        bool writeOk = false;
        bool writeRevocable = true;
    };

    /** Memoize @p state's derived classification for (ctx, page). */
    void fillClassEntry(int ctx, Addr page, PageState state,
                        Tlb::Entry *te);

    VmConfig cfg_;
    std::unique_ptr<PageTable> pt_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::vector<std::vector<ClassEntry>> classCaches_;
    bool fastEnabled_;
    stats::StatGroup stats_{"vm"};

    // Hot counters, resolved once instead of by-name per access.
    stats::Counter *cTlbHits_;
    stats::Counter *cTlbMisses_;
    stats::Counter *cMinorFaults_;
    stats::Counter *cUnsafeTransitions_;
    stats::Counter *cShootdownSlaves_;
};

} // namespace vm
} // namespace hintm

#endif // HINTM_VM_VM_HH
