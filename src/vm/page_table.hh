/**
 * @file
 * Thread-level page sharing tracker: the paper's Fig. 2 state machine.
 * Each page-table entry is extended with a first-toucher thread id, a
 * read-only bit and a shared bit; reads to <private,*> and <shared,ro>
 * pages are safe and may skip HTM tracking.
 */

#ifndef HINTM_VM_PAGE_TABLE_HH
#define HINTM_VM_PAGE_TABLE_HH

#include <unordered_map>

#include "common/types.hh"

namespace hintm
{
namespace vm
{

/** Safety state of a page (combination of shared and ro bits). */
enum class PageState : std::uint8_t
{
    Untouched, ///< never accessed
    PrivateRo, ///< single thread, reads only so far
    PrivateRw, ///< single thread, has been written
    SharedRo,  ///< multiple threads, reads only
    SharedRw,  ///< read-write shared: permanently unsafe
    Annotated, ///< programmer-declared safe (Notary-style): immutable
};

const char *pageStateName(PageState s);

/** True when reads to a page in this state are safe. */
constexpr bool
pageStateSafe(PageState s)
{
    return s == PageState::PrivateRo || s == PageState::PrivateRw ||
           s == PageState::SharedRo || s == PageState::Annotated;
}

/** Result of recording one access in the page table. */
struct PageTransition
{
    PageState before = PageState::Untouched;
    PageState after = PageState::Untouched;
    /** Page moved from a safe state to SharedRw: shootdown + TX aborts. */
    bool becameUnsafe = false;
    /** <private,ro> -> <private,rw> (or preserve-mode write fault). */
    bool minorFault = false;
    /** Any state change that must be propagated to remote TLBs. */
    bool stateChanged = false;
};

/**
 * Process-wide page table tracking per-page safety state. Purely
 * functional: costs (faults, shootdowns) are modeled by vm::Vm.
 */
class PageTable
{
  public:
    /**
     * @param preserve_read_only when true, a second thread reading a
     * <private,rw> page demotes it to <shared,ro> (revoking the owner's
     * write permission) instead of declaring it unsafe — the paper's
     * "HinTM + preserve" policy studied for vacation (§VI-B).
     */
    explicit PageTable(bool preserve_read_only = false)
        : preserveReadOnly_(preserve_read_only)
    {
    }

    /** Record an access by @p tid to the page containing @p addr. */
    PageTransition touch(ThreadId tid, Addr addr, AccessType type);

    /**
     * Notary-style programmer annotation: declare every page covering
     * [base, base+len) thread-private. Annotated pages are permanently
     * safe for reads and never transition — the programmer vouches for
     * the absence of racing accesses (unchecked, as in Notary).
     */
    void annotateRange(Addr base, std::uint64_t len);

    /** True when any page was ever annotated. */
    bool hasAnnotations() const { return hasAnnotations_; }

    /** Current state of a page (Untouched if never seen). */
    PageState stateOf(Addr addr) const;

    /** First-toucher of a page (invalidThreadId if untouched). */
    ThreadId ownerOf(Addr addr) const;

    /** Number of pages currently in each safety class (Fig. 1 metric). */
    std::uint64_t countPages(bool safe_only) const;

    /** Total distinct pages ever touched. */
    std::uint64_t totalPages() const { return entries_.size(); }

    bool preserveReadOnly() const { return preserveReadOnly_; }

  private:
    struct Entry
    {
        PageState state = PageState::Untouched;
        ThreadId owner = invalidThreadId;
    };

    std::unordered_map<Addr, Entry> entries_;
    bool preserveReadOnly_;
    bool hasAnnotations_ = false;
};

} // namespace vm
} // namespace hintm

#endif // HINTM_VM_PAGE_TABLE_HH
