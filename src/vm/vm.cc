#include "vm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hintm
{
namespace vm
{

Vm::Vm(const VmConfig &cfg)
    : cfg_(cfg), pt_(std::make_unique<PageTable>(cfg.preserveReadOnly)),
      fastEnabled_(cfg.translationCache)
{
    cTlbHits_ = &stats_.counter("tlb_hits");
    cTlbMisses_ = &stats_.counter("tlb_misses");
    cMinorFaults_ = &stats_.counter("minor_faults");
    cUnsafeTransitions_ = &stats_.counter("unsafe_transitions");
    cShootdownSlaves_ = &stats_.counter("shootdown_slaves");
}

int
Vm::addContext()
{
    tlbs_.push_back(std::make_unique<Tlb>(cfg_.tlbEntries));
    classCaches_.emplace_back(classSlots);
    const int id = int(tlbs_.size() - 1);
    // Any event that drops or rewrites a cached translation kills the
    // memoized classification derived from it.
    tlbs_[id]->setEvictObserver([this, id](Addr page) {
        ClassEntry &e = classCaches_[id][page & (classSlots - 1)];
        if (e.page == page)
            e.page = ~Addr(0);
    });
    return id;
}

void
Vm::fillClassEntry(int ctx, Addr page, PageState state, Tlb::Entry *te)
{
    if (!fastEnabled_)
        return;
    ClassEntry &e = classCaches_[ctx][page & (classSlots - 1)];
    e.page = page;
    e.tlbEntry = te;
    if (cfg_.dynamicClassification) {
        e.readSafe = pageStateSafe(state);
        e.readRevocable = state != PageState::Annotated;
        // PrivateRo/SharedRo transition on a write: keep those on the
        // slow path so the FSM runs.
        e.writeOk = state != PageState::PrivateRo &&
                    state != PageState::SharedRo;
        e.writeRevocable = state != PageState::Annotated;
    } else {
        // Conventional system: only irrevocable annotations classify,
        // and no write ever transitions a page.
        e.readSafe = state == PageState::Annotated;
        e.readRevocable = state != PageState::Annotated;
        e.writeOk = true;
        e.writeRevocable = true;
    }
}

void
Vm::annotateRange(Addr base, std::uint64_t len)
{
    pt_->annotateRange(base, len);
    const Addr first = pageNumber(base);
    const Addr last = pageNumber(base + len - 1);
    for (auto &tlb : tlbs_) {
        for (Addr page = first; page <= last; ++page)
            tlb->updateState(page, PageState::Annotated);
    }
}

TranslateResult
Vm::translate(int ctx, ThreadId tid, Addr addr, AccessType type)
{
    HINTM_ASSERT(ctx >= 0 && ctx < int(tlbs_.size()), "bad vm ctx ", ctx);
    TranslateResult res;
    res.pageNum = pageNumber(addr);
    Tlb &tlb = *tlbs_[ctx];

    if (!cfg_.dynamicClassification) {
        // Conventional system: model TLB hit/miss timing only — except
        // that explicit programmer annotations (Notary-style) are still
        // honored: they need no sharing FSM.
        Tlb::Entry *e = tlb.lookupEntry(res.pageNum);
        PageState cached_state;
        if (!e) {
            ++*cTlbMisses_;
            res.cost += cfg_.pageWalkCycles;
            cached_state = pt_->hasAnnotations() &&
                                   pt_->stateOf(addr) ==
                                       PageState::Annotated
                               ? PageState::Annotated
                               : PageState::SharedRw;
            e = tlb.insert(res.pageNum, cached_state);
        } else {
            ++*cTlbHits_;
            cached_state = e->state;
        }
        fillClassEntry(ctx, res.pageNum, cached_state, e);
        if (cached_state == PageState::Annotated &&
            type == AccessType::Read) {
            res.safeRead = true;
            res.revocable = false;
        }
        return res;
    }

    // Fast path: a TLB hit on a page whose cached state cannot change
    // under this access needs no page-table visit. TLBs are per context
    // and transitions eagerly fix remote cached copies, so a cached
    // Private* entry implies this context's thread owns the page.
    Tlb::Entry *hit = tlb.lookupEntry(res.pageNum);
    if (hit) {
        ++*cTlbHits_;
        const PageState cached = hit->state;
        const bool is_write = type == AccessType::Write;
        const bool transitions =
            (cached == PageState::PrivateRo && is_write) ||
            (cached == PageState::SharedRo && is_write);
        if (!transitions) {
            fillClassEntry(ctx, res.pageNum, cached, hit);
            res.safeRead = !is_write && pageStateSafe(cached);
            res.revocable = cached != PageState::Annotated;
            return res;
        }
    } else {
        ++*cTlbMisses_;
        res.cost += cfg_.pageWalkCycles;
    }

    // Slow path: consult (and possibly transition) the page table.
    const PageTransition tr = pt_->touch(tid, addr, type);

    if (tr.minorFault) {
        ++*cMinorFaults_;
        res.cost += cfg_.minorFaultCycles;
    }

    if (tr.becameUnsafe) {
        ++*cUnsafeTransitions_;
        res.becameUnsafe = true;
        res.cost += cfg_.shootdownInitiatorCycles;
        // Shoot down every remote TLB caching the stale translation.
        for (int c = 0; c < int(tlbs_.size()); ++c) {
            if (c == ctx)
                continue;
            if (tlbs_[c]->invalidate(res.pageNum)) {
                ++*cShootdownSlaves_;
                res.slaveCosts.emplace_back(
                    c, cfg_.shootdownSlaveCycles);
            }
        }
    } else if (tr.stateChanged && tr.before != PageState::Untouched) {
        // Benign transitions (e.g. private-ro -> shared-ro) update remote
        // cached copies in place; permission was only widened.
        for (int c = 0; c < int(tlbs_.size()); ++c) {
            if (c != ctx)
                tlbs_[c]->updateState(res.pageNum, tr.after);
        }
    }

    Tlb::Entry *e = tlb.insert(res.pageNum, tr.after);
    fillClassEntry(ctx, res.pageNum, tr.after, e);
    res.safeRead = type == AccessType::Read && pageStateSafe(tr.after);
    res.revocable = tr.after != PageState::Annotated;
    return res;
}

Vm::State
Vm::saveState() const
{
    State s;
    s.pageTable = *pt_;
    s.tlbs.reserve(tlbs_.size());
    for (const auto &tlb : tlbs_)
        s.tlbs.push_back(tlb->saveState());
    s.stats = stats_.values();
    return s;
}

void
Vm::loadState(const State &s)
{
    HINTM_ASSERT(s.tlbs.size() == tlbs_.size(),
                 "vm state context-count mismatch");
    *pt_ = s.pageTable;
    for (std::size_t c = 0; c < tlbs_.size(); ++c) {
        tlbs_[c]->loadState(s.tlbs[c]);
        // The restored TLB nodes invalidate every memoized Tlb::Entry
        // pointer; drop the whole classification memo. Absence is
        // behavior-neutral (misses re-derive via translate()).
        std::fill(classCaches_[c].begin(), classCaches_[c].end(),
                  ClassEntry{});
    }
    stats_.setValues(s.stats);
}

} // namespace vm
} // namespace hintm
