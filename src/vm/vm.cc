#include "vm.hh"

#include "common/logging.hh"

namespace hintm
{
namespace vm
{

Vm::Vm(const VmConfig &cfg)
    : cfg_(cfg), pt_(std::make_unique<PageTable>(cfg.preserveReadOnly))
{
}

int
Vm::addContext()
{
    tlbs_.push_back(std::make_unique<Tlb>(cfg_.tlbEntries));
    return int(tlbs_.size() - 1);
}

void
Vm::annotateRange(Addr base, std::uint64_t len)
{
    pt_->annotateRange(base, len);
    const Addr first = pageNumber(base);
    const Addr last = pageNumber(base + len - 1);
    for (auto &tlb : tlbs_) {
        for (Addr page = first; page <= last; ++page)
            tlb->updateState(page, PageState::Annotated);
    }
}

TranslateResult
Vm::translate(int ctx, ThreadId tid, Addr addr, AccessType type)
{
    HINTM_ASSERT(ctx >= 0 && ctx < int(tlbs_.size()), "bad vm ctx ", ctx);
    TranslateResult res;
    res.pageNum = pageNumber(addr);
    Tlb &tlb = *tlbs_[ctx];

    if (!cfg_.dynamicClassification) {
        // Conventional system: model TLB hit/miss timing only — except
        // that explicit programmer annotations (Notary-style) are still
        // honored: they need no sharing FSM.
        PageState cached_state = PageState::SharedRw;
        if (!tlb.lookup(res.pageNum, &cached_state)) {
            ++stats_.counter("tlb_misses");
            res.cost += cfg_.pageWalkCycles;
            cached_state = pt_->hasAnnotations() &&
                                   pt_->stateOf(addr) ==
                                       PageState::Annotated
                               ? PageState::Annotated
                               : PageState::SharedRw;
            tlb.insert(res.pageNum, cached_state);
        } else {
            ++stats_.counter("tlb_hits");
        }
        if (cached_state == PageState::Annotated &&
            type == AccessType::Read) {
            res.safeRead = true;
            res.revocable = false;
        }
        return res;
    }

    // Fast path: a TLB hit on a page whose cached state cannot change
    // under this access needs no page-table visit. TLBs are per context
    // and transitions eagerly fix remote cached copies, so a cached
    // Private* entry implies this context's thread owns the page.
    PageState cached;
    const bool hit = tlb.lookup(res.pageNum, &cached);
    if (hit) {
        ++stats_.counter("tlb_hits");
        const bool is_write = type == AccessType::Write;
        const bool transitions =
            (cached == PageState::PrivateRo && is_write) ||
            (cached == PageState::SharedRo && is_write);
        if (!transitions) {
            res.safeRead = !is_write && pageStateSafe(cached);
            res.revocable = cached != PageState::Annotated;
            return res;
        }
    } else {
        ++stats_.counter("tlb_misses");
        res.cost += cfg_.pageWalkCycles;
    }

    // Slow path: consult (and possibly transition) the page table.
    const PageTransition tr = pt_->touch(tid, addr, type);

    if (tr.minorFault) {
        ++stats_.counter("minor_faults");
        res.cost += cfg_.minorFaultCycles;
    }

    if (tr.becameUnsafe) {
        ++stats_.counter("unsafe_transitions");
        res.becameUnsafe = true;
        res.cost += cfg_.shootdownInitiatorCycles;
        // Shoot down every remote TLB caching the stale translation.
        for (int c = 0; c < int(tlbs_.size()); ++c) {
            if (c == ctx)
                continue;
            if (tlbs_[c]->invalidate(res.pageNum)) {
                ++stats_.counter("shootdown_slaves");
                res.slaveCosts.emplace_back(
                    c, cfg_.shootdownSlaveCycles);
            }
        }
    } else if (tr.stateChanged && tr.before != PageState::Untouched) {
        // Benign transitions (e.g. private-ro -> shared-ro) update remote
        // cached copies in place; permission was only widened.
        for (int c = 0; c < int(tlbs_.size()); ++c) {
            if (c != ctx)
                tlbs_[c]->updateState(res.pageNum, tr.after);
        }
    }

    tlb.insert(res.pageNum, tr.after);
    res.safeRead = type == AccessType::Read && pageStateSafe(tr.after);
    res.revocable = tr.after != PageState::Annotated;
    return res;
}

} // namespace vm
} // namespace hintm
