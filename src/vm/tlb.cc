#include "tlb.hh"

#include "common/logging.hh"

namespace hintm
{
namespace vm
{

bool
Tlb::lookup(Addr page_num, PageState *state_out)
{
    auto it = entries_.find(page_num);
    if (it == entries_.end())
        return false;
    it->second.lruStamp = ++clock_;
    if (state_out)
        *state_out = it->second.state;
    return true;
}

void
Tlb::insert(Addr page_num, PageState state)
{
    auto it = entries_.find(page_num);
    if (it != entries_.end()) {
        it->second.state = state;
        it->second.lruStamp = ++clock_;
        return;
    }
    if (entries_.size() >= capacity_)
        evictLru();
    entries_.emplace(page_num, Entry{state, ++clock_});
}

bool
Tlb::invalidate(Addr page_num)
{
    return entries_.erase(page_num) != 0;
}

void
Tlb::updateState(Addr page_num, PageState state)
{
    auto it = entries_.find(page_num);
    if (it != entries_.end())
        it->second.state = state;
}

void
Tlb::evictLru()
{
    HINTM_ASSERT(!entries_.empty(), "evicting from empty TLB");
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.lruStamp < victim->second.lruStamp)
            victim = it;
    }
    entries_.erase(victim);
}

} // namespace vm
} // namespace hintm
