#include "tlb.hh"

#include "common/logging.hh"

namespace hintm
{
namespace vm
{

bool
Tlb::lookup(Addr page_num, PageState *state_out)
{
    Entry *e = lookupEntry(page_num);
    if (!e)
        return false;
    if (state_out)
        *state_out = e->state;
    return true;
}

Tlb::Entry *
Tlb::lookupEntry(Addr page_num)
{
    auto it = entries_.find(page_num);
    if (it == entries_.end())
        return nullptr;
    it->second.lruStamp = ++clock_;
    return &it->second;
}

Tlb::Entry *
Tlb::insert(Addr page_num, PageState state)
{
    auto it = entries_.find(page_num);
    if (it != entries_.end()) {
        it->second.state = state;
        it->second.lruStamp = ++clock_;
        notifyEvict(page_num); // cached derivations are stale
        return &it->second;
    }
    if (entries_.size() >= capacity_)
        evictLru();
    return &entries_.emplace(page_num, Entry{state, ++clock_})
                .first->second;
}

bool
Tlb::invalidate(Addr page_num)
{
    if (entries_.erase(page_num) == 0)
        return false;
    notifyEvict(page_num);
    return true;
}

void
Tlb::updateState(Addr page_num, PageState state)
{
    auto it = entries_.find(page_num);
    if (it != entries_.end()) {
        it->second.state = state;
        notifyEvict(page_num);
    }
}

void
Tlb::evictLru()
{
    HINTM_ASSERT(!entries_.empty(), "evicting from empty TLB");
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.lruStamp < victim->second.lruStamp)
            victim = it;
    }
    const Addr page = victim->first;
    entries_.erase(victim);
    notifyEvict(page);
}

} // namespace vm
} // namespace hintm
