/**
 * @file
 * Machine-state snapshot/fork for the sweep-throughput engine. Two
 * layers, matching how figure sweeps actually share work:
 *
 *  - MachinePrefix: the config-independent program state left behind by
 *    the init phase (memory image, allocator, RNG streams, page
 *    annotations). The init phase runs before any hardware context,
 *    cache or HTM controller exists, so its result can seed machines
 *    built with *different* backend/hint/observation configurations —
 *    one warmed prefix fans out into N divergent configs.
 *
 *  - MachineSnapshot: the complete state of a running machine (caches,
 *    snoop filter, VM/TLBs, HTM controllers, interpreter frames, partial
 *    results, journal, scheduler clock). Restoring into a machine built
 *    from the *same* configuration and resuming is bit-identical to
 *    never having stopped — property-test-locked like the
 *    --no-snoop-filter / --no-decode-cache equivalence checks.
 *
 * SimRun wraps the (internal) Machine with stepwise control so callers
 * can run partway, capture, restore and finish.
 */

#ifndef HINTM_SIM_SNAPSHOT_HH
#define HINTM_SIM_SNAPSHOT_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_set.hh"
#include "common/journal.hh"
#include "common/metrics.hh"
#include "sim/machine.hh"
#include "tir/interp.hh"

namespace hintm
{
namespace sim
{

/**
 * Post-init-phase program state, shareable across divergent machine
 * configurations. Valid for machines built from the same module with
 * the same thread count, seed and safe-store-validation mode; backend,
 * hint-mode, decode-cache and observation options may all differ (the
 * init phase never touches them).
 */
struct MachinePrefix
{
    tir::Program::State program;
    /** Annotate calls executed by the init phase, replayed into the VM
     * of each forked machine (the VM exists per machine). */
    std::vector<std::pair<Addr, std::uint64_t>> annotations;
    unsigned numThreads = 0;
    std::uint64_t seed = 0;
    bool validateSafeStores = false;
    /** Identity of the source module (forks must use the same one). */
    const void *moduleTag = nullptr;
};

/** Snapshot of one hardware context's runtime state. */
struct MachineContextSnapshot
{
    tir::ThreadInterp::State interp;
    htm::HtmController::State htm;
    Cycle readyAt = 0;
    Cycle finishedAt = 0;
    bool done = false;
    bool atBarrier = false;
    unsigned retries = 0;
    bool mustFallback = false;
    bool inFallback = false;
    AddrSet fpAll, fpNoStatic, fpUnsafe;
    TxRecord rec;
    bool recOpen = false;
    bool recConverted = false;
    /** In-flight capacity-metrics measurement (metrics configs only). */
    TxMetricsCtx mtx;
};

/** Complete machine state at a scheduler boundary. The event-driven
 * scheduler index is deliberately absent: it is state derived entirely
 * from the per-context (done, atBarrier, readyAt) fields below plus
 * now/rr, and the machine rebuilds it on restore(). */
struct MachineSnapshot
{
    tir::Program::State program;
    mem::MemorySystem::State mem;
    vm::Vm::State vm;
    std::vector<MachineContextSnapshot> ctxs;
    int lockHolder = -1;
    std::uint64_t shootdownCycles = 0;
    SharingProfiler profiler;
    /** Accumulated results so far (journal pointer always null here). */
    RunResult partial;
    /** Journal ring contents (journaling configs only). */
    TxJournal journal;
    bool hasJournal = false;
    /** Metrics registry contents (metrics configs only). */
    MetricsRegistry metrics;
    bool hasMetrics = false;
    Cycle now = 0;
    unsigned rr = 0;
    unsigned numThreads = 0;
    const void *moduleTag = nullptr;
};

/**
 * A stepwise-controllable simulation. Equivalent to runMachine() when
 * driven straight to finish(); additionally supports partial execution
 * and snapshot/restore.
 */
class SimRun
{
  public:
    /**
     * Build the machine. When @p prefix is non-null the init phase is
     * skipped and its captured state installed instead (the prefix must
     * match the module/threads/seed this machine is built with).
     */
    SimRun(const MachineConfig &cfg, const tir::Module &module,
           unsigned num_threads, const MachinePrefix *prefix = nullptr);
    ~SimRun();

    SimRun(const SimRun &) = delete;
    SimRun &operator=(const SimRun &) = delete;

    /** Run until at least @p target TXs have committed (or the program
     * finishes). target == 0 returns immediately. */
    void runUntilCommits(std::uint64_t target);

    /** True once every context is done. */
    bool finished() const;

    /** Committed TXs so far. */
    std::uint64_t committedTxs() const;

    /**
     * Capture the complete machine state. Must not be used on
     * hint-oracle configs (the oracle's shadow state is not captured).
     */
    MachineSnapshot snapshot() const;

    /** Restore a snapshot captured from an identically-configured run.
     * Also un-finalizes a finished run, so one SimRun can be driven
     * through many restore()/finish() rounds (branch exploration). */
    void restore(const MachineSnapshot &s);

    /** Deschedule context @p ctx until another context is preempted in
     * its place or nothing else is runnable. Only meaningful under a
     * ScheduleController (schedule.hh); the explorer's branch move
     * after restoring a fork point. */
    void preemptContext(unsigned ctx);

    /** Current scheduler clock. */
    Cycle now() const;

    /** Run to completion and finalize the result. */
    RunResult finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run the init phase once and capture it as a fork point for machines
 * whose configs differ only in backend/hint/observation options.
 */
MachinePrefix buildMachinePrefix(const MachineConfig &cfg,
                                 const tir::Module &module,
                                 unsigned num_threads);

/** runMachine, seeded from a previously captured init-phase prefix. */
RunResult runMachine(const MachineConfig &cfg, const tir::Module &module,
                     unsigned num_threads, const MachinePrefix *prefix);

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_SNAPSHOT_HH
