#include "journal_io.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "htm/abort.hh"

namespace hintm
{
namespace sim
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

const char *
reasonName(unsigned r)
{
    if (r < htm::numAbortReasons)
        return htm::abortReasonName(htm::AbortReason(r));
    return "unknown";
}

/** {"conflict":N,...,"total":N} over an aborts[] array. */
void
emitAbortMap(std::ostream &os, const std::uint64_t *aborts,
             unsigned n, std::uint64_t total)
{
    os << "{";
    for (unsigned r = 1; r < n; ++r) {
        if (aborts[r] == 0 && r >= htm::numAbortReasons)
            continue; // padding slots past the real taxonomy
        os << "\"" << reasonName(r) << "\":" << aborts[r] << ",";
    }
    os << "\"total\":" << total << "}";
}

/** A Log2Hist as {"count","sum","max","mean","buckets":[{bucket,count}]}
 * with zero buckets elided. */
void
emitHist(std::ostream &os, const Log2Hist &h)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", h.mean());
    os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"max\":" << h.max << ",\"mean\":" << buf
       << ",\"buckets\":[";
    bool first = true;
    for (unsigned b = 0; b < Log2Hist::numBuckets; ++b) {
        if (!h.buckets[b])
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"bucket\":" << b << ",\"count\":" << h.buckets[b]
           << "}";
    }
    os << "]}";
}

/** Growth-curve array: one {blocks, cycles-histogram} per non-empty
 * milestone. */
void
emitGrowth(std::ostream &os, const Log2Hist *curves)
{
    os << "[";
    bool first = true;
    for (unsigned k = 0; k < MetricsRegistry::numMilestones; ++k) {
        if (curves[k].empty())
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"blocks\":" << MetricsRegistry::milestoneBlocks(k)
           << ",\"cycles\":";
        emitHist(os, curves[k]);
        os << "}";
    }
    os << "]";
}

/** The full metrics section body (the object after "metrics":). */
void
emitMetrics(std::ostream &os, const MetricsRegistry &m)
{
    os << "{\"capacity_aborts\":" << m.capacityAborts
       << ",\"hint_saved_commits\":" << m.hintSavedCommits
       << ",\"skipped_accesses\":{\"static\":" << m.skipStaticAccesses
       << ",\"dynamic\":" << m.skipDynAccesses
       << ",\"annotation\":" << m.skipAnnotAccesses << "}"
       << ",\"overflow_set\":{\"scans\":" << m.ovScans
       << ",\"tracked\":" << m.ovTracked
       << ",\"safe_skipped\":" << m.ovSafeSkipped
       << ",\"other\":" << m.ovOther << "}"
       << ",\"fallback\":{\"acquisitions\":" << m.fallbackAcquisitions
       << ",\"window\":" << m.fallbackSeries.window()
       << ",\"held_cycles\":[";
    const auto &held = m.fallbackSeries.samples();
    for (std::size_t i = 0; i < held.size(); ++i) {
        if (i)
            os << ",";
        os << held[i];
    }
    os << "]},\"tracked_at_commit\":";
    emitHist(os, m.trackedAtCommit);
    os << ",\"tracked_at_capacity_abort\":";
    emitHist(os, m.trackedAtCapacityAbort);
    os << ",\"sharers_at_bus\":";
    emitHist(os, m.sharersAtBus);
    os << ",\"growth_read\":";
    emitGrowth(os, m.growthRead);
    os << ",\"growth_write\":";
    emitGrowth(os, m.growthWrite);
    os << ",\"numa\":{\"nodes\":" << m.numaNodes() << ",\"matrix\":[";
    for (unsigned from = 0; from < m.numaNodes(); ++from) {
        if (from)
            os << ",";
        os << "[";
        for (unsigned to = 0; to < m.numaNodes(); ++to) {
            if (to)
                os << ",";
            os << m.numaMatrix()[std::size_t(from) * m.numaNodes() + to];
        }
        os << "]";
    }
    os << "]},\"sites\":[";
    const auto sites = m.sitesByPressure();
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const MetricsRegistry::SiteMetrics &s = *sites[i];
        if (i)
            os << ",";
        char buf[32];
        os << "{\"site\":\""
           << jsonEscape(m.siteName(s.fn, s.block, s.instr))
           << "\",\"commits\":" << s.commits
           << ",\"capacity_aborts\":" << s.capacityAborts
           << ",\"hint_saved_commits\":" << s.hintSavedCommits
           << ",\"skipped_accesses\":{\"static\":" << s.skipStatic
           << ",\"dynamic\":" << s.skipDyn
           << ",\"annotation\":" << s.skipAnnot << "}"
           << ",\"skipped_blocks\":" << s.skippedBlocksSum
           << ",\"skipped_bytes\":" << s.skippedBytes
           << ",\"peak_tracked_max\":" << s.peakTrackedMax
           << ",\"mean_peak_tracked\":";
        std::snprintf(buf, sizeof(buf), "%.1f",
                      s.commits ? double(s.peakTrackedSum) / s.commits
                                : 0.0);
        os << buf << ",\"mean_tracked_at_capacity\":";
        std::snprintf(
            buf, sizeof(buf), "%.1f",
            s.capacityAborts
                ? double(s.trackedAtCapacitySum) / s.capacityAborts
                : 0.0);
        os << buf << "}";
    }
    os << "]}";
}

} // namespace

// ---- Perfetto / Chrome trace ---------------------------------------

void
writePerfettoTrace(std::ostream &os, const std::vector<JournalRun> &runs)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    std::uint32_t pid = 0;
    for (const JournalRun &run : runs) {
        ++pid;
        if (!run.result || !run.result->journal)
            continue;
        const TxJournal &j = *run.result->journal;

        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\""
           << jsonEscape(run.workload) << " " << jsonEscape(run.config)
           << " t" << run.threads << "\"}}";

        // One named track per hardware context that shows up.
        std::vector<bool> seenCtx;
        const std::size_t n = j.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = j.at(i).ctx;
            if (c >= seenCtx.size())
                seenCtx.resize(c + 1, false);
            if (!seenCtx[c]) {
                seenCtx[c] = true;
                sep();
                os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << c
                   << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                   << "ctx " << c << "\"}}";
            }
        }

        for (std::size_t i = 0; i < n; ++i) {
            const TxRecord &r = j.at(i);
            const Cycle dur = r.end > r.begin ? r.end - r.begin : 1;
            sep();
            os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << r.ctx
               << ",\"ts\":" << r.begin << ",\"dur\":" << dur
               << ",\"name\":\""
               << jsonEscape(j.siteName(r.fn, r.block, r.instr))
               << "\",\"cat\":\"" << txOutcomeName(r.outcome)
               << "\",\"args\":{\"outcome\":\"" << txOutcomeName(r.outcome)
               << "\",\"retry\":" << r.retry
               << ",\"read_blocks\":" << r.readBlocks
               << ",\"write_blocks\":" << r.writeBlocks;
            if (r.outcome == TxOutcome::Abort) {
                os << ",\"reason\":\"" << reasonName(r.reason) << "\"";
                if (r.offendingValid)
                    os << ",\"offending_addr\":\"" << hexAddr(r.offendingAddr)
                       << "\"";
                if (r.offendingCtx >= 0)
                    os << ",\"offending_ctx\":" << r.offendingCtx;
            }
            os << "}}";
        }

        // Counter tracks when the run also carried metrics: the tracked
        // footprint of each context sampled at every TX close, and the
        // per-window fallback-lock occupancy. Counters are keyed by
        // (pid, name), so the context id is folded into the name.
        if (run.result->metrics) {
            for (std::size_t i = 0; i < n; ++i) {
                const TxRecord &r = j.at(i);
                sep();
                os << "{\"ph\":\"C\",\"pid\":" << pid
                   << ",\"tid\":" << r.ctx << ",\"ts\":" << r.end
                   << ",\"name\":\"tracked blocks ctx " << r.ctx
                   << "\",\"args\":{\"blocks\":"
                   << (r.readBlocks + r.writeBlocks) << "}}";
            }
            const MetricsRegistry &m = *run.result->metrics;
            const auto &held = m.fallbackSeries.samples();
            for (std::size_t w = 0; w < held.size(); ++w) {
                sep();
                os << "{\"ph\":\"C\",\"pid\":" << pid
                   << ",\"tid\":0,\"ts\":"
                   << Cycle(w) * m.fallbackSeries.window()
                   << ",\"name\":\"fallback lock held cycles\""
                   << ",\"args\":{\"cycles\":" << held[w] << "}}";
            }
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writePerfettoTrace(const std::string &path,
                   const std::vector<JournalRun> &runs)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write Perfetto trace to ", path);
        return false;
    }
    writePerfettoTrace(os, runs);
    return true;
}

// ---- stats JSON ----------------------------------------------------

Cycle
defaultIntervalWindow(Cycle run_cycles)
{
    if (run_cycles == 0)
        return 1000;
    // Aim for ~50 windows, rounded down to a power of ten (min 100).
    Cycle w = 100;
    while (w * 10 <= run_cycles / 50)
        w *= 10;
    return w;
}

std::string
statsJsonRecord(const JournalRun &run, Cycle window)
{
    HINTM_ASSERT(run.result != nullptr, "stats record needs a result");
    const RunResult &r = *run.result;
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(run.workload)
       << "\",\"config\":\"" << jsonEscape(run.config)
       << "\",\"threads\":" << run.threads << ",\"cycles\":" << r.cycles
       << ",\"instructions\":" << r.instructions
       << ",\"committed_txs\":" << r.committedTxs
       << ",\"fallback_runs\":" << r.fallbackRuns << ",\"htm\":{"
       << "\"commits\":" << r.htm.commits << ",\"aborts\":";
    emitAbortMap(os, r.htm.aborts, htm::numAbortReasons,
                 r.htm.totalAborts());
    os << "},\"tx_accesses\":{"
       << "\"reads_static_safe\":" << r.txReadsStaticSafe
       << ",\"reads_dyn_safe\":" << r.txReadsDynSafe
       << ",\"reads_annotated\":" << r.txReadsAnnotated
       << ",\"writes_static_safe\":" << r.txWritesStaticSafe
       << ",\"reads_unsafe\":" << r.txReadsUnsafe
       << ",\"writes_unsafe\":" << r.txWritesUnsafe
       << ",\"suspended\":" << r.txAccessesSuspended
       << ",\"total\":" << r.txAccessesTotal() << "}"
       << ",\"pages\":{\"safe\":" << r.safePages
       << ",\"total\":" << r.totalPages << "}";

    if (!r.journal) {
        os << ",\"journal\":null,\"metrics\":";
        if (r.metrics)
            emitMetrics(os, *r.metrics);
        else
            os << "null";
        os << "}";
        return os.str();
    }

    const TxJournal &j = *r.journal;
    os << ",\"journal\":{\"capacity\":" << j.capacity()
       << ",\"pushed\":" << j.pushed() << ",\"recorded\":" << j.size()
       << ",\"dropped\":" << j.dropped() << ",\"totals\":{"
       << "\"commits\":" << j.totals().commits
       << ",\"fallback_commits\":" << j.totals().fallbackCommits
       << ",\"converted_commits\":" << j.totals().convertedCommits
       << ",\"committed_attempts\":" << j.totals().committedAttempts()
       << ",\"cycles_lost_to_aborts\":" << j.totals().cyclesLostToAborts
       << ",\"aborts\":";
    emitAbortMap(os, j.totals().aborts, TxJournal::maxReasons,
                 j.totals().totalAborts());
    os << "},\"sites\":[";

    const auto sites = j.sitesByAborts();
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const TxJournal::SiteStats &s = *sites[i];
        if (i)
            os << ",";
        os << "{\"site\":\""
           << jsonEscape(j.siteName(s.fn, s.block, s.instr))
           << "\",\"commits\":" << s.commits
           << ",\"fallback_commits\":" << s.fallbackCommits
           << ",\"converted_commits\":" << s.convertedCommits
           << ",\"cycles_lost_to_aborts\":" << s.cyclesLostToAborts
           << ",\"mean_footprint\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f",
                      s.commits ? double(s.footprintSum) / s.commits
                                : 0.0);
        os << buf << ",\"aborts\":";
        emitAbortMap(os, s.aborts, TxJournal::maxReasons,
                     s.totalAborts());
        os << ",\"hot_blocks\":[";
        // Hottest first; ties by address for deterministic output.
        std::vector<TxJournal::HotBlock> hot = s.hotBlocks;
        std::sort(hot.begin(), hot.end(),
                  [](const TxJournal::HotBlock &a,
                     const TxJournal::HotBlock &b) {
                      if (a.count != b.count)
                          return a.count > b.count;
                      return a.addr < b.addr;
                  });
        for (std::size_t h = 0; h < hot.size(); ++h) {
            if (h)
                os << ",";
            os << "{\"addr\":\"" << hexAddr(hot[h].addr)
               << "\",\"count\":" << hot[h].count << "}";
        }
        os << "],\"other_offenders\":" << s.otherOffenders
           << ",\"hot_blocks_saturated\":"
           << (s.hotBlocksSaturated ? "true" : "false") << "}";
    }
    os << "],";

    const Cycle w = window ? window : defaultIntervalWindow(r.cycles);
    os << "\"intervals\":{\"window\":" << w << ",\"samples\":[";
    const auto samples = j.sampleIntervals(w);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const IntervalSample &s = samples[i];
        if (i)
            os << ",";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", s.meanFootprint());
        os << "{\"start\":" << s.start << ",\"commits\":" << s.commits
           << ",\"aborts\":";
        emitAbortMap(os, s.aborts, IntervalSample::maxReasons,
                     s.totalAborts());
        os << ",\"mean_footprint\":" << buf
           << ",\"fallback_cycles\":" << s.fallbackCycles << "}";
    }
    os << "]}},\"metrics\":";
    if (r.metrics)
        emitMetrics(os, *r.metrics);
    else
        os << "null";
    os << "}";
    return os.str();
}

void
writeStatsJson(std::ostream &os, const std::vector<JournalRun> &runs,
               Cycle window)
{
    os << "[\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        os << "  " << statsJsonRecord(runs[i], window)
           << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "]\n";
}

bool
writeStatsJson(const std::string &path,
               const std::vector<JournalRun> &runs, Cycle window)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot write stats JSON to ", path);
        return false;
    }
    writeStatsJson(os, runs, window);
    return true;
}

// ---- attribution table ---------------------------------------------

std::string
renderAttributionTable(const TxJournal &journal, std::size_t top_n)
{
    TextTable t;
    t.header({"tx site", "commits", "fb", "conv", "aborts", "conflict",
              "false", "capacity", "pagemode", "lock", "cyc lost",
              "hottest blocks"});

    // Cost-ranked: cycles lost to aborts, not raw abort count, is what
    // the attribution table exists to minimize.
    const auto sites = journal.sitesByCyclesLost();
    const std::size_t n = std::min(top_n, sites.size());
    for (std::size_t i = 0; i < n; ++i) {
        const TxJournal::SiteStats &s = *sites[i];
        std::vector<TxJournal::HotBlock> hot = s.hotBlocks;
        std::sort(hot.begin(), hot.end(),
                  [](const TxJournal::HotBlock &a,
                     const TxJournal::HotBlock &b) {
                      if (a.count != b.count)
                          return a.count > b.count;
                      return a.addr < b.addr;
                  });
        std::ostringstream hs;
        for (std::size_t h = 0; h < std::min<std::size_t>(hot.size(), 3);
             ++h) {
            if (h)
                hs << " ";
            hs << hexAddr(hot[h].addr) << "(" << hot[h].count << ")";
        }
        if (hot.size() > 3 || s.otherOffenders)
            hs << " ...";
        if (s.hotBlocksSaturated)
            hs << " (sat)"; // hot-block list capped: ranking is partial
        auto u = [](std::uint64_t v) { return std::to_string(v); };
        t.row({journal.siteName(s.fn, s.block, s.instr), u(s.commits),
               u(s.fallbackCommits), u(s.convertedCommits),
               u(s.totalAborts()),
               u(s.aborts[unsigned(htm::AbortReason::Conflict)]),
               u(s.aborts[unsigned(htm::AbortReason::FalseConflict)]),
               u(s.aborts[unsigned(htm::AbortReason::Capacity)]),
               u(s.aborts[unsigned(htm::AbortReason::PageMode)]),
               u(s.aborts[unsigned(htm::AbortReason::FallbackLock)]),
               u(s.cyclesLostToAborts), hs.str()});
    }

    std::ostringstream os;
    os << t;
    if (sites.size() > n)
        os << "(" << sites.size() - n << " more sites)\n";
    return os.str();
}

std::string
renderIntervalTable(const TxJournal &journal, Cycle run_cycles,
                    Cycle window)
{
    const Cycle w = window ? window : defaultIntervalWindow(run_cycles);
    const auto samples = journal.sampleIntervals(w);
    TextTable t;
    t.header({"cycle", "commits", "aborts", "conflict", "capacity",
              "mean fp", "lock occ"});
    for (const IntervalSample &s : samples) {
        t.row({std::to_string(s.start), std::to_string(s.commits),
               std::to_string(s.totalAborts()),
               std::to_string(
                   s.aborts[unsigned(htm::AbortReason::Conflict)]),
               std::to_string(
                   s.aborts[unsigned(htm::AbortReason::Capacity)]),
               TextTable::num(s.meanFootprint(), 1),
               TextTable::pct(double(s.fallbackCycles) / double(w))});
    }
    std::ostringstream os;
    os << "interval window: " << w << " cycles\n" << t;
    return os.str();
}

std::string
metricsSummary(const RunResult &r)
{
    if (!r.metrics)
        return "metrics: off\n";
    const MetricsRegistry &m = *r.metrics;
    std::ostringstream os;
    os << "metrics: " << m.capacityAborts << " capacity aborts, "
       << m.hintSavedCommits << " hint-saved commits, "
       << (m.skipStaticAccesses + m.skipDynAccesses +
           m.skipAnnotAccesses)
       << " safe-skipped accesses (static " << m.skipStaticAccesses
       << ", dyn " << m.skipDynAccesses << ", annot "
       << m.skipAnnotAccesses << "), " << m.fallbackAcquisitions
       << " lock acquisitions\n";
    if (m.ovScans)
        os << "metrics: overflow-set occupancy over " << m.ovScans
           << " capacity aborts: " << m.ovTracked << " tracked, "
           << m.ovSafeSkipped << " safe-skipped, " << m.ovOther
           << " other lines\n";
    return os.str();
}

std::string
journalSummary(const RunResult &r)
{
    if (!r.journal)
        return "journal: off\n";
    const TxJournal &j = *r.journal;
    std::ostringstream os;
    os << "journal: " << j.pushed() << " TX attempts (" << j.size()
       << " retained, " << j.dropped() << " dropped; capacity "
       << j.capacity() << "), " << j.totals().commits << " hw commits, "
       << j.totals().fallbackCommits << " fallback, "
       << j.totals().convertedCommits << " converted, "
       << j.totals().totalAborts() << " aborts ("
       << j.totals().cyclesLostToAborts << " cycles lost), "
       << j.sites().size() << " TX sites\n";
    return os.str();
}

} // namespace sim
} // namespace hintm
