#include "trace_check.hh"

#include <sstream>

#include "common/journal.hh"
#include "htm/controller.hh"

namespace hintm
{
namespace sim
{

namespace
{

void
fail(std::vector<TraceViolation> &out, const char *kind,
     std::string detail, bool fatal = true)
{
    out.push_back({kind, std::move(detail), fatal});
}

/** One counter reconciliation between the journal and the stats. */
void
reconcile(std::vector<TraceViolation> &out, const char *what,
          std::uint64_t journal_side, std::uint64_t stats_side)
{
    if (journal_side == stats_side)
        return;
    std::ostringstream os;
    os << what << ": journal says " << journal_side
       << ", HtmStats/RunResult say " << stats_side;
    fail(out, "journal-consistency", os.str());
}

void
checkJournal(std::vector<TraceViolation> &out, const MachineConfig &cfg,
             const RunResult &r)
{
    const TxJournal &j = *r.journal;
    const TxJournal::Totals &t = j.totals();

    reconcile(out, "hardware commits", t.commits, r.htm.commits);
    reconcile(out, "fallback commits", t.fallbackCommits,
              r.fallbackRuns);
    reconcile(out, "converted commits", t.convertedCommits,
              r.htm.preAbortConversions);
    reconcile(out, "committed attempts", t.committedAttempts(),
              r.committedTxs);
    // Every hardware begin must be accounted for as exactly one
    // journal outcome: commit, abort, or conversion.
    reconcile(out, "hardware begins",
              t.commits + t.totalAborts() + t.convertedCommits,
              r.htm.begins);
    for (unsigned i = 0; i < htm::numAbortReasons; ++i) {
        std::ostringstream what;
        what << "aborts[" << htm::abortReasonName(htm::AbortReason(i))
             << "]";
        reconcile(out, what.str().c_str(), t.aborts[i],
                  r.htm.aborts[i]);
    }
    std::uint64_t lost = 0;
    for (unsigned i = 0; i < htm::numAbortReasons; ++i)
        lost += r.htm.cyclesLost[i];
    // The journal records in-TX time per aborted attempt; the stats
    // additionally charge the architectural-restore handler per abort.
    reconcile(out, "cycles lost to aborts",
              t.cyclesLostToAborts +
                  t.totalAborts() * cfg.htm.abortHandlerCycles,
              lost);
}

/** Longest run of consecutive aborted attempts in the retained ring
 * with no committing outcome anywhere in between — the bounded-livelock
 * / convoy signature. */
void
checkLivelock(std::vector<TraceViolation> &out, const RunResult &r,
              unsigned threshold)
{
    const TxJournal &j = *r.journal;
    unsigned run = 0, worst = 0;
    Cycle run_start = 0, worst_start = 0;
    for (std::size_t i = 0; i < j.size(); ++i) {
        const TxRecord &rec = j.at(i);
        if (rec.outcome == TxOutcome::Abort) {
            if (run == 0)
                run_start = rec.begin;
            if (++run > worst) {
                worst = run;
                worst_start = run_start;
            }
        } else {
            run = 0;
        }
    }
    if (worst < threshold)
        return;
    std::ostringstream os;
    os << worst << " consecutive aborted attempts without a commit, "
       << "starting at cycle " << worst_start
       << " (threshold " << threshold << ")";
    fail(out, "livelock", os.str(), /*fatal=*/false);
}

void
checkFinalState(
    std::vector<TraceViolation> &out, const RunResult &r,
    const std::map<std::string, std::vector<std::int64_t>> &ref)
{
    if (r.finalGlobals == ref)
        return;
    std::ostringstream os;
    os << "final global state diverges from the reference trace:";
    for (const auto &[name, words] : ref) {
        const auto it = r.finalGlobals.find(name);
        if (it == r.finalGlobals.end()) {
            os << " " << name << " missing;";
            continue;
        }
        for (std::size_t w = 0; w < words.size(); ++w) {
            if (w < it->second.size() && it->second[w] != words[w]) {
                os << " " << name << "[" << w << "]=" << it->second[w]
                   << " want " << words[w] << ";";
            }
        }
    }
    fail(out, "final-state", os.str());
}

} // namespace

std::vector<TraceViolation>
checkTrace(const MachineConfig &cfg, const RunResult &r,
           const TraceCheckOptions &opt)
{
    std::vector<TraceViolation> out;
    if (r.journal) {
        checkJournal(out, cfg, r);
        if (opt.livelockThreshold > 0)
            checkLivelock(out, r, opt.livelockThreshold);
    }
    if (cfg.hintOracle && !r.oracleWitnesses.empty()) {
        std::ostringstream os;
        os << r.oracleWitnesses.size()
           << " safe-hinted access(es) overlapped a remote write; first: "
           << r.oracleWitnesses.front();
        fail(out, "hint-oracle", os.str());
    }
    if (r.subscriptionViolations > 0) {
        std::ostringstream os;
        os << r.subscriptionViolations
           << " hardware commit(s) completed while another context "
              "held the fallback lock";
        fail(out, "subscription", os.str());
    }
    if (opt.referenceGlobals)
        checkFinalState(out, r, *opt.referenceGlobals);
    return out;
}

bool
anyFatal(const std::vector<TraceViolation> &v)
{
    for (const TraceViolation &tv : v) {
        if (tv.fatal)
            return true;
    }
    return false;
}

} // namespace sim
} // namespace hintm
