/**
 * @file
 * Per-trace invariant oracle for the schedule explorer: machine-checked
 * soundness and progress properties every explored interleaving must
 * satisfy, derived from state the simulator already maintains — the PR 5
 * TX journal, the PR 4 hint oracle and the HTM stat counters.
 *
 * Fatal violation classes:
 *  - journal-consistency: the journal's exact whole-run totals must
 *    reconcile with the HtmStats counters record by record (commits,
 *    per-reason aborts, fallback/converted commits, cycles lost);
 *  - hint-oracle: no safe-hinted access may overlap a remote write
 *    (MachineConfig::hintOracle runs only);
 *  - subscription: no hardware TX may commit while another context
 *    holds the fallback lock (mutual exclusion / lazy subscription);
 *  - final-state: a trace's final global memory must match the
 *    reference trace's (deterministic data-race-free workloads only).
 *
 * Non-fatal: bounded-livelock detection — a run of >= threshold
 * consecutive aborted attempts with no committing outcome anywhere in
 * between is reported as a convoy warning with its starting cycle.
 */

#ifndef HINTM_SIM_TRACE_CHECK_HH
#define HINTM_SIM_TRACE_CHECK_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace hintm
{
namespace sim
{

struct TraceViolation
{
    /** Violation class: "journal-consistency", "hint-oracle",
     * "subscription", "final-state" or "livelock". */
    std::string kind;
    std::string detail;
    /** Warnings (livelock) are reported but do not fail a trace. */
    bool fatal = true;
};

struct TraceCheckOptions
{
    /** Consecutive aborted attempts (no commit in between) that count
     * as a bounded livelock. 0 disables the scan. */
    unsigned livelockThreshold = 16;
    /** Reference final-global state to compare against (null = skip).
     * Only meaningful for workloads whose final memory is
     * schedule-independent. */
    const std::map<std::string, std::vector<std::int64_t>>
        *referenceGlobals = nullptr;
};

/** Check one finished trace; empty result = all invariants hold. */
std::vector<TraceViolation>
checkTrace(const MachineConfig &cfg, const RunResult &r,
           const TraceCheckOptions &opt = {});

/** True if any violation in @p v is fatal. */
bool anyFatal(const std::vector<TraceViolation> &v);

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_TRACE_CHECK_HH
