#include "schedule.hh"

#include <fstream>
#include <sstream>

namespace hintm
{
namespace sim
{

const char *
schedEventName(SchedEvent e)
{
    switch (e) {
      case SchedEvent::TxBegin:
        return "tx-begin";
      case SchedEvent::TxCommit:
        return "tx-commit";
      case SchedEvent::TxAbort:
        return "tx-abort";
      case SchedEvent::LockAcquire:
        return "lock-acquire";
      case SchedEvent::LockRelease:
        return "lock-release";
      case SchedEvent::LockSpin:
        return "lock-spin";
      case SchedEvent::Barrier:
        return "barrier";
    }
    return "?";
}

std::string
ScheduleController::describe() const
{
    return "custom controller (no trace)";
}

std::string
PlanScheduleController::describe() const
{
    std::ostringstream os;
    os << "plan [";
    for (std::size_t i = 0; i < plan_.size(); ++i)
        os << (i ? " " : "") << plan_[i];
    os << "], " << trace_.size() << " decisions";
    const std::size_t tail = trace_.size() > 8 ? trace_.size() - 8 : 0;
    for (std::size_t i = tail; i < trace_.size(); ++i) {
        const Seen &s = trace_[i];
        os << (i == tail ? ": ..." : "") << " #" << s.index << ":"
           << schedEventName(s.d.event) << "@ctx" << s.d.ctx;
    }
    return os.str();
}

bool
writeScheduleFile(const std::string &path, const ScheduleFile &s)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << "hintm-schedule v1\n";
    out << "workload " << s.workload << "\n";
    out << "config " << s.config << "\n";
    out << "seed " << s.seed << "\n";
    out << "decisions " << s.decisions << "\n";
    for (std::uint32_t i : s.preemptAt)
        out << "preempt " << i << "\n";
    out << "end\n";
    return bool(out.flush());
}

bool
readScheduleFile(const std::string &path, ScheduleFile &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != "hintm-schedule v1")
        return false;
    out = ScheduleFile{};
    bool ended = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "workload") {
            ls >> out.workload;
        } else if (key == "config") {
            // The label may contain spaces: everything after the key.
            std::getline(ls, out.config);
            if (!out.config.empty() && out.config.front() == ' ')
                out.config.erase(0, 1);
        } else if (key == "seed") {
            ls >> out.seed;
        } else if (key == "decisions") {
            ls >> out.decisions;
        } else if (key == "preempt") {
            std::uint32_t idx = 0;
            if (!(ls >> idx))
                return false;
            out.preemptAt.push_back(idx);
        } else if (key == "end") {
            ended = true;
            break;
        } else {
            return false;
        }
    }
    return ended;
}

} // namespace sim
} // namespace hintm
