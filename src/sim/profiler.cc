#include "profiler.hh"

#include "common/logging.hh"

namespace hintm
{
namespace sim
{

void
SharingProfiler::record(ThreadId tid, Addr addr, AccessType type,
                        bool in_tx)
{
    HINTM_ASSERT(tid >= 0 && tid < 32, "profiler supports tids < 32");
    const std::uint32_t bit = std::uint32_t(1) << tid;
    const bool is_read = type == AccessType::Read;

    auto touch = [&](std::unordered_map<Addr, Region> &map, Addr key) {
        Region &r = map[key];
        if (is_read)
            r.readers |= bit;
        else
            r.writers |= bit;
        if (in_tx && is_read)
            ++r.txReads;
    };
    touch(blocks_, blockNumber(addr));
    touch(pages_, pageNumber(addr));
    if (in_tx && is_read)
        ++txReads_;
}

SharingSummary
SharingProfiler::fold(const std::unordered_map<Addr, Region> &map,
                      std::uint64_t reads)
{
    SharingSummary s;
    s.totalRegions = map.size();
    s.txReads = reads;
    for (const auto &kv : map) {
        if (regionSafe(kv.second)) {
            ++s.safeRegions;
            s.txReadsToSafe += kv.second.txReads;
        }
    }
    return s;
}

SharingSummary
SharingProfiler::blockSummary() const
{
    return fold(blocks_, txReads_);
}

SharingSummary
SharingProfiler::pageSummary() const
{
    return fold(pages_, txReads_);
}

} // namespace sim
} // namespace hintm
