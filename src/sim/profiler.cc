#include "profiler.hh"

#include "common/logging.hh"

namespace hintm
{
namespace sim
{

void
SharingProfiler::record(ThreadId tid, Addr addr, AccessType type,
                        bool in_tx)
{
    HINTM_ASSERT(tid >= 0, "profiler needs a real thread id");
    // Saturate instead of shifting past the mask width: every tid
    // beyond the tracked range sets no bit and poisons the region's
    // classification to "unknown" instead.
    const bool overflow = tid > maxTrackedTid;
    if (overflow) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("SharingProfiler: thread ", tid, " exceeds the ",
                 maxTrackedTid + 1,
                 "-thread bitmask range; affected regions are counted "
                 "as unknown (unsafe)");
        }
    }
    const std::uint64_t bit =
        overflow ? 0 : std::uint64_t(1) << unsigned(tid);
    const bool is_read = type == AccessType::Read;

    auto touch = [&](std::unordered_map<Addr, Region> &map, Addr key) {
        Region &r = map[key];
        if (is_read)
            r.readers |= bit;
        else
            r.writers |= bit;
        if (overflow)
            r.unknown = true;
        if (in_tx && is_read)
            ++r.txReads;
    };
    touch(blocks_, blockNumber(addr));
    touch(pages_, pageNumber(addr));
    if (in_tx && is_read)
        ++txReads_;
}

SharingSummary
SharingProfiler::fold(const std::unordered_map<Addr, Region> &map,
                      std::uint64_t reads)
{
    SharingSummary s;
    s.totalRegions = map.size();
    s.txReads = reads;
    for (const auto &kv : map) {
        if (kv.second.unknown)
            ++s.unknownRegions;
        if (regionSafe(kv.second)) {
            ++s.safeRegions;
            s.txReadsToSafe += kv.second.txReads;
        }
    }
    return s;
}

SharingSummary
SharingProfiler::blockSummary() const
{
    return fold(blocks_, txReads_);
}

SharingSummary
SharingProfiler::pageSummary() const
{
    return fold(pages_, txReads_);
}

} // namespace sim
} // namespace hintm
