/**
 * @file
 * Exporters over the per-TX journal: Perfetto/Chrome-trace JSON
 * timelines (one track per hardware context), a machine-readable stats
 * record (supersedes parsing RunResult::rawStats), the capacity-pressure
 * metrics section and Perfetto counter tracks for metrics-carrying runs,
 * and the per-site abort-attribution table used by hintm_profile. Pure
 * output formatting: nothing here mutates the journal or the simulation.
 */

#ifndef HINTM_SIM_JOURNAL_IO_HH
#define HINTM_SIM_JOURNAL_IO_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace hintm
{
namespace sim
{

/** One run to export, with the labels the JSON consumers key on. */
struct JournalRun
{
    std::string workload;
    std::string config;
    unsigned threads = 0;
    /** Must outlive the export call. Runs without a journal are skipped
     * by the Perfetto exporter and get "journal": null in stats JSON. */
    const RunResult *result = nullptr;
};

/**
 * Write a Chrome-trace/Perfetto JSON timeline ({"traceEvents": [...]})
 * covering every run: one process per run (named after the run), one
 * track per hardware context, one complete ("X") event per retained
 * journal record, and — for runs that also carried metrics — counter
 * ("C") tracks with each context's tracked footprint at TX close and
 * the per-window fallback-lock occupancy. Cycles are exported as
 * microseconds (1 cycle = 1 µs) so timelines are readable in
 * ui.perfetto.dev without a clock config.
 */
void writePerfettoTrace(std::ostream &os,
                        const std::vector<JournalRun> &runs);

/** File convenience wrapper; warns and returns false on I/O failure. */
bool writePerfettoTrace(const std::string &path,
                        const std::vector<JournalRun> &runs);

/**
 * One machine-readable JSON object for a run: simulation results (HTM
 * stats keyed by abort-reason name, access mix, pages) plus — when the
 * run carried a journal — exact journal aggregates, the per-site
 * attribution list with hottest offending blocks, and the interval time
 * series folded at @p window cycles (0 = a default derived from the
 * run length). Runs carrying capacity-pressure metrics additionally get
 * a "metrics" section (growth curves, overflow-set occupancy, per-site
 * hint effectiveness, fallback/sharer/NUMA telemetry); others get
 * "metrics": null.
 */
std::string statsJsonRecord(const JournalRun &run, Cycle window = 0);

/** Write a JSON array of statsJsonRecord objects, one per run. */
void writeStatsJson(std::ostream &os,
                    const std::vector<JournalRun> &runs,
                    Cycle window = 0);

/** File convenience wrapper; warns and returns false on I/O failure. */
bool writeStatsJson(const std::string &path,
                    const std::vector<JournalRun> &runs,
                    Cycle window = 0);

/**
 * The per-site abort-attribution table: top @p top_n sites by cycles
 * lost to aborts (the cost-ranked view), with the per-reason breakdown
 * and the hottest offending block addresses recorded at abort time.
 * Sites whose hot-block list saturated are marked "(sat)".
 */
std::string renderAttributionTable(const TxJournal &journal,
                                   std::size_t top_n = 10);

/** Interval time series rendered as a text table (@p window as above). */
std::string renderIntervalTable(const TxJournal &journal,
                                Cycle run_cycles, Cycle window = 0);

/** ~50 windows over the run, rounded to a friendly power of ten. */
Cycle defaultIntervalWindow(Cycle run_cycles);

/** One-paragraph journal summary ("N attempts recorded, ..."). */
std::string journalSummary(const RunResult &r);

/** One-paragraph capacity-pressure summary ("N capacity aborts, ...");
 * "metrics: off" when the run carried no metrics. */
std::string metricsSummary(const RunResult &r);

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_JOURNAL_IO_HH
