/**
 * @file
 * Whole-run memory sharing profiler backing the paper's Fig. 1 metrics:
 * the fraction of memory regions (cache blocks / pages) with no
 * inter-thread read-write sharing, and the fraction of transactional
 * reads that target such safe regions.
 */

#ifndef HINTM_SIM_PROFILER_HH
#define HINTM_SIM_PROFILER_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace hintm
{
namespace sim
{

/** Fig. 1 summary at one granularity. */
struct SharingSummary
{
    std::uint64_t totalRegions = 0;
    std::uint64_t safeRegions = 0;
    std::uint64_t txReads = 0;
    std::uint64_t txReadsToSafe = 0;
    /** Regions touched by a thread beyond the 63 tracked bitmask slots:
     * their sharing pattern is unknown, so they are conservatively
     * counted unsafe (never inflates the safe fractions). */
    std::uint64_t unknownRegions = 0;

    double
    safeRegionFraction() const
    {
        return totalRegions ? double(safeRegions) / totalRegions : 0.0;
    }

    double
    safeTxReadFraction() const
    {
        return txReads ? double(txReadsToSafe) / txReads : 0.0;
    }
};

/**
 * Tracks per-region reader/writer thread sets over the full parallel
 * region. A region is safe when it has no read-write sharing: at most
 * one thread touches it, or several threads only read it.
 */
class SharingProfiler
{
  public:
    /** Thread ids beyond this saturate into the per-region "unknown"
     * flag: the 64-bit reader/writer bitmasks hold one bit per thread,
     * covering the full 64-context machine exactly. Overflow tids set
     * no mask bit — Region::unknown alone forces the region unsafe. */
    static constexpr ThreadId maxTrackedTid = 63;

    /** Record one access by @p tid; @p in_tx marks transactional reads.
     * Tids beyond maxTrackedTid mark the region unknown (counted
     * unsafe) instead of silently aliasing into another thread's bit. */
    void record(ThreadId tid, Addr addr, AccessType type, bool in_tx);

    /** Fold the run into Fig. 1 numbers at block granularity. */
    SharingSummary blockSummary() const;
    /** Fold the run into Fig. 1 numbers at page granularity. */
    SharingSummary pageSummary() const;

  private:
    struct Region
    {
        std::uint64_t readers = 0; ///< bitmask over thread ids (< 64)
        std::uint64_t writers = 0;
        std::uint64_t txReads = 0;
        /** Touched by a tid the bitmasks cannot represent. */
        bool unknown = false;
    };

    static bool
    regionSafe(const Region &r)
    {
        // A region touched by untrackable tids has an unknown sharing
        // pattern: conservatively unsafe.
        if (r.unknown)
            return false;
        const std::uint64_t all = r.readers | r.writers;
        // Single-thread regions and read-only shared regions are safe.
        return r.writers == 0 || (all & (all - 1)) == 0;
    }

    static SharingSummary
    fold(const std::unordered_map<Addr, Region> &map, std::uint64_t reads);

    std::unordered_map<Addr, Region> blocks_;
    std::unordered_map<Addr, Region> pages_;
    std::uint64_t txReads_ = 0;
};

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_PROFILER_HH
