/**
 * @file
 * Controllable scheduler nondeterminism. The machine's scheduler makes
 * two kinds of decisions this API exposes:
 *
 *  - tie-breaks: which eligible context to step when several share the
 *    minimal readyAt (the reference rule rotates round-robin from the
 *    rr cursor), and
 *
 *  - preemption points: after every transactional event (TX begin /
 *    commit / abort, fallback-lock acquire / release / spin, barrier
 *    release) the controller may deschedule the context that produced
 *    the event. A preempted context stays off the pick set until
 *    another context is preempted in its place or nothing else is
 *    runnable — a bounded-preemption move in the Landslide /
 *    iterative-context-bounding sense.
 *
 * A null controller (the default MachineConfig) leaves every hot path
 * untouched; DefaultScheduleController is test-locked bit-identical to
 * it. PlanScheduleController replays a sorted list of decision indices
 * to preempt — the compact on-disk schedule encoding — and records the
 * decision trace it saw, which is all the explorer needs to reproduce
 * any interleaving deterministically.
 */

#ifndef HINTM_SIM_SCHEDULE_HH
#define HINTM_SIM_SCHEDULE_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hintm
{
namespace sim
{

/** Transactional event classes that form preemption points. */
enum class SchedEvent : std::uint8_t
{
    TxBegin,
    TxCommit,
    TxAbort,
    LockAcquire,
    LockRelease,
    /** Spin re-check against a held fallback lock. Reported for trace
     * completeness; never worth branching on (the spinner re-arrives at
     * the same decision until the lock frees). */
    LockSpin,
    Barrier,
};

const char *schedEventName(SchedEvent e);

/** One preemption point, as the machine presents it to a controller. */
struct SchedDecision
{
    SchedEvent event = SchedEvent::TxBegin;
    /** Context that produced the event (the preemption candidate). */
    unsigned ctx = 0;
    Cycle cycle = 0;
    /** Verdict of the independence filter: false means every block this
     * context's TX touches is private to it right now (directory sharer
     * masks / remote read-write sets all disjoint), so reordering it
     * against its peers cannot change the outcome and a DPOR-style
     * explorer may skip branching here. */
    bool dependent = true;
};

/** The reference tie-break: first set bit of @p mask at or after
 * @p rr, wrapping — identical to the rotating scan's strict-< order. */
inline unsigned
defaultTieBreak(std::uint64_t mask, unsigned rr)
{
    const std::uint64_t hi = mask & ~((std::uint64_t(1) << rr) - 1);
    return unsigned(std::countr_zero(hi ? hi : mask));
}

/**
 * Scheduler decision hook. The machine consults it once per
 * equal-readyAt tie and once per transactional event; both callbacks
 * run at a quiescent boundary (the event's step has fully completed and
 * the scheduler state is republished), so SimRun::snapshot() is safe to
 * call from onDecision().
 */
class ScheduleController
{
  public:
    virtual ~ScheduleController() = default;

    /** Pick a context among the set bits of @p mask (all tied at the
     * minimal readyAt). Must return a set bit. */
    virtual unsigned
    chooseTie(std::uint64_t mask, unsigned rr)
    {
        return defaultTieBreak(mask, rr);
    }

    /** A preemption point. Return true to deschedule @p d.ctx. Only
     * called when at least one other context is live and not blocked,
     * so a preemption can never wedge the machine on its own. */
    virtual bool
    onDecision(const SchedDecision &d)
    {
        (void)d;
        return false;
    }

    /** One-line schedule provenance for crash/panic dumps: everything
     * needed to replay the interleaving that got here. */
    virtual std::string describe() const;
};

/** Explicit stand-in for "no controller"; behaviorally identical to a
 * null MachineConfig::scheduleController (test-locked). */
class DefaultScheduleController : public ScheduleController
{
};

/**
 * Replays a schedule plan — a sorted list of decision indices at which
 * to preempt — and records the decision trace. Decision indices count
 * onDecision() callbacks from 0 along the trace; because every decision
 * upstream of index i is replayed identically, (plan, seed, config)
 * pins the whole interleaving.
 */
class PlanScheduleController : public ScheduleController
{
  public:
    /** Indexed trace entry (the index the decision got). */
    struct Seen
    {
        SchedDecision d;
        std::uint32_t index = 0;
    };

    /** Arm the controller for one run: preempt at @p preempt_at
     * (ascending), with decision numbering starting at @p first_index
     * (non-zero when resuming a forked branch whose prefix was skipped
     * via snapshot restore). */
    void
    reset(std::vector<std::uint32_t> preempt_at,
          std::uint32_t first_index = 0)
    {
        plan_ = std::move(preempt_at);
        next_ = first_index;
        cursor_ = 0;
        while (cursor_ < plan_.size() && plan_[cursor_] < first_index)
            ++cursor_;
        trace_.clear();
    }

    bool
    onDecision(const SchedDecision &d) override
    {
        const std::uint32_t index = next_++;
        trace_.push_back({d, index});
        if (hook)
            hook(d, index);
        if (cursor_ < plan_.size() && plan_[cursor_] == index) {
            ++cursor_;
            return true;
        }
        return false;
    }

    std::string describe() const override;

    const std::vector<std::uint32_t> &plan() const { return plan_; }
    const std::vector<Seen> &trace() const { return trace_; }
    /** Index the next decision will get. */
    std::uint32_t nextIndex() const { return next_; }

    /** Explorer tap, invoked on every decision before the plan verdict
     * (branch-candidate collection and snapshot capture). */
    std::function<void(const SchedDecision &, std::uint32_t)> hook;

  private:
    std::vector<std::uint32_t> plan_;
    std::vector<Seen> trace_;
    std::uint32_t next_ = 0;
    std::size_t cursor_ = 0;
};

/**
 * On-disk schedule: enough to rebuild the exact interleaving with
 * PlanScheduleController on a machine built from the same workload,
 * config and seed (recorded here for cross-checking only).
 */
struct ScheduleFile
{
    std::string workload;
    std::string config;
    std::uint64_t seed = 1;
    /** Decision count of the recorded trace (provenance). */
    std::uint32_t decisions = 0;
    std::vector<std::uint32_t> preemptAt;
};

/** Write @p s to @p path; false on I/O failure. */
bool writeScheduleFile(const std::string &path, const ScheduleFile &s);

/** Parse @p path into @p out; false on I/O or format errors. */
bool readScheduleFile(const std::string &path, ScheduleFile &out);

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_SCHEDULE_HH
