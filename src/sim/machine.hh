/**
 * @file
 * The simulated machine: an SMP of in-order hardware thread contexts
 * interpreting a TxIR program against the MESI memory hierarchy, the
 * HinTM virtual-memory subsystem and per-context HTM controllers.
 * Implements the transactional runtime — begin/retry/fallback policy,
 * global fallback lock with readset subscription, barriers — and collects
 * every statistic the paper's figures need.
 */

#ifndef HINTM_SIM_MACHINE_HH
#define HINTM_SIM_MACHINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "htm/controller.hh"
#include "mem/mem_system.hh"
#include "sim/profiler.hh"
#include "tir/ir.hh"
#include "vm/vm.hh"

namespace hintm
{
namespace sim
{

class ScheduleController;

/** Everything needed to instantiate a machine (Table II defaults). */
struct MachineConfig
{
    unsigned numCores = 8;
    unsigned smtPerCore = 1;

    mem::MemConfig mem;
    vm::VmConfig vm;
    htm::HtmConfig htm;

    /** Consume compiler safety hints (HinTM-st). */
    bool staticHints = false;
    /** Consume dynamic page-classification hints (HinTM-dyn). */
    bool dynamicHints = false;
    /** Consume Notary-style programmer page annotations even without
     * the dynamic mechanism (annotations are also honored whenever
     * dynamicHints is on). */
    bool annotationHints = false;

    /** Transient-abort retries before taking the fallback lock. */
    unsigned maxRetries = 8;
    /** Linear backoff per retry after a transient abort. */
    Cycle backoffCycles = 64;
    /** Spin re-check interval while the fallback lock is held. */
    Cycle fallbackSpinCycles = 64;
    /** Cycles charged per non-memory instruction (x100: 100 = CPI 1). */
    unsigned nonMemCyclesX100 = 100;

    std::uint64_t seed = 1;

    /** Record the three per-TX footprint CDFs of Fig. 6. */
    bool collectTxSizes = false;
    /** Record Fig. 1 sharing metrics (adds per-access overhead). */
    bool profileSharing = false;
    /** Check the initializing property of safe stores across aborts. */
    bool validateSafeStores = false;
    /** Build RunResult::rawStats (the gem5-style text dump). Off by
     * default: stringifying every counter costs time most callers
     * (benchmarks, tests) never look at. */
    bool collectRawStats = false;
    /** Run threads on the pre-decoded fused op stream (interpreter fast
     * path); false selects the reference Instr-walking interpreter. */
    bool decodeCache = true;
    /** Pick runnable contexts through the event-driven scheduler index
     * (bitmask + min-heap pick with batched stepping); false selects
     * the reference O(contexts) rotating scan. Behavior-preserving:
     * the step sequence and results are bit-identical either way.
     * Machines with more than 64 contexts always use the scan. */
    bool schedIndex = true;
    /** Shadow-track safe-hinted accesses and report any that overlap a
     * remote write (dynamic hint-soundness oracle). Observation only:
     * simulation results are bit-identical with or without it. */
    bool hintOracle = false;
    /** Record every TX attempt in RunResult::journal (per-site abort
     * attribution, interval time series, Perfetto export). Observation
     * only: simulation results are bit-identical with or without it. */
    bool journal = false;
    /** TX-journal ring capacity in records; older records are dropped
     * (and counted) past this bound, aggregates stay exact. */
    std::size_t journalCapacity = 1u << 16;
    /** Fold capacity-pressure metrics into RunResult::metrics
     * (read/write-set growth, overflowing-set occupancy, per-site hint
     * effectiveness, fallback timeline, sharer histogram, NUMA
     * traffic). Observation only: simulation results are bit-identical
     * with or without it. */
    bool metrics = false;
    /** Scheduler nondeterminism hook (schedule.hh): tie-breaks and
     * TX-event preemption points route through it. Null (the default)
     * leaves every scheduler hot path untouched; the machine does not
     * own the object. Requires <= 64 contexts. */
    ScheduleController *scheduleController = nullptr;
    /** Seeded bug for the schedule explorer: hardware TXs skip the
     * fallback-lock readset subscription and fallback acquirers skip
     * the eager abort broadcast — the unsafe lazy-subscription hazard
     * of Dice et al. A TX that commits while another context holds the
     * lock is counted in RunResult::subscriptionViolations. */
    bool unsafeLazySubscription = false;
};

/** Everything a run produces. */
struct RunResult
{
    /** Makespan of the measured parallel region. */
    Cycle cycles = 0;
    std::uint64_t instructions = 0;

    htm::HtmStats htm;

    // Fig. 5 access breakdown (accesses inside TX regions).
    std::uint64_t txReadsStaticSafe = 0;
    std::uint64_t txReadsDynSafe = 0;
    std::uint64_t txReadsAnnotated = 0;
    std::uint64_t txWritesStaticSafe = 0;
    std::uint64_t txReadsUnsafe = 0;
    std::uint64_t txWritesUnsafe = 0;
    /** Accesses inside suspend/resume escape windows (untracked). */
    std::uint64_t txAccessesSuspended = 0;

    /** All cycles burnt on page-mode transitions: shootdown initiator +
     * slaves + TX work lost to page-mode aborts. */
    std::uint64_t pageModeOverheadCycles = 0;
    std::uint64_t fallbackRuns = 0;
    std::uint64_t committedTxs = 0;

    std::uint64_t safePages = 0;
    std::uint64_t totalPages = 0;

    // Fig. 6 CDFs (collectTxSizes only): committed-TX footprint in
    // blocks, as tracked by baseline / HinTM-st / HinTM.
    stats::Distribution txSizeAll{1, 513};
    stats::Distribution txSizeNoStatic{1, 513};
    stats::Distribution txSizeUnsafe{1, 513};

    // Fig. 1 metrics (profileSharing only).
    SharingSummary blockSharing;
    SharingSummary pageSharing;

    /** Final architectural value of every global word, for correctness
     * checks (key = global name). */
    std::map<std::string, std::vector<std::int64_t>> finalGlobals;

    /** Raw "group.name value" dump of the memory-system and VM stat
     * groups (cache hits/misses, writebacks, TLB activity, faults,
     * shootdowns), gem5-stats style. Only populated when
     * MachineConfig::collectRawStats is set. */
    std::string rawStats;

    // Hint-oracle results (MachineConfig::hintOracle only).
    /** Rendered oracle witnesses; empty means every checked safe access
     * was conflict-free. */
    std::vector<std::string> oracleWitnesses;
    /** Safe-hinted in-TX accesses the oracle validated. */
    std::uint64_t oracleSafeChecked = 0;
    /** Controller-side count of accesses that skipped HTM tracking. */
    std::uint64_t oracleSafeSkips = 0;

    /** Hardware commits that completed while another context held the
     * fallback lock — mutual-exclusion breaches. Structurally zero with
     * eager lock subscription; non-zero only under the seeded
     * MachineConfig::unsafeLazySubscription bug. */
    std::uint64_t subscriptionViolations = 0;

    /** Per-TX event journal (MachineConfig::journal only): every TX
     * attempt with site, outcome, abort attribution and footprint.
     * Shared because RunResults are cached and copied by value. */
    std::shared_ptr<const TxJournal> journal;

    /** Capacity-pressure metrics registry (MachineConfig::metrics
     * only). Shared for the same caching reason as the journal. */
    std::shared_ptr<const MetricsRegistry> metrics;

    std::uint64_t
    txAccessesTotal() const
    {
        return txReadsStaticSafe + txReadsDynSafe + txReadsAnnotated +
               txWritesStaticSafe + txReadsUnsafe + txWritesUnsafe;
    }
};

/**
 * Run @p module (already safety-annotated if static hints are on) on a
 * machine built from @p cfg with @p num_threads worker threads.
 *
 * The init function executes functionally (zero simulated time); the
 * measured region spans thread start to the last thread's completion.
 */
RunResult runMachine(const MachineConfig &cfg, const tir::Module &module,
                     unsigned num_threads);

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_MACHINE_HH
