#include "machine.hh"

#include <algorithm>
#include <bit>
#include <sstream>
#include <limits>
#include <memory>
#include <vector>

#include "common/flat_set.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "htm/hint_oracle.hh"
#include "mem/directory.hh"
#include "sim/sched_index.hh"
#include "sim/schedule.hh"
#include "sim/snapshot.hh"
#include "tir/interp.hh"
#include "tir/verifier.hh"

namespace hintm
{
namespace sim
{

namespace
{

/** The software fallback lock lives below the globals region. */
constexpr Addr fallbackLockAddr = 0xF000;

static_assert(htm::numAbortReasons <= TxJournal::maxReasons,
              "journal reason array too small for the abort taxonomy");

constexpr Cycle farFuture = std::numeric_limits<Cycle>::max();

/** Per-hardware-context runtime state. */
struct ContextState
{
    std::unique_ptr<tir::ThreadInterp> interp;
    std::unique_ptr<htm::HtmController> htm;
    Cycle readyAt = 0;
    Cycle finishedAt = 0;
    bool done = false;
    bool atBarrier = false;
    unsigned retries = 0;
    bool mustFallback = false;
    bool inFallback = false;
    // Fig. 6 footprints of the in-flight TX, in blocks. Open-addressing
    // sets: one insert per tracked access makes these hot.
    AddrSet fpAll, fpNoStatic, fpUnsafe;
    // Journal record of the in-flight TX attempt (journaling only).
    TxRecord rec;
    bool recOpen = false;
    bool recConverted = false;
    // Capacity-metrics measurement of the in-flight TX (metrics only).
    TxMetricsCtx mtx;
    /** Descheduled by the ScheduleController: off the pick set until
     * another context is preempted in its place or nothing else is
     * runnable. Never true without a controller; deliberately outside
     * MachineSnapshot (a forked branch re-applies its preemption after
     * restore, which is exactly what a from-scratch replay does at the
     * same decision, so the two stay bit-identical). */
    bool preempted = false;
    /** Block footprints feeding the explorer's independence filter
     * (controller runs only): the in-flight hardware TX's blocks and
     * the previous attempt's, so a TxBegin decision can be judged by
     * what the context is about to touch. */
    AddrSet ctlFpCur, ctlFpLast;
};

class Machine
{
  public:
    Machine(const MachineConfig &cfg, const tir::Module &module,
            unsigned num_threads, const MachinePrefix *prefix = nullptr)
        : cfg_(cfg),
          prog_(module, num_threads, cfg.seed, cfg.decodeCache),
          moduleTag_(&module),
          ctrl_(cfg.scheduleController)
    {
        HINTM_ASSERT(!ctrl_ || num_threads <= 64,
                     "schedule controller requires <= 64 contexts");
        if (auto err = tir::verify(module))
            HINTM_FATAL("module fails verification: ", *err);
        HINTM_ASSERT(module.threadFunc >= 0, "module has no threadFunc");
        HINTM_ASSERT(num_threads >= 1 &&
                         num_threads <= cfg.numCores * cfg.smtPerCore,
                     "thread count exceeds hardware contexts");
        if (cfg.dynamicHints) {
            HINTM_ASSERT(cfg.vm.dynamicClassification,
                         "dynamicHints requires vm.dynamicClassification");
        }
        prog_.validateSafeStores = cfg.validateSafeStores;
        trace::enableFromEnvironment();

        mem_ = std::make_unique<mem::MemorySystem>(cfg.mem, cfg.numCores);
        vm_ = std::make_unique<vm::Vm>(cfg.vm);

        if (cfg.journal) {
            journal_ = std::make_shared<TxJournal>(cfg.journalCapacity);
            std::vector<std::string> names;
            names.reserve(module.functions.size());
            for (const tir::Function &f : module.functions)
                names.push_back(f.name);
            journal_->setFunctionNames(std::move(names));
        }

        if (cfg.metrics) {
            metrics_ = std::make_shared<MetricsRegistry>();
            std::vector<std::string> names;
            names.reserve(module.functions.size());
            for (const tir::Function &f : module.functions)
                names.push_back(f.name);
            metrics_->setFunctionNames(std::move(names));
            mem_->setMetricsSink(metrics_.get());
        }

        if (cfg.hintOracle) {
            oracle_ = std::make_unique<htm::HintOracle>();
            mem_->setAccessObserver(oracle_.get());
            // Free clears shadow state: reuse of a heap address is
            // ordered through the allocator, not a race.
            prog_.allocator().onRelease =
                [o = oracle_.get()](Addr p, std::uint64_t bytes) {
                    o->onFree(p, bytes);
                };
        }

        if (prefix) {
            // Forked start: install the captured init-phase state
            // instead of re-running init. The replayed annotations
            // rebuild the page table exactly as the init phase would
            // (no TLB exists yet in either ordering).
            HINTM_ASSERT(prefix->moduleTag == moduleTag_ &&
                             prefix->numThreads == num_threads &&
                             prefix->seed == cfg.seed &&
                             prefix->validateSafeStores ==
                                 cfg.validateSafeStores,
                         "machine prefix does not match this config");
            prog_.loadState(prefix->program);
            for (const auto &[base, len] : prefix->annotations)
                vm_->annotateRange(base, len);
            initAnnotations_ = prefix->annotations;
        } else {
            runInitPhase(module);
        }
        for (unsigned t = 0; t < num_threads; ++t) {
            const int mem_ctx = mem_->addContext(t % cfg.numCores);
            const int vm_ctx = vm_->addContext();
            HINTM_ASSERT(mem_ctx == int(t) && vm_ctx == int(t),
                         "context id skew");
            ContextState cs;
            cs.interp = std::make_unique<tir::ThreadInterp>(
                prog_, ThreadId(t), module.threadFunc,
                std::vector<std::int64_t>{std::int64_t(t)});
            cs.htm = std::make_unique<htm::HtmController>(
                cfg.htm, mem::ContextId(t), &res_.htm);
            tir::ThreadInterp *ip = cs.interp.get();
            cs.htm->setUndoHook([ip] { ip->undoStores(); });
            cs.htm->setHintOracle(oracle_.get());
            mem_->setListener(mem::ContextId(t), cs.htm.get());
            // Interest gating: the memory system only delivers coherence
            // events to this context while its controller is in a live TX.
            cs.htm->setInterestHook(
                [mem = mem_.get(), t](bool interested) {
                    mem->setListenerInterest(mem::ContextId(t),
                                             interested);
                });
            ctxs_.push_back(std::move(cs));
        }
        if (mem::Directory *dir = mem_->directory()) {
            // Directory mode: controllers register their tracked blocks
            // so bus events reach only contexts that can act on them.
            // Attached after every context exists — the directory is
            // only live once the final machine size is known.
            for (unsigned t = 0; t < num_threads; ++t) {
                ctxs_[t].htm->attachDirectory(dir);
                mem_->setListenerTxFiltered(mem::ContextId(t), true);
            }
        }
        useSchedIndex_ =
            cfg.schedIndex && ctxs_.size() <= SchedIndex::maxContexts;
        if (useSchedIndex_) {
            rebuildSchedIndex();
            // Wake events: a controller signalling an abort into a
            // running TX invalidates any batched scheduling decision
            // (the victim's retry timing is about to change), so the
            // machine stops polling and lets the controllers publish.
            for (ContextState &cs : ctxs_)
                cs.htm->setWakeHook([this] { schedDirty_ = true; });
        }
        if (cfg.htm.kind == htm::HtmKind::L1TM) {
            // Transactional lines are sticky in L1TM: the replacement
            // policy evicts them only when a set holds nothing else.
            // Each L1's checker scans just its own SMT siblings.
            std::vector<std::vector<unsigned>> by_l1(cfg.numCores);
            for (unsigned t = 0; t < num_threads; ++t)
                by_l1[t % cfg.numCores].push_back(t);
            for (unsigned l1 = 0; l1 < cfg.numCores; ++l1) {
                mem_->setPinChecker(
                    l1, [this, siblings = std::move(by_l1[l1])](Addr block) {
                        for (unsigned t : siblings) {
                            const htm::HtmController &h = *ctxs_[t].htm;
                            if (h.inTx() && (h.readsBlock(block) ||
                                             h.writesBlock(block)))
                                return true;
                        }
                        return false;
                    });
            }
        }
    }

    /**
     * One scheduler iteration: pick the earliest-ready live context and
     * step it. @return false when every context is done.
     */
    bool
    stepOnce()
    {
        const unsigned n = unsigned(ctxs_.size());
        int best = -1;
        Cycle best_t = farFuture;
        unsigned live = 0;
        // Rotate the scan starting point round-robin. The wrap is a
        // compare, not a modulo — this loop runs once per context
        // per simulated step. Scan order (and so tie-breaking on
        // equal readyAt) is unchanged.
        unsigned c = rr_;
        for (unsigned i = 0; i < n; ++i) {
            const ContextState &cs = ctxs_[c];
            if (!cs.done) {
                ++live;
                if (!cs.atBarrier && cs.readyAt < best_t) {
                    best_t = cs.readyAt;
                    best = int(c);
                }
            }
            if (++c == n)
                c = 0;
        }
        if (live == 0)
            return false;
        if (best < 0)
            deadlockPanic();
        now_ = std::max(now_, best_t);
        step(unsigned(best), now_);
        rr_ = unsigned(best) + 1 == n ? 0 : unsigned(best) + 1;
        return true;
    }

    /**
     * Drive the machine until every context is done or at least
     * @p commit_target TXs have committed — exactly equivalent to
     * `while (committedTxs() < target && stepOnce()) {}`. The indexed
     * path picks through the event-driven index and keeps stepping the
     * picked context while it provably remains the unique earliest
     * (its readyAt strictly below every other eligible context's lower
     * bound and no cross-context mutation observed), touching the heap
     * once per batch instead of once per step.
     */
    void
    runLoop(std::uint64_t commit_target)
    {
        if (ctrl_) {
            runControlled(commit_target);
            return;
        }
        if (!useSchedIndex_) {
            while (res_.committedTxs < commit_target && stepOnce()) {
            }
            return;
        }
        const unsigned n = unsigned(ctxs_.size());
        while (res_.committedTxs < commit_target && sched_.anyLive()) {
            const SchedIndex::Pick p = sched_.pick(rr_);
            if (p.winner < 0)
                deadlockPanic();
            const unsigned w = unsigned(p.winner);
            ContextState &cs = ctxs_[w];
            now_ = std::max(now_, p.key);
            schedDirty_ = false;
            step(w, now_);
            rr_ = w + 1 == n ? 0 : w + 1;
            while (!schedDirty_ && !cs.done && !cs.atBarrier &&
                   cs.readyAt < p.bound &&
                   res_.committedTxs < commit_target) {
                now_ = std::max(now_, cs.readyAt);
                step(w, now_);
            }
            // Close the batch: republish w's scheduler state (its heap
            // entries at the picked key were consumed by pick()).
            if (cs.done)
                sched_.retire(w);
            else if (cs.atBarrier)
                sched_.block(w, cs.readyAt);
            else
                sched_.setReady(w, cs.readyAt);
        }
    }

    /**
     * Controller-driven scheduler loop: one pick per step (no batching
     * — a preemption decision may follow any step), tie-breaks through
     * ScheduleController::chooseTie, and a decision point offered after
     * every transactional event. With the default tie-break and no
     * preemptions this produces exactly the reference step sequence
     * (test-locked against the controller-free paths).
     */
    void
    runControlled(std::uint64_t commit_target)
    {
        const unsigned n = unsigned(ctxs_.size());
        while (res_.committedTxs < commit_target) {
            int w = -1;
            Cycle key = 0;
            if (useSchedIndex_) {
                if (!sched_.anyLive())
                    break;
                const SchedIndex::Pick p = sched_.pick(
                    rr_, [this](std::uint64_t mask, unsigned r) {
                        return ctrl_->chooseTie(mask, r);
                    });
                if (p.winner < 0) {
                    // Everything else is blocked: hand the machine
                    // back to the preempted context.
                    if (releasePreempted())
                        continue;
                    deadlockPanic();
                }
                w = p.winner;
                key = p.key;
            } else {
                Cycle best_t = farFuture;
                std::uint64_t tie = 0;
                unsigned live = 0;
                for (unsigned c = 0; c < n; ++c) {
                    const ContextState &cs = ctxs_[c];
                    if (cs.done)
                        continue;
                    ++live;
                    if (cs.atBarrier || cs.preempted)
                        continue;
                    const std::uint64_t bit = std::uint64_t(1) << c;
                    if (cs.readyAt < best_t) {
                        best_t = cs.readyAt;
                        tie = bit;
                    } else if (cs.readyAt == best_t) {
                        tie |= bit;
                    }
                }
                if (live == 0)
                    break;
                if (tie == 0) {
                    if (releasePreempted())
                        continue;
                    deadlockPanic();
                }
                w = int(ctrl_->chooseTie(tie, rr_));
                HINTM_ASSERT(w >= 0 && w < int(n) && (tie >> w & 1),
                             "tie-break chose an ineligible context");
                key = best_t;
            }
            ContextState &cs = ctxs_[unsigned(w)];
            now_ = std::max(now_, key);
            pendingEv_ = -1;
            step(unsigned(w), now_);
            rr_ = unsigned(w) + 1 == n ? 0 : unsigned(w) + 1;
            if (useSchedIndex_) {
                if (cs.done)
                    sched_.retire(unsigned(w));
                else if (cs.atBarrier || cs.preempted)
                    sched_.block(unsigned(w), cs.readyAt);
                else
                    sched_.setReady(unsigned(w), cs.readyAt);
            }
            if (pendingEv_ >= 0)
                decisionPoint(unsigned(w), SchedEvent(pendingEv_));
        }
    }

    /** Deschedule @p c until another context is preempted in its place
     * or nothing else is runnable (at most one context is preempted at
     * a time). Also the explorer's branch move after a fork restore. */
    void
    preemptContext(unsigned c)
    {
        bool changed = releasePreemptedFlags();
        ContextState &cs = ctxs_[c];
        if (!cs.done && !cs.atBarrier && !cs.preempted) {
            cs.preempted = true;
            changed = true;
        }
        if (changed && useSchedIndex_)
            rebuildSchedIndex();
    }

    Cycle nowCycle() const { return now_; }

    RunResult
    run()
    {
        runLoop(std::numeric_limits<std::uint64_t>::max());
        return finishRun();
    }

    RunResult
    finishRun()
    {
        HINTM_ASSERT(!finalized_, "machine finalized twice");
        finalized_ = true;
        for (const ContextState &cs : ctxs_) {
            res_.cycles = std::max(res_.cycles, cs.finishedAt);
            res_.instructions += cs.interp->instrCount();
        }
        res_.safePages = vm_->pageTable().countPages(true);
        res_.totalPages = vm_->pageTable().totalPages();
        res_.pageModeOverheadCycles =
            shootdownCycles_ +
            res_.htm.cyclesLost[unsigned(htm::AbortReason::PageMode)];
        if (cfg_.profileSharing) {
            res_.blockSharing = profiler_.blockSummary();
            res_.pageSharing = profiler_.pageSummary();
        }
        if (oracle_) {
            res_.oracleSafeChecked = oracle_->safeAccessesChecked();
            res_.oracleSafeSkips = oracle_->safeSkips();
            for (const htm::HintOracle::Witness &w : oracle_->witnesses())
                res_.oracleWitnesses.push_back(
                    htm::HintOracle::describe(w, prog_.module()));
        }
        if (journal_) {
            trace::event(trace::Category::Journal, res_.cycles,
                         "TX journal flush: ", journal_->pushed(),
                         " attempts recorded, ", journal_->dropped(),
                         " dropped (ring capacity ",
                         journal_->capacity(), ")");
            res_.journal = journal_;
        }
        if (metrics_)
            res_.metrics = metrics_;
        if (cfg_.collectRawStats) {
            std::ostringstream os;
            mem_->statGroup().dump(os);
            vm_->statGroup().dump(os);
            res_.rawStats = os.str();
        }
        for (const tir::Global &g : prog_.module().globals) {
            std::vector<std::int64_t> words;
            for (Addr off = 0; off < g.sizeBytes; off += 8)
                words.push_back(prog_.space().read(g.addr + off));
            res_.finalGlobals.emplace(g.name, std::move(words));
        }
        return res_;
    }

    std::uint64_t committedTxs() const { return res_.committedTxs; }

    bool
    finished() const
    {
        for (const ContextState &cs : ctxs_) {
            if (!cs.done)
                return false;
        }
        return true;
    }

    /** Capture the init-phase fork point (valid straight after
     * construction, before any stepOnce). */
    MachinePrefix
    capturePrefix() const
    {
        MachinePrefix p;
        p.program = prog_.saveState();
        p.annotations = initAnnotations_;
        p.numThreads = unsigned(ctxs_.size());
        p.seed = cfg_.seed;
        p.validateSafeStores = cfg_.validateSafeStores;
        p.moduleTag = moduleTag_;
        return p;
    }

    MachineSnapshot
    snapshot() const
    {
        // The oracle's shadow tracker is deliberately outside the
        // snapshot scope: it is observation-only and config-gated.
        HINTM_ASSERT(!cfg_.hintOracle,
                     "snapshot of a hint-oracle machine is unsupported");
        HINTM_ASSERT(!finalized_, "snapshot after finalization");
        MachineSnapshot s;
        s.program = prog_.saveState();
        s.mem = mem_->saveState();
        s.vm = vm_->saveState();
        s.ctxs.reserve(ctxs_.size());
        for (const ContextState &cs : ctxs_) {
            MachineContextSnapshot c;
            c.interp = cs.interp->saveState();
            c.htm = cs.htm->saveState();
            c.readyAt = cs.readyAt;
            c.finishedAt = cs.finishedAt;
            c.done = cs.done;
            c.atBarrier = cs.atBarrier;
            c.retries = cs.retries;
            c.mustFallback = cs.mustFallback;
            c.inFallback = cs.inFallback;
            c.fpAll = cs.fpAll;
            c.fpNoStatic = cs.fpNoStatic;
            c.fpUnsafe = cs.fpUnsafe;
            c.rec = cs.rec;
            c.recOpen = cs.recOpen;
            c.recConverted = cs.recConverted;
            c.mtx = cs.mtx;
            s.ctxs.push_back(std::move(c));
        }
        s.lockHolder = lockHolder_;
        s.shootdownCycles = shootdownCycles_;
        s.profiler = profiler_;
        s.partial = res_;
        s.partial.journal.reset();
        s.partial.metrics.reset();
        if (journal_) {
            s.journal = *journal_;
            s.hasJournal = true;
        }
        if (metrics_) {
            s.metrics = *metrics_;
            s.hasMetrics = true;
        }
        s.now = now_;
        s.rr = rr_;
        s.numThreads = unsigned(ctxs_.size());
        s.moduleTag = moduleTag_;
        return s;
    }

    void
    restore(const MachineSnapshot &s)
    {
        HINTM_ASSERT(!cfg_.hintOracle,
                     "restore into a hint-oracle machine is unsupported");
        HINTM_ASSERT(s.moduleTag == moduleTag_ &&
                         s.numThreads == ctxs_.size(),
                     "snapshot does not match this machine");
        HINTM_ASSERT(s.hasJournal == bool(journal_),
                     "snapshot journal mode mismatch");
        HINTM_ASSERT(s.hasMetrics == bool(metrics_),
                     "snapshot metrics mode mismatch");
        // Restoring un-finalizes: the explorer reuses one machine for
        // many branches, finishing each before restoring the next.
        finalized_ = false;
        prog_.loadState(s.program);
        mem_->loadState(s.mem);
        vm_->loadState(s.vm);
        // Controllers after the memory system: their loadState
        // re-publishes listener interest into the restored mem state.
        for (std::size_t i = 0; i < ctxs_.size(); ++i) {
            ContextState &cs = ctxs_[i];
            const MachineContextSnapshot &c = s.ctxs[i];
            cs.interp->loadState(c.interp);
            cs.htm->loadState(c.htm);
            cs.readyAt = c.readyAt;
            cs.finishedAt = c.finishedAt;
            cs.done = c.done;
            cs.atBarrier = c.atBarrier;
            cs.retries = c.retries;
            cs.mustFallback = c.mustFallback;
            cs.inFallback = c.inFallback;
            cs.fpAll = c.fpAll;
            cs.fpNoStatic = c.fpNoStatic;
            cs.fpUnsafe = c.fpUnsafe;
            cs.rec = c.rec;
            cs.recOpen = c.recOpen;
            cs.recConverted = c.recConverted;
            cs.mtx = c.mtx;
            // Snapshots never carry preemption or filter state; a
            // forked branch re-applies its preemption after restore and
            // rebuilds footprints conservatively.
            cs.preempted = false;
            cs.ctlFpCur.clear();
            cs.ctlFpLast.clear();
        }
        lockHolder_ = s.lockHolder;
        shootdownCycles_ = s.shootdownCycles;
        profiler_ = s.profiler;
        res_ = s.partial;
        if (journal_)
            *journal_ = s.journal;
        if (metrics_)
            *metrics_ = s.metrics;
        now_ = s.now;
        rr_ = s.rr;
        if (useSchedIndex_)
            rebuildSchedIndex();
    }

  private:
    Cycle
    simpleCost(const tir::Step &st) const
    {
        return (st.simpleInstrs * cfg_.nonMemCyclesX100 + 99) / 100;
    }

    /** Execute the init function functionally (no simulated time). */
    void
    runInitPhase(const tir::Module &module)
    {
        if (module.initFunc < 0)
            return;
        tir::ThreadInterp init(prog_, prog_.initTid(), module.initFunc,
                               {});
        while (true) {
            const tir::Step st = init.next();
            switch (st.kind) {
              case tir::StepKind::Mem:
                init.completeMem();
                break;
              case tir::StepKind::TxBegin:
                init.enterTx(false);
                break;
              case tir::StepKind::TxEnd:
                init.completeTxEnd();
                break;
              case tir::StepKind::Barrier:
                HINTM_FATAL("barrier in init function");
              case tir::StepKind::Annotate:
                vm_->annotateRange(st.addr, st.annotateLen);
                initAnnotations_.emplace_back(st.addr, st.annotateLen);
                init.passAnnotate();
                break;
              case tir::StepKind::Done:
                return;
              case tir::StepKind::Simple:
                break;
            }
        }
    }

    void
    step(unsigned c, Cycle now)
    {
        ContextState &cs = ctxs_[c];
        if (cs.htm->abortPending()) {
            handleAbort(c, now);
            return;
        }
        const tir::Step st = cs.interp->next();
        switch (st.kind) {
          case tir::StepKind::Done:
            cs.done = true;
            cs.finishedAt = now + simpleCost(st);
            cs.readyAt = cs.finishedAt;
            maybeReleaseBarrier(now);
            break;
          case tir::StepKind::Mem:
            handleMem(c, now, st);
            break;
          case tir::StepKind::TxBegin:
            handleTxBegin(c, now, st);
            break;
          case tir::StepKind::TxEnd:
            handleTxEnd(c, now, st);
            break;
          case tir::StepKind::Barrier:
            cs.atBarrier = true;
            cs.readyAt = now + simpleCost(st);
            maybeReleaseBarrier(now);
            break;
          case tir::StepKind::Annotate:
            // Notary-style page annotation: an madvise-like call.
            vm_->annotateRange(st.addr, st.annotateLen);
            cs.interp->passAnnotate();
            cs.readyAt = now + simpleCost(st) + 1;
            break;
          case tir::StepKind::Simple:
            cs.readyAt = now + simpleCost(st);
            break;
        }
    }

    /** Open a journal record for the TX attempt starting now. */
    void
    openRecord(ContextState &cs, unsigned c, Cycle now,
               const tir::Step &st, TxOutcome kind)
    {
        cs.rec = TxRecord{};
        cs.rec.begin = now;
        cs.rec.ctx = c;
        cs.rec.fn = st.fn;
        cs.rec.block = st.srcBlock;
        cs.rec.instr = st.srcInstr;
        cs.rec.retry =
            std::uint16_t(std::min(cs.retries, 0xFFFFu));
        cs.rec.outcome = kind;
        cs.recOpen = true;
        cs.recConverted = false;
    }

    void
    handleAbort(unsigned c, Cycle now)
    {
        ContextState &cs = ctxs_[c];
        if (journal_ && cs.recOpen) {
            // Footprints and attribution are read before the ack
            // clears the controller's tracking state.
            cs.rec.end = now;
            cs.rec.outcome = TxOutcome::Abort;
            cs.rec.reason = std::uint8_t(cs.htm->pendingReason());
            cs.rec.readBlocks =
                std::uint32_t(cs.htm->readSetBlocks());
            cs.rec.writeBlocks =
                std::uint32_t(cs.htm->writeSetBlocks());
            cs.rec.offendingAddr = cs.htm->lastAbortAddr();
            cs.rec.offendingValid = cs.htm->lastAbortAddrValid();
            cs.rec.offendingCtx = cs.htm->lastAbortCtx();
            journal_->push(cs.rec);
            cs.recOpen = false;
        }
        if (metrics_ && cs.mtx.open) {
            if (cs.htm->pendingReason() == htm::AbortReason::Capacity) {
                // Occupancy breakdown of the overflowing cache set,
                // read before the ack clears the tracking state. Only
                // aborts that name an offending address have a set to
                // scan (L1TM set conflicts always do; buffer-full
                // aborts on P8/P8S name the overflowing access).
                if (cs.htm->lastAbortAddrValid()) {
                    metrics_->recordOverflowScan();
                    mem_->forEachValidInL1Set(
                        mem::ContextId(c), cs.htm->lastAbortAddr(),
                        [&](Addr blk, const mem::CacheLine &) {
                            metrics_->recordOverflowLine(
                                cs.htm->readsBlock(blk) ||
                                    cs.htm->writesBlock(blk),
                                cs.mtx.skips.contains(blk));
                        });
                }
                metrics_->closeCapacityAbort(cs.mtx,
                                             cs.htm->trackedBlocks());
            } else {
                metrics_->closeOther(cs.mtx);
            }
        }
        const htm::AbortReason reason = cs.htm->acknowledgeAbort(now);
        trace::event(trace::Category::Tx, now, "ctx ", c, " abort (",
                     htm::abortReasonName(reason), "), retry ",
                     cs.retries + 1);
        noteEvent(SchedEvent::TxAbort);
        if (ctrl_) {
            cs.ctlFpLast = cs.ctlFpCur;
            cs.ctlFpCur.clear();
        }
        cs.interp->rollbackToTxBegin();
        cs.fpAll.clear();
        cs.fpNoStatic.clear();
        cs.fpUnsafe.clear();
        if (!htm::abortIsTransient(reason)) {
            // Capacity aborts recur deterministically: fall back now.
            cs.mustFallback = true;
        } else {
            ++cs.retries;
            if (cs.retries > cfg_.maxRetries)
                cs.mustFallback = true;
        }
        cs.readyAt = now + cfg_.htm.abortHandlerCycles +
                     Cycle(cs.retries) * cfg_.backoffCycles;
    }

    void
    handleTxBegin(unsigned c, Cycle now, const tir::Step &st)
    {
        ContextState &cs = ctxs_[c];
        Cycle cost = simpleCost(st);

        if (lockHolder_ >= 0) {
            // Someone is in the software fallback: wait for release.
            cs.readyAt = now + cost + cfg_.fallbackSpinCycles;
            noteEvent(SchedEvent::LockSpin);
            return;
        }

        if (cs.mustFallback) {
            lockHolder_ = int(c);
            ++res_.fallbackRuns;
            if (metrics_) {
                cs.mtx.lockAcquiredAt = now;
                cs.mtx.lockHeld = true;
            }
            trace::event(trace::Category::Tx, now, "ctx ", c,
                         " acquires the fallback lock");
            // Abort every running hardware TX (they all subscribed to
            // the lock), then publish the acquisition. The seeded
            // lazy-subscription bug has no subscribers to kill.
            if (!cfg_.unsafeLazySubscription) {
                for (unsigned o = 0; o < ctxs_.size(); ++o) {
                    if (o != c && ctxs_[o].htm->inTx())
                        ctxs_[o].htm->requestAbort(
                            htm::AbortReason::FallbackLock,
                            std::int32_t(c));
                }
            }
            const auto ar =
                mem_->access(mem::ContextId(c), fallbackLockAddr,
                             AccessType::Write);
            cost += ar.latency + cfg_.htm.beginCycles;
            cs.interp->enterTx(/*htm_mode=*/false);
            cs.inFallback = true;
            if (journal_)
                openRecord(cs, c, now, st, TxOutcome::FallbackCommit);
            noteEvent(SchedEvent::LockAcquire);
        } else {
            cs.htm->beginTx(now);
            trace::event(trace::Category::Tx, now, "ctx ", c,
                         " begins hardware TX");
            if (journal_)
                openRecord(cs, c, now, st, TxOutcome::Commit);
            if (metrics_) {
                metrics_->beginTx(cs.mtx, now, st.fn, st.srcBlock,
                                  st.srcInstr);
            }
            // Lock subscription: the lock word joins the readset so a
            // fallback acquisition conflicts this TX out. The seeded
            // bug skips it — the Dice-et-al. lazy-subscription hazard
            // the explorer exists to expose.
            if (!cfg_.unsafeLazySubscription) {
                const auto ar = mem_->access(mem::ContextId(c),
                                             fallbackLockAddr,
                                             AccessType::Read);
                cs.htm->trackAccess(fallbackLockAddr, AccessType::Read,
                                    /*safe=*/false);
                cost += ar.latency;
            }
            cost += cfg_.htm.beginCycles;
            cs.interp->enterTx(/*htm_mode=*/true);
            noteEvent(SchedEvent::TxBegin);
        }
        cs.readyAt = now + cost;
    }

    void
    handleTxEnd(unsigned c, Cycle now, const tir::Step &st)
    {
        ContextState &cs = ctxs_[c];
        Cycle cost = simpleCost(st) + cfg_.htm.commitCycles;

        if (journal_ && cs.recOpen) {
            cs.rec.end = now;
            if (cs.inFallback) {
                cs.rec.outcome = cs.recConverted
                                     ? TxOutcome::ConvertedCommit
                                     : TxOutcome::FallbackCommit;
                // Converted footprints were captured at conversion;
                // pure fallback runs track nothing.
            } else {
                cs.rec.outcome = TxOutcome::Commit;
                cs.rec.readBlocks =
                    std::uint32_t(cs.htm->readSetBlocks());
                cs.rec.writeBlocks =
                    std::uint32_t(cs.htm->writeSetBlocks());
            }
            journal_->push(cs.rec);
            cs.recOpen = false;
        }

        if (cs.inFallback) {
            HINTM_ASSERT(lockHolder_ == int(c), "lock bookkeeping broken");
            lockHolder_ = -1;
            if (metrics_) {
                if (cs.mtx.lockHeld) {
                    metrics_->fallbackSeries.addSpan(cs.mtx.lockAcquiredAt,
                                                     now);
                    ++metrics_->fallbackAcquisitions;
                    cs.mtx.lockHeld = false;
                }
                // A converted TX commits under the lock, not the HTM:
                // fold its hint accounting without a commit verdict.
                if (cs.mtx.open)
                    metrics_->closeOther(cs.mtx);
            }
            trace::event(trace::Category::Tx, now, "ctx ", c,
                         " releases the fallback lock");
            const auto ar =
                mem_->access(mem::ContextId(c), fallbackLockAddr,
                             AccessType::Write);
            cost += ar.latency;
            cs.inFallback = false;
            cs.mustFallback = false;
            noteEvent(SchedEvent::LockRelease);
        } else {
            // Mutual-exclusion breach: a hardware TX completing while
            // the fallback lock is held read a snapshot the critical
            // section may be mutating. Impossible with eager
            // subscription (the acquisition aborts every TX); the
            // seeded lazy-subscription bug makes it reachable.
            if (lockHolder_ >= 0 && lockHolder_ != int(c)) {
                ++res_.subscriptionViolations;
                trace::event(trace::Category::Tx, now, "ctx ", c,
                             " commits while ctx ", lockHolder_,
                             " holds the fallback lock");
            }
            trace::event(trace::Category::Tx, now, "ctx ", c, " commits (",
                         cs.htm->trackedBlocks(), " tracked blocks)");
            if (metrics_ && cs.mtx.open)
                metrics_->closeCommit(cs.mtx, hintSavedVerdict(cs));
            cs.htm->commitTx(now);
            noteEvent(SchedEvent::TxCommit);
            if (ctrl_) {
                cs.ctlFpLast = cs.ctlFpCur;
                cs.ctlFpCur.clear();
            }
            if (cfg_.collectTxSizes) {
                res_.txSizeAll.sample(cs.fpAll.size());
                res_.txSizeNoStatic.sample(cs.fpNoStatic.size());
                res_.txSizeUnsafe.sample(cs.fpUnsafe.size());
            }
        }
        cs.interp->completeTxEnd();
        cs.retries = 0;
        cs.fpAll.clear();
        cs.fpNoStatic.clear();
        cs.fpUnsafe.clear();
        ++res_.committedTxs;
        cs.readyAt = now + cost;
    }

    /**
     * Capacity-model verdict at commit time: did this TX's tracked
     * footprint fit the transactional structures only because safe
     * hints kept the skipped blocks out? Counts only skipped blocks the
     * TX never also tracked (a block read safely and written unsafely
     * occupies a slot regardless).
     *
     * P8/P8S: the tracked set fit the TX buffer, but tracked + skipped
     * would not have. (For P8S this is conservative: spilled reads live
     * in the signature, so a buffer-centric model may over-claim.)
     * L1TM: the tracked set fit every L1 set's associativity, but some
     * set would have overflowed with the skipped blocks included.
     * InfCap: never (nothing to overflow).
     */
    bool
    hintSavedVerdict(const ContextState &cs) const
    {
        if (cfg_.htm.kind == htm::HtmKind::InfCap)
            return false;
        const TxMetricsCtx &m = cs.mtx;
        if (m.skips.empty())
            return false;
        // Tracked membership is queried from the controller's own
        // read/write sets — the metrics layer keeps no shadow copy of
        // the footprint. Called before commitTx, so the sets are live.
        const auto in_tracked = [&](Addr b) {
            return cs.htm->readsBlock(b) || cs.htm->writesBlock(b);
        };
        if (cfg_.htm.kind != htm::HtmKind::L1TM) {
            const std::uint64_t cap = cfg_.htm.bufferEntries;
            std::uint64_t extra = 0;
            m.skips.forEach([&](Addr b) {
                if (!in_tracked(b))
                    ++extra;
            });
            const std::uint64_t used = cs.htm->trackedBlocks();
            return extra > 0 && used <= cap && used + extra > cap;
        }
        // L1TM: group tracked and (un-tracked) skipped blocks by L1 set.
        const mem::CacheGeometry &g = mem_->l1Geometry();
        std::map<std::uint64_t, std::pair<unsigned, unsigned>> sets;
        cs.htm->forEachTrackedBlock(
            [&](Addr b) { ++sets[g.indexOf(b)].first; });
        m.skips.forEach([&](Addr b) {
            if (!in_tracked(b))
                ++sets[g.indexOf(b)].second;
        });
        bool tracked_fits = true, combined_overflows = false;
        for (const auto &[set, counts] : sets) {
            if (counts.first > g.assoc())
                tracked_fits = false;
            if (counts.first + counts.second > g.assoc())
                combined_overflows = true;
        }
        return tracked_fits && combined_overflows;
    }

    void
    handleMem(unsigned c, Cycle now, const tir::Step &st)
    {
        ContextState &cs = ctxs_[c];
        Cycle cost = simpleCost(st);
        const bool suspended = cs.interp->suspended();
        const bool in_htm_tx =
            cs.interp->inTx() && cs.interp->htmMode() && !suspended;
        const bool in_any_tx = cs.interp->inTx() && !suspended;
        if (cs.interp->inTx() && suspended)
            ++res_.txAccessesSuspended;

        // 1. Address translation + dynamic classification. The memoized
        // probe covers the common TLB-hit/no-transition case; misses and
        // state-changing writes fall through to the full path.
        vm::TranslateResult tr;
        if (!vm_->translateFast(int(c), st.addr, st.accessType, tr)) {
            tr = vm_->translate(int(c), cs.interp->tid(), st.addr,
                                st.accessType);
        }
        cost += tr.cost;
        if (tr.becameUnsafe) {
            trace::event(trace::Category::Vm, now, "page ", tr.pageNum,
                         " became unsafe (ctx ", c, " write), ",
                         tr.slaveCosts.size(), " shootdown slaves");
            shootdownCycles_ += cfg_.vm.shootdownInitiatorCycles;
            for (const auto &[victim, slave] : tr.slaveCosts) {
                ContextState &vs = ctxs_[std::size_t(victim)];
                vs.readyAt = std::max(vs.readyAt, now) + slave;
                shootdownCycles_ += slave;
                if (useSchedIndex_) {
                    sched_.setReady(unsigned(victim), vs.readyAt);
                    schedDirty_ = true;
                }
            }
            for (ContextState &other : ctxs_)
                other.htm->onPageBecameUnsafe(tr.pageNum);
        }
        if (cs.htm->abortPending()) {
            // The transition aborted our own TX: squash this access.
            cs.readyAt = now + cost;
            return;
        }

        // 2. Resolve the safety hint. Statically-hinted instructions
        // bypass the dynamic mechanism (§IV-B); dynamic hints only ever
        // cover reads. Programmer annotations are irrevocable hints,
        // honored under annotationHints or whenever the dynamic
        // mechanism is active.
        const bool is_read = st.accessType == AccessType::Read;
        const bool static_safe = cfg_.staticHints && st.staticSafe;
        const bool annot_safe =
            (cfg_.annotationHints || cfg_.dynamicHints) && !static_safe &&
            is_read && tr.safeRead && !tr.revocable;
        const bool dyn_safe = cfg_.dynamicHints && !static_safe &&
                              is_read && tr.safeRead && tr.revocable;
        const bool safe = static_safe || dyn_safe || annot_safe;

        // 3. HTM tracking (or hint-driven skip).
        if (in_htm_tx &&
            cfg_.htm.conflictPolicy ==
                htm::ConflictPolicy::RequesterLoses &&
            !safe) {
            // Requester-loses pre-flight: abort ourselves rather than
            // disturb a TX already holding the block.
            const Addr block = blockAlign(st.addr);
            if (mem::Directory *dir = mem_->directory()) {
                // conflictsWith() can only be true for contexts the
                // directory records as precise trackers of the block,
                // so probing the tracker mask is O(trackers).
                std::uint64_t m =
                    dir->txTrackers(block) & ~(std::uint64_t(1) << c);
                for (; m; m &= m - 1) {
                    const unsigned o = unsigned(std::countr_zero(m));
                    if (ctxs_[o].htm->conflictsWith(block,
                                                    st.accessType)) {
                        cs.htm->requestAbort(htm::AbortReason::Conflict);
                        cs.readyAt = now + cost;
                        return;
                    }
                }
            } else {
                for (unsigned o = 0; o < ctxs_.size(); ++o) {
                    if (o != c && ctxs_[o].htm->conflictsWith(
                                      block, st.accessType)) {
                        cs.htm->requestAbort(htm::AbortReason::Conflict);
                        cs.readyAt = now + cost;
                        return;
                    }
                }
            }
        }
        if (in_htm_tx) {
            const std::uint8_t newly =
                cs.htm->trackAccess(st.addr, st.accessType, safe);
            if (dyn_safe)
                cs.htm->noteSafePageRead(tr.pageNum);
            if (cs.htm->capacityPending()) {
                // Pre-abort handler: convert the overflowing TX into a
                // critical section when the fallback lock is free,
                // preserving the work done so far; else abort normally.
                if (lockHolder_ < 0) {
                    lockHolder_ = int(c);
                    if (metrics_) {
                        cs.mtx.lockAcquiredAt = now;
                        cs.mtx.lockHeld = true;
                    }
                    trace::event(trace::Category::Tx, now, "ctx ", c,
                                 " converts overflowing TX to a "
                                 "critical section");
                    if (!cfg_.unsafeLazySubscription) {
                        for (unsigned o = 0; o < ctxs_.size(); ++o) {
                            if (o != c && ctxs_[o].htm->inTx())
                                ctxs_[o].htm->requestAbort(
                                    htm::AbortReason::FallbackLock,
                                    std::int32_t(c));
                        }
                    }
                    noteEvent(SchedEvent::LockAcquire);
                    const auto lr = mem_->access(mem::ContextId(c),
                                                 fallbackLockAddr,
                                                 AccessType::Write);
                    cost += lr.latency;
                    if (journal_ && cs.recOpen) {
                        // Footprint at the moment tracking stops.
                        cs.rec.readBlocks =
                            std::uint32_t(cs.htm->readSetBlocks());
                        cs.rec.writeBlocks =
                            std::uint32_t(cs.htm->writeSetBlocks());
                        cs.recConverted = true;
                    }
                    cs.htm->convertToCriticalSection();
                    cs.interp->convertToFallback();
                    cs.inFallback = true;
                    // Fall through: the access proceeds untracked.
                } else {
                    cs.htm->declineConversion();
                    cs.readyAt = now + cost;
                    return;
                }
            }
            if (cs.htm->abortPending()) {
                cs.readyAt = now + cost; // capacity: squash
                return;
            }
            if (metrics_ && cs.mtx.open && !cs.inFallback) {
                if (static_safe) {
                    metrics_->onSafeSkip(cs.mtx, blockAlign(st.addr),
                                         MetricsRegistry::SkipKind::Static);
                } else if (dyn_safe) {
                    metrics_->onSafeSkip(
                        cs.mtx, blockAlign(st.addr),
                        MetricsRegistry::SkipKind::Dynamic);
                } else if (annot_safe) {
                    metrics_->onSafeSkip(
                        cs.mtx, blockAlign(st.addr),
                        MetricsRegistry::SkipKind::Annotation);
                } else if (newly) {
                    metrics_->onTrackedGrowth(
                        cs.mtx, newly & htm::NewlyRead,
                        newly & htm::NewlyWritten, now);
                }
            }
            if (is_read) {
                if (static_safe)
                    ++res_.txReadsStaticSafe;
                else if (dyn_safe)
                    ++res_.txReadsDynSafe;
                else if (annot_safe)
                    ++res_.txReadsAnnotated;
                else
                    ++res_.txReadsUnsafe;
            } else {
                if (static_safe)
                    ++res_.txWritesStaticSafe;
                else
                    ++res_.txWritesUnsafe;
            }
            if (cfg_.collectTxSizes) {
                const Addr blk = blockNumber(st.addr);
                cs.fpAll.insert(blk);
                if (!static_safe)
                    cs.fpNoStatic.insert(blk);
                if (!safe)
                    cs.fpUnsafe.insert(blk);
            }
            if (ctrl_ && !cs.inFallback)
                cs.ctlFpCur.insert(blockAlign(st.addr));
        } else if (in_any_tx) {
            // Fallback-mode TX: everything is effectively unsafe.
            if (st.accessType == AccessType::Read)
                ++res_.txReadsUnsafe;
            else
                ++res_.txWritesUnsafe;
        }

        // 4. Timing + coherence (may abort other contexts; their undo
        // hooks run before we read). Under L1TM this access can also
        // abort *us*: filling the L1 may evict one of our own tracked
        // lines (set-conflict capacity abort). Squash in that case.
        // Stamp the oracle here and only here: every earlier exit is a
        // squashed access that never reaches the hierarchy. A context
        // that just converted to a critical section proceeds untracked,
        // so its access is no longer a hint-driven skip.
        if (oracle_) {
            oracle_->stamp(c, st.fn, st.srcBlock, st.srcInstr,
                           static_safe && in_htm_tx && !cs.inFallback);
        }
        const auto ar =
            mem_->access(mem::ContextId(c), st.addr, st.accessType);
        cost += ar.latency;
        if (cs.htm->abortPending()) {
            cs.readyAt = now + cost;
            return;
        }

        // 5. Architectural effect.
        cs.interp->completeMem();

        if (cfg_.profileSharing) {
            profiler_.record(cs.interp->tid(), st.addr, st.accessType,
                             in_any_tx);
        }
        cs.readyAt = now + cost;
    }

    void
    maybeReleaseBarrier(Cycle now)
    {
        unsigned live = 0, waiting = 0;
        for (const ContextState &cs : ctxs_) {
            if (cs.done)
                continue;
            ++live;
            if (cs.atBarrier)
                ++waiting;
        }
        if (live == 0 || waiting < live)
            return;
        trace::event(trace::Category::Sched, now, "barrier releases ",
                     waiting, " contexts");
        noteEvent(SchedEvent::Barrier);
        for (unsigned c = 0; c < ctxs_.size(); ++c) {
            ContextState &cs = ctxs_[c];
            if (cs.done || !cs.atBarrier)
                continue;
            cs.interp->passBarrier();
            cs.atBarrier = false;
            cs.readyAt = std::max(cs.readyAt, now) + 1;
            if (useSchedIndex_) {
                sched_.unblock(c, cs.readyAt);
                schedDirty_ = true;
            }
        }
        if (oracle_)
            oracle_->onBarrier();
    }

    /** Mark a transactional event on the stepping context; the
     * controlled loop turns it into a decision point once the step has
     * fully completed. No-op without a controller. */
    void
    noteEvent(SchedEvent e)
    {
        if (ctrl_)
            pendingEv_ = int(e);
    }

    /** Clear preemption flags without touching the index; true if any
     * context was released. Released contexts keep their stale readyAt
     * (they were ready all along), which also makes a fork-restored
     * branch and a from-scratch replay of the same plan bit-identical. */
    bool
    releasePreemptedFlags()
    {
        bool any = false;
        for (ContextState &cs : ctxs_) {
            if (cs.preempted) {
                cs.preempted = false;
                any = true;
            }
        }
        return any;
    }

    bool
    releasePreempted()
    {
        const bool any = releasePreemptedFlags();
        // Preemption changes are rare (bounded per run) and can move a
        // readyAt behind an open tie bucket, so re-derive the index
        // rather than teaching its monotone fast paths about the past.
        if (any && useSchedIndex_)
            rebuildSchedIndex();
        return any;
    }

    /** Offer the completed event on @p c to the controller. Runs at a
     * quiescent boundary: the step is done and the index republished,
     * so a controller may snapshot the machine from inside the hook. */
    void
    decisionPoint(unsigned c, SchedEvent ev)
    {
        const ContextState &cs = ctxs_[c];
        if (cs.done)
            return; // a Done step released a barrier: nothing to preempt
        bool other_runnable = false;
        for (unsigned o = 0; o < ctxs_.size(); ++o) {
            if (o != c && !ctxs_[o].done && !ctxs_[o].atBarrier) {
                other_runnable = true;
                break;
            }
        }
        if (!other_runnable)
            return; // preempting the only runnable context decides nothing
        // A spinner waiting on a preempted lock holder would spin
        // forever (spinning counts as runnable, so the nothing-else-
        // runnable release never fires): model the OS eventually
        // rescheduling the holder. Purely state-driven, so forked and
        // replayed branches release at the same step.
        if (ev == SchedEvent::LockSpin && lockHolder_ >= 0 &&
            ctxs_[unsigned(lockHolder_)].preempted)
            releasePreempted();
        SchedDecision d;
        d.event = ev;
        d.ctx = c;
        d.cycle = now_;
        d.dependent = decisionDependent(c, ev);
        if (ctrl_->onDecision(d))
            preemptContext(c);
    }

    /**
     * Independence filter for DPOR-style pruning: false only when the
     * event's context provably cannot interact with any peer — no lock
     * traffic, and every block its current and previous TX footprints
     * touch is cached (directory mode) or tracked (broadcast mode) by
     * no one else. Conservative on missing information: an empty
     * footprint (first attempt, untracked fallback) stays dependent.
     */
    bool
    decisionDependent(unsigned c, SchedEvent ev) const
    {
        switch (ev) {
          case SchedEvent::LockAcquire:
          case SchedEvent::LockRelease:
          case SchedEvent::Barrier:
            return true;
          case SchedEvent::TxBegin:
            // A transaction's future footprint is unknowable at begin;
            // the last-TX proxy below would misclassify a TX about to
            // touch shared state, so begins are never pruned.
            return true;
          case SchedEvent::LockSpin:
            return false; // the spinner re-arrives here until release
          default:
            break;
        }
        if (lockHolder_ >= 0)
            return true;
        const ContextState &cs = ctxs_[c];
        if (cs.ctlFpCur.empty() && cs.ctlFpLast.empty())
            return true;
        bool dep = false;
        const mem::Directory *dir = mem_->directory();
        const auto overlaps = [&](Addr blk) {
            if (dep)
                return;
            if (dir) {
                if (dir->sharers(blk) & ~(std::uint64_t(1) << c))
                    dep = true;
                return;
            }
            for (unsigned o = 0; o < ctxs_.size() && !dep; ++o) {
                if (o == c)
                    continue;
                const ContextState &po = ctxs_[o];
                if ((po.htm->inTx() &&
                     (po.htm->readsBlock(blk) ||
                      po.htm->writesBlock(blk))) ||
                    po.ctlFpCur.contains(blk) ||
                    po.ctlFpLast.contains(blk))
                    dep = true;
            }
        };
        cs.ctlFpCur.forEach(overlaps);
        cs.ctlFpLast.forEach(overlaps);
        return dep;
    }

    /** (Re)derive the scheduler index from context state. The index is
     * derived state: built here at construction and again on snapshot
     * restore (MachineSnapshot carries nothing for it). */
    void
    rebuildSchedIndex()
    {
        sched_.reset(unsigned(ctxs_.size()));
        for (unsigned c = 0; c < ctxs_.size(); ++c) {
            sched_.sync(c, ctxs_[c].done,
                        ctxs_[c].atBarrier || ctxs_[c].preempted,
                        ctxs_[c].readyAt);
        }
        schedDirty_ = false;
    }

    /** The scheduler found live contexts but nothing runnable — a
     * simulator bug. Dump every context's scheduler-visible state
     * before going down. */
    [[noreturn]] void
    deadlockPanic() const
    {
        std::ostringstream os;
        os << "deadlock: all live contexts blocked (now=" << now_
           << " rr=" << rr_ << " fallbackLockHolder=" << lockHolder_
           << ")";
        for (unsigned c = 0; c < ctxs_.size(); ++c) {
            const ContextState &cs = ctxs_[c];
            os << "\n  ctx " << c << ": readyAt=" << cs.readyAt
               << " done=" << cs.done << " atBarrier=" << cs.atBarrier
               << " inTx=" << cs.htm->inTx()
               << " abortPending=" << cs.htm->abortPending()
               << " retries=" << cs.retries
               << " mustFallback=" << cs.mustFallback
               << " inFallback=" << cs.inFallback
               << " preempted=" << cs.preempted;
        }
        // Replay recipe: the seed pins the reference interleaving; a
        // controller's decision trace pins any explored one.
        os << "\n  schedule: seed=" << cfg_.seed << " "
           << (ctrl_ ? ctrl_->describe()
                     : std::string("default (no controller)"));
        HINTM_PANIC(os.str());
    }

    MachineConfig cfg_;
    tir::Program prog_;
    const void *moduleTag_;
    std::unique_ptr<mem::MemorySystem> mem_;
    std::unique_ptr<vm::Vm> vm_;
    std::unique_ptr<htm::HintOracle> oracle_;
    std::shared_ptr<TxJournal> journal_;
    std::shared_ptr<MetricsRegistry> metrics_;
    std::vector<ContextState> ctxs_;
    int lockHolder_ = -1;
    std::uint64_t shootdownCycles_ = 0;
    SharingProfiler profiler_;
    RunResult res_;
    /** Annotate calls made by the init phase (prefix capture/replay). */
    std::vector<std::pair<Addr, std::uint64_t>> initAnnotations_;
    /** Scheduler clock + round-robin cursor (members so a run can be
     * interrupted for snapshotting and resumed). */
    Cycle now_ = 0;
    unsigned rr_ = 0;
    /** Event-driven ready-context index (cfg.schedIndex, <=64 ctxs). */
    SchedIndex sched_;
    bool useSchedIndex_ = false;
    /** Set whenever a step mutates another context's scheduler state
     * (shootdown readyAt bump, barrier release, controller wake event):
     * the current batch's uniqueness proof no longer holds, so the
     * loop returns to the index for the next pick. */
    bool schedDirty_ = false;
    bool finalized_ = false;
    /** Scheduler nondeterminism hook (null = reference behavior). */
    ScheduleController *ctrl_ = nullptr;
    /** Event the in-flight step produced, as int(SchedEvent); -1 when
     * none. Only maintained under a controller. */
    int pendingEv_ = -1;
};

} // namespace

RunResult
runMachine(const MachineConfig &cfg, const tir::Module &module,
           unsigned num_threads)
{
    Machine m(cfg, module, num_threads);
    return m.run();
}

RunResult
runMachine(const MachineConfig &cfg, const tir::Module &module,
           unsigned num_threads, const MachinePrefix *prefix)
{
    Machine m(cfg, module, num_threads, prefix);
    return m.run();
}

MachinePrefix
buildMachinePrefix(const MachineConfig &cfg, const tir::Module &module,
                   unsigned num_threads)
{
    const Machine m(cfg, module, num_threads);
    return m.capturePrefix();
}

struct SimRun::Impl
{
    Impl(const MachineConfig &cfg, const tir::Module &module,
         unsigned num_threads, const MachinePrefix *prefix)
        : machine(cfg, module, num_threads, prefix)
    {
    }

    Machine machine;
};

SimRun::SimRun(const MachineConfig &cfg, const tir::Module &module,
               unsigned num_threads, const MachinePrefix *prefix)
    : impl_(std::make_unique<Impl>(cfg, module, num_threads, prefix))
{
}

SimRun::~SimRun() = default;

void
SimRun::runUntilCommits(std::uint64_t target)
{
    impl_->machine.runLoop(target);
}

bool
SimRun::finished() const
{
    return impl_->machine.finished();
}

std::uint64_t
SimRun::committedTxs() const
{
    return impl_->machine.committedTxs();
}

MachineSnapshot
SimRun::snapshot() const
{
    return impl_->machine.snapshot();
}

void
SimRun::restore(const MachineSnapshot &s)
{
    impl_->machine.restore(s);
}

void
SimRun::preemptContext(unsigned ctx)
{
    impl_->machine.preemptContext(ctx);
}

Cycle
SimRun::now() const
{
    return impl_->machine.nowCycle();
}

RunResult
SimRun::finish()
{
    return impl_->machine.run();
}

} // namespace sim
} // namespace hintm
