#include "explorer.hh"

#include <atomic>
#include <limits>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/schedule.hh"
#include "sim/snapshot.hh"

namespace hintm
{
namespace sim
{

namespace
{

/** One schedule to run: a plan plus, in fork mode, the snapshot of the
 * machine at the newly-preempted decision point. */
struct Branch
{
    std::vector<std::uint32_t> plan;
    /** Divergence-point state (null = replay the plan from scratch). */
    std::shared_ptr<const MachineSnapshot> snap;
    /** Context the plan's last entry preempts (fork mode re-applies it
     * after restore, exactly as a replay would at that decision). */
    unsigned preemptCtx = 0;
    /** Decision index of the plan's last entry. */
    std::uint32_t branchIndex = 0;
};

/** Per-host-thread exploration state: the controller baked into the
 * machine config and the (reusable) machine behind it. */
struct Worker
{
    explicit Worker(const MachineConfig &base)
        : cfg(base)
    {
        cfg.scheduleController = &ctrl;
    }

    MachineConfig cfg;
    PlanScheduleController ctrl;
    std::unique_ptr<SimRun> run;
};

} // namespace

ExploreReport
exploreSchedules(const MachineConfig &cfg0, const tir::Module &module,
                 unsigned num_threads, const ExploreOptions &opt)
{
    HINTM_ASSERT(!cfg0.scheduleController,
                 "explorer installs its own schedule controller");
    MachineConfig base = cfg0;
    base.journal = true; // trace_check reconciles journal totals
    // The oracle's shadow state is outside the snapshot scope, so
    // oracle configs replay every branch from scratch instead of
    // forking at the divergence point.
    const bool can_fork = !base.hintOracle;

    ExploreReport rep;
    TraceCheckOptions chk;
    chk.livelockThreshold = opt.livelockThreshold;

    std::atomic<std::uint64_t> scheduled{0};
    const std::uint64_t max_schedules =
        opt.maxSchedules ? opt.maxSchedules
                         : std::numeric_limits<std::uint64_t>::max();

    // Run one schedule on @p w, collecting child branches (plans that
    // extend b.plan with one later preemption) and issues into the
    // caller's accumulators. Branch candidates only extend to the
    // right of the last preemption — the canonical iterative-
    // context-bounding enumeration, which visits every plan once.
    const auto run_one = [&](Worker &w, const Branch &b,
                             std::vector<Branch> &children,
                             ExploreReport &local,
                             std::vector<ExploreIssue> &issues,
                             const TraceCheckOptions &check_opt) {
        const bool branchable = b.plan.size() < opt.preemptionBound;
        const std::uint32_t after =
            b.plan.empty() ? 0 : b.plan.back() + 1;
        w.ctrl.hook = [&](const SchedDecision &d, std::uint32_t idx) {
            if (!branchable || idx < after)
                return;
            if (idx >= opt.maxBranchPoints) {
                ++local.branchesCapped;
                return;
            }
            ++local.branchPoints;
            if (opt.dpor && !d.dependent) {
                ++local.branchesPruned;
                return;
            }
            Branch c;
            c.plan = b.plan;
            c.plan.push_back(idx);
            c.preemptCtx = d.ctx;
            c.branchIndex = idx;
            if (can_fork)
                c.snap = std::make_shared<MachineSnapshot>(
                    w.run->snapshot());
            children.push_back(std::move(c));
        };
        if (b.snap) {
            // Fork: resume from the divergence point and apply the
            // new preemption — bit-identical to replaying the full
            // plan from scratch (property-locked). A fresh worker
            // builds its machine once; every later fork reuses it.
            if (!w.run)
                w.run = std::make_unique<SimRun>(w.cfg, module,
                                                 num_threads);
            w.ctrl.reset(b.plan, b.branchIndex + 1);
            w.run->restore(*b.snap);
            w.run->preemptContext(b.preemptCtx);
            ++local.snapshotForks;
        } else {
            w.run = std::make_unique<SimRun>(w.cfg, module, num_threads);
            w.ctrl.reset(b.plan, 0);
            if (!b.plan.empty())
                ++local.scratchReplays;
        }
        const RunResult r = w.run->finish();
        w.ctrl.hook = nullptr;
        ++local.schedulesRun;
        for (TraceViolation &v : checkTrace(base, r, check_opt))
            issues.push_back(
                {std::move(v), b.plan, w.ctrl.nextIndex()});
        return r;
    };

    // Base trace: the reference interleaving (no preemptions). Its
    // final globals become the determinism reference for every branch.
    Worker base_worker(base);
    std::vector<Branch> top;
    std::vector<ExploreIssue> base_issues;
    ++scheduled;
    const RunResult base_result = run_one(
        base_worker, Branch{}, top, rep, base_issues, chk);
    rep.issues = std::move(base_issues);
    if (opt.compareFinalState)
        chk.referenceGlobals = &base_result.finalGlobals;

    // Fan the top-level subtrees out over host threads (each subtree
    // explores its grandchildren depth-first on its own worker), then
    // merge in branch order so reports stay deterministic.
    std::vector<ExploreReport> sub_reports(top.size());
    std::vector<std::vector<ExploreIssue>> sub_issues(top.size());
    parallelFor(opt.jobs, top.size(), [&](std::size_t i) {
        Worker w(base);
        ExploreReport &local = sub_reports[i];
        std::vector<ExploreIssue> &issues = sub_issues[i];
        std::vector<Branch> stack;
        stack.push_back(std::move(top[i]));
        while (!stack.empty()) {
            if (scheduled.fetch_add(1) >= max_schedules) {
                local.branchesCapped += stack.size();
                break;
            }
            const Branch b = std::move(stack.back());
            stack.pop_back();
            std::vector<Branch> children;
            run_one(w, b, children, local, issues, chk);
            for (Branch &c : children)
                stack.push_back(std::move(c));
        }
    });
    for (std::size_t i = 0; i < top.size(); ++i) {
        const ExploreReport &l = sub_reports[i];
        rep.schedulesRun += l.schedulesRun;
        rep.branchPoints += l.branchPoints;
        rep.branchesPruned += l.branchesPruned;
        rep.branchesCapped += l.branchesCapped;
        rep.snapshotForks += l.snapshotForks;
        rep.scratchReplays += l.scratchReplays;
        for (ExploreIssue &is : sub_issues[i])
            rep.issues.push_back(std::move(is));
    }
    return rep;
}

} // namespace sim
} // namespace hintm
