/**
 * @file
 * Bounded schedule-space explorer: systematic interleaving coverage for
 * tiny workloads, in the Landslide / iterative-context-bounding mold.
 *
 * The explorer runs the base interleaving under a recording
 * PlanScheduleController, then branches: every decision point (TX
 * begin/commit/abort, lock acquire/release, barrier) whose preemption
 * could matter spawns a child schedule that preempts there, up to
 * `preemptionBound` preemptions per schedule. Branches resume from a
 * MachineSnapshot captured at the divergence point (fork mode) instead
 * of re-running the prefix; hint-oracle configs, whose shadow state is
 * outside the snapshot scope, replay each plan from scratch instead.
 *
 * A sleep-set/DPOR-style independence filter prunes branches whose
 * event context provably cannot interact with any peer (disjoint
 * directory sharer masks / TX footprints and no lock traffic) — those
 * preemptions commute with every peer step and cannot reach a new
 * state. `dpor = false` turns the filter off for naive enumeration,
 * which the JSON report exposes so the pruning win is measurable.
 *
 * Every explored trace runs the trace_check invariant oracle; each
 * violation carries the plan (preempted decision indices) that
 * reproduces it deterministically via PlanScheduleController or a
 * schedule file.
 */

#ifndef HINTM_SIM_EXPLORER_HH
#define HINTM_SIM_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/trace_check.hh"
#include "tir/ir.hh"

namespace hintm
{
namespace sim
{

struct ExploreOptions
{
    /** Max preemptions per schedule (iterative context bounding). */
    unsigned preemptionBound = 1;
    /** Hard cap on schedules run (0 = unlimited). */
    std::uint64_t maxSchedules = 4096;
    /** Per-trace cap on decision points considered for branching;
     * deeper ones still execute but spawn no children. */
    std::uint32_t maxBranchPoints = 4096;
    /** trace_check livelock threshold (0 disables). */
    unsigned livelockThreshold = 16;
    /** Independence filter on (DPOR-style pruning); false enumerates
     * every branch point naively. */
    bool dpor = true;
    /** Compare every trace's final globals against the base trace.
     * Disable for workloads whose final memory legitimately depends on
     * the schedule (e.g. guarded-read scaffolds). */
    bool compareFinalState = true;
    /** Host threads fanning out over top-level branches (runMatrix
     * style); 1 = sequential. */
    unsigned jobs = 1;
};

/** One invariant violation (or warning) with its reproduction recipe. */
struct ExploreIssue
{
    TraceViolation violation;
    /** Decision indices whose preemption reproduces the trace. */
    std::vector<std::uint32_t> plan;
    /** Decision count of the offending trace. */
    std::uint32_t decisions = 0;
};

struct ExploreReport
{
    std::uint64_t schedulesRun = 0;
    /** Branch candidates seen (within bound and branch-point cap). */
    std::uint64_t branchPoints = 0;
    /** Candidates skipped by the independence filter. */
    std::uint64_t branchesPruned = 0;
    /** Candidates dropped by maxSchedules / maxBranchPoints caps. */
    std::uint64_t branchesCapped = 0;
    /** Branches resumed from a divergence-point snapshot. */
    std::uint64_t snapshotForks = 0;
    /** Branches replayed from scratch (hint-oracle configs). */
    std::uint64_t scratchReplays = 0;
    /** Violations and warnings, deduplicated by (kind, plan). */
    std::vector<ExploreIssue> issues;

    bool
    anyFatal() const
    {
        for (const ExploreIssue &i : issues) {
            if (i.violation.fatal)
                return true;
        }
        return false;
    }
};

/**
 * Explore @p module under @p cfg across scheduler interleavings.
 * @p cfg.scheduleController must be null (the explorer installs its
 * own); the journal is forced on (trace_check needs it).
 */
ExploreReport exploreSchedules(const MachineConfig &cfg,
                               const tir::Module &module,
                               unsigned num_threads,
                               const ExploreOptions &opt = {});

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_EXPLORER_HH
