/**
 * @file
 * Event-driven ready-context index for the machine scheduler. Replaces
 * the per-step O(contexts) rotating scan with a 64-bit live/eligible
 * bitmask pair plus a lazy-deletion min-heap over readyAt, while
 * reproducing the reference scheduler's pick order exactly:
 *
 *  - The reference scan walks contexts starting at the round-robin
 *    cursor and takes the first strict minimum, so equal-readyAt ties
 *    go to the first context at or after the cursor (wrapping). pick()
 *    reproduces that with a rotate-by-rr + countr_zero bit trick over
 *    the tie mask.
 *
 *  - Heap entries are (readyAt, ctx) at push time and are never
 *    updated in place; an entry is stale once its context's readyAt
 *    moved on or the context stopped being eligible (done / at a
 *    barrier / batch-owned). Stale entries are discarded when they
 *    surface. The invariant the machine maintains is one-sided: every
 *    *eligible* context always has at least one heap entry carrying its
 *    exact current readyAt (duplicates are harmless — the tie mask
 *    dedups them) — or a bit in the tie bucket below.
 *
 *  - Ties persist across picks in a cached bucket (mask + key) instead
 *    of being re-pushed and re-popped each pick. Lockstep phases and
 *    fallback-lock convoys put most of the machine at one readyAt;
 *    serving those picks straight from the bucket keeps the per-step
 *    cost O(1) where bucket-free lazy deletion would degrade to
 *    O(ties log n) — worse than the scan it replaces. A second bucket
 *    catches republishes that land on a common future key (lockstep
 *    contexts advance by identical deltas), so steady-state lockstep
 *    runs entirely on mask operations with no heap traffic at all.
 *    Bucket bits are maintained eagerly (cleared the moment a member's
 *    readyAt or eligibility changes); buckets are a pure heap bypass —
 *    pick() re-derives the true minimum from bucket keys and the heap
 *    top, so any eligible context is findable through exactly one of
 *    the two masks or a valid heap entry.
 *
 *  - Small machines (≤ denseContexts) skip the heap and buckets
 *    entirely: the readyAt mirror is one or two cache lines, so pick()
 *    scans it densely — cheaper than any incremental structure at that
 *    size, and still cheaper than the reference scan, which walks the
 *    same count of scattered few-hundred-byte ContextState records.
 *    The dense scan also yields the exact second minimum, so batched
 *    stepping gets a tight bound the reference scan never computes.
 *
 *  - pick() also reports a batching bound: the smallest key left in the
 *    heap after the pick. Any remaining entry's key never exceeds a
 *    re-push of the same context made after it (per-context readyAt
 *    only moves forward while a context is runnable), so the bound is a
 *    safe lower bound on every other eligible context's true readyAt —
 *    the machine may keep stepping the winner without consulting the
 *    index while the winner's readyAt stays strictly below it.
 *
 * The index is derived state: the machine rebuilds it from context
 * state on construction and on snapshot restore (MachineSnapshot carries
 * nothing for it).
 */

#ifndef HINTM_SIM_SCHED_INDEX_HH
#define HINTM_SIM_SCHED_INDEX_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{
namespace sim
{

class SchedIndex
{
  public:
    /** The bitmasks cap the machine size the index can serve; bigger
     * machines fall back to the reference scan. */
    static constexpr unsigned maxContexts = 64;

    /** At or below this size the readyAt mirror fits a cache line or
     * two and a dense scan of it beats heap/bucket maintenance. */
    static constexpr unsigned denseContexts = 16;

    /** One scheduling decision. */
    struct Pick
    {
        /** Picked context; -1 when live contexts exist but none is
         * eligible (the deadlock case the caller must report). */
        int winner = -1;
        /** The winner's readyAt at pick time. */
        Cycle key = 0;
        /** Lower bound on every other eligible context's readyAt: the
         * winner provably stays the unique earliest while its readyAt
         * is strictly below this. Ties at @ref key make it key itself
         * (no batching); an empty field makes it far-future. */
        Cycle bound = 0;
    };

    /** Drop everything; contexts re-register through sync(). */
    void
    reset(unsigned n)
    {
        HINTM_ASSERT(n <= maxContexts,
                     "scheduler index supports at most 64 contexts");
        n_ = n;
        ready_.assign(n, 0);
        heap_.clear();
        heap_.reserve(4 * n);
        live_ = 0;
        eligible_ = 0;
        tie_ = 0;
        tieKey_ = 0;
        next_ = 0;
        nextKey_ = 0;
    }

    /** Register context @p c from its full scheduler-visible state
     * (machine construction and snapshot restore). */
    void
    sync(unsigned c, bool done, bool at_barrier, Cycle ready_at)
    {
        ready_[c] = ready_at;
        const std::uint64_t bit = std::uint64_t(1) << c;
        if (done) {
            live_ &= ~bit;
            eligible_ &= ~bit;
            return;
        }
        live_ |= bit;
        if (at_barrier) {
            eligible_ &= ~bit;
            return;
        }
        eligible_ |= bit;
        if (!dense())
            push(c, ready_at);
    }

    /** Eligible context @p c moved its readyAt (or a batch on it just
     * closed): publish the exact new key. Landing on a bucket key joins
     * that bucket for free; anything else goes to the heap. */
    void
    setReady(unsigned c, Cycle t)
    {
        const std::uint64_t bit = std::uint64_t(1) << c;
        ready_[c] = t;
        if (dense() || !(eligible_ & bit))
            return;
        if (tie_ & bit) {
            if (t == tieKey_)
                return;
            tie_ &= ~bit;
        } else if (next_ & bit) {
            if (t == nextKey_)
                return;
            next_ &= ~bit;
        }
        place(c, bit, t);
    }

    /** @p c blocked at a barrier: out of the pick set until unblock(). */
    void
    block(unsigned c, Cycle t)
    {
        const std::uint64_t bit = std::uint64_t(1) << c;
        ready_[c] = t;
        eligible_ &= ~bit;
        tie_ &= ~bit;
        next_ &= ~bit;
    }

    /** @p c released from a barrier: back in the pick set at @p t. */
    void
    unblock(unsigned c, Cycle t)
    {
        const std::uint64_t bit = std::uint64_t(1) << c;
        ready_[c] = t;
        eligible_ |= bit;
        if (!dense())
            place(c, bit, t);
    }

    /** @p c finished its program: out of the pick set for good (done
     * contexts never come back, so no entry cleanup is needed). */
    void
    retire(unsigned c)
    {
        const std::uint64_t bit = std::uint64_t(1) << c;
        live_ &= ~bit;
        eligible_ &= ~bit;
        tie_ &= ~bit;
        next_ &= ~bit;
    }

    bool anyLive() const { return live_ != 0; }
    std::uint64_t liveMask() const { return live_; }
    std::uint64_t eligibleMask() const { return eligible_; }

    /**
     * Pop the earliest eligible context, breaking equal-readyAt ties
     * round-robin from @p rr exactly like the reference scan. The
     * winner leaves the bucket/heap — the caller owns it until it
     * republishes via setReady()/block()/retire(); tied losers stay in
     * the bucket and keep their slot for the next pick.
     */
    Pick
    pick(unsigned rr)
    {
        return pick(rr, [](std::uint64_t mask, unsigned r) {
            // First set bit at or after r, wrapping — identical to the
            // strict-< reference scan order (r is always < 64 here).
            const std::uint64_t hi =
                mask & ~((std::uint64_t(1) << r) - 1);
            return unsigned(std::countr_zero(hi ? hi : mask));
        });
    }

    /**
     * pick() with the tie-break delegated to @p choose(mask, rr), which
     * must return a set bit of mask — the hook a ScheduleController
     * uses to steer the interleaving. The default pick() above routes
     * through this with the reference rotate-from-rr rule.
     */
    template <typename Chooser>
    Pick
    pick(unsigned rr, Chooser &&choose)
    {
        if (dense())
            return pickDense(rr, choose);
        Pick p;
        if (tie_ == 0) {
            openBucket();
            if (tie_ == 0) {
                HINTM_ASSERT(eligible_ == 0,
                             "scheduler index lost an eligible context");
                return p;
            }
        }
        // Keys are monotone while a bucket is open and entries at its
        // key join the bucket instead of the heap, so the heap can
        // never hold the bucket key or undercut it.
        HINTM_ASSERT(heap_.empty() || heap_.front().key > tieKey_,
                     "scheduler index bucket behind the heap");
        const Cycle t = tieKey_;
        const unsigned w = choose(tie_, rr);
        HINTM_ASSERT(w < n_ && (tie_ >> w & 1),
                     "tie-break chose a context outside the tie mask");
        tie_ &= ~(std::uint64_t(1) << w);
        p.winner = int(w);
        p.key = t;
        if (tie_) {
            p.bound = t;
        } else {
            // Everyone else sits in the next bucket or the heap.
            p.bound = next_ ? nextKey_
                            : std::numeric_limits<Cycle>::max();
            if (dropStale())
                p.bound = std::min(p.bound, heap_.front().key);
        }
        return p;
    }

  private:
    bool dense() const { return n_ <= denseContexts; }

    /** Small-machine pick: one pass over the (cache-resident) readyAt
     * mirror finds the minimum, its tie mask, and the strict second
     * minimum — which is the exact batching bound when there are no
     * ties, tighter than any heap-derived one. */
    template <typename Chooser>
    Pick
    pickDense(unsigned rr, Chooser &&choose)
    {
        Pick p;
        Cycle best = std::numeric_limits<Cycle>::max();
        Cycle second = std::numeric_limits<Cycle>::max();
        std::uint64_t tie = 0;
        for (std::uint64_t m = eligible_; m; m &= m - 1) {
            const unsigned c = unsigned(std::countr_zero(m));
            const Cycle t = ready_[c];
            if (t < best) {
                second = best;
                best = t;
                tie = std::uint64_t(1) << c;
            } else if (t == best) {
                tie |= std::uint64_t(1) << c;
            } else if (t < second) {
                second = t;
            }
        }
        if (tie == 0)
            return p;
        const unsigned w = choose(tie, rr);
        HINTM_ASSERT(w < n_ && (tie >> w & 1),
                     "tie-break chose a context outside the tie mask");
        p.winner = int(w);
        p.key = best;
        p.bound = tie & ~(std::uint64_t(1) << w) ? best : second;
        return p;
    }

    struct Entry
    {
        Cycle key;
        std::uint32_t ctx;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.key > b.key;
        }
    };

    /** File an eligible context under the exact key @p t: the live
     * bucket if it matches, the next bucket if it matches (or starts
     * it), the heap otherwise. The caller has already removed @p c
     * from both masks. */
    void
    place(unsigned c, std::uint64_t bit, Cycle t)
    {
        if (tie_) {
            if (t == tieKey_) {
                tie_ |= bit;
                return;
            }
            if (next_ == 0 && t > tieKey_) {
                next_ = bit;
                nextKey_ = t;
                return;
            }
        }
        if (next_ && t == nextKey_) {
            next_ |= bit;
            return;
        }
        push(c, t);
    }

    /** Open the live bucket at the true minimum over the next bucket
     * and the heap, absorbing every context tied there. The
     * one-slot-per-eligible-context invariant guarantees they all
     * surface. Leaves tie_ empty only when nothing is eligible. */
    void
    openBucket()
    {
        const bool heap_ok = dropStale();
        const Cycle hk = heap_ok ? heap_.front().key
                                 : std::numeric_limits<Cycle>::max();
        if (next_ && nextKey_ <= hk) {
            tieKey_ = nextKey_;
            tie_ = next_;
            next_ = 0;
            if (heap_ok && hk == tieKey_)
                absorbTies();
        } else if (heap_ok) {
            tieKey_ = hk;
            absorbTies();
        }
    }

    /** Move every heap entry at the bucket key into the bucket. */
    void
    absorbTies()
    {
        while (!heap_.empty() && heap_.front().key == tieKey_) {
            const Entry e = heap_.front();
            popTop();
            if ((eligible_ >> e.ctx & 1) && ready_[e.ctx] == e.key)
                tie_ |= std::uint64_t(1) << e.ctx;
        }
    }

    /** Discard stale top entries; true iff a valid minimum surfaced. */
    bool
    dropStale()
    {
        while (!heap_.empty()) {
            const Entry &e = heap_.front();
            if ((eligible_ >> e.ctx & 1) && ready_[e.ctx] == e.key)
                return true;
            popTop();
        }
        return false;
    }

    void
    push(unsigned c, Cycle t)
    {
        heap_.push_back({t, std::uint32_t(c)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    void
    popTop()
    {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }

    unsigned n_ = 0;
    /** Mirror of each context's current readyAt (entry staleness check). */
    std::vector<Cycle> ready_;
    std::vector<Entry> heap_;
    /** Bit c set: context c has not finished its program. */
    std::uint64_t live_ = 0;
    /** Bit c set: live and not blocked at a barrier. */
    std::uint64_t eligible_ = 0;
    /** Contexts whose readyAt is exactly tieKey_ — the live tie bucket.
     * While non-empty, tieKey_ is the minimum over all eligible
     * contexts (bits are cleared eagerly on every state change). */
    std::uint64_t tie_ = 0;
    Cycle tieKey_ = 0;
    /** Contexts whose readyAt is exactly nextKey_ — republishes that
     * landed on a common future key (lockstep advance). A pure heap
     * bypass: openBucket() takes the minimum of nextKey_ and the heap
     * top, so nextKey_ need not be the true second-smallest key. */
    std::uint64_t next_ = 0;
    Cycle nextKey_ = 0;
};

} // namespace sim
} // namespace hintm

#endif // HINTM_SIM_SCHED_INDEX_HH
