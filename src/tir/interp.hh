/**
 * @file
 * The TxIR interpreter. A Program holds the loaded module plus all shared
 * functional state (address space, allocator, per-thread RNGs); one
 * ThreadInterp per software thread steps the program to its next
 * simulation-visible boundary (memory access, TX begin/end, barrier) so
 * the timing layer can interleave threads, drive the memory hierarchy and
 * coordinate the HTM.
 *
 * Transactional semantics are split: this layer provides functional
 * checkpoint/rollback (registers, stack, heap allocations, store undo
 * log); abort *decisions* belong to the HTM controller.
 */

#ifndef HINTM_TIR_INTERP_HH
#define HINTM_TIR_INTERP_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "tir/address_space.hh"
#include "tir/allocator.hh"
#include "tir/ir.hh"

namespace hintm
{
namespace tir
{

/** Shared runtime image of a module. */
class Program
{
  public:
    /**
     * Lay out globals and create per-thread resources.
     * @param num_threads worker threads (the init phase gets one extra
     * arena and runs with tid == num_threads)
     */
    Program(Module mod, unsigned num_threads, std::uint64_t seed = 1);

    const Module &module() const { return mod_; }
    unsigned numThreads() const { return numThreads_; }
    ThreadId initTid() const { return ThreadId(numThreads_); }

    AddressSpace &space() { return space_; }
    Allocator &allocator() { return allocator_; }
    Rng &rng(ThreadId tid) { return rngs_.at(std::size_t(tid)); }

    Addr globalAddr(int global_id) const;
    Addr globalAddrByName(const std::string &name) const;

    /** When true, safe stores that survive an abort are checked for the
     * initializing property on the retry (§III: written-before-read). */
    bool validateSafeStores = false;

  private:
    Module mod_;
    unsigned numThreads_;
    AddressSpace space_;
    Allocator allocator_;
    std::vector<Rng> rngs_;
};

/** What a thread is stopped at. */
enum class StepKind : std::uint8_t
{
    Simple,   ///< executed only non-memory instructions (simpleInstrs)
    Mem,      ///< at a Load/Store: complete with completeMem()
    TxBegin,  ///< at a TxBegin: advance with enterTx()
    TxEnd,    ///< at a TxEnd: advance with completeTxEnd()
    Barrier,  ///< at a Barrier: advance with passBarrier()
    Annotate, ///< at an Annotate: advance with passAnnotate()
    Done,     ///< entry function returned
};

/** Boundary event returned by ThreadInterp::next(). */
struct Step
{
    StepKind kind = StepKind::Simple;
    /** Non-memory instructions executed before reaching the boundary. */
    std::uint64_t simpleInstrs = 0;
    // Valid when kind == Mem (addr also for Annotate):
    Addr addr = 0;
    AccessType accessType = AccessType::Read;
    /** The instruction carries a compiler safety hint. */
    bool staticSafe = false;
    /** Annotate only: region length in bytes. */
    std::uint64_t annotateLen = 0;
};

/** Interpreter state for one software thread. */
class ThreadInterp
{
  public:
    /**
     * @param entry_func function index to run
     * @param args values for the entry function's parameters
     */
    ThreadInterp(Program &prog, ThreadId tid, int entry_func,
                 std::vector<std::int64_t> args);

    /**
     * Run to the next boundary. Non-memory instructions execute inline
     * (their count is reported for cycle accounting). The boundary
     * instruction itself is NOT executed; use the matching complete call.
     */
    Step next();

    /** Perform the pending Load/Store functionally and advance. */
    void completeMem();

    /**
     * Advance past TxBegin. @p htm_mode selects hardware transactional
     * execution (checkpoint + undo logging) versus fallback-lock mode
     * (plain execution; TxEnd releases the lock at the runtime layer).
     */
    void enterTx(bool htm_mode);

    /** Advance past TxEnd; applies deferred frees. */
    void completeTxEnd();

    /**
     * Pre-abort conversion: the running hardware TX becomes a
     * lock-protected critical section. All effects so far stand; undo
     * state is discarded; execution continues from the current point
     * in fallback mode (TxEnd releases the lock at the runtime layer).
     */
    void convertToFallback();

    /** Advance past Barrier (runtime releases the barrier). */
    void passBarrier();

    /** Advance past Annotate (runtime applied the page annotation). */
    void passAnnotate();

    /**
     * Undo the TX's tracked stores in reverse order. Invoked by the HTM
     * controller's abort hook the moment an abort fires — other threads
     * must observe pre-TX data immediately.
     */
    void undoStores();

    /**
     * Thread-side abort completion: restore registers/stack to the
     * checkpoint (execution resumes AT the TxBegin) and roll back heap
     * allocations made inside the TX.
     */
    void rollbackToTxBegin();

    bool done() const { return done_; }
    ThreadId tid() const { return tid_; }
    bool inTx() const { return inTx_; }
    bool htmMode() const { return htmMode_; }
    /** Inside a suspend/resume escape window (accesses untracked). */
    bool suspended() const { return suspended_; }

    /** Total instructions executed (all kinds). */
    std::uint64_t instrCount() const { return instrCount_; }

  private:
    struct Frame
    {
        int fn;
        int block = 0;
        int ip = 0;
        std::vector<std::int64_t> regs;
        Addr stackOnEntry;
        int retDst = -1;
    };

    struct Checkpoint
    {
        std::vector<Frame> frames;
        Addr stackPtr;
    };

    const Instr &currentInstr() const;
    void advance();
    /** Execute a non-boundary instruction. */
    void execute(const Instr &ins);
    std::int64_t reg(int r) const;
    void setReg(int r, std::int64_t v);

    Program &prog_;
    ThreadId tid_;
    std::vector<Frame> frames_;
    Addr stackPtr_;
    bool done_ = false;

    bool inTx_ = false;
    bool htmMode_ = false;
    bool suspended_ = false;
    Checkpoint checkpoint_;
    /** (address, previous value) of tracked transactional stores. */
    std::vector<std::pair<Addr, std::int64_t>> undoLog_;
    /** Heap allocations made inside the active TX (freed on abort). */
    std::vector<Addr> txAllocs_;
    /** Frees requested inside the active TX (applied at commit). */
    std::vector<Addr> deferredFrees_;
    /** Targets of safe stores in the current TX (validation mode only). */
    std::unordered_set<Addr> safeStoreAddrs_;
    /** Safe-store targets of an aborted TX awaiting re-initialization
     * (validation mode only). */
    std::unordered_set<Addr> staleSafeStores_;

    bool memPending_ = false;
    Addr pendingAddr_ = 0;

    std::uint64_t instrCount_ = 0;
};

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_INTERP_HH
