/**
 * @file
 * The TxIR interpreter. A Program holds the loaded module plus all shared
 * functional state (address space, allocator, per-thread RNGs); one
 * ThreadInterp per software thread steps the program to its next
 * simulation-visible boundary (memory access, TX begin/end, barrier) so
 * the timing layer can interleave threads, drive the memory hierarchy and
 * coordinate the HTM.
 *
 * Two execution front-ends share one state representation:
 *
 *  - the *decoded* path (default) runs the pre-decoded, fused op stream
 *    built by decode.hh — see its header comment for the translation;
 *  - the *reference* path walks the original `Instr` storage and is kept
 *    reachable behind `--no-decode-cache` as the semantic baseline the
 *    decoded path is cross-checked against (DecodeCacheEquivalence).
 *
 * Thread state lives in a flat frame arena: one contiguous register file
 * (`regs_`) plus a stack of trivially-copyable FrameMeta records. Call is
 * a bump-pointer push into the arena (no allocation on the steady state)
 * and the TxBegin checkpoint/rollback is a bounded copy of the live arena
 * prefix instead of a deep copy of nested per-frame vectors.
 *
 * Transactional semantics are split: this layer provides functional
 * checkpoint/rollback (registers, stack, heap allocations, store undo
 * log); abort *decisions* belong to the HTM controller.
 */

#ifndef HINTM_TIR_INTERP_HH
#define HINTM_TIR_INTERP_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "tir/address_space.hh"
#include "tir/allocator.hh"
#include "tir/decode.hh"
#include "tir/ir.hh"

namespace hintm
{
namespace tir
{

/** Shared runtime image of a module. */
class Program
{
  public:
    /**
     * Lay out globals and create per-thread resources.
     * @param num_threads worker threads (the init phase gets one extra
     * arena and runs with tid == num_threads)
     * @param decode_cache pre-decode every function into the fused op
     * stream (interpreter fast path); false selects the reference
     * Instr-walking interpreter
     */
    Program(Module mod, unsigned num_threads, std::uint64_t seed = 1,
            bool decode_cache = true);

    const Module &module() const { return mod_; }
    unsigned numThreads() const { return numThreads_; }
    ThreadId initTid() const { return ThreadId(numThreads_); }

    /** Decoded image, or nullptr when running the reference path. */
    const DecodedModule *decoded() const { return decoded_.get(); }

    AddressSpace &space() { return space_; }
    Allocator &allocator() { return allocator_; }
    Rng &rng(ThreadId tid) { return rngs_.at(std::size_t(tid)); }

    Addr globalAddr(int global_id) const;
    Addr globalAddrByName(const std::string &name) const;

    /** When true, safe stores that survive an abort are checked for the
     * initializing property on the retry (§III: written-before-read). */
    bool validateSafeStores = false;

    /**
     * Mutable program state: memory image, heap allocator, RNG streams.
     * The module and decoded image are immutable and not captured, which
     * is what lets one captured state seed programs built with different
     * execution options (e.g. decode cache on/off).
     */
    struct State
    {
        AddressSpace::State space;
        Allocator::State alloc;
        std::vector<Rng> rngs;
    };

    State saveState() const
    {
        return {space_.saveState(), allocator_.saveState(), rngs_};
    }

    void loadState(const State &s)
    {
        HINTM_ASSERT(s.rngs.size() == rngs_.size(),
                     "program state thread-count mismatch");
        space_.loadState(s.space);
        allocator_.loadState(s.alloc);
        rngs_ = s.rngs;
    }

  private:
    Module mod_;
    unsigned numThreads_;
    AddressSpace space_;
    Allocator allocator_;
    std::vector<Rng> rngs_;
    std::unique_ptr<DecodedModule> decoded_;
};

/** What a thread is stopped at. */
enum class StepKind : std::uint8_t
{
    Simple,   ///< executed only non-memory instructions (simpleInstrs)
    Mem,      ///< at a Load/Store: complete with completeMem()
    TxBegin,  ///< at a TxBegin: advance with enterTx()
    TxEnd,    ///< at a TxEnd: advance with completeTxEnd()
    Barrier,  ///< at a Barrier: advance with passBarrier()
    Annotate, ///< at an Annotate: advance with passAnnotate()
    Done,     ///< entry function returned
};

/** Boundary event returned by ThreadInterp::next(). */
struct Step
{
    StepKind kind = StepKind::Simple;
    /** Non-memory instructions executed before reaching the boundary. */
    std::uint64_t simpleInstrs = 0;
    // Valid when kind == Mem (addr also for Annotate):
    Addr addr = 0;
    AccessType accessType = AccessType::Read;
    /** The instruction carries a compiler safety hint. */
    bool staticSafe = false;
    /** Annotate only: region length in bytes. */
    std::uint64_t annotateLen = 0;
    /** Source position of a Mem or TxBegin boundary (function/block/
     * instr indices into the module), for diagnostics such as the hint
     * oracle and the TX-site ids of the observability journal. */
    std::int32_t fn = -1;
    std::int32_t srcBlock = -1;
    std::int32_t srcInstr = -1;
};

/** Interpreter state for one software thread. */
class ThreadInterp
{
  public:
    /**
     * @param entry_func function index to run
     * @param args values for the entry function's parameters
     */
    ThreadInterp(Program &prog, ThreadId tid, int entry_func,
                 std::vector<std::int64_t> args);

    /**
     * Run to the next boundary. Non-memory instructions execute inline
     * (their count is reported for cycle accounting). The boundary
     * instruction itself is NOT executed; use the matching complete call.
     */
    Step next();

    /** Perform the pending Load/Store functionally and advance. */
    void completeMem();

    /**
     * Advance past TxBegin. @p htm_mode selects hardware transactional
     * execution (checkpoint + undo logging) versus fallback-lock mode
     * (plain execution; TxEnd releases the lock at the runtime layer).
     */
    void enterTx(bool htm_mode);

    /** Advance past TxEnd; applies deferred frees. */
    void completeTxEnd();

    /**
     * Pre-abort conversion: the running hardware TX becomes a
     * lock-protected critical section. All effects so far stand; undo
     * state is discarded; execution continues from the current point
     * in fallback mode (TxEnd releases the lock at the runtime layer).
     */
    void convertToFallback();

    /** Advance past Barrier (runtime releases the barrier). */
    void passBarrier();

    /** Advance past Annotate (runtime applied the page annotation). */
    void passAnnotate();

    /**
     * Undo the TX's tracked stores in reverse order. Invoked by the HTM
     * controller's abort hook the moment an abort fires — other threads
     * must observe pre-TX data immediately.
     */
    void undoStores();

    /**
     * Thread-side abort completion: restore registers/stack to the
     * checkpoint (execution resumes AT the TxBegin) and roll back heap
     * allocations made inside the TX.
     */
    void rollbackToTxBegin();

    bool done() const { return done_; }
    ThreadId tid() const { return tid_; }
    bool inTx() const { return inTx_; }
    bool htmMode() const { return htmMode_; }
    /** Inside a suspend/resume escape window (accesses untracked). */
    bool suspended() const { return suspended_; }

    /** Total instructions executed (all kinds). */
    std::uint64_t instrCount() const { return instrCount_; }

  private:
    /**
     * Per-call activation record. Registers live in the shared arena at
     * [regBase, regBase + numRegs); `ip` is the instruction index within
     * `block` on the reference path and the absolute decoded-op index
     * (block stays 0) on the decoded path. Trivially copyable so the
     * TX checkpoint is a flat vector copy.
     */
    struct FrameMeta
    {
        std::int32_t fn = -1;
        std::int32_t block = 0;
        std::int32_t ip = 0;
        std::int32_t retDst = -1;
        std::uint32_t regBase = 0;
        std::uint32_t numRegs = 0;
        Addr stackOnEntry = 0;
    };

    struct Checkpoint
    {
        std::vector<FrameMeta> frames;
        /** Live arena prefix: regs_[0 .. frames.back() live window). */
        std::vector<std::int64_t> regs;
        Addr stackPtr = 0;
    };

  public:
    /**
     * Complete thread state at a scheduler boundary. The two decoded-path
     * convenience pointers (pendingDOp_/pendingRegs_) are derived from
     * the top frame on load rather than captured.
     */
    struct State
    {
        std::vector<FrameMeta> frames;
        std::vector<std::int64_t> regs;
        Addr stackPtr = 0;
        bool done = false;
        bool inTx = false;
        bool htmMode = false;
        bool suspended = false;
        Checkpoint checkpoint;
        std::vector<std::pair<Addr, std::int64_t>> undoLog;
        std::vector<Addr> txAllocs;
        std::vector<Addr> deferredFrees;
        std::unordered_set<Addr> safeStoreAddrs;
        std::unordered_set<Addr> staleSafeStores;
        bool memPending = false;
        Addr pendingAddr = 0;
        std::uint64_t instrCount = 0;
    };

    State saveState() const;

    /** Restore a state captured from an identically-constructed thread
     * (same program/tid/entry). */
    void loadState(const State &s);

  private:
    Step nextRef();
    Step nextDec();
    void completeMemRef();
    void completeMemDec();

    const Instr &currentInstr() const;
    const DecodedOp &currentDOp() const;
    /** The boundary op the thread is stopped at matches, on either path. */
    bool atBoundary(Opcode op, DOp dop) const;
    void advance();
    /** Reference path: execute a non-boundary instruction. */
    void execute(const Instr &ins);
    /** Push a callee activation: bump-pointer arena window, zero-filled,
     * params copied from the caller window. */
    void pushFrame(int fn, std::uint32_t num_regs, int ret_dst,
                   const std::int32_t *arg_regs, std::size_t num_args);
    std::int64_t reg(int r) const;
    void setReg(int r, std::int64_t v);

    Program &prog_;
    ThreadId tid_;
    /** Decoded image (null = reference path). */
    const DecodedModule *dec_;
    std::vector<FrameMeta> frames_;
    /** Flat register arena; frame windows stacked bottom-up. Never
     * shrinks — a frame pop just lowers the live prefix. */
    std::vector<std::int64_t> regs_;
    Addr stackPtr_;
    bool done_ = false;

    bool inTx_ = false;
    bool htmMode_ = false;
    bool suspended_ = false;
    Checkpoint checkpoint_;
    /** (address, previous value) of tracked transactional stores. */
    std::vector<std::pair<Addr, std::int64_t>> undoLog_;
    /** Heap allocations made inside the active TX (freed on abort). */
    std::vector<Addr> txAllocs_;
    /** Frees requested inside the active TX (applied at commit). */
    std::vector<Addr> deferredFrees_;
    /** Targets of safe stores in the current TX (validation mode only). */
    std::unordered_set<Addr> safeStoreAddrs_;
    /** Safe-store targets of an aborted TX awaiting re-initialization
     * (validation mode only). */
    std::unordered_set<Addr> staleSafeStores_;

    bool memPending_ = false;
    Addr pendingAddr_ = 0;
    /** Decoded path: the op of the pending access plus its register
     * window, cached at the boundary so completeMem() skips the
     * frame/function lookup chain. Stable between next() and
     * completeMem(): nothing pushes frames or grows the arena while an
     * access is outstanding. */
    const DecodedOp *pendingDOp_ = nullptr;
    std::int64_t *pendingRegs_ = nullptr;

    std::uint64_t instrCount_ = 0;
};

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_INTERP_HH
