/**
 * @file
 * Heap allocator for TxIR programs: one bump-plus-free-list arena per
 * thread (plus one for the init phase), mimicking per-thread malloc
 * arenas. Arena placement keeps different threads' heaps on disjoint
 * pages, which is what makes dynamic page classification effective on
 * thread-private scratchpads.
 */

#ifndef HINTM_TIR_ALLOCATOR_HH
#define HINTM_TIR_ALLOCATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hintm
{
namespace tir
{

/** Multi-arena heap allocator. */
class Allocator
{
  public:
    /**
     * @param num_arenas arenas (typically numThreads + 1 for init)
     */
    explicit Allocator(unsigned num_arenas);

    /** Allocate @p bytes (rounded up to 8) from @p arena. */
    Addr alloc(unsigned arena, std::uint64_t bytes);

    /** Release an allocation previously returned by alloc(). */
    void release(Addr p);

    /** Size of the live allocation at @p p (0 when unknown). */
    std::uint64_t sizeOf(Addr p) const;

    /** Total bytes currently live across all arenas. */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Optional observer invoked on every release with the freed range
     * (the hint oracle clears shadow state across lifetime boundaries).
     * Purely observational — allocation behavior is unaffected. */
    std::function<void(Addr, std::uint64_t)> onRelease;

    unsigned numArenas() const { return unsigned(arenas_.size()); }

  private:
    struct Arena
    {
        Addr base;
        Addr bump;
        Addr limit;
        /** size -> reusable addresses */
        std::map<std::uint64_t, std::vector<Addr>> freeLists;
    };

    struct Allocation
    {
        unsigned arena;
        std::uint64_t size;
    };

  public:
    /** Full allocator state; arena count must match on load. */
    struct State
    {
        std::vector<Arena> arenas;
        std::unordered_map<Addr, Allocation> live;
        std::uint64_t liveBytes = 0;
    };

    State saveState() const { return {arenas_, live_, liveBytes_}; }

    void loadState(const State &s)
    {
        arenas_ = s.arenas;
        live_ = s.live;
        liveBytes_ = s.liveBytes;
    }

  private:
    std::vector<Arena> arenas_;
    std::unordered_map<Addr, Allocation> live_;
    std::uint64_t liveBytes_ = 0;
};

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_ALLOCATOR_HH
