#include "ir.hh"

#include <sstream>

namespace hintm
{
namespace tir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::Alloca: return "alloca";
      case Opcode::Malloc: return "malloc";
      case Opcode::Free: return "free";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Gep: return "gep";
      case Opcode::GlobalAddr: return "globaladdr";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::TxBegin: return "txbegin";
      case Opcode::TxEnd: return "txend";
      case Opcode::TxSuspend: return "txsuspend";
      case Opcode::TxResume: return "txresume";
      case Opcode::Annotate: return "annotate";
      case Opcode::ThreadId: return "threadid";
      case Opcode::Rand: return "rand";
      case Opcode::Barrier: return "barrier";
      case Opcode::Print: return "print";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

int
Module::findFunction(const std::string &name) const
{
    for (std::size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name)
            return int(i);
    }
    return -1;
}

int
Module::findGlobal(const std::string &name) const
{
    for (std::size_t i = 0; i < globals.size(); ++i) {
        if (globals[i].name == name)
            return int(i);
    }
    return -1;
}

std::string
Module::print() const
{
    std::ostringstream os;
    for (const auto &g : globals)
        os << "global @" << g.name << " [" << g.sizeBytes << "B]\n";
    for (const auto &fn : functions) {
        os << "fn " << fn.name << "(params=" << fn.numParams
           << ", regs=" << fn.numRegs << ")\n";
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            os << "  bb" << b << ":\n";
            for (const auto &ins : fn.blocks[b].instrs) {
                os << "    " << opcodeName(ins.op);
                if (ins.safe)
                    os << ".safe";
                if (ins.dst >= 0)
                    os << " r" << ins.dst << " <-";
                if (ins.a >= 0)
                    os << " r" << ins.a;
                if (ins.b >= 0)
                    os << " r" << ins.b;
                if (ins.op == Opcode::Call) {
                    os << " fn#" << ins.imm << "(";
                    for (std::size_t i = 0; i < ins.args.size(); ++i)
                        os << (i ? ", r" : "r") << ins.args[i];
                    os << ")";
                } else if (ins.imm || ins.imm2) {
                    os << " imm=" << ins.imm;
                    if (ins.imm2)
                        os << " imm2=" << ins.imm2;
                }
                os << "\n";
            }
        }
    }
    return os.str();
}

} // namespace tir
} // namespace hintm
