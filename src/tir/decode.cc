#include "decode.hh"

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

const char *
dopName(DOp op)
{
    switch (op) {
      case DOp::Const: return "const";
      case DOp::Mov: return "mov";
      case DOp::Add: return "add";
      case DOp::Sub: return "sub";
      case DOp::Mul: return "mul";
      case DOp::Div: return "div";
      case DOp::Mod: return "mod";
      case DOp::And: return "and";
      case DOp::Or: return "or";
      case DOp::Xor: return "xor";
      case DOp::Shl: return "shl";
      case DOp::Shr: return "shr";
      case DOp::CmpEq: return "cmpeq";
      case DOp::CmpNe: return "cmpne";
      case DOp::CmpLt: return "cmplt";
      case DOp::CmpLe: return "cmple";
      case DOp::CmpGt: return "cmpgt";
      case DOp::CmpGe: return "cmpge";
      case DOp::AddI: return "addi";
      case DOp::SubI: return "subi";
      case DOp::MulI: return "muli";
      case DOp::DivI: return "divi";
      case DOp::ModI: return "modi";
      case DOp::AndI: return "andi";
      case DOp::OrI: return "ori";
      case DOp::XorI: return "xori";
      case DOp::ShlI: return "shli";
      case DOp::ShrI: return "shri";
      case DOp::CmpEqI: return "cmpeqi";
      case DOp::CmpNeI: return "cmpnei";
      case DOp::CmpLtI: return "cmplti";
      case DOp::CmpLeI: return "cmplei";
      case DOp::CmpGtI: return "cmpgti";
      case DOp::CmpGeI: return "cmpgei";
      case DOp::Alloca: return "alloca";
      case DOp::Malloc: return "malloc";
      case DOp::Free: return "free";
      case DOp::Gep: return "gep";
      case DOp::Load: return "load";
      case DOp::Store: return "store";
      case DOp::GepLoad: return "gepload";
      case DOp::GepStore: return "gepstore";
      case DOp::Jmp: return "jmp";
      case DOp::CondJmp: return "condjmp";
      case DOp::CmpBr: return "cmpbr";
      case DOp::CmpBrI: return "cmpbri";
      case DOp::Call: return "call";
      case DOp::Ret: return "ret";
      case DOp::TxBegin: return "txbegin";
      case DOp::TxEnd: return "txend";
      case DOp::TxSuspend: return "txsuspend";
      case DOp::TxResume: return "txresume";
      case DOp::Annotate: return "annotate";
      case DOp::ThreadId: return "threadid";
      case DOp::Rand: return "rand";
      case DOp::Barrier: return "barrier";
      case DOp::Print: return "print";
      case DOp::Nop: return "nop";
    }
    return "?";
}

namespace
{

/** Reg-reg ALU/compare opcode -> DOp (must stay table-identical). */
bool
aluDop(Opcode op, DOp &out)
{
    switch (op) {
      case Opcode::Add: out = DOp::Add; return true;
      case Opcode::Sub: out = DOp::Sub; return true;
      case Opcode::Mul: out = DOp::Mul; return true;
      case Opcode::Div: out = DOp::Div; return true;
      case Opcode::Mod: out = DOp::Mod; return true;
      case Opcode::And: out = DOp::And; return true;
      case Opcode::Or: out = DOp::Or; return true;
      case Opcode::Xor: out = DOp::Xor; return true;
      case Opcode::Shl: out = DOp::Shl; return true;
      case Opcode::Shr: out = DOp::Shr; return true;
      case Opcode::CmpEq: out = DOp::CmpEq; return true;
      case Opcode::CmpNe: out = DOp::CmpNe; return true;
      case Opcode::CmpLt: out = DOp::CmpLt; return true;
      case Opcode::CmpLe: out = DOp::CmpLe; return true;
      case Opcode::CmpGt: out = DOp::CmpGt; return true;
      case Opcode::CmpGe: out = DOp::CmpGe; return true;
      default: return false;
    }
}

/** Reg-reg DOp -> reg-imm DOp (the Const-folded form). */
DOp
immForm(DOp op)
{
    switch (op) {
      case DOp::Add: return DOp::AddI;
      case DOp::Sub: return DOp::SubI;
      case DOp::Mul: return DOp::MulI;
      case DOp::Div: return DOp::DivI;
      case DOp::Mod: return DOp::ModI;
      case DOp::And: return DOp::AndI;
      case DOp::Or: return DOp::OrI;
      case DOp::Xor: return DOp::XorI;
      case DOp::Shl: return DOp::ShlI;
      case DOp::Shr: return DOp::ShrI;
      case DOp::CmpEq: return DOp::CmpEqI;
      case DOp::CmpNe: return DOp::CmpNeI;
      case DOp::CmpLt: return DOp::CmpLtI;
      case DOp::CmpLe: return DOp::CmpLeI;
      case DOp::CmpGt: return DOp::CmpGtI;
      case DOp::CmpGe: return DOp::CmpGeI;
      default: HINTM_PANIC("no imm form for ", dopName(op));
    }
}

/** Mirrored DOp for swapping operands: a <op> b == b <mirror(op)> a.
 * Only defined for commutative ops and compares. */
bool
mirrorDop(DOp op, DOp &out)
{
    switch (op) {
      case DOp::Add: case DOp::Mul: case DOp::And:
      case DOp::Or: case DOp::Xor: case DOp::CmpEq: case DOp::CmpNe:
        out = op;
        return true;
      case DOp::CmpLt: out = DOp::CmpGt; return true;
      case DOp::CmpLe: out = DOp::CmpGe; return true;
      case DOp::CmpGt: out = DOp::CmpLt; return true;
      case DOp::CmpGe: out = DOp::CmpLe; return true;
      default: return false;
    }
}

bool
isCmp(DOp op)
{
    return op >= DOp::CmpEq && op <= DOp::CmpGe;
}

bool
isCmpI(DOp op)
{
    return op >= DOp::CmpEqI && op <= DOp::CmpGeI;
}

Cond
condOf(DOp op)
{
    switch (op) {
      case DOp::CmpEq: case DOp::CmpEqI: return Cond::Eq;
      case DOp::CmpNe: case DOp::CmpNeI: return Cond::Ne;
      case DOp::CmpLt: case DOp::CmpLtI: return Cond::Lt;
      case DOp::CmpLe: case DOp::CmpLeI: return Cond::Le;
      case DOp::CmpGt: case DOp::CmpGtI: return Cond::Gt;
      case DOp::CmpGe: case DOp::CmpGeI: return Cond::Ge;
      default: HINTM_PANIC("no condition for ", dopName(op));
    }
}

} // namespace

DecodedFunction
decodeFunction(const Module &mod, const Function &fn)
{
    DecodedFunction df;
    df.numRegs = fn.numRegs;
    df.numParams = fn.numParams;
    HINTM_ASSERT(!fn.blocks.empty(), "decode of undefined function ",
                 fn.name);

    auto reg_ok = [&](int r, bool required) {
        if (!required && r < 0)
            return;
        HINTM_ASSERT(r >= 0 && r < int(fn.numRegs), "bad register r", r,
                     " decoding ", fn.name);
    };
    auto block_ok = [&](std::int64_t b) {
        HINTM_ASSERT(b >= 0 && b < std::int64_t(fn.blocks.size()),
                     "bad block target ", b, " decoding ", fn.name);
    };

    // Ops whose t1/t2 still hold source block ids, patched once all
    // block start offsets are known.
    std::vector<std::int32_t> patches;

    df.blockStart.assign(fn.blocks.size(), 0);
    for (int b = 0; b < int(fn.blocks.size()); ++b) {
        df.blockStart[b] = std::int32_t(df.ops.size());
        const auto &instrs = fn.blocks[b].instrs;
        HINTM_ASSERT(!instrs.empty(), "empty block decoding ", fn.name);
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const Instr &ins = instrs[i];
            // Source index of this op, captured before fusion advances i.
            const std::int32_t src_i = std::int32_t(i);
            const Instr *next =
                i + 1 < instrs.size() ? &instrs[i + 1] : nullptr;
            DecodedOp o;
            switch (ins.op) {
              case Opcode::Const:
              case Opcode::GlobalAddr: {
                reg_ok(ins.dst, true);
                std::int64_t value = ins.imm;
                if (ins.op == Opcode::GlobalAddr) {
                    HINTM_ASSERT(ins.imm >= 0 &&
                                     ins.imm <
                                         std::int64_t(mod.globals.size()),
                                 "bad global id decoding ", fn.name);
                    value = std::int64_t(
                        mod.globals[std::size_t(ins.imm)].addr);
                }
                // Try folding into the next ALU/compare as a reg-imm
                // form. The Const's register is still written (the
                // program may read it later); only the dispatch and the
                // operand re-read are saved.
                DecodedOp fused;
                DOp alu;
                bool can_fuse = false;
                if (next && aluDop(next->op, alu)) {
                    if (next->b == ins.dst) {
                        // dst = a <op> k.
                        can_fuse = !(alu == DOp::Div || alu == DOp::Mod)
                                   || value != 0;
                        fused.op = immForm(alu);
                        fused.a = next->a;
                    } else if (next->a == ins.dst &&
                               next->b != ins.dst &&
                               mirrorDop(alu, alu)) {
                        // k <op> b == b <mirror(op)> k.
                        can_fuse = true;
                        fused.op = immForm(alu);
                        fused.a = next->b;
                    }
                }
                if (can_fuse) {
                    reg_ok(next->dst, true);
                    reg_ok(fused.a, true);
                    fused.dst = next->dst;
                    fused.xdst = ins.dst;
                    fused.ximm = value;
                    fused.n = 2;
                    // Second-level fusion: a folded compare whose
                    // result immediately feeds the block's CondBr.
                    const Instr *third =
                        i + 2 < instrs.size() ? &instrs[i + 2] : nullptr;
                    if (isCmpI(fused.op) && third &&
                        third->op == Opcode::CondBr &&
                        third->a == fused.dst) {
                        block_ok(third->imm);
                        block_ok(third->imm2);
                        fused.cc = condOf(fused.op);
                        fused.op = DOp::CmpBrI;
                        fused.t1 = std::int32_t(third->imm);
                        fused.t2 = std::int32_t(third->imm2);
                        fused.n = 3;
                        patches.push_back(std::int32_t(df.ops.size()));
                        i += 2;
                    } else {
                        i += 1;
                    }
                    df.ops.push_back(fused);
                    df.srcRefs.push_back({std::int32_t(b), src_i});
                    continue;
                }
                o.op = DOp::Const;
                o.dst = ins.dst;
                o.imm = value;
                break;
              }
              case Opcode::Mov:
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                o.op = DOp::Mov;
                o.dst = ins.dst;
                o.a = ins.a;
                break;
              case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
              case Opcode::Div: case Opcode::Mod: case Opcode::And:
              case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
              case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
              case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
              case Opcode::CmpGe: {
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                reg_ok(ins.b, true);
                DOp alu;
                aluDop(ins.op, alu);
                // Compare feeding the block's CondBr -> fused
                // compare-and-branch.
                if (isCmp(alu) && next && next->op == Opcode::CondBr &&
                    next->a == ins.dst) {
                    block_ok(next->imm);
                    block_ok(next->imm2);
                    o.op = DOp::CmpBr;
                    o.cc = condOf(alu);
                    o.dst = ins.dst;
                    o.a = ins.a;
                    o.b = ins.b;
                    o.t1 = std::int32_t(next->imm);
                    o.t2 = std::int32_t(next->imm2);
                    o.n = 2;
                    patches.push_back(std::int32_t(df.ops.size()));
                    df.ops.push_back(o);
                    df.srcRefs.push_back({std::int32_t(b), src_i});
                    i += 1;
                    continue;
                }
                o.op = alu;
                o.dst = ins.dst;
                o.a = ins.a;
                o.b = ins.b;
                break;
              }
              case Opcode::Alloca:
                reg_ok(ins.dst, true);
                o.op = DOp::Alloca;
                o.dst = ins.dst;
                o.imm = ins.imm;
                break;
              case Opcode::Malloc:
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                o.op = DOp::Malloc;
                o.dst = ins.dst;
                o.a = ins.a;
                break;
              case Opcode::Free:
                reg_ok(ins.a, true);
                o.op = DOp::Free;
                o.a = ins.a;
                break;
              case Opcode::Gep:
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                reg_ok(ins.b, false);
                // Address computation feeding the next memory boundary
                // folds into it: one dispatch computes the address,
                // writes the Gep register, and stops at the access.
                if (next && next->op == Opcode::Load &&
                    next->a == ins.dst) {
                    reg_ok(next->dst, true);
                    o.op = DOp::GepLoad;
                    o.dst = next->dst;
                    o.ximm = next->imm;
                    o.safe = next->safe;
                } else if (next && next->op == Opcode::Store &&
                           next->a == ins.dst) {
                    reg_ok(next->b, true);
                    o.op = DOp::GepStore;
                    o.dst = next->b; // store value register
                    o.ximm = next->imm;
                    o.safe = next->safe;
                } else {
                    o.op = DOp::Gep;
                    o.dst = ins.dst;
                }
                if (o.op != DOp::Gep) {
                    o.xdst = ins.dst;
                    o.n = 2;
                }
                o.a = ins.a;
                o.b = ins.b;
                o.imm = ins.imm;
                o.imm2 = ins.imm2;
                if (o.op != DOp::Gep)
                    i += 1;
                break;
              case Opcode::Load:
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                o.op = DOp::Load;
                o.dst = ins.dst;
                o.a = ins.a;
                o.imm = ins.imm;
                o.safe = ins.safe;
                break;
              case Opcode::Store:
                reg_ok(ins.a, true);
                reg_ok(ins.b, true);
                o.op = DOp::Store;
                o.a = ins.a;
                o.b = ins.b;
                o.imm = ins.imm;
                o.safe = ins.safe;
                break;
              case Opcode::Br:
                block_ok(ins.imm);
                o.op = DOp::Jmp;
                o.t1 = std::int32_t(ins.imm);
                patches.push_back(std::int32_t(df.ops.size()));
                break;
              case Opcode::CondBr:
                reg_ok(ins.a, true);
                block_ok(ins.imm);
                block_ok(ins.imm2);
                o.op = DOp::CondJmp;
                o.a = ins.a;
                o.t1 = std::int32_t(ins.imm);
                o.t2 = std::int32_t(ins.imm2);
                patches.push_back(std::int32_t(df.ops.size()));
                break;
              case Opcode::Call: {
                HINTM_ASSERT(ins.imm >= 0 &&
                                 ins.imm <
                                     std::int64_t(mod.functions.size()),
                             "bad callee decoding ", fn.name);
                const Function &callee =
                    mod.functions[std::size_t(ins.imm)];
                HINTM_ASSERT(!callee.blocks.empty(),
                             "call of undefined function ", callee.name,
                             " decoding ", fn.name);
                HINTM_ASSERT(ins.args.size() == callee.numParams,
                             "arity mismatch calling ", callee.name,
                             " decoding ", fn.name);
                reg_ok(ins.dst, false);
                o.op = DOp::Call;
                o.dst = ins.dst;
                o.imm = ins.imm;
                o.argsBegin = std::uint32_t(df.argPool.size());
                o.argsCount = std::uint32_t(ins.args.size());
                for (const int arg : ins.args) {
                    reg_ok(arg, true);
                    df.argPool.push_back(std::int32_t(arg));
                }
                break;
              }
              case Opcode::Ret:
                reg_ok(ins.a, false);
                o.op = DOp::Ret;
                o.a = ins.a;
                break;
              case Opcode::TxBegin: o.op = DOp::TxBegin; break;
              case Opcode::TxEnd: o.op = DOp::TxEnd; break;
              case Opcode::TxSuspend: o.op = DOp::TxSuspend; break;
              case Opcode::TxResume: o.op = DOp::TxResume; break;
              case Opcode::Annotate:
                reg_ok(ins.a, true);
                reg_ok(ins.b, true);
                o.op = DOp::Annotate;
                o.a = ins.a;
                o.b = ins.b;
                break;
              case Opcode::ThreadId:
                reg_ok(ins.dst, true);
                o.op = DOp::ThreadId;
                o.dst = ins.dst;
                break;
              case Opcode::Rand:
                reg_ok(ins.dst, true);
                reg_ok(ins.a, true);
                o.op = DOp::Rand;
                o.dst = ins.dst;
                o.a = ins.a;
                break;
              case Opcode::Barrier: o.op = DOp::Barrier; break;
              case Opcode::Print:
                reg_ok(ins.a, true);
                o.op = DOp::Print;
                o.a = ins.a;
                break;
              case Opcode::Nop: o.op = DOp::Nop; break;
            }
            df.ops.push_back(o);
            // The fused memory forms answer for the access instruction
            // (the Load/Store after the Gep), matching the reference
            // interpreter's position at the memory boundary.
            const bool fused_mem =
                o.op == DOp::GepLoad || o.op == DOp::GepStore;
            df.srcRefs.push_back(
                {std::int32_t(b), fused_mem ? src_i + 1 : src_i});
        }
    }

    // Branch targets: source block id -> absolute op index.
    for (const std::int32_t at : patches) {
        DecodedOp &o = df.ops[std::size_t(at)];
        o.t1 = df.blockStart[std::size_t(o.t1)];
        if (o.op != DOp::Jmp)
            o.t2 = df.blockStart[std::size_t(o.t2)];
    }
    return df;
}

DecodedModule
decodeModule(const Module &mod)
{
    DecodedModule dm;
    dm.fns.reserve(mod.functions.size());
    for (const Function &fn : mod.functions) {
        if (fn.blocks.empty())
            dm.fns.emplace_back(); // declared stub: never executed
        else
            dm.fns.push_back(decodeFunction(mod, fn));
    }
    return dm;
}

} // namespace tir
} // namespace hintm
