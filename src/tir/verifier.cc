#include "verifier.hh"

#include <sstream>
#include <vector>

namespace hintm
{
namespace tir
{

namespace
{

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

std::string
at(const Function &fn, int block, int ip)
{
    std::ostringstream os;
    os << " [" << fn.name << " bb" << block << ":" << ip << "]";
    return os.str();
}

/** Per-function structural checks. */
std::optional<std::string>
verifyFunction(const Module &mod, const Function &fn)
{
    if (fn.blocks.empty())
        return "function " + fn.name + " has no body";
    if (fn.numParams > fn.numRegs)
        return "function " + fn.name + " has more params than regs";

    auto check_reg = [&](int r, bool required, int b,
                         int i) -> std::optional<std::string> {
        if (!required && r < 0)
            return std::nullopt;
        if (r < 0 || r >= int(fn.numRegs))
            return "bad register r" + std::to_string(r) + at(fn, b, i);
        return std::nullopt;
    };
    auto check_block = [&](std::int64_t b, int cb,
                           int i) -> std::optional<std::string> {
        if (b < 0 || b >= std::int64_t(fn.blocks.size()))
            return "bad block target " + std::to_string(b) + at(fn, cb, i);
        return std::nullopt;
    };

    for (int b = 0; b < int(fn.blocks.size()); ++b) {
        const auto &instrs = fn.blocks[b].instrs;
        if (instrs.empty())
            return "empty block" + at(fn, b, 0);
        for (int i = 0; i < int(instrs.size()); ++i) {
            const Instr &ins = instrs[i];
            const bool last = i == int(instrs.size()) - 1;
            if (isTerminator(ins.op) && !last)
                return "terminator mid-block" + at(fn, b, i);
            if (!isTerminator(ins.op) && last)
                return "block lacks terminator" + at(fn, b, i);

            switch (ins.op) {
              case Opcode::Const:
              case Opcode::Alloca:
              case Opcode::ThreadId:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                break;
              case Opcode::GlobalAddr:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                if (ins.imm < 0 ||
                    ins.imm >= std::int64_t(mod.globals.size()))
                    return "bad global id" + at(fn, b, i);
                break;
              case Opcode::Mov:
              case Opcode::Malloc:
              case Opcode::Rand:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                break;
              case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
              case Opcode::Div: case Opcode::Mod: case Opcode::And:
              case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
              case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
              case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
              case Opcode::CmpGe:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                if (auto e = check_reg(ins.b, true, b, i))
                    return e;
                break;
              case Opcode::Gep:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                if (auto e = check_reg(ins.b, false, b, i))
                    return e;
                break;
              case Opcode::Load:
                if (auto e = check_reg(ins.dst, true, b, i))
                    return e;
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                break;
              case Opcode::Store:
              case Opcode::Annotate:
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                if (auto e = check_reg(ins.b, true, b, i))
                    return e;
                break;
              case Opcode::Free:
              case Opcode::Print:
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                break;
              case Opcode::Br:
                if (auto e = check_block(ins.imm, b, i))
                    return e;
                break;
              case Opcode::CondBr:
                if (auto e = check_reg(ins.a, true, b, i))
                    return e;
                if (auto e = check_block(ins.imm, b, i))
                    return e;
                if (auto e = check_block(ins.imm2, b, i))
                    return e;
                break;
              case Opcode::Call: {
                if (ins.imm < 0 ||
                    ins.imm >= std::int64_t(mod.functions.size()))
                    return "bad callee" + at(fn, b, i);
                const Function &callee = mod.functions[ins.imm];
                if (callee.blocks.empty())
                    return "call of undefined function " + callee.name +
                           at(fn, b, i);
                if (ins.args.size() != callee.numParams)
                    return "arity mismatch calling " + callee.name +
                           at(fn, b, i);
                for (int arg : ins.args) {
                    if (auto e = check_reg(arg, true, b, i))
                        return e;
                }
                if (auto e = check_reg(ins.dst, false, b, i))
                    return e;
                break;
              }
              case Opcode::Ret:
                if (auto e = check_reg(ins.a, false, b, i))
                    return e;
                break;
              case Opcode::TxBegin:
              case Opcode::TxEnd:
              case Opcode::TxSuspend:
              case Opcode::TxResume:
              case Opcode::Barrier:
              case Opcode::Nop:
                break;
            }
        }
    }
    return std::nullopt;
}

/**
 * TX-region dataflow over three states (0 = outside, 1 = inside,
 * 2 = suspended): each block must be reached with a consistent state;
 * TxBegin requires outside, TxEnd requires inside (not suspended),
 * suspend/resume must pair, and barriers/returns only happen outside.
 */
std::optional<std::string>
verifyTxRegions(const Function &fn)
{
    constexpr int unknown = -1;
    std::vector<int> state(fn.blocks.size(), unknown);
    std::vector<int> work;
    state[0] = 0;
    work.push_back(0);

    auto propagate = [&](std::int64_t target, int tx,
                         int b, int i) -> std::optional<std::string> {
        const auto t = std::size_t(target);
        if (state[t] == unknown) {
            state[t] = tx;
            work.push_back(int(t));
        } else if (state[t] != tx) {
            return "inconsistent TX state entering bb" +
                   std::to_string(target) + at(fn, b, i);
        }
        return std::nullopt;
    };

    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        int tx = state[b];
        const auto &instrs = fn.blocks[b].instrs;
        for (int i = 0; i < int(instrs.size()); ++i) {
            const Instr &ins = instrs[i];
            switch (ins.op) {
              case Opcode::TxBegin:
                if (tx != 0)
                    return "nested TxBegin" + at(fn, b, i);
                tx = 1;
                break;
              case Opcode::TxEnd:
                if (tx == 2)
                    return "TxEnd while suspended" + at(fn, b, i);
                if (tx != 1)
                    return "TxEnd outside TX" + at(fn, b, i);
                tx = 0;
                break;
              case Opcode::TxSuspend:
                if (tx != 1)
                    return "TxSuspend outside TX" + at(fn, b, i);
                tx = 2;
                break;
              case Opcode::TxResume:
                if (tx != 2)
                    return "TxResume without suspend" + at(fn, b, i);
                tx = 1;
                break;
              case Opcode::Barrier:
                if (tx != 0)
                    return "barrier inside TX" + at(fn, b, i);
                break;
              case Opcode::Ret:
                if (tx != 0)
                    return "return inside TX" + at(fn, b, i);
                break;
              case Opcode::Br:
                if (auto e = propagate(ins.imm, tx, b, i))
                    return e;
                break;
              case Opcode::CondBr:
                if (auto e = propagate(ins.imm, tx, b, i))
                    return e;
                if (auto e = propagate(ins.imm2, tx, b, i))
                    return e;
                break;
              default:
                break;
            }
        }
    }
    return std::nullopt;
}

/** Functions containing TxBegin must not be callable from inside a TX. */
std::optional<std::string>
verifyNoNestedTxCalls(const Module &mod)
{
    // Compute, per function, whether it (transitively) begins a TX.
    const std::size_t n = mod.functions.size();
    std::vector<bool> begins(n, false);
    for (std::size_t f = 0; f < n; ++f) {
        for (const auto &bb : mod.functions[f].blocks) {
            for (const auto &ins : bb.instrs) {
                if (ins.op == Opcode::TxBegin)
                    begins[f] = true;
            }
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < n; ++f) {
            if (begins[f])
                continue;
            for (const auto &bb : mod.functions[f].blocks) {
                for (const auto &ins : bb.instrs) {
                    if (ins.op == Opcode::Call &&
                        begins[std::size_t(ins.imm)]) {
                        begins[f] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    // Any call inside a TX region to a TX-beginning function is an error.
    for (const auto &fn : mod.functions) {
        std::vector<int> state(fn.blocks.size(), -1);
        std::vector<int> work{0};
        if (fn.blocks.empty())
            continue;
        state[0] = 0;
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            int tx = state[b];
            const auto &instrs = fn.blocks[b].instrs;
            for (int i = 0; i < int(instrs.size()); ++i) {
                const Instr &ins = instrs[i];
                if (ins.op == Opcode::TxBegin)
                    tx = 1;
                else if (ins.op == Opcode::TxEnd)
                    tx = 0;
                else if (ins.op == Opcode::Call && tx &&
                         begins[std::size_t(ins.imm)])
                    return "call to TX-beginning function " +
                           mod.functions[std::size_t(ins.imm)].name +
                           " inside a TX" + at(fn, b, i);
                else if (ins.op == Opcode::Br || ins.op == Opcode::CondBr) {
                    auto push = [&](std::int64_t t) {
                        if (state[std::size_t(t)] == -1) {
                            state[std::size_t(t)] = tx;
                            work.push_back(int(t));
                        }
                    };
                    push(ins.imm);
                    if (ins.op == Opcode::CondBr)
                        push(ins.imm2);
                }
            }
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<std::string>
verify(const Module &mod)
{
    if (mod.threadFunc >= 0) {
        if (mod.threadFunc >= int(mod.functions.size()))
            return "bad threadFunc index";
        if (mod.functions[std::size_t(mod.threadFunc)].numParams != 1)
            return "threadFunc must take exactly one parameter (tid)";
    }
    if (mod.initFunc >= int(mod.functions.size()))
        return "bad initFunc index";

    for (const auto &fn : mod.functions) {
        if (fn.blocks.empty())
            continue; // declared but never built: caught when called
        if (auto e = verifyFunction(mod, fn))
            return e;
        if (auto e = verifyTxRegions(fn))
            return e;
    }
    return verifyNoNestedTxCalls(mod);
}

} // namespace tir
} // namespace hintm
