#include "interp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

Program::Program(Module mod, unsigned num_threads, std::uint64_t seed)
    : mod_(std::move(mod)), numThreads_(num_threads),
      allocator_(num_threads + 1)
{
    HINTM_ASSERT(num_threads >= 1, "need at least one thread");
    // Globals live block-aligned in a dedicated region, like a .data
    // section: distinct variables never share a cache block, but they do
    // share pages (which dynamic classification will see as shared).
    Addr next = layout::globalsBase;
    for (auto &g : mod_.globals) {
        g.addr = next;
        const Addr sz = (g.sizeBytes + blockBytes - 1) & ~(blockBytes - 1);
        next += sz;
    }
    for (unsigned t = 0; t <= num_threads; ++t)
        rngs_.emplace_back(seed + 7919 * (t + 1));
}

Addr
Program::globalAddr(int global_id) const
{
    HINTM_ASSERT(global_id >= 0 &&
                     global_id < int(mod_.globals.size()),
                 "bad global id ", global_id);
    return mod_.globals[global_id].addr;
}

Addr
Program::globalAddrByName(const std::string &name) const
{
    const int g = mod_.findGlobal(name);
    HINTM_ASSERT(g >= 0, "unknown global ", name);
    return mod_.globals[g].addr;
}

ThreadInterp::ThreadInterp(Program &prog, ThreadId tid, int entry_func,
                           std::vector<std::int64_t> args)
    : prog_(prog), tid_(tid), stackPtr_(layout::stackBase(tid))
{
    const auto &fns = prog.module().functions;
    HINTM_ASSERT(entry_func >= 0 && entry_func < int(fns.size()),
                 "bad entry function");
    const Function &fn = fns[entry_func];
    HINTM_ASSERT(args.size() == fn.numParams, "entry arity mismatch for ",
                 fn.name);
    Frame f;
    f.fn = entry_func;
    f.regs.assign(fn.numRegs, 0);
    std::copy(args.begin(), args.end(), f.regs.begin());
    f.stackOnEntry = stackPtr_;
    frames_.push_back(std::move(f));
}

const Instr &
ThreadInterp::currentInstr() const
{
    HINTM_ASSERT(!frames_.empty(), "no active frame");
    const Frame &f = frames_.back();
    const Function &fn = prog_.module().functions[f.fn];
    HINTM_ASSERT(f.block < int(fn.blocks.size()), "bad block in ",
                 fn.name);
    const auto &instrs = fn.blocks[f.block].instrs;
    HINTM_ASSERT(f.ip < int(instrs.size()), "fell off block ", f.block,
                 " of ", fn.name);
    return instrs[f.ip];
}

std::int64_t
ThreadInterp::reg(int r) const
{
    const Frame &f = frames_.back();
    HINTM_ASSERT(r >= 0 && r < int(f.regs.size()), "bad register r", r);
    return f.regs[r];
}

void
ThreadInterp::setReg(int r, std::int64_t v)
{
    Frame &f = frames_.back();
    HINTM_ASSERT(r >= 0 && r < int(f.regs.size()), "bad register r", r);
    f.regs[r] = v;
}

void
ThreadInterp::advance()
{
    ++frames_.back().ip;
}

namespace
{

/** Straight-line opcodes neither end a basic block nor stop the
 * interpreter at a boundary: next() can execute them back-to-back
 * without re-resolving the active frame/block. */
constexpr bool
isStraightLine(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::TxBegin:
      case Opcode::TxEnd:
      case Opcode::Barrier:
      case Opcode::Annotate: // boundaries
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Call:
      case Opcode::Ret:      // control flow
        return false;
      default:
        return true;
    }
}

} // namespace

Step
ThreadInterp::next()
{
    Step st;
    if (done_) {
        st.kind = StepKind::Done;
        return st;
    }
    HINTM_ASSERT(!memPending_, "next() with unfinished memory access");

    while (true) {
        // Resolve the frame's instruction span once per control-flow
        // change instead of once per instruction: straight-line opcodes
        // never push/pop frames or leave the block, so the span stays
        // valid while they execute back-to-back.
        Frame &f = frames_.back();
        const Function &fn = prog_.module().functions[f.fn];
        HINTM_ASSERT(f.block < int(fn.blocks.size()), "bad block in ",
                     fn.name);
        const auto &instrs = fn.blocks[f.block].instrs;
        const int n = int(instrs.size());
        HINTM_ASSERT(f.ip < n, "fell off block ", f.block, " of ",
                     fn.name);
        while (f.ip < n && isStraightLine(instrs[f.ip].op)) {
            execute(instrs[f.ip]);
            ++st.simpleInstrs;
            ++instrCount_;
            HINTM_ASSERT(st.simpleInstrs < 500000000ull,
                         "runaway non-memory loop");
        }
        HINTM_ASSERT(f.ip < n, "fell off block ", f.block, " of ",
                     fn.name);
        const Instr &ins = instrs[f.ip];
        switch (ins.op) {
          case Opcode::Load:
          case Opcode::Store:
            pendingAddr_ = Addr(reg(ins.a) + ins.imm);
            memPending_ = true;
            st.kind = StepKind::Mem;
            st.addr = pendingAddr_;
            st.accessType = ins.op == Opcode::Load ? AccessType::Read
                                                   : AccessType::Write;
            st.staticSafe = ins.safe;
            return st;
          case Opcode::TxBegin:
            st.kind = StepKind::TxBegin;
            return st;
          case Opcode::TxEnd:
            st.kind = StepKind::TxEnd;
            return st;
          case Opcode::Barrier:
            st.kind = StepKind::Barrier;
            return st;
          case Opcode::Annotate:
            st.kind = StepKind::Annotate;
            st.addr = Addr(reg(ins.a));
            st.annotateLen = std::uint64_t(reg(ins.b));
            return st;
          default:
            // Control flow (Br/CondBr/Call/Ret): execute, then
            // re-resolve the frame span.
            execute(ins);
            ++st.simpleInstrs;
            ++instrCount_;
            if (done_) {
                st.kind = StepKind::Done;
                return st;
            }
            HINTM_ASSERT(st.simpleInstrs < 500000000ull,
                         "runaway non-memory loop");
        }
    }
}

void
ThreadInterp::execute(const Instr &ins)
{
    auto shift_amount = [&] { return unsigned(reg(ins.b)) & 63u; };
    switch (ins.op) {
      case Opcode::Const:
        setReg(ins.dst, ins.imm);
        advance();
        break;
      case Opcode::Mov:
        setReg(ins.dst, reg(ins.a));
        advance();
        break;
      case Opcode::Add:
        setReg(ins.dst, reg(ins.a) + reg(ins.b));
        advance();
        break;
      case Opcode::Sub:
        setReg(ins.dst, reg(ins.a) - reg(ins.b));
        advance();
        break;
      case Opcode::Mul:
        setReg(ins.dst, reg(ins.a) * reg(ins.b));
        advance();
        break;
      case Opcode::Div:
        HINTM_ASSERT(reg(ins.b) != 0, "division by zero");
        setReg(ins.dst, reg(ins.a) / reg(ins.b));
        advance();
        break;
      case Opcode::Mod:
        HINTM_ASSERT(reg(ins.b) != 0, "modulo by zero");
        setReg(ins.dst, reg(ins.a) % reg(ins.b));
        advance();
        break;
      case Opcode::And:
        setReg(ins.dst, reg(ins.a) & reg(ins.b));
        advance();
        break;
      case Opcode::Or:
        setReg(ins.dst, reg(ins.a) | reg(ins.b));
        advance();
        break;
      case Opcode::Xor:
        setReg(ins.dst, reg(ins.a) ^ reg(ins.b));
        advance();
        break;
      case Opcode::Shl:
        setReg(ins.dst, reg(ins.a) << shift_amount());
        advance();
        break;
      case Opcode::Shr:
        setReg(ins.dst,
               std::int64_t(std::uint64_t(reg(ins.a)) >> shift_amount()));
        advance();
        break;
      case Opcode::CmpEq:
        setReg(ins.dst, reg(ins.a) == reg(ins.b));
        advance();
        break;
      case Opcode::CmpNe:
        setReg(ins.dst, reg(ins.a) != reg(ins.b));
        advance();
        break;
      case Opcode::CmpLt:
        setReg(ins.dst, reg(ins.a) < reg(ins.b));
        advance();
        break;
      case Opcode::CmpLe:
        setReg(ins.dst, reg(ins.a) <= reg(ins.b));
        advance();
        break;
      case Opcode::CmpGt:
        setReg(ins.dst, reg(ins.a) > reg(ins.b));
        advance();
        break;
      case Opcode::CmpGe:
        setReg(ins.dst, reg(ins.a) >= reg(ins.b));
        advance();
        break;

      case Opcode::Alloca: {
        const Addr size = (Addr(ins.imm) + 7) & ~Addr(7);
        const Addr base = stackPtr_;
        stackPtr_ += size;
        HINTM_ASSERT(stackPtr_ <
                         layout::stackBase(tid_) + layout::stackStride,
                     "stack overflow on thread ", tid_);
        setReg(ins.dst, std::int64_t(base));
        advance();
        break;
      }
      case Opcode::Malloc: {
        const std::int64_t size = reg(ins.a);
        HINTM_ASSERT(size > 0, "malloc of non-positive size");
        const Addr p =
            prog_.allocator().alloc(unsigned(tid_), std::uint64_t(size));
        if (inTx_ && htmMode_)
            txAllocs_.push_back(p);
        setReg(ins.dst, std::int64_t(p));
        advance();
        break;
      }
      case Opcode::Free: {
        const Addr p = Addr(reg(ins.a));
        if (inTx_)
            deferredFrees_.push_back(p);
        else
            prog_.allocator().release(p);
        advance();
        break;
      }
      case Opcode::Gep: {
        std::int64_t v = reg(ins.a);
        if (ins.b >= 0)
            v += reg(ins.b) * ins.imm;
        v += ins.imm2;
        setReg(ins.dst, v);
        advance();
        break;
      }
      case Opcode::GlobalAddr:
        setReg(ins.dst, std::int64_t(prog_.globalAddr(int(ins.imm))));
        advance();
        break;

      case Opcode::Br: {
        Frame &f = frames_.back();
        f.block = int(ins.imm);
        f.ip = 0;
        break;
      }
      case Opcode::CondBr: {
        const bool taken = reg(ins.a) != 0;
        Frame &f = frames_.back();
        f.block = int(taken ? ins.imm : ins.imm2);
        f.ip = 0;
        break;
      }
      case Opcode::Call: {
        const Function &callee =
            prog_.module().functions[std::size_t(ins.imm)];
        HINTM_ASSERT(ins.args.size() == callee.numParams,
                     "arity mismatch calling ", callee.name);
        HINTM_ASSERT(!callee.blocks.empty(), "call of undefined function ",
                     callee.name);
        Frame nf;
        nf.fn = int(ins.imm);
        nf.regs.assign(callee.numRegs, 0);
        for (std::size_t i = 0; i < ins.args.size(); ++i)
            nf.regs[i] = reg(ins.args[i]);
        nf.stackOnEntry = stackPtr_;
        nf.retDst = ins.dst;
        advance(); // resume after the call on return
        frames_.push_back(std::move(nf));
        HINTM_ASSERT(frames_.size() < 512, "call stack overflow");
        break;
      }
      case Opcode::Ret: {
        const std::int64_t v = ins.a >= 0 ? reg(ins.a) : 0;
        const int ret_dst = frames_.back().retDst;
        stackPtr_ = frames_.back().stackOnEntry;
        frames_.pop_back();
        if (frames_.empty()) {
            done_ = true;
        } else if (ret_dst >= 0) {
            setReg(ret_dst, v);
        }
        break;
      }

      case Opcode::ThreadId:
        setReg(ins.dst, tid_);
        advance();
        break;
      case Opcode::Rand: {
        const std::int64_t bound = reg(ins.a);
        setReg(ins.dst,
               std::int64_t(prog_.rng(tid_).below(
                   bound > 0 ? std::uint64_t(bound) : 1)));
        advance();
        break;
      }
      case Opcode::Print:
        inform("thread ", tid_, ": ", reg(ins.a));
        advance();
        break;
      case Opcode::Nop:
        advance();
        break;

      case Opcode::TxSuspend:
        HINTM_ASSERT(inTx_, "suspend outside TX");
        suspended_ = true;
        advance();
        break;
      case Opcode::TxResume:
        HINTM_ASSERT(inTx_ && suspended_, "resume without suspend");
        suspended_ = false;
        advance();
        break;

      case Opcode::Load:
      case Opcode::Store:
      case Opcode::TxBegin:
      case Opcode::TxEnd:
      case Opcode::Barrier:
      case Opcode::Annotate:
        HINTM_PANIC("boundary opcode reached execute()");
    }
}

void
ThreadInterp::completeMem()
{
    HINTM_ASSERT(memPending_, "no pending memory access");
    const Instr &ins = currentInstr();
    AddressSpace &space = prog_.space();

    if (ins.op == Opcode::Load) {
        if (prog_.validateSafeStores && !staleSafeStores_.empty() &&
            staleSafeStores_.count(pendingAddr_)) {
            HINTM_PANIC("read of stale safe-stored location ", pendingAddr_,
                        ": safe store was not initializing");
        }
        setReg(ins.dst, space.read(pendingAddr_));
    } else {
        // One page resolution for the whole store, undo-log read
        // included.
        std::int64_t *word = space.wordRef(pendingAddr_);
        // Suspended-window stores are non-transactional: no undo.
        if (inTx_ && htmMode_ && !suspended_) {
            if (ins.safe) {
                if (prog_.validateSafeStores)
                    safeStoreAddrs_.insert(pendingAddr_);
            } else {
                undoLog_.emplace_back(pendingAddr_, *word);
            }
        }
        if (prog_.validateSafeStores && !staleSafeStores_.empty())
            staleSafeStores_.erase(pendingAddr_);
        *word = reg(ins.b);
    }
    memPending_ = false;
    ++instrCount_;
    advance();
}

void
ThreadInterp::enterTx(bool htm_mode)
{
    HINTM_ASSERT(currentInstr().op == Opcode::TxBegin, "not at TxBegin");
    HINTM_ASSERT(!inTx_, "nested transaction");
    inTx_ = true;
    htmMode_ = htm_mode;
    if (htm_mode) {
        checkpoint_.frames = frames_;
        checkpoint_.stackPtr = stackPtr_;
    }
    ++instrCount_;
    advance();
}

void
ThreadInterp::completeTxEnd()
{
    HINTM_ASSERT(currentInstr().op == Opcode::TxEnd, "not at TxEnd");
    HINTM_ASSERT(inTx_, "TxEnd outside transaction");
    for (const Addr p : deferredFrees_)
        prog_.allocator().release(p);
    deferredFrees_.clear();
    txAllocs_.clear();
    undoLog_.clear();
    safeStoreAddrs_.clear();
    inTx_ = false;
    htmMode_ = false;
    suspended_ = false;
    ++instrCount_;
    advance();
}

void
ThreadInterp::convertToFallback()
{
    HINTM_ASSERT(inTx_ && htmMode_, "conversion outside hardware TX");
    HINTM_ASSERT(!suspended_, "conversion inside escape window");
    htmMode_ = false;
    undoLog_.clear();
    txAllocs_.clear();
    safeStoreAddrs_.clear();
}

void
ThreadInterp::passBarrier()
{
    HINTM_ASSERT(currentInstr().op == Opcode::Barrier, "not at Barrier");
    ++instrCount_;
    advance();
}

void
ThreadInterp::passAnnotate()
{
    HINTM_ASSERT(currentInstr().op == Opcode::Annotate,
                 "not at Annotate");
    ++instrCount_;
    advance();
}

void
ThreadInterp::undoStores()
{
    for (auto it = undoLog_.rbegin(); it != undoLog_.rend(); ++it)
        prog_.space().write(it->first, it->second);
    undoLog_.clear();
}

void
ThreadInterp::rollbackToTxBegin()
{
    HINTM_ASSERT(inTx_ && htmMode_, "rollback outside hardware TX");
    HINTM_ASSERT(undoLog_.empty(),
                 "rollback before the undo hook ran");
    frames_ = checkpoint_.frames;
    stackPtr_ = checkpoint_.stackPtr;
    for (const Addr p : txAllocs_)
        prog_.allocator().release(p);
    txAllocs_.clear();
    deferredFrees_.clear();
    if (prog_.validateSafeStores) {
        staleSafeStores_.insert(safeStoreAddrs_.begin(),
                                safeStoreAddrs_.end());
        safeStoreAddrs_.clear();
    }
    memPending_ = false;
    inTx_ = false;
    htmMode_ = false;
    suspended_ = false;
}

} // namespace tir
} // namespace hintm
