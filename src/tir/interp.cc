#include "interp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

namespace
{

// TxIR integer arithmetic wraps (two's complement). Do the math in
// uint64_t, where overflow is defined, so both interpreters are UB-free
// under -fsanitize=undefined and agree bit-for-bit on overflow.
constexpr std::int64_t
wAdd(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) + std::uint64_t(b));
}

constexpr std::int64_t
wSub(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) - std::uint64_t(b));
}

constexpr std::int64_t
wMul(std::int64_t a, std::int64_t b)
{
    return std::int64_t(std::uint64_t(a) * std::uint64_t(b));
}

constexpr std::int64_t
wShl(std::int64_t a, unsigned s)
{
    return std::int64_t(std::uint64_t(a) << s);
}

} // namespace

Program::Program(Module mod, unsigned num_threads, std::uint64_t seed,
                 bool decode_cache)
    : mod_(std::move(mod)), numThreads_(num_threads),
      allocator_(num_threads + 1)
{
    HINTM_ASSERT(num_threads >= 1, "need at least one thread");
    // Globals live block-aligned in a dedicated region, like a .data
    // section: distinct variables never share a cache block, but they do
    // share pages (which dynamic classification will see as shared).
    Addr next = layout::globalsBase;
    for (auto &g : mod_.globals) {
        g.addr = next;
        const Addr sz = (g.sizeBytes + blockBytes - 1) & ~(blockBytes - 1);
        next += sz;
    }
    for (unsigned t = 0; t <= num_threads; ++t)
        rngs_.emplace_back(seed + 7919 * (t + 1));
    // Decode after global layout so GlobalAddr folds to final addresses.
    if (decode_cache)
        decoded_ = std::make_unique<DecodedModule>(decodeModule(mod_));
}

Addr
Program::globalAddr(int global_id) const
{
    HINTM_ASSERT(global_id >= 0 &&
                     global_id < int(mod_.globals.size()),
                 "bad global id ", global_id);
    return mod_.globals[global_id].addr;
}

Addr
Program::globalAddrByName(const std::string &name) const
{
    const int g = mod_.findGlobal(name);
    HINTM_ASSERT(g >= 0, "unknown global ", name);
    return mod_.globals[g].addr;
}

ThreadInterp::ThreadInterp(Program &prog, ThreadId tid, int entry_func,
                           std::vector<std::int64_t> args)
    : prog_(prog), tid_(tid), dec_(prog.decoded()),
      stackPtr_(layout::stackBase(tid))
{
    const auto &fns = prog.module().functions;
    HINTM_ASSERT(entry_func >= 0 && entry_func < int(fns.size()),
                 "bad entry function");
    const Function &fn = fns[entry_func];
    HINTM_ASSERT(args.size() == fn.numParams, "entry arity mismatch for ",
                 fn.name);
    FrameMeta f;
    f.fn = entry_func;
    f.regBase = 0;
    f.numRegs = fn.numRegs;
    f.stackOnEntry = stackPtr_;
    regs_.assign(fn.numRegs, 0);
    std::copy(args.begin(), args.end(), regs_.begin());
    frames_.push_back(f);
}

const Instr &
ThreadInterp::currentInstr() const
{
    HINTM_ASSERT(!frames_.empty(), "no active frame");
    const FrameMeta &f = frames_.back();
    const Function &fn = prog_.module().functions[f.fn];
    HINTM_ASSERT(f.block < int(fn.blocks.size()), "bad block in ",
                 fn.name);
    const auto &instrs = fn.blocks[f.block].instrs;
    HINTM_ASSERT(f.ip < int(instrs.size()), "fell off block ", f.block,
                 " of ", fn.name);
    return instrs[f.ip];
}

const DecodedOp &
ThreadInterp::currentDOp() const
{
    HINTM_ASSERT(dec_ && !frames_.empty(), "no active decoded frame");
    const FrameMeta &f = frames_.back();
    return dec_->fns[std::size_t(f.fn)].ops[std::size_t(f.ip)];
}

bool
ThreadInterp::atBoundary(Opcode op, DOp dop) const
{
    if (dec_) {
        const DOp cur = currentDOp().op;
        // The fused memory forms stop at the same boundary kind.
        if (dop == DOp::Load)
            return cur == DOp::Load || cur == DOp::GepLoad;
        if (dop == DOp::Store)
            return cur == DOp::Store || cur == DOp::GepStore;
        return cur == dop;
    }
    return currentInstr().op == op;
}

std::int64_t
ThreadInterp::reg(int r) const
{
    const FrameMeta &f = frames_.back();
    HINTM_ASSERT(r >= 0 && std::uint32_t(r) < f.numRegs,
                 "bad register r", r);
    return regs_[f.regBase + std::uint32_t(r)];
}

void
ThreadInterp::setReg(int r, std::int64_t v)
{
    const FrameMeta &f = frames_.back();
    HINTM_ASSERT(r >= 0 && std::uint32_t(r) < f.numRegs,
                 "bad register r", r);
    regs_[f.regBase + std::uint32_t(r)] = v;
}

void
ThreadInterp::advance()
{
    ++frames_.back().ip;
}

void
ThreadInterp::pushFrame(int fn, std::uint32_t num_regs, int ret_dst,
                        const std::int32_t *arg_regs, std::size_t num_args)
{
    const FrameMeta &caller = frames_.back();
    const std::uint32_t base = caller.regBase + caller.numRegs;
    if (regs_.size() < base + num_regs)
        regs_.resize(base + num_regs);
    std::fill_n(regs_.begin() + base, num_regs, 0);
    for (std::size_t i = 0; i < num_args; ++i)
        regs_[base + i] = regs_[caller.regBase +
                                std::uint32_t(arg_regs[i])];
    FrameMeta nf;
    nf.fn = fn;
    nf.retDst = ret_dst;
    nf.regBase = base;
    nf.numRegs = num_regs;
    nf.stackOnEntry = stackPtr_;
    frames_.push_back(nf);
    HINTM_ASSERT(frames_.size() < 512, "call stack overflow");
}

namespace
{

/** Straight-line opcodes neither end a basic block nor stop the
 * interpreter at a boundary: next() can execute them back-to-back
 * without re-resolving the active frame/block. */
constexpr bool
isStraightLine(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::TxBegin:
      case Opcode::TxEnd:
      case Opcode::Barrier:
      case Opcode::Annotate: // boundaries
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Call:
      case Opcode::Ret:      // control flow
        return false;
      default:
        return true;
    }
}

} // namespace

Step
ThreadInterp::next()
{
    Step st;
    if (done_) {
        st.kind = StepKind::Done;
        return st;
    }
    HINTM_ASSERT(!memPending_, "next() with unfinished memory access");
    return dec_ ? nextDec() : nextRef();
}

Step
ThreadInterp::nextRef()
{
    Step st;
    while (true) {
        // Resolve the frame's instruction span once per control-flow
        // change instead of once per instruction: straight-line opcodes
        // never push/pop frames or leave the block, so the span stays
        // valid while they execute back-to-back.
        FrameMeta &f = frames_.back();
        const Function &fn = prog_.module().functions[f.fn];
        HINTM_ASSERT(f.block < int(fn.blocks.size()), "bad block in ",
                     fn.name);
        const auto &instrs = fn.blocks[f.block].instrs;
        const int n = int(instrs.size());
        HINTM_ASSERT(f.ip < n, "fell off block ", f.block, " of ",
                     fn.name);
        while (f.ip < n && isStraightLine(instrs[f.ip].op)) {
            execute(instrs[f.ip]);
            ++st.simpleInstrs;
            ++instrCount_;
            HINTM_ASSERT(st.simpleInstrs < 500000000ull,
                         "runaway non-memory loop");
        }
        HINTM_ASSERT(f.ip < n, "fell off block ", f.block, " of ",
                     fn.name);
        const Instr &ins = instrs[f.ip];
        switch (ins.op) {
          case Opcode::Load:
          case Opcode::Store:
            pendingAddr_ = Addr(wAdd(reg(ins.a), ins.imm));
            memPending_ = true;
            st.kind = StepKind::Mem;
            st.addr = pendingAddr_;
            st.accessType = ins.op == Opcode::Load ? AccessType::Read
                                                   : AccessType::Write;
            st.staticSafe = ins.safe;
            st.fn = std::int32_t(f.fn);
            st.srcBlock = std::int32_t(f.block);
            st.srcInstr = std::int32_t(f.ip);
            return st;
          case Opcode::TxBegin:
            st.kind = StepKind::TxBegin;
            st.fn = std::int32_t(f.fn);
            st.srcBlock = std::int32_t(f.block);
            st.srcInstr = std::int32_t(f.ip);
            return st;
          case Opcode::TxEnd:
            st.kind = StepKind::TxEnd;
            return st;
          case Opcode::Barrier:
            st.kind = StepKind::Barrier;
            return st;
          case Opcode::Annotate:
            st.kind = StepKind::Annotate;
            st.addr = Addr(reg(ins.a));
            st.annotateLen = std::uint64_t(reg(ins.b));
            return st;
          default:
            // Control flow (Br/CondBr/Call/Ret): execute, then
            // re-resolve the frame span.
            execute(ins);
            ++st.simpleInstrs;
            ++instrCount_;
            if (done_) {
                st.kind = StepKind::Done;
                return st;
            }
            HINTM_ASSERT(st.simpleInstrs < 500000000ull,
                         "runaway non-memory loop");
        }
    }
}

Step
ThreadInterp::nextDec()
{
    // Hot loop. Registers, op stream and program counter live in locals;
    // operand validity was established at decode time, so there are no
    // per-access range asserts here. The locals are reloaded after every
    // Call/Ret (frames_/regs_ may reallocate).
    Step st;
    FrameMeta *f = &frames_.back();
    const DecodedFunction *df = &dec_->fns[std::size_t(f->fn)];
    const DecodedOp *ops = df->ops.data();
    std::int64_t *R = regs_.data() + f->regBase;
    std::int32_t pc = f->ip;
    std::uint64_t n = 0;

    const auto flush = [&](StepKind kind) {
        f->ip = pc;
        st.kind = kind;
        st.simpleInstrs += n;
        instrCount_ += n;
    };

    while (true) {
        const DecodedOp &o = ops[pc];
        switch (o.op) {
          case DOp::Const: R[o.dst] = o.imm; ++n; ++pc; break;
          case DOp::Mov: R[o.dst] = R[o.a]; ++n; ++pc; break;

          case DOp::Add: R[o.dst] = wAdd(R[o.a], R[o.b]); ++n; ++pc; break;
          case DOp::Sub: R[o.dst] = wSub(R[o.a], R[o.b]); ++n; ++pc; break;
          case DOp::Mul: R[o.dst] = wMul(R[o.a], R[o.b]); ++n; ++pc; break;
          case DOp::Div:
            HINTM_ASSERT(R[o.b] != 0, "division by zero");
            R[o.dst] = R[o.a] / R[o.b];
            ++n; ++pc;
            break;
          case DOp::Mod:
            HINTM_ASSERT(R[o.b] != 0, "modulo by zero");
            R[o.dst] = R[o.a] % R[o.b];
            ++n; ++pc;
            break;
          case DOp::And: R[o.dst] = R[o.a] & R[o.b]; ++n; ++pc; break;
          case DOp::Or: R[o.dst] = R[o.a] | R[o.b]; ++n; ++pc; break;
          case DOp::Xor: R[o.dst] = R[o.a] ^ R[o.b]; ++n; ++pc; break;
          case DOp::Shl:
            R[o.dst] = wShl(R[o.a], unsigned(R[o.b]) & 63u);
            ++n; ++pc;
            break;
          case DOp::Shr:
            R[o.dst] = std::int64_t(std::uint64_t(R[o.a]) >>
                                    (unsigned(R[o.b]) & 63u));
            ++n; ++pc;
            break;
          case DOp::CmpEq: R[o.dst] = R[o.a] == R[o.b]; ++n; ++pc; break;
          case DOp::CmpNe: R[o.dst] = R[o.a] != R[o.b]; ++n; ++pc; break;
          case DOp::CmpLt: R[o.dst] = R[o.a] < R[o.b]; ++n; ++pc; break;
          case DOp::CmpLe: R[o.dst] = R[o.a] <= R[o.b]; ++n; ++pc; break;
          case DOp::CmpGt: R[o.dst] = R[o.a] > R[o.b]; ++n; ++pc; break;
          case DOp::CmpGe: R[o.dst] = R[o.a] >= R[o.b]; ++n; ++pc; break;

          // Fused Const + ALU: the Const's register write is preserved
          // (non-SSA IR — later code may read it). Writing xdst first
          // then reading R[o.a] matches the reference order even when
          // a aliases xdst. DivI/ModI: decode never folds a zero
          // divisor, so the reference's runtime assert cannot fire.
          case DOp::AddI:
            R[o.xdst] = o.ximm; R[o.dst] = wAdd(R[o.a], o.ximm);
            n += 2; ++pc;
            break;
          case DOp::SubI:
            R[o.xdst] = o.ximm; R[o.dst] = wSub(R[o.a], o.ximm);
            n += 2; ++pc;
            break;
          case DOp::MulI:
            R[o.xdst] = o.ximm; R[o.dst] = wMul(R[o.a], o.ximm);
            n += 2; ++pc;
            break;
          case DOp::DivI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] / o.ximm;
            n += 2; ++pc;
            break;
          case DOp::ModI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] % o.ximm;
            n += 2; ++pc;
            break;
          case DOp::AndI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] & o.ximm;
            n += 2; ++pc;
            break;
          case DOp::OrI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] | o.ximm;
            n += 2; ++pc;
            break;
          case DOp::XorI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] ^ o.ximm;
            n += 2; ++pc;
            break;
          case DOp::ShlI:
            R[o.xdst] = o.ximm;
            R[o.dst] = wShl(R[o.a], unsigned(o.ximm) & 63u);
            n += 2; ++pc;
            break;
          case DOp::ShrI:
            R[o.xdst] = o.ximm;
            R[o.dst] = std::int64_t(std::uint64_t(R[o.a]) >>
                                    (unsigned(o.ximm) & 63u));
            n += 2; ++pc;
            break;
          case DOp::CmpEqI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] == o.ximm;
            n += 2; ++pc;
            break;
          case DOp::CmpNeI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] != o.ximm;
            n += 2; ++pc;
            break;
          case DOp::CmpLtI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] < o.ximm;
            n += 2; ++pc;
            break;
          case DOp::CmpLeI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] <= o.ximm;
            n += 2; ++pc;
            break;
          case DOp::CmpGtI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] > o.ximm;
            n += 2; ++pc;
            break;
          case DOp::CmpGeI:
            R[o.xdst] = o.ximm; R[o.dst] = R[o.a] >= o.ximm;
            n += 2; ++pc;
            break;

          case DOp::Alloca: {
            const Addr size = (Addr(o.imm) + 7) & ~Addr(7);
            const Addr base = stackPtr_;
            stackPtr_ += size;
            HINTM_ASSERT(stackPtr_ <
                             layout::stackBase(tid_) + layout::stackStride,
                         "stack overflow on thread ", tid_);
            R[o.dst] = std::int64_t(base);
            ++n; ++pc;
            break;
          }
          case DOp::Malloc: {
            const std::int64_t size = R[o.a];
            HINTM_ASSERT(size > 0, "malloc of non-positive size");
            const Addr p = prog_.allocator().alloc(unsigned(tid_),
                                                   std::uint64_t(size));
            if (inTx_ && htmMode_)
                txAllocs_.push_back(p);
            R[o.dst] = std::int64_t(p);
            ++n; ++pc;
            break;
          }
          case DOp::Free: {
            const Addr p = Addr(R[o.a]);
            if (inTx_)
                deferredFrees_.push_back(p);
            else
                prog_.allocator().release(p);
            ++n; ++pc;
            break;
          }
          case DOp::Gep: {
            std::int64_t v = R[o.a];
            if (o.b >= 0)
                v = wAdd(v, wMul(R[o.b], o.imm));
            v = wAdd(v, o.imm2);
            R[o.dst] = v;
            ++n; ++pc;
            break;
          }

          case DOp::Load:
          case DOp::Store:
            pendingAddr_ = Addr(wAdd(R[o.a], o.imm));
            memPending_ = true;
            pendingDOp_ = &o;
            pendingRegs_ = R;
            flush(StepKind::Mem);
            st.addr = pendingAddr_;
            st.accessType = o.op == DOp::Load ? AccessType::Read
                                              : AccessType::Write;
            st.staticSafe = o.safe;
            st.fn = std::int32_t(f->fn);
            st.srcBlock = df->srcRefs[std::size_t(pc)].block;
            st.srcInstr = df->srcRefs[std::size_t(pc)].instr;
            return st;
          case DOp::GepLoad:
          case DOp::GepStore: {
            // The fused Gep executes (and counts) now; the access itself
            // is counted by completeMem(), exactly like the reference.
            std::int64_t v = R[o.a];
            if (o.b >= 0)
                v = wAdd(v, wMul(R[o.b], o.imm));
            v = wAdd(v, o.imm2);
            R[o.xdst] = v;
            ++n;
            pendingAddr_ = Addr(wAdd(v, o.ximm));
            memPending_ = true;
            pendingDOp_ = &o;
            pendingRegs_ = R;
            flush(StepKind::Mem);
            st.addr = pendingAddr_;
            st.accessType = o.op == DOp::GepLoad ? AccessType::Read
                                                 : AccessType::Write;
            st.staticSafe = o.safe;
            st.fn = std::int32_t(f->fn);
            st.srcBlock = df->srcRefs[std::size_t(pc)].block;
            st.srcInstr = df->srcRefs[std::size_t(pc)].instr;
            return st;
          }

          case DOp::Jmp: ++n; pc = o.t1; break;
          case DOp::CondJmp:
            ++n;
            pc = R[o.a] != 0 ? o.t1 : o.t2;
            break;
          case DOp::CmpBr: {
            const bool taken = evalCond(o.cc, R[o.a], R[o.b]);
            R[o.dst] = taken;
            n += 2;
            pc = taken ? o.t1 : o.t2;
            break;
          }
          case DOp::CmpBrI: {
            R[o.xdst] = o.ximm;
            const bool taken = evalCond(o.cc, R[o.a], o.ximm);
            R[o.dst] = taken;
            n += 3;
            pc = taken ? o.t1 : o.t2;
            break;
          }

          case DOp::Call: {
            ++n;
            f->ip = pc + 1; // resume after the call on return
            const DecodedFunction &callee =
                dec_->fns[std::size_t(o.imm)];
            pushFrame(int(o.imm), callee.numRegs, o.dst,
                      df->argPool.data() + o.argsBegin, o.argsCount);
            f = &frames_.back();
            df = &callee;
            ops = df->ops.data();
            R = regs_.data() + f->regBase;
            pc = 0;
            break;
          }
          case DOp::Ret: {
            ++n;
            const std::int64_t v = o.a >= 0 ? R[o.a] : 0;
            const std::int32_t ret_dst = f->retDst;
            stackPtr_ = f->stackOnEntry;
            frames_.pop_back();
            if (frames_.empty()) {
                done_ = true;
                st.kind = StepKind::Done;
                st.simpleInstrs += n;
                instrCount_ += n;
                return st;
            }
            f = &frames_.back();
            df = &dec_->fns[std::size_t(f->fn)];
            ops = df->ops.data();
            R = regs_.data() + f->regBase;
            pc = f->ip;
            if (ret_dst >= 0)
                R[ret_dst] = v;
            break;
          }

          case DOp::TxBegin:
            flush(StepKind::TxBegin);
            st.fn = std::int32_t(f->fn);
            st.srcBlock = df->srcRefs[std::size_t(pc)].block;
            st.srcInstr = df->srcRefs[std::size_t(pc)].instr;
            return st;
          case DOp::TxEnd:
            flush(StepKind::TxEnd);
            return st;
          case DOp::Barrier:
            flush(StepKind::Barrier);
            return st;
          case DOp::Annotate:
            flush(StepKind::Annotate);
            st.addr = Addr(R[o.a]);
            st.annotateLen = std::uint64_t(R[o.b]);
            return st;

          case DOp::TxSuspend:
            HINTM_ASSERT(inTx_, "suspend outside TX");
            suspended_ = true;
            ++n; ++pc;
            break;
          case DOp::TxResume:
            HINTM_ASSERT(inTx_ && suspended_, "resume without suspend");
            suspended_ = false;
            ++n; ++pc;
            break;

          case DOp::ThreadId: R[o.dst] = tid_; ++n; ++pc; break;
          case DOp::Rand: {
            const std::int64_t bound = R[o.a];
            R[o.dst] = std::int64_t(prog_.rng(tid_).below(
                bound > 0 ? std::uint64_t(bound) : 1));
            ++n; ++pc;
            break;
          }
          case DOp::Print:
            inform("thread ", tid_, ": ", R[o.a]);
            ++n; ++pc;
            break;
          case DOp::Nop: ++n; ++pc; break;
        }
        HINTM_ASSERT(n < 500000000ull, "runaway non-memory loop");
    }
}

void
ThreadInterp::execute(const Instr &ins)
{
    auto shift_amount = [&] { return unsigned(reg(ins.b)) & 63u; };
    switch (ins.op) {
      case Opcode::Const:
        setReg(ins.dst, ins.imm);
        advance();
        break;
      case Opcode::Mov:
        setReg(ins.dst, reg(ins.a));
        advance();
        break;
      case Opcode::Add:
        setReg(ins.dst, wAdd(reg(ins.a), reg(ins.b)));
        advance();
        break;
      case Opcode::Sub:
        setReg(ins.dst, wSub(reg(ins.a), reg(ins.b)));
        advance();
        break;
      case Opcode::Mul:
        setReg(ins.dst, wMul(reg(ins.a), reg(ins.b)));
        advance();
        break;
      case Opcode::Div:
        HINTM_ASSERT(reg(ins.b) != 0, "division by zero");
        setReg(ins.dst, reg(ins.a) / reg(ins.b));
        advance();
        break;
      case Opcode::Mod:
        HINTM_ASSERT(reg(ins.b) != 0, "modulo by zero");
        setReg(ins.dst, reg(ins.a) % reg(ins.b));
        advance();
        break;
      case Opcode::And:
        setReg(ins.dst, reg(ins.a) & reg(ins.b));
        advance();
        break;
      case Opcode::Or:
        setReg(ins.dst, reg(ins.a) | reg(ins.b));
        advance();
        break;
      case Opcode::Xor:
        setReg(ins.dst, reg(ins.a) ^ reg(ins.b));
        advance();
        break;
      case Opcode::Shl:
        setReg(ins.dst, wShl(reg(ins.a), shift_amount()));
        advance();
        break;
      case Opcode::Shr:
        setReg(ins.dst,
               std::int64_t(std::uint64_t(reg(ins.a)) >> shift_amount()));
        advance();
        break;
      case Opcode::CmpEq:
        setReg(ins.dst, reg(ins.a) == reg(ins.b));
        advance();
        break;
      case Opcode::CmpNe:
        setReg(ins.dst, reg(ins.a) != reg(ins.b));
        advance();
        break;
      case Opcode::CmpLt:
        setReg(ins.dst, reg(ins.a) < reg(ins.b));
        advance();
        break;
      case Opcode::CmpLe:
        setReg(ins.dst, reg(ins.a) <= reg(ins.b));
        advance();
        break;
      case Opcode::CmpGt:
        setReg(ins.dst, reg(ins.a) > reg(ins.b));
        advance();
        break;
      case Opcode::CmpGe:
        setReg(ins.dst, reg(ins.a) >= reg(ins.b));
        advance();
        break;

      case Opcode::Alloca: {
        const Addr size = (Addr(ins.imm) + 7) & ~Addr(7);
        const Addr base = stackPtr_;
        stackPtr_ += size;
        HINTM_ASSERT(stackPtr_ <
                         layout::stackBase(tid_) + layout::stackStride,
                     "stack overflow on thread ", tid_);
        setReg(ins.dst, std::int64_t(base));
        advance();
        break;
      }
      case Opcode::Malloc: {
        const std::int64_t size = reg(ins.a);
        HINTM_ASSERT(size > 0, "malloc of non-positive size");
        const Addr p =
            prog_.allocator().alloc(unsigned(tid_), std::uint64_t(size));
        if (inTx_ && htmMode_)
            txAllocs_.push_back(p);
        setReg(ins.dst, std::int64_t(p));
        advance();
        break;
      }
      case Opcode::Free: {
        const Addr p = Addr(reg(ins.a));
        if (inTx_)
            deferredFrees_.push_back(p);
        else
            prog_.allocator().release(p);
        advance();
        break;
      }
      case Opcode::Gep: {
        std::int64_t v = reg(ins.a);
        if (ins.b >= 0)
            v = wAdd(v, wMul(reg(ins.b), ins.imm));
        v = wAdd(v, ins.imm2);
        setReg(ins.dst, v);
        advance();
        break;
      }
      case Opcode::GlobalAddr:
        setReg(ins.dst, std::int64_t(prog_.globalAddr(int(ins.imm))));
        advance();
        break;

      case Opcode::Br: {
        FrameMeta &f = frames_.back();
        f.block = int(ins.imm);
        f.ip = 0;
        break;
      }
      case Opcode::CondBr: {
        const bool taken = reg(ins.a) != 0;
        FrameMeta &f = frames_.back();
        f.block = int(taken ? ins.imm : ins.imm2);
        f.ip = 0;
        break;
      }
      case Opcode::Call: {
        const Function &callee =
            prog_.module().functions[std::size_t(ins.imm)];
        HINTM_ASSERT(ins.args.size() == callee.numParams,
                     "arity mismatch calling ", callee.name);
        HINTM_ASSERT(!callee.blocks.empty(), "call of undefined function ",
                     callee.name);
        advance(); // resume after the call on return
        pushFrame(int(ins.imm), callee.numRegs, ins.dst,
                  ins.args.data(), ins.args.size());
        break;
      }
      case Opcode::Ret: {
        const std::int64_t v = ins.a >= 0 ? reg(ins.a) : 0;
        const int ret_dst = frames_.back().retDst;
        stackPtr_ = frames_.back().stackOnEntry;
        frames_.pop_back();
        if (frames_.empty()) {
            done_ = true;
        } else if (ret_dst >= 0) {
            setReg(ret_dst, v);
        }
        break;
      }

      case Opcode::ThreadId:
        setReg(ins.dst, tid_);
        advance();
        break;
      case Opcode::Rand: {
        const std::int64_t bound = reg(ins.a);
        setReg(ins.dst,
               std::int64_t(prog_.rng(tid_).below(
                   bound > 0 ? std::uint64_t(bound) : 1)));
        advance();
        break;
      }
      case Opcode::Print:
        inform("thread ", tid_, ": ", reg(ins.a));
        advance();
        break;
      case Opcode::Nop:
        advance();
        break;

      case Opcode::TxSuspend:
        HINTM_ASSERT(inTx_, "suspend outside TX");
        suspended_ = true;
        advance();
        break;
      case Opcode::TxResume:
        HINTM_ASSERT(inTx_ && suspended_, "resume without suspend");
        suspended_ = false;
        advance();
        break;

      case Opcode::Load:
      case Opcode::Store:
      case Opcode::TxBegin:
      case Opcode::TxEnd:
      case Opcode::Barrier:
      case Opcode::Annotate:
        HINTM_PANIC("boundary opcode reached execute()");
    }
}

void
ThreadInterp::completeMem()
{
    HINTM_ASSERT(memPending_, "no pending memory access");
    if (dec_)
        completeMemDec();
    else
        completeMemRef();
    memPending_ = false;
    ++instrCount_;
    advance();
}

void
ThreadInterp::completeMemRef()
{
    const Instr &ins = currentInstr();
    AddressSpace &space = prog_.space();

    if (ins.op == Opcode::Load) {
        if (prog_.validateSafeStores && !staleSafeStores_.empty() &&
            staleSafeStores_.count(pendingAddr_)) {
            HINTM_PANIC("read of stale safe-stored location ", pendingAddr_,
                        ": safe store was not initializing");
        }
        setReg(ins.dst, space.read(pendingAddr_));
    } else {
        // One page resolution for the whole store, undo-log read
        // included.
        std::int64_t *word = space.wordRef(pendingAddr_);
        // Suspended-window stores are non-transactional: no undo.
        if (inTx_ && htmMode_ && !suspended_) {
            if (ins.safe) {
                if (prog_.validateSafeStores)
                    safeStoreAddrs_.insert(pendingAddr_);
            } else {
                undoLog_.emplace_back(pendingAddr_, *word);
            }
        }
        if (prog_.validateSafeStores && !staleSafeStores_.empty())
            staleSafeStores_.erase(pendingAddr_);
        *word = reg(ins.b);
    }
}

void
ThreadInterp::completeMemDec()
{
    const DecodedOp &o = *pendingDOp_;
    AddressSpace &space = prog_.space();
    std::int64_t *R = pendingRegs_;

    if (o.op == DOp::Load || o.op == DOp::GepLoad) {
        if (prog_.validateSafeStores && !staleSafeStores_.empty() &&
            staleSafeStores_.count(pendingAddr_)) {
            HINTM_PANIC("read of stale safe-stored location ", pendingAddr_,
                        ": safe store was not initializing");
        }
        R[o.dst] = space.read(pendingAddr_);
    } else {
        std::int64_t *word = space.wordRef(pendingAddr_);
        if (inTx_ && htmMode_ && !suspended_) {
            if (o.safe) {
                if (prog_.validateSafeStores)
                    safeStoreAddrs_.insert(pendingAddr_);
            } else {
                undoLog_.emplace_back(pendingAddr_, *word);
            }
        }
        if (prog_.validateSafeStores && !staleSafeStores_.empty())
            staleSafeStores_.erase(pendingAddr_);
        // Plain Store keeps the value in `b`; GepStore moved it to `dst`.
        *word = R[o.op == DOp::Store ? o.b : o.dst];
    }
}

void
ThreadInterp::enterTx(bool htm_mode)
{
    HINTM_ASSERT(atBoundary(Opcode::TxBegin, DOp::TxBegin),
                 "not at TxBegin");
    HINTM_ASSERT(!inTx_, "nested transaction");
    inTx_ = true;
    htmMode_ = htm_mode;
    if (htm_mode) {
        // Bounded flat copies: frame metadata plus the live register
        // prefix. assign() reuses the checkpoint's capacity across TXs.
        checkpoint_.frames.assign(frames_.begin(), frames_.end());
        const FrameMeta &top = frames_.back();
        const std::size_t live = top.regBase + top.numRegs;
        checkpoint_.regs.assign(regs_.begin(),
                                regs_.begin() + std::ptrdiff_t(live));
        checkpoint_.stackPtr = stackPtr_;
    }
    ++instrCount_;
    advance();
}

void
ThreadInterp::completeTxEnd()
{
    HINTM_ASSERT(atBoundary(Opcode::TxEnd, DOp::TxEnd), "not at TxEnd");
    HINTM_ASSERT(inTx_, "TxEnd outside transaction");
    for (const Addr p : deferredFrees_)
        prog_.allocator().release(p);
    deferredFrees_.clear();
    txAllocs_.clear();
    undoLog_.clear();
    safeStoreAddrs_.clear();
    inTx_ = false;
    htmMode_ = false;
    suspended_ = false;
    ++instrCount_;
    advance();
}

void
ThreadInterp::convertToFallback()
{
    HINTM_ASSERT(inTx_ && htmMode_, "conversion outside hardware TX");
    HINTM_ASSERT(!suspended_, "conversion inside escape window");
    htmMode_ = false;
    undoLog_.clear();
    txAllocs_.clear();
    safeStoreAddrs_.clear();
}

void
ThreadInterp::passBarrier()
{
    HINTM_ASSERT(atBoundary(Opcode::Barrier, DOp::Barrier),
                 "not at Barrier");
    ++instrCount_;
    advance();
}

void
ThreadInterp::passAnnotate()
{
    HINTM_ASSERT(atBoundary(Opcode::Annotate, DOp::Annotate),
                 "not at Annotate");
    ++instrCount_;
    advance();
}

void
ThreadInterp::undoStores()
{
    for (auto it = undoLog_.rbegin(); it != undoLog_.rend(); ++it)
        prog_.space().write(it->first, it->second);
    undoLog_.clear();
}

void
ThreadInterp::rollbackToTxBegin()
{
    HINTM_ASSERT(inTx_ && htmMode_, "rollback outside hardware TX");
    HINTM_ASSERT(undoLog_.empty(),
                 "rollback before the undo hook ran");
    // Restore the live arena prefix; the tail above it is dead (a later
    // Call zero-fills its window before use).
    frames_.assign(checkpoint_.frames.begin(), checkpoint_.frames.end());
    std::copy(checkpoint_.regs.begin(), checkpoint_.regs.end(),
              regs_.begin());
    stackPtr_ = checkpoint_.stackPtr;
    for (const Addr p : txAllocs_)
        prog_.allocator().release(p);
    txAllocs_.clear();
    deferredFrees_.clear();
    if (prog_.validateSafeStores) {
        staleSafeStores_.insert(safeStoreAddrs_.begin(),
                                safeStoreAddrs_.end());
        safeStoreAddrs_.clear();
    }
    memPending_ = false;
    inTx_ = false;
    htmMode_ = false;
    suspended_ = false;
}

ThreadInterp::State
ThreadInterp::saveState() const
{
    State s;
    s.frames = frames_;
    s.regs = regs_;
    s.stackPtr = stackPtr_;
    s.done = done_;
    s.inTx = inTx_;
    s.htmMode = htmMode_;
    s.suspended = suspended_;
    s.checkpoint = checkpoint_;
    s.undoLog = undoLog_;
    s.txAllocs = txAllocs_;
    s.deferredFrees = deferredFrees_;
    s.safeStoreAddrs = safeStoreAddrs_;
    s.staleSafeStores = staleSafeStores_;
    s.memPending = memPending_;
    s.pendingAddr = pendingAddr_;
    s.instrCount = instrCount_;
    return s;
}

void
ThreadInterp::loadState(const State &s)
{
    frames_ = s.frames;
    regs_ = s.regs;
    stackPtr_ = s.stackPtr;
    done_ = s.done;
    inTx_ = s.inTx;
    htmMode_ = s.htmMode;
    suspended_ = s.suspended;
    checkpoint_ = s.checkpoint;
    undoLog_ = s.undoLog;
    txAllocs_ = s.txAllocs;
    deferredFrees_ = s.deferredFrees;
    safeStoreAddrs_ = s.safeStoreAddrs;
    staleSafeStores_ = s.staleSafeStores;
    memPending_ = s.memPending;
    pendingAddr_ = s.pendingAddr;
    instrCount_ = s.instrCount;
    // Re-derive the decoded-path boundary memos from the top frame: at a
    // Mem boundary the frame's ip points at the pending op (flush stored
    // it before next() returned) and the register window base is part of
    // FrameMeta.
    pendingDOp_ = nullptr;
    pendingRegs_ = nullptr;
    if (memPending_ && dec_) {
        const FrameMeta &f = frames_.back();
        pendingDOp_ = &dec_->fns[std::size_t(f.fn)].ops[std::size_t(f.ip)];
        pendingRegs_ = regs_.data() + f.regBase;
    }
}

} // namespace tir
} // namespace hintm
