/**
 * @file
 * Structural and transactional well-formedness checks for TxIR modules,
 * run before analysis and execution: terminator discipline, operand
 * bounds, call arity, and TX-region consistency along the CFG.
 */

#ifndef HINTM_TIR_VERIFIER_HH
#define HINTM_TIR_VERIFIER_HH

#include <optional>
#include <string>

#include "tir/ir.hh"

namespace hintm
{
namespace tir
{

/**
 * Verify a module.
 * @return std::nullopt when well-formed, otherwise a diagnostic message
 * describing the first problem found.
 */
std::optional<std::string> verify(const Module &mod);

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_VERIFIER_HH
