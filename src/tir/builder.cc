#include "builder.hh"

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

int
declareFunction(Module &mod, const std::string &name, unsigned num_params)
{
    HINTM_ASSERT(mod.findFunction(name) < 0, "duplicate function ", name);
    Function fn;
    fn.name = name;
    fn.numParams = num_params;
    fn.numRegs = num_params;
    mod.functions.push_back(std::move(fn));
    return int(mod.functions.size() - 1);
}

FunctionBuilder::FunctionBuilder(Module &mod, std::string name,
                                 unsigned num_params)
    : mod_(mod)
{
    // Reserve the module slot immediately so recursive calls resolve.
    int idx = mod.findFunction(name);
    if (idx < 0)
        idx = declareFunction(mod, name, num_params);
    fn_ = mod.functions[idx];
    HINTM_ASSERT(fn_.blocks.empty(), "function ", name, " already built");
    HINTM_ASSERT(fn_.numParams == num_params, "declaration mismatch");
    fn_.blocks.emplace_back();
    cur_ = 0;
}

int
FunctionBuilder::finish()
{
    HINTM_ASSERT(!finished_, "finish() called twice");
    finished_ = true;
    const int idx = mod_.findFunction(fn_.name);
    HINTM_ASSERT(idx >= 0, "lost module slot");
    mod_.functions[idx] = std::move(fn_);
    return idx;
}

Reg
FunctionBuilder::newReg()
{
    return int(fn_.numRegs++);
}

Instr &
FunctionBuilder::emit(Instr ins)
{
    fn_.blocks[cur_].instrs.push_back(std::move(ins));
    return fn_.blocks[cur_].instrs.back();
}

Reg
FunctionBuilder::emitBin(Opcode op, Reg a, Reg b)
{
    Instr ins;
    ins.op = op;
    ins.dst = newReg();
    ins.a = a;
    ins.b = b;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::param(unsigned i)
{
    HINTM_ASSERT(i < fn_.numParams, "bad param index");
    return Reg(i);
}

Reg
FunctionBuilder::constI(std::int64_t v)
{
    Instr ins;
    ins.op = Opcode::Const;
    ins.dst = newReg();
    ins.imm = v;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::freshVar()
{
    return newReg();
}

void
FunctionBuilder::set(Reg var, Reg value)
{
    Instr ins;
    ins.op = Opcode::Mov;
    ins.dst = var;
    ins.a = value;
    emit(ins);
}

void
FunctionBuilder::setI(Reg var, std::int64_t value)
{
    Instr ins;
    ins.op = Opcode::Const;
    ins.dst = var;
    ins.imm = value;
    emit(ins);
}

Reg FunctionBuilder::add(Reg a, Reg b) { return emitBin(Opcode::Add, a, b); }
Reg FunctionBuilder::sub(Reg a, Reg b) { return emitBin(Opcode::Sub, a, b); }
Reg FunctionBuilder::mul(Reg a, Reg b) { return emitBin(Opcode::Mul, a, b); }
Reg FunctionBuilder::div(Reg a, Reg b) { return emitBin(Opcode::Div, a, b); }
Reg FunctionBuilder::mod(Reg a, Reg b) { return emitBin(Opcode::Mod, a, b); }
Reg FunctionBuilder::andOp(Reg a, Reg b)
{
    return emitBin(Opcode::And, a, b);
}
Reg FunctionBuilder::xorOp(Reg a, Reg b)
{
    return emitBin(Opcode::Xor, a, b);
}
Reg FunctionBuilder::cmpEq(Reg a, Reg b)
{
    return emitBin(Opcode::CmpEq, a, b);
}
Reg FunctionBuilder::cmpNe(Reg a, Reg b)
{
    return emitBin(Opcode::CmpNe, a, b);
}
Reg FunctionBuilder::cmpLt(Reg a, Reg b)
{
    return emitBin(Opcode::CmpLt, a, b);
}
Reg FunctionBuilder::cmpGe(Reg a, Reg b)
{
    return emitBin(Opcode::CmpGe, a, b);
}

Reg FunctionBuilder::addI(Reg a, std::int64_t i)
{
    return add(a, constI(i));
}
Reg FunctionBuilder::subI(Reg a, std::int64_t i)
{
    return sub(a, constI(i));
}
Reg FunctionBuilder::mulI(Reg a, std::int64_t i)
{
    return mul(a, constI(i));
}
Reg FunctionBuilder::modI(Reg a, std::int64_t i)
{
    return mod(a, constI(i));
}
Reg FunctionBuilder::shl(Reg a, Reg b)
{
    return emitBin(Opcode::Shl, a, b);
}
Reg FunctionBuilder::shlI(Reg a, std::int64_t i)
{
    return emitBin(Opcode::Shl, a, constI(i));
}
Reg FunctionBuilder::shrI(Reg a, std::int64_t i)
{
    return emitBin(Opcode::Shr, a, constI(i));
}
Reg FunctionBuilder::cmpLtI(Reg a, std::int64_t i)
{
    return cmpLt(a, constI(i));
}
Reg FunctionBuilder::cmpEqI(Reg a, std::int64_t i)
{
    return cmpEq(a, constI(i));
}
Reg FunctionBuilder::cmpNeI(Reg a, std::int64_t i)
{
    return cmpNe(a, constI(i));
}

Reg
FunctionBuilder::allocaBytes(std::uint64_t bytes)
{
    Instr ins;
    ins.op = Opcode::Alloca;
    ins.dst = newReg();
    ins.imm = std::int64_t(bytes);
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::mallocBytes(Reg size)
{
    Instr ins;
    ins.op = Opcode::Malloc;
    ins.dst = newReg();
    ins.a = size;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::mallocI(std::uint64_t bytes)
{
    return mallocBytes(constI(std::int64_t(bytes)));
}

void
FunctionBuilder::freePtr(Reg p)
{
    Instr ins;
    ins.op = Opcode::Free;
    ins.a = p;
    emit(ins);
}

Reg
FunctionBuilder::load(Reg addr, std::int64_t off)
{
    Instr ins;
    ins.op = Opcode::Load;
    ins.dst = newReg();
    ins.a = addr;
    ins.imm = off;
    emit(ins);
    return ins.dst;
}

void
FunctionBuilder::store(Reg addr, Reg val, std::int64_t off)
{
    Instr ins;
    ins.op = Opcode::Store;
    ins.a = addr;
    ins.b = val;
    ins.imm = off;
    emit(ins);
}

void
FunctionBuilder::storeI(Reg addr, std::int64_t val, std::int64_t off)
{
    store(addr, constI(val), off);
}

Reg
FunctionBuilder::gep(Reg base, Reg idx, std::int64_t scale,
                     std::int64_t off)
{
    Instr ins;
    ins.op = Opcode::Gep;
    ins.dst = newReg();
    ins.a = base;
    ins.b = idx;
    ins.imm = scale;
    ins.imm2 = off;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::globalAddr(const std::string &name)
{
    const int g = mod_.findGlobal(name);
    HINTM_ASSERT(g >= 0, "unknown global ", name);
    Instr ins;
    ins.op = Opcode::GlobalAddr;
    ins.dst = newReg();
    ins.imm = g;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::call(const std::string &fn, std::vector<Reg> args)
{
    const int callee = mod_.findFunction(fn);
    HINTM_ASSERT(callee >= 0, "unknown function ", fn);
    Instr ins;
    ins.op = Opcode::Call;
    ins.dst = newReg();
    ins.imm = callee;
    ins.args = std::move(args);
    emit(ins);
    return ins.dst;
}

void
FunctionBuilder::callVoid(const std::string &fn, std::vector<Reg> args)
{
    call(fn, std::move(args));
}

void
FunctionBuilder::ret(Reg v)
{
    Instr ins;
    ins.op = Opcode::Ret;
    ins.a = v;
    emit(ins);
}

void
FunctionBuilder::txBegin()
{
    Instr ins;
    ins.op = Opcode::TxBegin;
    emit(ins);
}

void
FunctionBuilder::txEnd()
{
    Instr ins;
    ins.op = Opcode::TxEnd;
    emit(ins);
}

void
FunctionBuilder::txSuspend()
{
    Instr ins;
    ins.op = Opcode::TxSuspend;
    emit(ins);
}

void
FunctionBuilder::txResume()
{
    Instr ins;
    ins.op = Opcode::TxResume;
    emit(ins);
}

void
FunctionBuilder::annotateSafe(Reg addr, Reg len)
{
    Instr ins;
    ins.op = Opcode::Annotate;
    ins.a = addr;
    ins.b = len;
    emit(ins);
}

Reg
FunctionBuilder::threadId()
{
    Instr ins;
    ins.op = Opcode::ThreadId;
    ins.dst = newReg();
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::rand(Reg bound)
{
    Instr ins;
    ins.op = Opcode::Rand;
    ins.dst = newReg();
    ins.a = bound;
    emit(ins);
    return ins.dst;
}

Reg
FunctionBuilder::randI(std::int64_t bound)
{
    return rand(constI(bound));
}

void
FunctionBuilder::barrier()
{
    Instr ins;
    ins.op = Opcode::Barrier;
    emit(ins);
}

void
FunctionBuilder::print(Reg v)
{
    Instr ins;
    ins.op = Opcode::Print;
    ins.a = v;
    emit(ins);
}

int
FunctionBuilder::newBlock()
{
    fn_.blocks.emplace_back();
    return int(fn_.blocks.size() - 1);
}

void
FunctionBuilder::setBlock(int b)
{
    HINTM_ASSERT(b >= 0 && b < int(fn_.blocks.size()), "bad block");
    cur_ = b;
}

void
FunctionBuilder::br(int target)
{
    Instr ins;
    ins.op = Opcode::Br;
    ins.imm = target;
    emit(ins);
}

void
FunctionBuilder::condBr(Reg cond, int if_true, int if_false)
{
    Instr ins;
    ins.op = Opcode::CondBr;
    ins.a = cond;
    ins.imm = if_true;
    ins.imm2 = if_false;
    emit(ins);
}

void
FunctionBuilder::ifThen(Reg cond, const std::function<void()> &then_fn)
{
    const int then_b = newBlock();
    const int join_b = newBlock();
    condBr(cond, then_b, join_b);
    setBlock(then_b);
    then_fn();
    br(join_b);
    setBlock(join_b);
}

void
FunctionBuilder::ifThenElse(Reg cond, const std::function<void()> &then_fn,
                            const std::function<void()> &else_fn)
{
    const int then_b = newBlock();
    const int else_b = newBlock();
    const int join_b = newBlock();
    condBr(cond, then_b, else_b);
    setBlock(then_b);
    then_fn();
    br(join_b);
    setBlock(else_b);
    else_fn();
    br(join_b);
    setBlock(join_b);
}

void
FunctionBuilder::whileLoop(const std::function<Reg()> &cond_fn,
                           const std::function<void()> &body_fn)
{
    const int head_b = newBlock();
    br(head_b);
    setBlock(head_b);
    const Reg c = cond_fn();
    const int body_b = newBlock();
    const int exit_b = newBlock();
    condBr(c, body_b, exit_b);
    setBlock(body_b);
    body_fn();
    br(head_b);
    setBlock(exit_b);
}

void
FunctionBuilder::forRange(Reg lo, Reg hi,
                          const std::function<void(Reg)> &body_fn)
{
    const Reg i = freshVar();
    set(i, lo);
    whileLoop([&] { return cmpLt(i, hi); },
              [&] {
                  body_fn(i);
                  set(i, addI(i, 1));
              });
}

void
FunctionBuilder::forRangeI(std::int64_t lo, std::int64_t hi,
                           const std::function<void(Reg)> &body_fn)
{
    forRange(constI(lo), constI(hi), body_fn);
}

} // namespace tir
} // namespace hintm
