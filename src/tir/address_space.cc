#include "address_space.hh"

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

std::int64_t
AddressSpace::read(Addr a) const
{
    HINTM_ASSERT((a & 7) == 0, "misaligned read at ", a);
    HINTM_ASSERT(a != 0, "null dereference (read)");
    auto it = pages_.find(pageNumber(a));
    if (it == pages_.end())
        return 0;
    return (*it->second)[pageOffset(a) / 8];
}

void
AddressSpace::write(Addr a, std::int64_t v)
{
    HINTM_ASSERT((a & 7) == 0, "misaligned write at ", a);
    HINTM_ASSERT(a != 0, "null dereference (write)");
    auto it = pages_.find(pageNumber(a));
    if (it == pages_.end()) {
        it = pages_.emplace(pageNumber(a), std::make_unique<Page>()).first;
        it->second->fill(0);
    }
    (*it->second)[pageOffset(a) / 8] = v;
}

} // namespace tir
} // namespace hintm
