#include "address_space.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hintm
{
namespace tir
{

AddressSpace::Page *
AddressSpace::findPage(Addr page) const
{
    CacheSlot &slot = pageCache_[page & (cacheSlots - 1)];
    if (slot.page == page)
        return slot.ptr;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr;
    slot.page = page;
    slot.ptr = it->second.get();
    return slot.ptr;
}

AddressSpace::Page *
AddressSpace::getPage(Addr page)
{
    if (Page *p = findPage(page))
        return p;
    Page *p = pages_.emplace(page, std::make_unique<Page>())
                  .first->second.get();
    p->fill(0);
    CacheSlot &slot = pageCache_[page & (cacheSlots - 1)];
    slot.page = page;
    slot.ptr = p;
    return p;
}

std::int64_t
AddressSpace::read(Addr a) const
{
    HINTM_ASSERT((a & 7) == 0, "misaligned read at ", a);
    HINTM_ASSERT(a != 0, "null dereference (read)");
    const Page *p = findPage(pageNumber(a));
    return p ? (*p)[pageOffset(a) / 8] : 0;
}

void
AddressSpace::write(Addr a, std::int64_t v)
{
    HINTM_ASSERT((a & 7) == 0, "misaligned write at ", a);
    HINTM_ASSERT(a != 0, "null dereference (write)");
    (*getPage(pageNumber(a)))[pageOffset(a) / 8] = v;
}

std::int64_t *
AddressSpace::wordRef(Addr a)
{
    HINTM_ASSERT((a & 7) == 0, "misaligned access at ", a);
    HINTM_ASSERT(a != 0, "null dereference");
    return &(*getPage(pageNumber(a)))[pageOffset(a) / 8];
}

AddressSpace::State
AddressSpace::saveState() const
{
    State s;
    s.pageNums.reserve(pages_.size());
    for (const auto &kv : pages_)
        s.pageNums.push_back(kv.first);
    std::sort(s.pageNums.begin(), s.pageNums.end());
    s.words.reserve(s.pageNums.size() * wordsPerPage);
    for (const Addr pn : s.pageNums) {
        const Page &p = *pages_.at(pn);
        s.words.insert(s.words.end(), p.begin(), p.end());
    }
    return s;
}

void
AddressSpace::loadState(const State &s)
{
    HINTM_ASSERT(s.words.size() == s.pageNums.size() * wordsPerPage,
                 "corrupt address-space state");
    pages_.clear();
    pageCache_.fill(CacheSlot{});
    for (std::size_t i = 0; i < s.pageNums.size(); ++i) {
        Page *p = pages_.emplace(s.pageNums[i], std::make_unique<Page>())
                      .first->second.get();
        std::copy_n(s.words.begin() + i * wordsPerPage, wordsPerPage,
                    p->begin());
    }
}

} // namespace tir
} // namespace hintm
