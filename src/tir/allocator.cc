#include "allocator.hh"

#include "common/logging.hh"
#include "tir/address_space.hh"

namespace hintm
{
namespace tir
{

Allocator::Allocator(unsigned num_arenas)
{
    HINTM_ASSERT(num_arenas >= 1, "need at least one arena");
    for (unsigned i = 0; i < num_arenas; ++i) {
        const Addr base = layout::arenasBase + Addr(i) * layout::arenaStride;
        arenas_.push_back(Arena{base, base, base + layout::arenaStride, {}});
    }
}

Addr
Allocator::alloc(unsigned arena, std::uint64_t bytes)
{
    HINTM_ASSERT(arena < arenas_.size(), "bad arena ", arena);
    HINTM_ASSERT(bytes > 0, "zero-size allocation");
    Arena &a = arenas_[arena];
    const std::uint64_t size = (bytes + 7) & ~std::uint64_t(7);

    Addr p = 0;
    auto fl = a.freeLists.find(size);
    if (fl != a.freeLists.end() && !fl->second.empty()) {
        p = fl->second.back();
        fl->second.pop_back();
    } else {
        HINTM_ASSERT(a.bump + size <= a.limit, "arena ", arena,
                     " exhausted");
        p = a.bump;
        a.bump += size;
    }
    live_.emplace(p, Allocation{arena, size});
    liveBytes_ += size;
    return p;
}

void
Allocator::release(Addr p)
{
    auto it = live_.find(p);
    HINTM_ASSERT(it != live_.end(), "free of unknown pointer ", p);
    const Allocation alloc = it->second;
    live_.erase(it);
    liveBytes_ -= alloc.size;
    arenas_[alloc.arena].freeLists[alloc.size].push_back(p);
    if (onRelease)
        onRelease(p, alloc.size);
}

std::uint64_t
Allocator::sizeOf(Addr p) const
{
    auto it = live_.find(p);
    return it == live_.end() ? 0 : it->second.size;
}

} // namespace tir
} // namespace hintm
