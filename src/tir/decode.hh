/**
 * @file
 * Pre-decoded TxIR: a one-time, per-function translation of the nested
 * `Function -> BasicBlock -> vector<Instr>` storage into one contiguous
 * `DecodedOp` stream the interpreter can run without re-resolving
 * blocks, call targets or global addresses per instruction. In the
 * spirit of Bochs-style decoded-instruction trace caches:
 *
 *  - blocks are flattened in order into a single array; `Br`/`CondBr`
 *    targets become absolute op indices (`Jmp`/`CondJmp`);
 *  - `GlobalAddr` is folded to a `Const` of the laid-out address, so
 *    decoding requires the module's globals to be assigned (it runs in
 *    the `Program` constructor, after layout);
 *  - common pairs fuse into superinstructions that preserve every
 *    architectural register write and the exact instruction count of
 *    their constituents (`DecodedOp::n`):
 *      * `Const` + ALU/compare  -> reg-imm form (`AddI` .. `CmpGeI`);
 *      * `Cmp*` + `CondBr`      -> `CmpBr` (and `CmpBrI` when the
 *        compare itself was a folded `Const` + `Cmp*`, n = 3);
 *      * `Gep` + `Load`/`Store` -> `GepLoad`/`GepStore`: the address
 *        computation happens at the memory boundary, one dispatch
 *        instead of two.
 *
 * Operand validity (register ranges, block targets, call arity) is
 * checked once at decode time, which is what lets the decoded
 * interpreter run without per-access assertions.
 */

#ifndef HINTM_TIR_DECODE_HH
#define HINTM_TIR_DECODE_HH

#include <cstdint>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace tir
{

/** Decoded opcodes (fused forms included). */
enum class DOp : std::uint8_t
{
    // dst = imm (also pre-resolved GlobalAddr).
    Const,
    Mov,

    // Reg-reg ALU: dst = a <op> b.
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,

    // Fused Const + ALU: xdst = ximm; dst = a <op> ximm (n = 2).
    AddI, SubI, MulI, DivI, ModI,
    AndI, OrI, XorI, ShlI, ShrI,
    CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,

    // Memory (non-boundary).
    Alloca,   ///< dst = fresh imm-byte stack slot
    Malloc,   ///< dst = heap alloc of a[=size] bytes
    Free,     ///< release allocation at a
    Gep,      ///< dst = a + b*imm + imm2 (b may be -1)

    // Memory boundaries (Step protocol).
    Load,     ///< dst = mem[a + imm]; `safe` = compiler hint
    Store,    ///< mem[a + imm] = b; `safe` = compiler hint
    GepLoad,  ///< xdst = a + b*imm + imm2; dst = mem[xdst + ximm] (n = 2)
    GepStore, ///< xdst = a + b*imm + imm2; mem[xdst + ximm] = dst (n = 2)

    // Control flow, targets resolved to absolute op indices.
    Jmp,      ///< goto t1
    CondJmp,  ///< goto a != 0 ? t1 : t2
    CmpBr,    ///< dst = a <cc> b; goto dst ? t1 : t2 (n = 2)
    CmpBrI,   ///< xdst = ximm; dst = a <cc> ximm; goto dst ? t1 : t2 (n = 3)
    Call,     ///< dst = call function #imm(argPool[argsBegin..])
    Ret,      ///< return a (a = -1 for void)

    // Transactions, threading, miscellany.
    TxBegin, TxEnd, TxSuspend, TxResume,
    Annotate, ///< pages [a, a+b) are thread-private (boundary)
    ThreadId, Rand, Barrier, Print, Nop,
};

const char *dopName(DOp op);

/** Comparison condition of the fused compare-and-branch forms. */
enum class Cond : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

constexpr bool
evalCond(Cond cc, std::int64_t a, std::int64_t b)
{
    switch (cc) {
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Lt: return a < b;
      case Cond::Le: return a <= b;
      case Cond::Gt: return a > b;
      case Cond::Ge: return a >= b;
    }
    return false;
}

/**
 * One decoded operation. Field roles per opcode are documented on the
 * `DOp` enumerators; `n` is the number of source instructions the op
 * stands for, so `Step::simpleInstrs` / `instrCount_` accounting stays
 * bit-identical to the reference interpreter. For the fused memory
 * forms only the non-boundary constituents count toward `n` at
 * dispatch; the access itself is counted by `completeMem()`, exactly
 * as in the reference path.
 */
struct DecodedOp
{
    DOp op = DOp::Nop;
    /** Compiler safety hint of the (fused) Load/Store. */
    bool safe = false;
    /** Source instructions this op accounts for (1..3). */
    std::uint8_t n = 1;
    Cond cc = Cond::Eq;

    std::int32_t dst = -1;
    std::int32_t a = -1;
    std::int32_t b = -1;
    /** Secondary destination: the folded Const's or Gep's register. */
    std::int32_t xdst = -1;

    /** Absolute op-index branch targets (taken / fall-through). */
    std::int32_t t1 = 0;
    std::int32_t t2 = 0;

    /** Call arguments: slice of DecodedFunction::argPool. */
    std::uint32_t argsBegin = 0;
    std::uint32_t argsCount = 0;

    std::int64_t imm = 0;
    std::int64_t imm2 = 0;
    /** Folded immediate: Const value or fused Load/Store offset. */
    std::int64_t ximm = 0;
};

/** Source position of a decoded op (diagnostics / oracle provenance). */
struct SrcRef
{
    std::int32_t block = 0;
    /** For the fused memory forms this is the access instruction (the
     * Load/Store), not the leading Gep. */
    std::int32_t instr = 0;
};

/** A function translated into one flat op stream. */
struct DecodedFunction
{
    std::vector<DecodedOp> ops;
    /** Call-argument registers, shared by all Call ops of the function. */
    std::vector<std::int32_t> argPool;
    /** Source position of each op, parallel to `ops`. */
    std::vector<SrcRef> srcRefs;
    /** Op index of each source basic block's first op (testing aid). */
    std::vector<std::int32_t> blockStart;
    std::uint32_t numRegs = 0;
    std::uint32_t numParams = 0;
};

/** All decoded functions of a module, indexed like Module::functions. */
struct DecodedModule
{
    std::vector<DecodedFunction> fns;
};

/**
 * Decode @p fn against @p mod. Globals must already be laid out
 * (GlobalAddr folds to the assigned address). Panics on malformed
 * input — the checks mirror the verifier's.
 */
DecodedFunction decodeFunction(const Module &mod, const Function &fn);

/** Decode every defined function (declared stubs stay empty). */
DecodedModule decodeModule(const Module &mod);

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_DECODE_HH
