/**
 * @file
 * Fluent construction API for TxIR, in the spirit of LLVM's IRBuilder.
 * Provides structured control-flow helpers (ifThen / whileLoop / forRange
 * taking lambdas) so workload kernels stay readable.
 */

#ifndef HINTM_TIR_BUILDER_HH
#define HINTM_TIR_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace tir
{

/** Virtual register handle. */
using Reg = int;

/** Builds one function inside a module. */
class FunctionBuilder
{
  public:
    /**
     * Start a new function. The function is appended to @p mod when
     * finish() is called (allowing recursive call-by-name resolution
     * through pre-declared stubs).
     */
    FunctionBuilder(Module &mod, std::string name, unsigned num_params);

    /** Finalize: append the function to the module. @return its index. */
    int finish();

    // --- values -----------------------------------------------------
    Reg param(unsigned i);
    Reg constI(std::int64_t v);
    Reg freshVar();
    void set(Reg var, Reg value);
    void setI(Reg var, std::int64_t value);

    Reg add(Reg a, Reg b);
    Reg addI(Reg a, std::int64_t i);
    Reg sub(Reg a, Reg b);
    Reg subI(Reg a, std::int64_t i);
    Reg mul(Reg a, Reg b);
    Reg mulI(Reg a, std::int64_t i);
    Reg div(Reg a, Reg b);
    Reg mod(Reg a, Reg b);
    Reg modI(Reg a, std::int64_t i);
    Reg andOp(Reg a, Reg b);
    Reg xorOp(Reg a, Reg b);
    Reg shl(Reg a, Reg b);
    Reg shlI(Reg a, std::int64_t i);
    Reg shrI(Reg a, std::int64_t i);
    Reg cmpEq(Reg a, Reg b);
    Reg cmpNe(Reg a, Reg b);
    Reg cmpLt(Reg a, Reg b);
    Reg cmpLtI(Reg a, std::int64_t i);
    Reg cmpGe(Reg a, Reg b);
    Reg cmpEqI(Reg a, std::int64_t i);
    Reg cmpNeI(Reg a, std::int64_t i);

    // --- memory -----------------------------------------------------
    Reg allocaBytes(std::uint64_t bytes);
    Reg mallocBytes(Reg size);
    Reg mallocI(std::uint64_t bytes);
    void freePtr(Reg p);
    Reg load(Reg addr, std::int64_t off = 0);
    void store(Reg addr, Reg val, std::int64_t off = 0);
    void storeI(Reg addr, std::int64_t val, std::int64_t off = 0);
    /** dst = base + idx*scale + off. Pass idx = -1 for a constant offset. */
    Reg gep(Reg base, Reg idx, std::int64_t scale, std::int64_t off = 0);
    Reg globalAddr(const std::string &name);

    // --- calls / control -------------------------------------------
    Reg call(const std::string &fn, std::vector<Reg> args);
    void callVoid(const std::string &fn, std::vector<Reg> args);
    void ret(Reg v = -1);
    void retVoid() { ret(-1); }

    void txBegin();
    void txEnd();
    /** Escape action: accesses until txResume() are neither tracked nor
     * versioned — they survive an abort (Intel/IBM suspend-resume). */
    void txSuspend();
    void txResume();
    /** Notary-style coarse annotation: declare the pages covering
     * [addr, addr+len) thread-private/safe. Unchecked: the programmer
     * vouches that no other thread races on them. */
    void annotateSafe(Reg addr, Reg len);
    Reg threadId();
    Reg rand(Reg bound);
    Reg randI(std::int64_t bound);
    void barrier();
    void print(Reg v);

    // --- structured control flow ------------------------------------
    /** if (cond != 0) thenFn(); */
    void ifThen(Reg cond, const std::function<void()> &then_fn);
    /** if (cond != 0) thenFn(); else elseFn(); */
    void ifThenElse(Reg cond, const std::function<void()> &then_fn,
                    const std::function<void()> &else_fn);
    /**
     * while (true) { c = condFn(); if (!c) break; bodyFn(); }
     * condFn runs at the loop head and returns the continuation register.
     */
    void whileLoop(const std::function<Reg()> &cond_fn,
                   const std::function<void()> &body_fn);
    /** for (i = lo; i < hi; ++i) bodyFn(i); — lo/hi evaluated once. */
    void forRange(Reg lo, Reg hi, const std::function<void(Reg)> &body_fn);
    void forRangeI(std::int64_t lo, std::int64_t hi,
                   const std::function<void(Reg)> &body_fn);

    // --- raw block access (for irregular control flow) ---------------
    int newBlock();
    void setBlock(int b);
    int currentBlock() const { return cur_; }
    void br(int target);
    void condBr(Reg cond, int if_true, int if_false);

    Module &module() { return mod_; }

  private:
    Reg newReg();
    Instr &emit(Instr ins);
    Reg emitBin(Opcode op, Reg a, Reg b);

    Module &mod_;
    Function fn_;
    int cur_ = 0;
    bool finished_ = false;
};

/**
 * Pre-declare a function name so mutually recursive call-by-name works;
 * the stub must be replaced by building a function of the same name
 * before the module is verified.
 */
int declareFunction(Module &mod, const std::string &name,
                    unsigned num_params);

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_BUILDER_HH
