/**
 * @file
 * Flat functional memory for TxIR programs: a paged sparse store of 64-bit
 * words. Caches in src/mem are tag-only; every architectural value lives
 * here, which keeps transactional rollback purely functional.
 */

#ifndef HINTM_TIR_ADDRESS_SPACE_HH
#define HINTM_TIR_ADDRESS_SPACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hintm
{
namespace tir
{

/** Sparse, page-granular word store. Accesses must be 8-byte aligned. */
class AddressSpace
{
  public:
    /** Read the word at @p a (untouched memory reads as zero). */
    std::int64_t read(Addr a) const;

    /** Write the word at @p a. */
    void write(Addr a, std::int64_t v);

    /**
     * Stable reference to the word at @p a, materializing its page.
     * Pages are never freed, so the pointer stays valid for the
     * program's lifetime; lets read-modify-write sequences (undo-log +
     * store) resolve the page once.
     */
    std::int64_t *wordRef(Addr a);

    /** Number of materialized pages (testing/profiling aid). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Flat copy of every materialized page, sorted by page number.
     * words holds wordsPerPage entries per page, in pageNums order.
     */
    struct State
    {
        std::vector<Addr> pageNums;
        std::vector<std::int64_t> words;
    };

    State saveState() const;

    /** Replace all contents with @p s. Invalidates wordRef pointers. */
    void loadState(const State &s);

  private:
    static constexpr std::size_t wordsPerPage = pageBytes / 8;
    using Page = std::array<std::int64_t, wordsPerPage>;

    /** Find @p page's backing store, consulting a small direct-mapped
     * pointer cache first. Returns nullptr for untouched pages (which
     * are never cached: absence can change). */
    Page *findPage(Addr page) const;

    /** As findPage, but materializes the page. */
    Page *getPage(Addr page);

    static constexpr std::size_t cacheSlots = 64;
    struct CacheSlot
    {
        Addr page = ~Addr(0);
        Page *ptr = nullptr;
    };

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    /** Page-pointer memo. Pages are never erased, so entries can only go
     * stale by slot reuse, never by dangling. */
    mutable std::array<CacheSlot, cacheSlots> pageCache_;
};

/**
 * Fixed virtual-memory layout of a loaded TxIR program. Regions are far
 * apart so that stacks, per-thread heap arenas and globals never share
 * pages — mirroring a real process image with per-thread malloc arenas.
 */
namespace layout
{
constexpr Addr globalsBase = 0x0001'0000;
constexpr Addr stacksBase = 0x2000'0000;
constexpr Addr stackStride = 0x0020'0000; ///< 2MB per thread
constexpr Addr arenasBase = 0x8000'0000;
constexpr Addr arenaStride = 0x0400'0000; ///< 64MB per arena

constexpr Addr
stackBase(ThreadId tid)
{
    return stacksBase + Addr(tid) * stackStride;
}
} // namespace layout

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_ADDRESS_SPACE_HH
