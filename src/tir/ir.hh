/**
 * @file
 * TxIR: a small register-based intermediate representation in which the
 * transactional workloads are written. It plays the role LLVM IR plays in
 * the paper: HinTM's static safety analyses (capture tracking, escape
 * analysis, Algorithm 1, read-only detection) run over TxIR and rewrite
 * load/store instructions into their safe-hinted counterparts.
 *
 * Model: non-SSA virtual registers holding 64-bit integers; functions of
 * basic blocks; a flat byte-addressed memory with 8-byte accesses; TX
 * boundaries as explicit instructions; structured thread entry points
 * (an init function run single-threaded, a thread function run by every
 * worker).
 */

#ifndef HINTM_TIR_IR_HH
#define HINTM_TIR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hintm
{
namespace tir
{

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    // Values and arithmetic: dst = a <op> b (registers), Const: dst = imm.
    Const,
    Mov,
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,

    // Memory. Addresses are byte addresses; every access moves 8 bytes.
    Alloca,     ///< dst = address of a fresh imm-byte stack slot
    Malloc,     ///< dst = heap allocation of a[=size] bytes
    Free,       ///< release heap allocation at a
    Load,       ///< dst = mem[a + imm]; `safe` flag = compiler hint
    Store,      ///< mem[a + imm] = b; `safe` flag = compiler hint
    Gep,        ///< dst = a + b*imm + imm2 (pointer arithmetic; b may be -1)
    GlobalAddr, ///< dst = address of global #imm

    // Control flow.
    Br,         ///< goto block imm
    CondBr,     ///< if a != 0 goto block imm else block imm2
    Call,       ///< dst = call function #imm with `args`
    Ret,        ///< return a (a = -1 for void)

    // Transactions, threading, miscellany.
    TxBegin,    ///< enter a transaction
    TxEnd,      ///< commit
    TxSuspend,  ///< escape action: pause HTM tracking (§VII-style)
    TxResume,   ///< end the escape window
    Annotate,   ///< Notary-style hint: pages [a, a+b) are thread-private
    ThreadId,   ///< dst = software thread id
    Rand,       ///< dst = uniform value in [0, a)
    Barrier,    ///< block until all threads arrive
    Print,      ///< debug-print register a
    Nop,
};

const char *opcodeName(Opcode op);

/** True for instructions that perform a data memory access. */
constexpr bool
isMemAccess(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

/** One TxIR instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    int dst = -1;
    int a = -1;
    int b = -1;
    std::int64_t imm = 0;
    std::int64_t imm2 = 0;
    /** Call arguments (registers in the caller). */
    std::vector<int> args;
    /** HinTM static safety hint on Load/Store (the safe-opcode analogue). */
    bool safe = false;
};

/** Straight-line run of instructions ending in a terminator. */
struct BasicBlock
{
    std::vector<Instr> instrs;
};

/** A TxIR function. Parameters arrive in registers [0, numParams). */
struct Function
{
    std::string name;
    unsigned numParams = 0;
    unsigned numRegs = 0;
    std::vector<BasicBlock> blocks;
};

/** A module-level variable living in the shared globals region. */
struct Global
{
    std::string name;
    std::uint64_t sizeBytes = 8;
    /** Assigned by the loader when the address space is laid out. */
    Addr addr = 0;
};

/** A whole program. */
struct Module
{
    std::vector<Function> functions;
    std::vector<Global> globals;
    /** Run once, single-threaded, before the measured parallel region. */
    int initFunc = -1;
    /** Run by every worker thread: threadFunc(tid). */
    int threadFunc = -1;

    int findFunction(const std::string &name) const;
    int findGlobal(const std::string &name) const;

    /** Human-readable dump of the whole module (debugging aid). */
    std::string print() const;
};

} // namespace tir
} // namespace hintm

#endif // HINTM_TIR_IR_HH
