/**
 * @file
 * yada: Delaunay mesh refinement (STAMP), 4 threads per the paper.
 * Worklist of bad triangles popped in a tiny TX; the refinement TX
 * gathers a cavity by chasing neighbor links through the shared
 * triangle store (scattered unsafe reads), consults a registry-published
 * per-thread geometry cache (dynamic-safe reads, opaque to the static
 * pass), and appends new triangles into a slot range pre-reserved by a
 * small counter TX so the append itself stays conflict-free.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t triangles;   ///< initial mesh size
    std::int64_t spareSlots;  ///< growth room for appends
    std::int64_t work;        ///< refinement items
    std::int64_t cavity;      ///< shared reads per refinement
    std::int64_t cacheWords;  ///< private geometry cache
    std::int64_t cacheReads;  ///< private reads per refinement
    std::int64_t newTris;     ///< triangles appended per refinement
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {256, 512, 16, 8, 1024, 12, 4};
      case Scale::Small: return {4096, 24576, 1400, 26, 8192, 70, 6};
      case Scale::Large: return {8192, 49152, 2000, 34, 16384, 110, 8};
    }
    return {};
}

} // namespace

Workload
buildYada(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 4;
    const std::int64_t row = 4; // words per triangle

    Module m;
    m.globals.push_back({"g_tri", 8, 0});
    m.globals.push_back({"g_tcnt", 8, 0});
    m.globals.push_back({"g_work", 8, 0});
    m.globals.push_back({"g_whead", 8, 0});
    m.globals.push_back({"g_registry", 8 * 8, 0});
    m.globals.push_back({"g_refined", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg tri = f.mallocI(
            std::uint64_t((p.triangles + p.spareSlots) * row) * 8);
        f.forRangeI(0, p.triangles, [&](Reg i) {
            const Reg base = f.gep(tri, f.mulI(i, row), 8);
            f.store(f.gep(base, f.constI(0), 8), f.randI(1 << 16));
            f.store(f.gep(base, f.constI(1), 8), f.randI(p.triangles));
            f.store(f.gep(base, f.constI(2), 8), f.randI(p.triangles));
            f.storeI(f.gep(base, f.constI(3), 8), 0);
        });
        f.store(f.globalAddr("g_tri"), tri);
        f.store(f.globalAddr("g_tcnt"), f.constI(p.triangles));

        const Reg work = f.mallocI(std::uint64_t(p.work) * 8);
        f.forRangeI(0, p.work, [&](Reg i) {
            f.store(f.gep(work, i, 8), f.randI(p.triangles));
        });
        f.store(f.globalAddr("g_work"), work);
        f.storeI(f.globalAddr("g_whead"), 0);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg tri = f.load(f.globalAddr("g_tri"));
        const Reg work = f.load(f.globalAddr("g_work"));

        const Reg cache = f.mallocI(std::uint64_t(p.cacheWords) * 8);
        f.store(f.gep(f.globalAddr("g_registry"), tid, 8), cache);
        f.forRangeI(0, p.cacheWords, [&](Reg i) {
            f.store(f.gep(cache, i, 8), f.randI(1 << 16));
        });

        const Reg refined = f.freshVar();
        f.setI(refined, 0);
        const Reg local = f.freshVar();
        f.setI(local, 0);
        const Reg running = f.freshVar();
        f.setI(running, 1);
        f.whileLoop([&] { return running; }, [&] {
            // Pop a work item in a tiny TX; new triangles go into a
            // per-thread slice of the spare region, so the append never
            // touches a shared counter and spare pages stay single-
            // writer (mesh codes commonly partition allocation this
            // way).
            const Reg h = f.freshVar();
            f.txBegin();
            const Reg whead = f.globalAddr("g_whead");
            f.set(h, f.load(whead));
            f.store(whead, f.addI(h, 1));
            f.txEnd();
            const Reg slot = f.add(
                f.constI(p.triangles),
                f.add(f.mulI(tid, p.spareSlots / 4),
                      f.mul(local, f.constI(p.newTris))));
            f.ifThenElse(
                f.cmpGe(h, f.constI(p.work)),
                [&] { f.setI(running, 0); },
                [&] {
                    const Reg seed = f.load(f.gep(work, h, 8));
                    f.txBegin();
                    // Gather the cavity: chase neighbor links through
                    // the shared triangle store.
                    const Reg cur = f.freshVar();
                    f.set(cur, seed);
                    const Reg acc = f.freshVar();
                    f.setI(acc, 0);
                    f.forRangeI(0, p.cavity, [&](Reg) {
                        const Reg base = f.gep(tri, f.mulI(cur, row), 8);
                        const Reg qual = f.load(base);
                        const Reg n1 =
                            f.load(f.gep(base, f.constI(1), 8));
                        f.set(acc, f.add(acc, qual));
                        f.set(cur, f.modI(f.addI(n1, 1),
                                          p.triangles));
                    });
                    // Geometry recomputation against the private cache.
                    f.forRangeI(0, p.cacheReads, [&](Reg) {
                        const Reg idx = f.randI(p.cacheWords);
                        f.set(acc,
                              f.add(acc, f.load(f.gep(cache, idx, 8))));
                    });
                    // Retriangulate: append into the reserved slots.
                    f.forRangeI(0, p.newTris, [&](Reg i) {
                        const Reg base = f.gep(
                            tri, f.mulI(f.add(slot, i), row), 8);
                        f.store(f.gep(base, f.constI(0), 8), acc);
                        f.store(f.gep(base, f.constI(1), 8), seed);
                        f.store(f.gep(base, f.constI(2), 8), cur);
                        f.store(f.gep(base, f.constI(3), 8), h);
                    });
                    // Mark the seed triangle refined.
                    f.store(f.gep(tri, f.mulI(seed, row), 8, 24),
                            f.constI(1));
                    f.txEnd();
                    f.set(refined, f.addI(refined, 1));
                    f.set(local, f.addI(local, 1));
                });
        });
        f.store(f.gep(f.globalAddr("g_refined"), tid, 64), refined);
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"yada", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
