/**
 * @file
 * convoy: adversarial micro-workload for the schedule explorer (not part
 * of the paper's suite — never listed in allNames()). Four threads run a
 * short loop of tiny TXs; every even iteration RMWs one shared word, so
 * attempts collide, retry and drive contexts into the fallback lock —
 * the lock-contender convoy. Odd iterations touch only the thread's
 * private 64-byte slot, giving the explorer hardware TXs that a sound
 * fallback path must abort via lock subscription: under the seeded
 * lazy-subscription bug (MachineConfig::unsafeLazySubscription) a
 * preempted private TX can commit while another context holds the lock.
 *
 * The final state is schedule-independent (all updates commute): the
 * shared counter totals threads * ceil(iters/2) and each slot word
 * totals its per-thread increment count, so the explorer's final-state
 * check applies.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

Workload
buildConvoy(Scale s, unsigned threads_override)
{
    const unsigned threads = threads_override ? threads_override : 4;
    std::int64_t iters = 12;
    switch (s) {
      case Scale::Tiny: iters = 12; break;
      case Scale::Small: iters = 48; break;
      case Scale::Large: iters = 96; break;
    }

    Module m;
    m.globals.push_back({"g_shared", 8, 0});
    m.globals.push_back({"g_slots", 8, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg slots = f.mallocI(std::uint64_t(threads) * 64);
        f.forRangeI(0, std::int64_t(threads) * 8, [&](Reg w) {
            f.store(f.gep(slots, w, 8), f.constI(0));
        });
        f.store(f.globalAddr("g_slots"), slots);
        f.storeI(f.globalAddr("g_shared"), 0);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg slot =
            f.gep(f.load(f.globalAddr("g_slots")), tid, 64, 0);
        const Reg shared = f.globalAddr("g_shared");

        f.forRangeI(0, iters, [&](Reg i) {
            f.txBegin();
            f.ifThen(f.cmpEqI(f.modI(i, 2), 0), [&] {
                // Contention driver: every context RMWs the same word.
                f.store(shared, f.addI(f.load(shared), 1));
            });
            // Private work: two words of the thread's own slot.
            f.store(slot, f.addI(f.load(slot), 1));
            f.store(f.gep(slot, f.constI(1), 8),
                    f.addI(f.load(slot, 8), 1));
            f.txEnd();
        });
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"convoy", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
