/**
 * @file
 * bayes: Bayesian network structure learning (STAMP). Each TX scores a
 * candidate edge: it scans a scattered slice of the shared adjacency
 * matrix, consults a read-only conditional-probability table (the small
 * statically-safe fraction the paper reports), mixes in a
 * registry-published per-thread score cache (dynamic-safe), and commits
 * an adjacency update. Footprints hover around P8's capacity.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t vars;       ///< network variables (adjacency vars^2)
    std::int64_t probWords;  ///< read-only CPT size
    std::int64_t probReads;  ///< CPT lookups per TX
    std::int64_t adjReads;   ///< adjacency reads per TX
    std::int64_t cacheWords;
    std::int64_t cacheReads;
    std::int64_t work;       ///< candidate edges
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {32, 512, 2, 8, 1024, 8, 24};
      case Scale::Small: return {96, 4096, 4, 34, 8192, 52, 2000};
      case Scale::Large: return {128, 8192, 5, 44, 16384, 80, 1800};
    }
    return {};
}

} // namespace

Workload
buildBayes(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;

    Module m;
    m.globals.push_back({"g_adj", 8, 0});
    m.globals.push_back({"g_probs", 8, 0});
    m.globals.push_back({"g_whead", 8, 0});
    m.globals.push_back({"g_registry", 8 * 8, 0});
    m.globals.push_back({"g_accepted", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg adj = f.mallocI(std::uint64_t(p.vars * p.vars) * 8);
        f.forRangeI(0, p.vars * p.vars,
                    [&](Reg i) { f.storeI(f.gep(adj, i, 8), 0); });
        f.store(f.globalAddr("g_adj"), adj);

        // Conditional probability table: never written after init.
        const Reg probs = f.mallocI(std::uint64_t(p.probWords) * 8);
        f.forRangeI(0, p.probWords, [&](Reg i) {
            f.store(f.gep(probs, i, 8), f.addI(f.randI(1000), 1));
        });
        f.store(f.globalAddr("g_probs"), probs);
        f.storeI(f.globalAddr("g_whead"), 0);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg adj = f.load(f.globalAddr("g_adj"));
        const Reg probs = f.load(f.globalAddr("g_probs"));

        const Reg cache = f.mallocI(std::uint64_t(p.cacheWords) * 8);
        f.store(f.gep(f.globalAddr("g_registry"), tid, 8), cache);
        f.forRangeI(0, p.cacheWords, [&](Reg i) {
            f.store(f.gep(cache, i, 8), f.randI(1 << 12));
        });

        const Reg accepted = f.freshVar();
        f.setI(accepted, 0);
        const Reg running = f.freshVar();
        f.setI(running, 1);
        f.whileLoop([&] { return running; }, [&] {
            const Reg h = f.freshVar();
            f.txBegin();
            const Reg whead = f.globalAddr("g_whead");
            f.set(h, f.load(whead));
            f.store(whead, f.addI(h, 1));
            f.txEnd();
            f.ifThenElse(
                f.cmpGe(h, f.constI(p.work)),
                [&] { f.setI(running, 0); },
                [&] {
                    const Reg u = f.modI(f.mulI(h, 31), p.vars);
                    const Reg v = f.modI(f.mulI(h, 17), p.vars);
                    f.txBegin();
                    const Reg score = f.freshVar();
                    f.setI(score, 0);
                    // Scan a scattered slice of u's adjacency row-space.
                    f.forRangeI(0, p.adjReads, [&](Reg i) {
                        const Reg idx = f.modI(
                            f.add(f.mulI(i, 151), f.mulI(u, p.vars)),
                            p.vars * p.vars);
                        f.set(score,
                              f.add(score, f.load(f.gep(adj, idx, 8))));
                    });
                    // Read-only CPT lookups (static-safe).
                    f.forRangeI(0, p.probReads, [&](Reg i) {
                        const Reg idx = f.modI(
                            f.add(f.mul(score, f.addI(i, 3)), h),
                            p.probWords);
                        f.set(score,
                              f.add(score,
                                    f.load(f.gep(probs, idx, 8))));
                    });
                    // Per-thread score cache (dynamic-safe).
                    f.forRangeI(0, p.cacheReads, [&](Reg) {
                        const Reg idx = f.randI(p.cacheWords);
                        f.set(score,
                              f.add(score,
                                    f.load(f.gep(cache, idx, 8))));
                    });
                    // Commit the candidate if the score qualifies.
                    f.ifThen(f.cmpEqI(f.modI(score, 4), 0), [&] {
                        f.store(f.gep(adj,
                                      f.add(f.mulI(u, p.vars), v), 8),
                                f.constI(1));
                        f.set(accepted, f.addI(accepted, 1));
                    });
                    f.txEnd();
                });
        });
        f.store(f.gep(f.globalAddr("g_accepted"), tid, 64), accepted);
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"bayes", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
