/**
 * @file
 * Workload registry: name-based lookup used by the benchmark harnesses
 * and examples.
 */

#include "workloads.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace hintm
{
namespace workloads
{

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = {
        "bayes",  "genome",   "intruder", "kmeans",  "labyrinth",
        "ssca2",  "vacation", "yada",     "tpcc-no", "tpcc-p",
    };
    return names;
}

namespace
{

Workload
buildBase(const std::string &base, Scale s, unsigned threads)
{
    if (base == "bayes")
        return buildBayes(s, threads);
    if (base == "genome")
        return buildGenome(s, threads);
    if (base == "intruder")
        return buildIntruder(s, threads);
    if (base == "kmeans")
        return buildKmeans(s, threads);
    if (base == "labyrinth")
        return buildLabyrinth(s, threads);
    if (base == "ssca2")
        return buildSsca2(s, threads);
    if (base == "vacation")
        return buildVacation(s, threads);
    if (base == "yada")
        return buildYada(s, threads);
    if (base == "tpcc-no")
        return buildTpccNo(s, threads);
    if (base == "tpcc-p")
        return buildTpccP(s, threads);
    // Explorer-only adversarial kernels: resolvable by name, but never
    // part of allNames() (the figure pipelines iterate that list).
    if (base == "convoy")
        return buildConvoy(s, threads);
    if (base == "hintrace")
        return buildHintRace(s, threads);
    HINTM_FATAL("unknown workload '", base, "'");
}

} // namespace

Workload
byName(const std::string &name, Scale s)
{
    std::string base = name;
    unsigned threads = 0; // 0 = the paper's deployment
    const std::size_t at = name.find('@');
    if (at != std::string::npos) {
        base = name.substr(0, at);
        char *end = nullptr;
        threads = unsigned(
            std::strtoul(name.c_str() + at + 1, &end, 10));
        HINTM_ASSERT(end && *end == '\0' && threads >= 1 &&
                         threads <= 64,
                     "bad thread-count suffix in workload '", name,
                     "' (want name@N with N in 1..64)");
    }
    Workload w = buildBase(base, s, threads);
    // Keep the suffixed name: it is part of every result-cache key.
    w.name = name;
    return w;
}

} // namespace workloads
} // namespace hintm
