/**
 * @file
 * Workload registry: name-based lookup used by the benchmark harnesses
 * and examples.
 */

#include "workloads.hh"

#include "common/logging.hh"

namespace hintm
{
namespace workloads
{

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = {
        "bayes",  "genome",   "intruder", "kmeans",  "labyrinth",
        "ssca2",  "vacation", "yada",     "tpcc-no", "tpcc-p",
    };
    return names;
}

Workload
byName(const std::string &name, Scale s)
{
    if (name == "bayes")
        return buildBayes(s);
    if (name == "genome")
        return buildGenome(s);
    if (name == "intruder")
        return buildIntruder(s);
    if (name == "kmeans")
        return buildKmeans(s);
    if (name == "labyrinth")
        return buildLabyrinth(s);
    if (name == "ssca2")
        return buildSsca2(s);
    if (name == "vacation")
        return buildVacation(s);
    if (name == "yada")
        return buildYada(s);
    if (name == "tpcc-no")
        return buildTpccNo(s);
    if (name == "tpcc-p")
        return buildTpccP(s);
    HINTM_FATAL("unknown workload '", name, "'");
}

} // namespace workloads
} // namespace hintm
