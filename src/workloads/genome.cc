/**
 * @file
 * genome: gene sequencing (STAMP), 4 threads per the paper. Phase 1
 * deduplicates segments into a shared open-addressing hash set (small
 * TXs); phase 2 performs overlap matching with large readsets over a
 * per-thread scratch buffer. The scratch buffer is *published into a
 * shared registry*, so static analysis must conservatively reject it
 * (the paper reports zero statically-safe accesses for genome), while
 * the dynamic page classifier sees its pages stay thread-private and
 * strips most of the TX footprint.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t segments;
    std::int64_t segWords;
    std::int64_t tableSize; ///< power of two
    std::int64_t bufWords;
    std::int64_t matchIters; ///< phase-2 TXs per thread
    std::int64_t matchReads; ///< private-buffer reads per phase-2 TX
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {128, 4, 512, 1024, 20, 24};
      case Scale::Small: return {768, 4, 2048, 8192, 220, 96};
      case Scale::Large: return {1536, 4, 4096, 16384, 320, 300};
    }
    return {};
}

} // namespace

Workload
buildGenome(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 4;
    const std::int64_t per_thread = p.segments / threads;

    Module m;
    m.globals.push_back({"g_segs", 8, 0});
    m.globals.push_back({"g_table", 8, 0});
    m.globals.push_back({"g_links", 8, 0});
    m.globals.push_back({"g_registry", 8 * 8, 0});
    m.globals.push_back({"g_inserted", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg segs =
            f.mallocI(std::uint64_t(p.segments * p.segWords) * 8);
        f.forRangeI(0, p.segments, [&](Reg i) {
            const Reg base = f.gep(segs, f.mulI(i, p.segWords), 8);
            f.store(f.gep(base, f.constI(0), 8),
                    f.addI(f.randI(1 << 20), 1));
            f.forRangeI(1, p.segWords, [&](Reg w) {
                f.store(f.gep(base, w, 8), f.randI(1 << 16));
            });
        });
        f.store(f.globalAddr("g_segs"), segs);

        const Reg table = f.mallocI(std::uint64_t(p.tableSize) * 8);
        f.forRangeI(0, p.tableSize,
                    [&](Reg i) { f.storeI(f.gep(table, i, 8), 0); });
        f.store(f.globalAddr("g_table"), table);

        const Reg links = f.mallocI(std::uint64_t(p.segments * 2) * 8);
        f.store(f.globalAddr("g_links"), links);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg segs = f.load(f.globalAddr("g_segs"));
        const Reg table = f.load(f.globalAddr("g_table"));
        const Reg links = f.load(f.globalAddr("g_links"));

        // Scratch buffer, published to the registry: thread-private at
        // runtime, escaped for the compiler.
        const Reg buf = f.mallocI(std::uint64_t(p.bufWords) * 8);
        f.store(f.gep(f.globalAddr("g_registry"), tid, 8), buf);
        f.forRangeI(0, p.bufWords, [&](Reg i) {
            f.store(f.gep(buf, i, 8), f.randI(1 << 16));
        });

        // Phase 1: segment deduplication into the shared hash set.
        const Reg lo = f.mulI(tid, per_thread);
        const Reg hi = f.addI(lo, per_thread);
        f.forRange(lo, hi, [&](Reg i) {
            const Reg sbase = f.gep(segs, f.mulI(i, p.segWords), 8);
            f.txBegin();
            const Reg key = f.load(sbase);
            const Reg slot = f.freshVar();
            f.set(slot, f.modI(key, p.tableSize));
            const Reg probing = f.freshVar();
            f.setI(probing, 1);
            f.whileLoop([&] { return probing; }, [&] {
                const Reg cur = f.load(f.gep(table, slot, 8));
                f.ifThenElse(
                    f.cmpEqI(cur, 0),
                    [&] {
                        f.store(f.gep(table, slot, 8), key);
                        // Mark the segment used: this write is what makes
                        // the segment array non-read-only for the static
                        // pass (matching genome's 0% static result).
                        f.store(f.gep(sbase, f.constI(1), 8),
                                f.constI(1));
                        f.setI(probing, 0);
                    },
                    [&] {
                        f.ifThenElse(
                            f.cmpEq(cur, key),
                            [&] { f.setI(probing, 0); },
                            [&] {
                                f.set(slot,
                                      f.modI(f.addI(slot, 1),
                                             p.tableSize));
                            });
                    });
            });
            f.txEnd();
        });
        f.barrier();

        // Phase 2: overlap matching with big private readsets.
        f.forRangeI(0, p.matchIters, [&](Reg) {
            f.txBegin();
            const Reg acc = f.freshVar();
            f.setI(acc, 0);
            f.forRangeI(0, p.matchReads, [&](Reg) {
                const Reg idx = f.randI(p.bufWords);
                f.set(acc, f.add(acc, f.load(f.gep(buf, idx, 8))));
            });
            // Consult the shared hash set for the overlap candidate.
            const Reg h = f.freshVar();
            f.set(h, f.modI(acc, p.tableSize));
            f.forRangeI(0, 4, [&](Reg) {
                const Reg v = f.load(f.gep(table, h, 8));
                f.set(h, f.modI(f.add(f.addI(v, 1), h), p.tableSize));
            });
            // Record the chosen link (scattered shared writes).
            const Reg li = f.randI(p.segments);
            f.store(f.gep(links, li, 16, 0), acc);
            f.store(f.gep(links, li, 16, 8), h);
            f.txEnd();
        });
        // Per-thread progress counter (block-strided, outside TXs).
        const Reg ins = f.gep(f.globalAddr("g_inserted"), tid, 64);
        f.store(ins, f.constI(1));
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"genome", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
