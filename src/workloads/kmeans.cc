/**
 * @file
 * kmeans: iterative clustering with tiny transactions (STAMP). Each
 * thread assigns its partition of points to the nearest centroid and
 * transactionally folds the point into that centroid's accumulator —
 * a 1-2 block TX that never pressures capacity but conflicts on the
 * small accumulator table. Point data is read-only in the parallel
 * region, so the static pass marks those loads safe.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t points;
    std::int64_t clusters;
    std::int64_t dims;
    std::int64_t iters;
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {256, 8, 4, 1};
      case Scale::Small: return {2048, 16, 4, 2};
      case Scale::Large: return {6144, 16, 4, 2};
    }
    return {};
}

} // namespace

Workload
buildKmeans(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    const std::int64_t per_thread = p.points / threads;

    Module m;
    m.globals.push_back({"g_points", 8, 0});
    m.globals.push_back({"g_cent", 8, 0});
    m.globals.push_back({"g_acc", 8, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg pts = f.mallocI(std::uint64_t(p.points * p.dims) * 8);
        f.forRangeI(0, p.points * p.dims, [&](Reg i) {
            f.store(f.gep(pts, i, 8), f.randI(1000));
        });
        f.store(f.globalAddr("g_points"), pts);

        const Reg cent = f.mallocI(std::uint64_t(p.clusters * p.dims) * 8);
        f.forRangeI(0, p.clusters * p.dims, [&](Reg i) {
            f.store(f.gep(cent, i, 8), f.randI(1000));
        });
        f.store(f.globalAddr("g_cent"), cent);

        const Reg acc =
            f.mallocI(std::uint64_t(p.clusters * (p.dims + 1)) * 8);
        f.forRangeI(0, p.clusters * (p.dims + 1), [&](Reg i) {
            f.storeI(f.gep(acc, i, 8), 0);
        });
        f.store(f.globalAddr("g_acc"), acc);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg pts = f.load(f.globalAddr("g_points"));
        const Reg cent = f.load(f.globalAddr("g_cent"));
        const Reg acc = f.load(f.globalAddr("g_acc"));
        const Reg lo = f.mulI(tid, per_thread);
        const Reg hi = f.addI(lo, per_thread);

        f.forRangeI(0, p.iters, [&](Reg) {
            f.forRange(lo, hi, [&](Reg i) {
                const Reg pbase = f.gep(pts, f.mulI(i, p.dims), 8);
                // Nearest centroid by squared distance.
                const Reg best = f.freshVar();
                const Reg bestd = f.freshVar();
                f.setI(best, 0);
                f.setI(bestd, std::int64_t(1) << 60);
                f.forRangeI(0, p.clusters, [&](Reg k) {
                    const Reg dist = f.freshVar();
                    f.setI(dist, 0);
                    f.forRangeI(0, p.dims, [&](Reg d) {
                        const Reg pv = f.load(f.gep(pbase, d, 8));
                        const Reg cv = f.load(f.gep(
                            cent, f.add(f.mulI(k, p.dims), d), 8));
                        const Reg diff = f.sub(pv, cv);
                        f.set(dist, f.add(dist, f.mul(diff, diff)));
                    });
                    f.ifThen(f.cmpLt(dist, bestd), [&] {
                        f.set(bestd, dist);
                        f.set(best, k);
                    });
                });
                // Fold the point into the winner's accumulator.
                f.txBegin();
                const Reg row =
                    f.gep(acc, f.mulI(best, p.dims + 1), 8);
                f.forRangeI(0, p.dims, [&](Reg d) {
                    const Reg slot = f.gep(row, d, 8);
                    f.store(slot,
                            f.add(f.load(slot), f.load(f.gep(pbase, d, 8))));
                });
                const Reg cnt = f.gep(row, f.constI(p.dims), 8);
                f.store(cnt, f.addI(f.load(cnt), 1));
                f.txEnd();
            });
            f.barrier();
            // Thread 0 recomputes centroids and clears accumulators.
            f.ifThen(f.cmpEqI(tid, 0), [&] {
                f.forRangeI(0, p.clusters, [&](Reg k) {
                    const Reg row = f.gep(acc, f.mulI(k, p.dims + 1), 8);
                    const Reg n = f.load(f.gep(row, f.constI(p.dims), 8));
                    f.ifThen(f.cmpNeI(n, 0), [&] {
                        f.forRangeI(0, p.dims, [&](Reg d) {
                            const Reg sum = f.load(f.gep(row, d, 8));
                            f.store(f.gep(cent,
                                          f.add(f.mulI(k, p.dims), d), 8),
                                    f.div(sum, n));
                        });
                    });
                    f.forRangeI(0, p.dims + 1, [&](Reg d) {
                        f.storeI(f.gep(row, d, 8), 0);
                    });
                });
            });
            f.barrier();
        });
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"kmeans", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
