/**
 * @file
 * TPC-C's two dominant queries as transactional kernels (§V): new_order
 * (tpcc-no) and payment (tpcc-p).
 *
 * new_order reads the read-only item catalog (the ~18% of loads the
 * static pass proves safe), decrements scattered stock rows, and appends
 * order lines; conflicts concentrate on the per-district next-order-id
 * counters. payment updates hot warehouse/district YTD totals (the
 * dominant conflict source — the paper reports 85% of its aborts are
 * conflicts) and occasionally scans the customer table by last name,
 * producing the capacity-abort tail.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t warehouses;
    std::int64_t districts;   ///< per warehouse
    std::int64_t items;
    std::int64_t customers;
    std::int64_t txPerThread;
    std::int64_t maxLines;    ///< order lines per new_order
    std::int64_t scanLen;     ///< customer rows touched by a name scan
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {2, 4, 256, 256, 12, 6, 16};
      case Scale::Small: return {2, 10, 4096, 2048, 400, 30, 72};
      case Scale::Large: return {4, 10, 8192, 4096, 500, 34, 100};
    }
    return {};
}

/** Shared schema: emits init laying out all tables. */
void
emitInit(Module &m, const Params &p)
{
    FunctionBuilder f(m, "init", 0);

    const Reg wh = f.mallocI(std::uint64_t(p.warehouses * 8) * 8);
    f.forRangeI(0, p.warehouses * 8,
                [&](Reg i) { f.store(f.gep(wh, i, 8), f.addI(i, 1)); });
    f.store(f.globalAddr("g_wh"), wh);

    // Read-only warehouse/item metadata (tax rates, names, prices).
    const Reg info = f.mallocI(std::uint64_t(p.warehouses * 16) * 8);
    f.forRangeI(0, p.warehouses * 16, [&](Reg i) {
        f.store(f.gep(info, i, 8), f.addI(f.randI(100), 1));
    });
    f.store(f.globalAddr("g_info"), info);

    const std::int64_t wd = p.warehouses * p.districts;
    const Reg dist = f.mallocI(std::uint64_t(wd * 4) * 8);
    f.forRangeI(0, wd, [&](Reg d) {
        const Reg base = f.gep(dist, f.mulI(d, 4), 8);
        f.storeI(f.gep(base, f.constI(0), 8), 1); // next_o_id
        f.storeI(f.gep(base, f.constI(1), 8), 0); // ytd
    });
    f.store(f.globalAddr("g_dist"), dist);

    const Reg item = f.mallocI(std::uint64_t(p.items * 4) * 8);
    f.forRangeI(0, p.items, [&](Reg i) {
        const Reg base = f.gep(item, f.mulI(i, 4), 8);
        f.store(f.gep(base, f.constI(0), 8), i);
        f.store(f.gep(base, f.constI(1), 8), f.addI(f.randI(90), 10));
        f.store(f.gep(base, f.constI(2), 8), f.randI(1 << 12));
    });
    f.store(f.globalAddr("g_item"), item);

    const Reg stock = f.mallocI(
        std::uint64_t(p.warehouses * p.items * 2) * 8);
    f.forRangeI(0, p.warehouses * p.items, [&](Reg i) {
        f.storeI(f.gep(stock, f.mulI(i, 2), 8), 1000);
    });
    f.store(f.globalAddr("g_stock"), stock);

    const Reg cust =
        f.mallocI(std::uint64_t(p.customers * 8) * 8);
    f.forRangeI(0, p.customers, [&](Reg c) {
        const Reg base = f.gep(cust, f.mulI(c, 8), 8);
        f.storeI(f.gep(base, f.constI(0), 8), 0);      // balance
        f.store(f.gep(base, f.constI(1), 8),
                f.modI(c, 32));                        // last-name bucket
    });
    f.store(f.globalAddr("g_cust"), cust);

    // Customer last-name index: names never change, so this stays
    // read-only for the whole parallel region (static- and dynamic-safe
    // under HinTM — the source of payment's capacity-abort relief).
    const Reg nameidx = f.mallocI(std::uint64_t(p.customers) * 8);
    f.forRangeI(0, p.customers, [&](Reg c) {
        f.store(f.gep(nameidx, c, 8), f.modI(c, 32));
    });
    f.store(f.globalAddr("g_nameidx"), nameidx);

    // Order / order-line / history append regions (per-thread layout).
    const std::int64_t orders =
        (p.txPerThread * 8 + 1) * (p.maxLines + 2) + 64;
    const Reg ol = f.mallocI(std::uint64_t(orders * 2) * 8);
    f.store(f.globalAddr("g_ol"), ol);
    const Reg hist = f.mallocI(std::uint64_t(orders * 2) * 8);
    f.store(f.globalAddr("g_hist"), hist);
    f.storeI(f.globalAddr("g_hcnt"), 0);
    f.retVoid();
    m.initFunc = f.finish();
}

void
pushGlobals(Module &m)
{
    m.globals.push_back({"g_wh", 8, 0});
    m.globals.push_back({"g_info", 8, 0});
    m.globals.push_back({"g_dist", 8, 0});
    m.globals.push_back({"g_item", 8, 0});
    m.globals.push_back({"g_stock", 8, 0});
    m.globals.push_back({"g_cust", 8, 0});
    m.globals.push_back({"g_ol", 8, 0});
    m.globals.push_back({"g_hist", 8, 0});
    m.globals.push_back({"g_hcnt", 8, 0});
    m.globals.push_back({"g_nameidx", 8, 0});
    m.globals.push_back({"g_done", 8 * 64, 0});
}

} // namespace

Workload
buildTpccNo(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    Module m;
    pushGlobals(m);
    emitInit(m, p);

    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg wh = f.load(f.globalAddr("g_wh"));
    const Reg dist = f.load(f.globalAddr("g_dist"));
    const Reg item = f.load(f.globalAddr("g_item"));
    const Reg stock = f.load(f.globalAddr("g_stock"));
    const Reg ol = f.load(f.globalAddr("g_ol"));
    const std::int64_t ol_stride = p.maxLines + 2;

    f.forRangeI(0, p.txPerThread, [&](Reg n) {
        const Reg w = f.randI(p.warehouses);
        const Reg d = f.randI(p.districts);
        // Orders are mostly small with an occasional bulk order — the
        // bulk tail is what brushes against P8's capacity.
        const Reg lines = f.freshVar();
        f.set(lines, f.addI(f.randI(10), 5));
        f.ifThen(f.cmpLtI(f.randI(100), 5), [&] {
            f.set(lines, f.addI(lines, p.maxLines - 14));
        });
        f.txBegin();
        const Reg wtax = f.load(f.gep(wh, f.mulI(w, 8), 8));
        const Reg total = f.freshVar();
        f.set(total, wtax);
        const Reg order_base =
            f.mulI(f.add(f.mulI(tid, p.txPerThread), n), ol_stride);
        f.forRange(f.constI(0), lines, [&](Reg i) {
            const Reg it = f.randI(p.items);
            const Reg irow = f.gep(item, f.mulI(it, 4), 8);
            // Item catalog lookups: read-only, statically safe.
            const Reg price = f.load(f.gep(irow, f.constI(1), 8));
            const Reg idata = f.load(f.gep(irow, f.constI(2), 8));
            f.set(total, f.add(total, f.add(price, idata)));
            // Stock decrement (scattered unsafe read+write).
            const Reg srow = f.gep(
                stock, f.mulI(f.add(f.mulI(w, p.items), it), 2), 8);
            const Reg q = f.load(srow);
            f.store(srow, f.subI(q, 1));
            // Order line append: fresh per-order blocks.
            const Reg slot = f.add(order_base, i);
            f.store(f.gep(ol, slot, 16, 0), it);
            f.store(f.gep(ol, slot, 16, 8), price);
        });
        // Order header, then the district order counter — the conflict
        // hotspot — touched last to keep its window short.
        const Reg hdr = f.add(order_base, f.constI(p.maxLines));
        f.store(f.gep(ol, hdr, 16, 0), total);
        f.store(f.gep(ol, hdr, 16, 8), n);
        const Reg drow =
            f.gep(dist, f.mulI(f.add(f.mulI(w, p.districts), d), 4), 8);
        f.store(drow, f.addI(f.load(drow), 1));
        f.txEnd();
    });
    f.store(f.gep(f.globalAddr("g_done"), tid, 64), f.constI(1));
    f.retVoid();
    m.threadFunc = f.finish();

    return Workload{"tpcc-no", std::move(m), threads};
}

Workload
buildTpccP(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    Module m;
    pushGlobals(m);
    emitInit(m, p);

    FunctionBuilder f(m, "worker", 1);
    const Reg tid = f.param(0);
    const Reg wh = f.load(f.globalAddr("g_wh"));
    const Reg info = f.load(f.globalAddr("g_info"));
    const Reg dist = f.load(f.globalAddr("g_dist"));
    const Reg cust = f.load(f.globalAddr("g_cust"));
    const Reg hist = f.load(f.globalAddr("g_hist"));

    f.forRangeI(0, p.txPerThread, [&](Reg n) {
        const Reg w = f.randI(p.warehouses);
        const Reg d = f.randI(p.districts);
        const Reg amount = f.addI(f.randI(500), 1);
        const Reg by_name = f.cmpLtI(f.randI(100), 4); // 4% name scans
        f.txBegin();
        // Read-only warehouse metadata (the small static-safe slice).
        const Reg tax1 = f.load(f.gep(info, f.mulI(w, 16), 8));
        const Reg tax2 = f.load(f.gep(info, f.mulI(w, 16), 8, 8));

        // Customer selection: usually direct, occasionally a last-name
        // scan over many rows (the capacity tail).
        const Reg cid = f.freshVar();
        f.set(cid, f.randI(p.customers));
        f.ifThen(by_name, [&] {
            // Scan the read-only last-name index: a large footprint that
            // HinTM classifies safe, eliminating the capacity tail.
            const Reg nameidx = f.load(f.globalAddr("g_nameidx"));
            const Reg bucket = f.modI(cid, 32);
            const Reg cursor = f.freshVar();
            f.set(cursor, cid);
            f.forRangeI(0, p.scanLen, [&](Reg) {
                const Reg b = f.load(f.gep(nameidx, cursor, 8));
                f.ifThen(f.cmpEq(b, bucket), [&] { f.set(cid, cursor); });
                f.set(cursor,
                      f.modI(f.addI(cursor, 17), p.customers));
            });
        });
        const Reg crow = f.gep(cust, f.mulI(cid, 8), 8);
        f.store(crow, f.sub(f.load(crow), amount));
        f.store(f.gep(crow, f.constI(2), 8),
                f.add(tax1, tax2));

        // History append into a per-thread region (the usual TPC-C
        // trick: the history table has no primary key, so every
        // implementation partitions the inserts).
        const Reg hslot =
            f.add(f.mulI(tid, p.txPerThread + 1), n);
        f.store(f.gep(hist, hslot, 16, 0), amount);
        f.store(f.gep(hist, hslot, 16, 8), n);

        // Hot YTD updates last: warehouse then district. Touching the
        // contended rows at the end shortens the conflict window but
        // still produces payment's conflict-dominated abort mix.
        const Reg wrow = f.gep(wh, f.mulI(w, 8), 8, 8);
        f.store(wrow, f.add(f.load(wrow), amount));
        const Reg drow = f.gep(
            dist, f.mulI(f.add(f.mulI(w, p.districts), d), 4), 8, 8);
        f.store(drow, f.add(f.load(drow), amount));
        f.txEnd();
    });
    f.store(f.gep(f.globalAddr("g_done"), tid, 64), f.constI(1));
    f.retVoid();
    m.threadFunc = f.finish();

    return Workload{"tpcc-p", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
