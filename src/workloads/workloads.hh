/**
 * @file
 * The transactional workload suite (§V): TxIR re-implementations of the
 * STAMP kernels plus TPC-C's new_order and payment queries, engineered to
 * reproduce each application's published memory behaviour — TX footprint
 * distribution, thread-private scratchpads, sharing pattern and conflict
 * profile. See DESIGN.md for the substitution rationale.
 *
 * Scales: Tiny is for unit tests; Small drives the P8 experiments
 * (Fig. 1/4/5/6); Large adds footprint pressure for the P8S and L1TM
 * studies (Fig. 7/8), mirroring the paper's use of larger inputs there.
 */

#ifndef HINTM_WORKLOADS_WORKLOADS_HH
#define HINTM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace workloads
{

enum class Scale : std::uint8_t
{
    Tiny,
    Small,
    Large,
};

/** A ready-to-compile workload. */
struct Workload
{
    std::string name;
    tir::Module module;
    /** Worker threads the paper deploys (4 for genome/yada, else 8). */
    unsigned threads = 8;
};

// Each builder takes an optional worker-thread count (0 = the paper's
// deployment). The count is baked into the generated TxIR (per-thread
// work partitions), so a module built for N threads must be simulated
// with exactly N workers.
Workload buildBayes(Scale s, unsigned threads_override = 0);
Workload buildGenome(Scale s, unsigned threads_override = 0);
Workload buildIntruder(Scale s, unsigned threads_override = 0);
Workload buildKmeans(Scale s, unsigned threads_override = 0);
Workload buildLabyrinth(Scale s, unsigned threads_override = 0);
Workload buildSsca2(Scale s, unsigned threads_override = 0);
Workload buildVacation(Scale s, unsigned threads_override = 0);
Workload buildYada(Scale s, unsigned threads_override = 0);
Workload buildTpccNo(Scale s, unsigned threads_override = 0);
Workload buildTpccP(Scale s, unsigned threads_override = 0);

// Adversarial micro-workloads for the schedule explorer (tools/tests
// only — deliberately absent from allNames() so the paper's figure and
// sweep pipelines never pick them up).
Workload buildConvoy(Scale s, unsigned threads_override = 0);
Workload buildHintRace(Scale s, unsigned threads_override = 0,
                       bool seeded_bug = false);

/** Every workload name, in the paper's presentation order. */
const std::vector<std::string> &allNames();

/**
 * Build a workload by name; fatals on unknown names. A "name@N" suffix
 * builds the same kernel partitioned for N worker threads (1..64) —
 * e.g. "kmeans@32" for the 32-context scaling studies. The returned
 * Workload keeps the suffixed name so result-cache keys never alias
 * across thread counts.
 */
Workload byName(const std::string &name, Scale s);

} // namespace workloads
} // namespace hintm

#endif // HINTM_WORKLOADS_WORKLOADS_HH
