/**
 * @file
 * The transactional workload suite (§V): TxIR re-implementations of the
 * STAMP kernels plus TPC-C's new_order and payment queries, engineered to
 * reproduce each application's published memory behaviour — TX footprint
 * distribution, thread-private scratchpads, sharing pattern and conflict
 * profile. See DESIGN.md for the substitution rationale.
 *
 * Scales: Tiny is for unit tests; Small drives the P8 experiments
 * (Fig. 1/4/5/6); Large adds footprint pressure for the P8S and L1TM
 * studies (Fig. 7/8), mirroring the paper's use of larger inputs there.
 */

#ifndef HINTM_WORKLOADS_WORKLOADS_HH
#define HINTM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "tir/ir.hh"

namespace hintm
{
namespace workloads
{

enum class Scale : std::uint8_t
{
    Tiny,
    Small,
    Large,
};

/** A ready-to-compile workload. */
struct Workload
{
    std::string name;
    tir::Module module;
    /** Worker threads the paper deploys (4 for genome/yada, else 8). */
    unsigned threads = 8;
};

Workload buildBayes(Scale s);
Workload buildGenome(Scale s);
Workload buildIntruder(Scale s);
Workload buildKmeans(Scale s);
Workload buildLabyrinth(Scale s);
Workload buildSsca2(Scale s);
Workload buildVacation(Scale s);
Workload buildYada(Scale s);
Workload buildTpccNo(Scale s);
Workload buildTpccP(Scale s);

/** Every workload name, in the paper's presentation order. */
const std::vector<std::string> &allNames();

/** Build a workload by name; fatals on unknown names. */
Workload byName(const std::string &name, Scale s);

} // namespace workloads
} // namespace hintm

#endif // HINTM_WORKLOADS_WORKLOADS_HH
