/**
 * @file
 * intruder: network intrusion detection (STAMP). Threads pop packet
 * descriptors from a shared queue (tiny hot TX), decode each packet into
 * a registry-published per-thread buffer, then run a detection TX whose
 * readset size follows the packet's fragment count — a variable
 * footprint that occasionally exceeds P8's 64 blocks. Static analysis
 * finds nothing (the decode buffer escapes via the registry); dynamic
 * classification reclaims the decode-buffer reads.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t packets;
    std::int64_t flows;    ///< power-of-two flow-state table
    std::int64_t bufWords; ///< decode buffer words
    std::int64_t minFrags;
    std::int64_t maxFrags;
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {64, 256, 1024, 8, 16};
      case Scale::Small: return {2400, 1024, 8192, 16, 88};
      case Scale::Large: return {2600, 2048, 16384, 32, 152};
    }
    return {};
}

} // namespace

Workload
buildIntruder(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;

    Module m;
    m.globals.push_back({"g_pkts", 8, 0});
    m.globals.push_back({"g_head", 8, 0});
    m.globals.push_back({"g_flows", 8, 0});
    m.globals.push_back({"g_registry", 8 * 8, 0});
    m.globals.push_back({"g_attacks", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg pkts = f.mallocI(std::uint64_t(p.packets * 2) * 8);
        f.forRangeI(0, p.packets, [&](Reg i) {
            f.store(f.gep(pkts, i, 16, 0), f.randI(p.flows));
            f.store(f.gep(pkts, i, 16, 8),
                    f.addI(f.randI(p.maxFrags - p.minFrags), p.minFrags));
        });
        f.store(f.globalAddr("g_pkts"), pkts);

        const Reg flows = f.mallocI(std::uint64_t(p.flows * 2) * 8);
        f.forRangeI(0, p.flows * 2,
                    [&](Reg i) { f.storeI(f.gep(flows, i, 8), 0); });
        f.store(f.globalAddr("g_flows"), flows);
        f.storeI(f.globalAddr("g_head"), 0);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg pkts = f.load(f.globalAddr("g_pkts"));
        const Reg flows = f.load(f.globalAddr("g_flows"));

        const Reg buf = f.mallocI(std::uint64_t(p.bufWords) * 8);
        f.store(f.gep(f.globalAddr("g_registry"), tid, 8), buf);

        const Reg attacks = f.freshVar();
        f.setI(attacks, 0);
        const Reg running = f.freshVar();
        f.setI(running, 1);
        f.whileLoop([&] { return running; }, [&] {
            // Hot pop TX.
            const Reg h = f.freshVar();
            f.txBegin();
            const Reg head = f.globalAddr("g_head");
            f.set(h, f.load(head));
            f.store(head, f.addI(h, 1));
            f.txEnd();
            f.ifThenElse(
                f.cmpGe(h, f.constI(p.packets)),
                [&] { f.setI(running, 0); },
                [&] {
                    const Reg flow = f.load(f.gep(pkts, h, 16, 0));
                    const Reg frags = f.load(f.gep(pkts, h, 16, 8));
                    // Decode: scatter fragment payloads into the private
                    // buffer (non-transactional writes).
                    f.forRangeI(0, p.maxFrags, [&](Reg i) {
                        f.store(f.gep(buf,
                                      f.modI(f.add(f.mulI(h, 131), i),
                                             p.bufWords),
                                      8),
                                f.add(flow, i));
                    });
                    // Detection TX: reassemble (scattered private reads,
                    // footprint = frags blocks) + flow-state update.
                    f.txBegin();
                    const Reg acc = f.freshVar();
                    f.setI(acc, 0);
                    f.forRange(f.constI(0), frags, [&](Reg i) {
                        const Reg idx = f.modI(
                            f.add(f.mul(i, f.constI(67)), f.mulI(h, 13)),
                            p.bufWords);
                        f.set(acc, f.add(acc, f.load(f.gep(buf, idx, 8))));
                    });
                    const Reg fslot = f.gep(flows, flow, 16, 0);
                    const Reg fstate = f.load(fslot);
                    f.store(fslot, f.add(fstate, acc));
                    f.store(f.gep(flows, flow, 16, 8), frags);
                    f.txEnd();
                    f.ifThen(f.cmpEqI(f.modI(acc, 64), 0),
                             [&] { f.set(attacks, f.addI(attacks, 1)); });
                });
        });
        f.store(f.gep(f.globalAddr("g_attacks"), tid, 64), attacks);
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"intruder", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
