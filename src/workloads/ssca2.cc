/**
 * @file
 * ssca2: graph kernel (STAMP). Threads partition a random edge list and
 * transactionally append each edge to per-vertex adjacency slots —
 * 2-3 block TXs on random vertices, so conflicts are rare and capacity
 * is never pressured. The edge list itself is read-only in the parallel
 * region (safe loads under static classification).
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t vertices;
    std::int64_t edges;
    std::int64_t maxDegree;
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {256, 1024, 8};
      case Scale::Small: return {2048, 49152, 12};
      case Scale::Large: return {4096, 98304, 16};
    }
    return {};
}

} // namespace

Workload
buildSsca2(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    const std::int64_t per_thread = p.edges / threads;

    Module m;
    m.globals.push_back({"g_edges", 8, 0});
    m.globals.push_back({"g_deg", 8, 0});
    m.globals.push_back({"g_adj", 8, 0});
    m.globals.push_back({"g_dropped", 8, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg edges = f.mallocI(std::uint64_t(p.edges * 2) * 8);
        f.forRangeI(0, p.edges, [&](Reg e) {
            f.store(f.gep(edges, e, 16, 0), f.randI(p.vertices));
            f.store(f.gep(edges, e, 16, 8), f.randI(p.vertices));
        });
        f.store(f.globalAddr("g_edges"), edges);

        const Reg deg = f.mallocI(std::uint64_t(p.vertices) * 8);
        f.forRangeI(0, p.vertices,
                    [&](Reg v) { f.storeI(f.gep(deg, v, 8), 0); });
        f.store(f.globalAddr("g_deg"), deg);

        const Reg adj =
            f.mallocI(std::uint64_t(p.vertices * p.maxDegree) * 8);
        f.store(f.globalAddr("g_adj"), adj);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg edges = f.load(f.globalAddr("g_edges"));
        const Reg deg = f.load(f.globalAddr("g_deg"));
        const Reg adj = f.load(f.globalAddr("g_adj"));
        const Reg lo = f.mulI(tid, per_thread);
        const Reg hi = f.addI(lo, per_thread);

        f.forRange(lo, hi, [&](Reg e) {
            const Reg u = f.load(f.gep(edges, e, 16, 0));
            const Reg v = f.load(f.gep(edges, e, 16, 8));
            f.txBegin();
            const Reg dslot = f.gep(deg, u, 8);
            const Reg d = f.load(dslot);
            f.ifThenElse(
                f.cmpLtI(d, p.maxDegree),
                [&] {
                    f.store(dslot, f.addI(d, 1));
                    f.store(f.gep(adj,
                                  f.add(f.mulI(u, p.maxDegree), d), 8),
                            v);
                },
                [&] {
                    const Reg drop = f.globalAddr("g_dropped");
                    f.store(drop, f.addI(f.load(drop), 1));
                });
            f.txEnd();
        });
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"ssca2", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
