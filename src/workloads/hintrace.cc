/**
 * @file
 * hintrace: adversarial micro-workload for the schedule explorer (not
 * part of the paper's suite — never listed in allNames()). One writer
 * publishes g_data then raises g_flag inside a single TX; readers run a
 * tid-staggered ramp of private TXs and then guarded TXs that read
 * g_data only while g_flag is still 0. The guarded read lives in its
 * own function, `racy_read`, so the seeded-bug variant can mark exactly
 * those loads with the static safe hint after the module is built.
 *
 * The hint is wrong: g_flag does not protect g_data against a writer
 * whose TX is still in flight, so a schedule that lands the writer's
 * store inside a reader's guarded window makes the safe-hinted
 * (untracked) read overlap a remote write — the hint-oracle race the
 * explorer must find at preemption bound 2. The clean variant carries
 * no hints and must explore silently.
 *
 * How many guarded windows see flag == 0 is genuinely schedule-
 * dependent, so the final state legitimately varies across
 * interleavings: run the explorer with compareFinalState off.
 */

#include "workloads.hh"

#include "common/logging.hh"
#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

Workload
buildHintRace(Scale s, unsigned threads_override, bool seeded_bug)
{
    const unsigned threads = threads_override ? threads_override : 3;
    HINTM_ASSERT(threads >= 2, "hintrace needs a writer and a reader");
    std::int64_t rounds = 4;
    switch (s) {
      case Scale::Tiny: rounds = 4; break;
      case Scale::Small: rounds = 12; break;
      case Scale::Large: rounds = 24; break;
    }

    Module m;
    m.globals.push_back({"g_data", 8, 0});
    m.globals.push_back({"g_flag", 8, 0});
    m.globals.push_back({"g_sink", 8, 0});

    {
        FunctionBuilder f(m, "init", 0);
        f.storeI(f.globalAddr("g_data"), 7);
        f.storeI(f.globalAddr("g_flag"), 0);
        const Reg sink = f.mallocI(std::uint64_t(threads) * 64);
        f.forRangeI(0, std::int64_t(threads) * 8, [&](Reg w) {
            f.store(f.gep(sink, w, 8), f.constI(0));
        });
        f.store(f.globalAddr("g_sink"), sink);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        // The load the bad hint marks safe — kept in its own function
        // so the seeding below touches nothing else.
        FunctionBuilder f(m, "racy_read", 0);
        f.ret(f.load(f.globalAddr("g_data")));
        f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg slot =
            f.gep(f.load(f.globalAddr("g_sink")), tid, 64, 0);
        const Reg flag = f.globalAddr("g_flag");

        f.ifThenElse(
            f.cmpEqI(tid, 0),
            [&] {
                // Writer: publish data, then raise the flag — one TX.
                f.txBegin();
                f.storeI(f.globalAddr("g_data"), 42);
                f.storeI(flag, 1);
                f.txEnd();
            },
            [&] {
                // Readers: a tid-staggered ramp of private TXs spreads
                // the guarded windows of different readers apart, so
                // one reader's window overlaps another's begin events.
                f.forRange(f.constI(0), f.mulI(f.subI(tid, 1), 3),
                           [&](Reg) {
                               f.txBegin();
                               f.store(slot, f.addI(f.load(slot), 1));
                               f.txEnd();
                           });
                f.forRangeI(0, rounds, [&](Reg) {
                    f.txBegin();
                    const Reg seen = f.load(flag);
                    f.ifThen(f.cmpEqI(seen, 0), [&] {
                        const Reg v = f.call("racy_read", {});
                        // A few extra private updates keep the TX in
                        // flight for a while after the guarded read.
                        f.store(f.gep(slot, f.constI(1), 8),
                                f.add(f.load(slot, 8), v));
                        f.store(f.gep(slot, f.constI(2), 8),
                                f.addI(f.load(slot, 16), 1));
                        f.store(f.gep(slot, f.constI(3), 8),
                                f.addI(f.load(slot, 24), 1));
                    });
                    f.txEnd();
                    // A private TX between guarded rounds.
                    f.txBegin();
                    f.store(slot, f.addI(f.load(slot), 1));
                    f.txEnd();
                });
            });
        f.retVoid();
        m.threadFunc = f.finish();
    }

    if (seeded_bug) {
        const int fn = m.findFunction("racy_read");
        HINTM_ASSERT(fn >= 0, "racy_read vanished");
        for (tir::BasicBlock &bb : m.functions[unsigned(fn)].blocks) {
            for (tir::Instr &in : bb.instrs) {
                if (in.op == tir::Opcode::Load)
                    in.safe = true;
            }
        }
    }

    return Workload{seeded_bug ? "hintrace-bug" : "hintrace",
                    std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
