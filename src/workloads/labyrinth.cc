/**
 * @file
 * labyrinth: transactional maze routing (STAMP), the paper's flagship
 * capacity workload. Each routing TX copies the operative region of the
 * shared grid into a thread-private scratch grid, runs an expansion
 * sweep on the private copy, then validates and commits an L-shaped path
 * back to the shared grid. The private grids are heap allocations that
 * never escape and are freed at thread end — exactly the structure
 * Algorithm 1 detects — so HinTM-st strips the bulk of the footprint:
 * the private copy stores, expansion accesses and route probing all
 * become safe, leaving only the shared-grid reads and path writes
 * tracked.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t n;      ///< grid is n x n cells
    std::int64_t margin; ///< bbox margin around src/dst
    std::int64_t items;  ///< routing work items
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {12, 2, 10};
      case Scale::Small: return {28, 3, 96};
      case Scale::Large: return {40, 4, 144};
    }
    return {};
}

} // namespace

Workload
buildLabyrinth(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    const std::int64_t n = p.n;

    Module m;
    m.globals.push_back({"g_grid", 8, 0});
    m.globals.push_back({"g_queue", 8, 0});
    m.globals.push_back({"g_qhead", 8, 0});
    // Per-thread result slots, one cache block apart so the counters
    // never create TX conflicts or false sharing.
    m.globals.push_back({"g_routed", 8 * 64, 0});
    m.globals.push_back({"g_failed", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg grid = f.mallocI(std::uint64_t(n * n) * 8);
        f.forRangeI(0, n * n,
                    [&](Reg i) { f.storeI(f.gep(grid, i, 8), 0); });
        f.store(f.globalAddr("g_grid"), grid);

        const Reg queue = f.mallocI(std::uint64_t(p.items * 2) * 8);
        f.forRangeI(0, p.items, [&](Reg i) {
            f.store(f.gep(queue, i, 16, 0), f.randI(n * n));
            f.store(f.gep(queue, i, 16, 8), f.randI(n * n));
        });
        f.store(f.globalAddr("g_queue"), queue);
        f.storeI(f.globalAddr("g_qhead"), 0);
        f.retVoid();
        m.initFunc = f.finish();
    }

    // min/max helpers.
    {
        FunctionBuilder f(m, "imin", 2);
        const Reg r = f.freshVar();
        f.set(r, f.param(0));
        f.ifThen(f.cmpLt(f.param(1), f.param(0)),
                 [&] { f.set(r, f.param(1)); });
        f.ret(r);
        f.finish();
    }
    {
        FunctionBuilder f(m, "imax", 2);
        const Reg r = f.freshVar();
        f.set(r, f.param(0));
        f.ifThen(f.cmpLt(f.param(0), f.param(1)),
                 [&] { f.set(r, f.param(1)); });
        f.ret(r);
        f.finish();
    }

    /**
     * Copy the shared grid's bounding box into the private grid.
     * params: (priv, grid, r0, r1, c0, c1). Loads of the shared grid are
     * unsafe; stores to the private grid are initializing, hence safe.
     */
    {
        FunctionBuilder f(m, "grid_copy", 6);
        const Reg priv = f.param(0), grid = f.param(1);
        f.forRange(f.param(2), f.addI(f.param(3), 1), [&](Reg r) {
            f.forRange(f.param(4), f.addI(f.param(5), 1), [&](Reg c) {
                const Reg idx = f.add(f.mulI(r, n), c);
                f.store(f.gep(priv, idx, 8), f.load(f.gep(grid, idx, 8)));
            });
        });
        f.retVoid();
        f.finish();
    }

    /**
     * Expansion sweep: derive wavefront costs over the bbox from the
     * private copy into the private dist grid (all accesses safe).
     * params: (dist, priv, r0, r1, c0, c1)
     */
    {
        FunctionBuilder f(m, "expand", 6);
        const Reg dist = f.param(0), priv = f.param(1);
        f.forRange(f.param(2), f.addI(f.param(3), 1), [&](Reg r) {
            f.forRange(f.param(4), f.addI(f.param(5), 1), [&](Reg c) {
                const Reg idx = f.add(f.mulI(r, n), c);
                const Reg occ = f.load(f.gep(priv, idx, 8));
                f.store(f.gep(dist, idx, 8),
                        f.add(f.mulI(occ, 1000), f.add(r, c)));
            });
        });
        f.retVoid();
        f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg grid = f.load(f.globalAddr("g_grid"));
        const Reg queue = f.load(f.globalAddr("g_queue"));
        const Reg priv = f.mallocI(std::uint64_t(n * n) * 8);
        const Reg dist = f.mallocI(std::uint64_t(n * n) * 8);

        const Reg running = f.freshVar();
        f.setI(running, 1);
        f.whileLoop([&] { return running; }, [&] {
            // Tiny pop TX, separate from the routing TX (STAMP style).
            const Reg h = f.freshVar();
            f.txBegin();
            const Reg qh = f.globalAddr("g_qhead");
            f.set(h, f.load(qh));
            f.store(qh, f.addI(h, 1));
            f.txEnd();
            f.ifThenElse(
                f.cmpGe(h, f.constI(p.items)),
                [&] { f.setI(running, 0); },
                [&] {
                    const Reg src = f.load(f.gep(queue, h, 16, 0));
                    const Reg dst = f.load(f.gep(queue, h, 16, 8));
                    const Reg nn = f.constI(n);
                    const Reg sr = f.div(src, nn), sc = f.mod(src, nn);
                    const Reg dr = f.div(dst, nn), dc = f.mod(dst, nn);
                    const Reg zero = f.constI(0);
                    const Reg nmax = f.constI(n - 1);
                    const Reg r0 = f.call(
                        "imax",
                        {zero, f.subI(f.call("imin", {sr, dr}), p.margin)});
                    const Reg r1 = f.call(
                        "imin",
                        {nmax, f.addI(f.call("imax", {sr, dr}), p.margin)});
                    const Reg c0 = f.call(
                        "imax",
                        {zero, f.subI(f.call("imin", {sc, dc}), p.margin)});
                    const Reg c1 = f.call(
                        "imin",
                        {nmax, f.addI(f.call("imax", {sc, dc}), p.margin)});

                    f.txBegin();
                    f.callVoid("grid_copy", {priv, grid, r0, r1, c0, c1});
                    f.callVoid("expand", {dist, priv, r0, r1, c0, c1});

                    // Validate an L path on the private snapshot: along
                    // row sr from sc to dc, then along column dc to dr.
                    const Reg ok = f.freshVar();
                    f.setI(ok, 1);
                    const Reg clo = f.call("imin", {sc, dc});
                    const Reg chi = f.call("imax", {sc, dc});
                    f.forRange(clo, f.addI(chi, 1), [&](Reg c) {
                        const Reg cell =
                            f.load(f.gep(priv, f.add(f.mulI(sr, n), c), 8));
                        f.ifThen(f.cmpNeI(cell, 0),
                                 [&] { f.setI(ok, 0); });
                    });
                    const Reg rlo = f.call("imin", {sr, dr});
                    const Reg rhi = f.call("imax", {sr, dr});
                    f.forRange(rlo, f.addI(rhi, 1), [&](Reg r) {
                        const Reg cell =
                            f.load(f.gep(priv, f.add(f.mulI(r, n), dc), 8));
                        f.ifThen(f.cmpNeI(cell, 0),
                                 [&] { f.setI(ok, 0); });
                    });

                    f.ifThen(ok, [&] {
                        const Reg mark = f.addI(tid, 1);
                        f.forRange(clo, f.addI(chi, 1), [&](Reg c) {
                            f.store(f.gep(grid,
                                          f.add(f.mulI(sr, n), c), 8),
                                    mark);
                        });
                        f.forRange(rlo, f.addI(rhi, 1), [&](Reg r) {
                            f.store(f.gep(grid,
                                          f.add(f.mulI(r, n), dc), 8),
                                    mark);
                        });
                    });
                    f.txEnd();
                    // Outcome counters live outside the TX in per-thread
                    // block-strided slots: no conflict hotspot.
                    f.ifThenElse(
                        ok,
                        [&] {
                            const Reg g = f.gep(f.globalAddr("g_routed"),
                                                tid, 64);
                            f.store(g, f.addI(f.load(g), 1));
                        },
                        [&] {
                            const Reg g = f.gep(f.globalAddr("g_failed"),
                                                tid, 64);
                            f.store(g, f.addI(f.load(g), 1));
                        });
                });
        });
        f.freePtr(priv);
        f.freePtr(dist);
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"labyrinth", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
