/**
 * @file
 * vacation: travel reservation system (STAMP). Client sessions issue a
 * variable number of queries against shared reservation tables
 * (cars/flights/rooms) with hash-chain probing, reserving in roughly
 * 60% of queries. Long sessions put the TX footprint past P8's 64
 * blocks for a small tail of TXs — the paper's 2% — while the heavy
 * write traffic to table pages makes most pages read-write shared,
 * which is exactly what drives vacation's outlier page-mode abort cost
 * under HinTM-dyn. A small per-TX stack scratchpad provides the 2-3%
 * statically-safe accesses the paper reports.
 */

#include "workloads.hh"

#include "tir/builder.hh"

namespace hintm
{
namespace workloads
{

using tir::FunctionBuilder;
using tir::Module;
using tir::Reg;

namespace
{

struct Params
{
    std::int64_t records;   ///< rows per table (3 tables)
    std::int64_t customers;
    std::int64_t sessions;  ///< TXs per thread
    std::int64_t minQ;
    std::int64_t maxQ;
    std::int64_t probeHops;
};

Params
paramsFor(Scale s)
{
    switch (s) {
      case Scale::Tiny: return {512, 128, 12, 2, 6, 2};
      case Scale::Small: return {4096, 1024, 130, 6, 21, 3};
      case Scale::Large: return {8192, 2048, 170, 8, 40, 4};
    }
    return {};
}

} // namespace

Workload
buildVacation(Scale s, unsigned threads_override)
{
    const Params p = paramsFor(s);
    const unsigned threads = threads_override ? threads_override : 8;
    const std::int64_t row = 4; // words per record

    Module m;
    m.globals.push_back({"g_tables", 8, 0});
    m.globals.push_back({"g_cust", 8, 0});
    m.globals.push_back({"g_sold", 8 * 64, 0});

    {
        FunctionBuilder f(m, "init", 0);
        const Reg tabs =
            f.mallocI(std::uint64_t(3 * p.records * row) * 8);
        f.forRangeI(0, 3 * p.records, [&](Reg r) {
            const Reg base = f.gep(tabs, f.mulI(r, row), 8);
            f.store(f.gep(base, f.constI(0), 8), r);             // key
            f.storeI(f.gep(base, f.constI(1), 8), 100);          // avail
            f.store(f.gep(base, f.constI(2), 8),
                    f.addI(f.randI(400), 50));                   // price
            f.storeI(f.gep(base, f.constI(3), 8), 0);            // sold
        });
        f.store(f.globalAddr("g_tables"), tabs);

        const Reg cust = f.mallocI(std::uint64_t(p.customers * row) * 8);
        f.forRangeI(0, p.customers * row,
                    [&](Reg i) { f.storeI(f.gep(cust, i, 8), 0); });
        f.store(f.globalAddr("g_cust"), cust);
        f.retVoid();
        m.initFunc = f.finish();
    }

    {
        FunctionBuilder f(m, "worker", 1);
        const Reg tid = f.param(0);
        const Reg tabs = f.load(f.globalAddr("g_tables"));
        const Reg cust = f.load(f.globalAddr("g_cust"));
        const Reg sold = f.freshVar();
        f.setI(sold, 0);

        f.forRangeI(0, p.sessions, [&](Reg) {
            const Reg q =
                f.addI(f.randI(p.maxQ - p.minQ), p.minQ);
            const Reg cid = f.randI(p.customers);
            f.txBegin();
            // Session scratchpad on the stack: the statically-safe
            // sliver (captured, TX-local, initializing stores). The
            // entries are block-strided, so a handful of safe accesses
            // covers twelve tracking entries — the paper's explanation
            // for why 2-3% static-safe accesses halve vacation's
            // capacity aborts ("safe accesses are to unique cache
            // blocks, while unsafe accesses have high spatio-temporal
            // locality").
            const Reg plan = f.allocaBytes(12 * 64);
            f.forRangeI(0, 12, [&](Reg i) {
                f.store(f.gep(plan, i, 64), i);
            });
            const Reg spent = f.freshVar();
            f.setI(spent, 0);
            f.forRange(f.constI(0), q, [&](Reg) {
                const Reg t = f.randI(3);
                const Reg idx = f.freshVar();
                f.set(idx, f.randI(p.records));
                // Hash-chain probe across the table.
                f.forRangeI(0, p.probeHops, [&](Reg) {
                    const Reg rec = f.gep(
                        tabs,
                        f.mulI(f.add(f.mulI(t, p.records), idx), row), 8);
                    const Reg key = f.load(rec);
                    f.set(idx,
                          f.modI(f.add(f.mulI(idx, 5), f.addI(key, 7)),
                                 p.records));
                });
                const Reg rec = f.gep(
                    tabs, f.mulI(f.add(f.mulI(t, p.records), idx), row),
                    8);
                const Reg avail = f.load(f.gep(rec, f.constI(1), 8));
                const Reg price = f.load(f.gep(rec, f.constI(2), 8));
                const Reg want = f.randI(10);
                f.ifThen(f.andOp(f.cmpLtI(want, 6),
                                 f.cmpLtI(f.constI(0), avail)),
                         [&] {
                             // Reserve: decrement availability, charge
                             // the customer.
                             f.store(f.gep(rec, f.constI(1), 8),
                                     f.subI(avail, 1));
                             const Reg srec =
                                 f.gep(rec, f.constI(3), 8);
                             f.store(srec, f.addI(f.load(srec), 1));
                             f.set(spent, f.add(spent, price));
                         });
            });
            const Reg crec = f.gep(cust, f.mulI(cid, row), 8);
            f.store(crec, f.add(f.load(crec), spent));
            // Read one plan summary slot back (safe load).
            const Reg chk = f.load(f.gep(plan, f.modI(spent, 12), 64));
            (void)chk;
            f.txEnd();
            f.set(sold, f.addI(sold, 1));
        });
        f.store(f.gep(f.globalAddr("g_sold"), tid, 64), sold);
        f.retVoid();
        m.threadFunc = f.finish();
    }

    return Workload{"vacation", std::move(m), threads};
}

} // namespace workloads
} // namespace hintm
