/**
 * @file
 * Tag-only set-associative cache array with true-LRU replacement. Holds
 * coherence state but no data: functional values live in the interpreter's
 * address space, so caches model timing and coherence only.
 */

#ifndef HINTM_MEM_CACHE_ARRAY_HH
#define HINTM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "mem/coherence.hh"
#include "mem/geometry.hh"

namespace hintm
{
namespace mem
{

/** One cache line's bookkeeping. */
struct CacheLine
{
    std::uint64_t tag = 0;
    CoherState state = CoherState::Invalid;
    /** LRU timestamp; larger means more recently used. */
    std::uint64_t lruStamp = 0;

    bool valid() const { return state != CoherState::Invalid; }
};

/** Description of a line displaced by an insertion. */
struct Eviction
{
    bool happened = false;
    Addr blockAddr = 0;
    /** True when the victim was Modified (requires a writeback). */
    bool dirty = false;
};

/**
 * Set-associative tag array. All lookups take block-aligned addresses.
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom);

    /**
     * Find a block. @return pointer into the array (stable until the next
     * insert in the same set) or nullptr on miss. Updates LRU on hit.
     */
    CacheLine *lookup(Addr block_addr);

    /** Find a block without touching LRU state. */
    const CacheLine *probe(Addr block_addr) const;

    /** Predicate marking blocks whose eviction would abort a TX. */
    using PinPredicate = std::function<bool(Addr)>;

    /**
     * Insert a block in the given state, evicting a victim if the set is
     * full. Victim choice is LRU among non-pinned lines when @p pinned
     * is provided (transactional lines are sticky, as in L1-tracking
     * HTMs); only when every valid way is pinned does a pinned line get
     * displaced. @return the eviction descriptor (may be empty).
     */
    Eviction insert(Addr block_addr, CoherState state,
                    const PinPredicate *pinned = nullptr);

    /** Drop a block (snoop invalidation); no-op when absent. */
    void invalidate(Addr block_addr);

    /** Iterate all valid lines (used by TX-abort invalidation sweeps). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (std::uint64_t set = 0; set < geom_.numSets(); ++set) {
            for (unsigned way = 0; way < geom_.assoc(); ++way) {
                CacheLine &line = lines_[set * geom_.assoc() + way];
                if (line.valid())
                    fn(geom_.blockAddrOf(line.tag, set), line);
            }
        }
    }

    /** Iterate the valid lines of the set @p block_addr maps to (the
     * metrics layer's overflowing-set occupancy scan). */
    template <typename Fn>
    void
    forEachValidInSet(Addr block_addr, Fn &&fn) const
    {
        const std::uint64_t set = geom_.indexOf(block_addr);
        for (unsigned way = 0; way < geom_.assoc(); ++way) {
            const CacheLine &line = lines_[set * geom_.assoc() + way];
            if (line.valid())
                fn(geom_.blockAddrOf(line.tag, set), line);
        }
    }

    const CacheGeometry &geometry() const { return geom_; }

    /** Number of currently valid lines (testing aid). */
    std::uint64_t countValid() const;

  private:
    CacheLine *findLine(Addr block_addr);

    CacheGeometry geom_;
    std::vector<CacheLine> lines_;
    std::uint64_t clock_ = 0;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_CACHE_ARRAY_HH
