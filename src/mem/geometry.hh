/**
 * @file
 * Set-associative cache geometry: size/associativity/block-size and the
 * derived index/tag decomposition of addresses.
 */

#ifndef HINTM_MEM_GEOMETRY_HH
#define HINTM_MEM_GEOMETRY_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{
namespace mem
{

/** Static description of a set-associative cache's shape. */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes total capacity in bytes
     * @param assoc ways per set
     * @param block_bytes line size (must divide size_bytes * assoc)
     */
    CacheGeometry(std::uint64_t size_bytes, unsigned assoc,
                  std::uint64_t block_bytes = blockBytes)
        : sizeBytes_(size_bytes), assoc_(assoc), blockBytes_(block_bytes)
    {
        HINTM_ASSERT(isPowerOfTwo(block_bytes), "block size not pow2");
        HINTM_ASSERT(assoc >= 1, "associativity must be >= 1");
        const std::uint64_t lines = size_bytes / block_bytes;
        HINTM_ASSERT(lines % assoc == 0, "lines not divisible by assoc");
        sets_ = lines / assoc;
        HINTM_ASSERT(isPowerOfTwo(sets_), "set count not pow2");
        blockShift_ = log2i(block_bytes);
        indexBits_ = log2i(sets_);
    }

    std::uint64_t sizeBytes() const { return sizeBytes_; }
    unsigned assoc() const { return assoc_; }
    std::uint64_t numSets() const { return sets_; }
    std::uint64_t numLines() const { return sets_ * assoc_; }

    /** Set index of an address. */
    std::uint64_t
    indexOf(Addr a) const
    {
        return (a >> blockShift_) & (sets_ - 1);
    }

    /** Tag of an address (everything above index bits). */
    std::uint64_t
    tagOf(Addr a) const
    {
        return a >> (blockShift_ + indexBits_);
    }

    /** Rebuild the block base address from tag and set index. */
    Addr
    blockAddrOf(std::uint64_t tag, std::uint64_t index) const
    {
        return (tag << (blockShift_ + indexBits_)) | (index << blockShift_);
    }

  private:
    std::uint64_t sizeBytes_;
    unsigned assoc_;
    std::uint64_t blockBytes_;
    std::uint64_t sets_;
    unsigned blockShift_;
    unsigned indexBits_;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_GEOMETRY_HH
