#include "cache_array.hh"

#include "common/logging.hh"

namespace hintm
{
namespace mem
{

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::Invalid: return "I";
      case CoherState::Shared: return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Modified: return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheGeometry &geom)
    : geom_(geom), lines_(geom.numLines())
{
}

CacheLine *
CacheArray::findLine(Addr block_addr)
{
    const std::uint64_t tag = geom_.tagOf(block_addr);
    CacheLine *const set =
        &lines_[geom_.indexOf(block_addr) * geom_.assoc()];
    for (CacheLine *line = set, *end = set + geom_.assoc(); line != end;
         ++line) {
        if (line->valid() && line->tag == tag)
            return line;
    }
    return nullptr;
}

CacheLine *
CacheArray::lookup(Addr block_addr)
{
    CacheLine *line = findLine(block_addr);
    if (line)
        line->lruStamp = ++clock_;
    return line;
}

const CacheLine *
CacheArray::probe(Addr block_addr) const
{
    return const_cast<CacheArray *>(this)->findLine(block_addr);
}

Eviction
CacheArray::insert(Addr block_addr, CoherState state,
                   const PinPredicate *pinned)
{
    HINTM_ASSERT(state != CoherState::Invalid, "inserting invalid line");
    Eviction ev;
    const std::uint64_t set = geom_.indexOf(block_addr);
    const std::uint64_t tag = geom_.tagOf(block_addr);
    CacheLine *const base = &lines_[set * geom_.assoc()];

    CacheLine *victim = nullptr;       // preferred: invalid or unpinned
    CacheLine *pinned_lru = nullptr;   // fallback: LRU among pinned
    for (CacheLine *lp = base, *end = base + geom_.assoc(); lp != end;
         ++lp) {
        CacheLine &line = *lp;
        if (line.valid() && line.tag == tag) {
            // Re-insert over an existing copy: just update state.
            line.state = state;
            line.lruStamp = ++clock_;
            return ev;
        }
        if (!line.valid()) {
            if (!victim || victim->valid())
                victim = &line;
            continue;
        }
        if (pinned &&
            (*pinned)(geom_.blockAddrOf(line.tag, set))) {
            if (!pinned_lru || line.lruStamp < pinned_lru->lruStamp)
                pinned_lru = &line;
            continue;
        }
        if (!victim ||
            (victim->valid() && line.lruStamp < victim->lruStamp)) {
            victim = &line;
        }
    }
    if (!victim)
        victim = pinned_lru;
    HINTM_ASSERT(victim != nullptr, "no victim in set");
    if (victim->valid()) {
        ev.happened = true;
        ev.blockAddr = geom_.blockAddrOf(victim->tag, set);
        ev.dirty = victim->state == CoherState::Modified;
    }
    victim->tag = tag;
    victim->state = state;
    victim->lruStamp = ++clock_;
    return ev;
}

void
CacheArray::invalidate(Addr block_addr)
{
    CacheLine *line = findLine(block_addr);
    if (line)
        line->state = CoherState::Invalid;
}

std::uint64_t
CacheArray::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_) {
        if (line.valid())
            ++n;
    }
    return n;
}

} // namespace mem
} // namespace hintm
