/**
 * @file
 * Sharer-tracking snoop filter: an open-addressing map from block address
 * to the bitmask of L1 caches that currently hold the block. Real
 * snoop-based systems (e.g. POWER8's NCU filtering) use exactly this
 * structure to keep bus transactions from probing caches that cannot
 * have a copy; here it turns the per-access snoop from O(L1s) into
 * O(actual sharers).
 *
 * The filter is maintained precisely by MemorySystem on fills, evictions
 * and invalidations, but lookups tolerate stale (superset) masks: a
 * consumer that probes a masked L1 and misses simply heals the entry.
 */

#ifndef HINTM_MEM_SNOOP_FILTER_HH
#define HINTM_MEM_SNOOP_FILTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{
namespace mem
{

/**
 * Block address -> L1-presence bitmask. Open addressing with linear
 * probing; entries whose mask drops to zero stay in the table and are
 * reused when the block is cached again, so the table never needs
 * tombstones and grows only with the number of distinct blocks cached.
 */
class SnoopFilter
{
  public:
    explicit SnoopFilter(std::size_t initial_slots = 1024)
    {
        std::size_t cap = 64;
        while (cap < initial_slots)
            cap <<= 1;
        slots_.assign(cap, Slot{});
    }

    /** Bitmask of L1s that may hold @p block (0 = definitely uncached). */
    std::uint64_t
    sharers(Addr block) const
    {
        const Slot &s =
            *const_cast<SnoopFilter *>(this)->findSlot(block);
        return s.block == block ? s.mask : 0;
    }

    /** Record that L1 @p l1 filled @p block. */
    void
    addSharer(Addr block, unsigned l1)
    {
        if ((used_ + 1) * 4 > slots_.size() * 3)
            grow();
        Slot *s = findSlot(block);
        if (s->block != block) {
            s->block = block;
            s->mask = 0;
            ++used_;
        }
        s->mask |= std::uint64_t(1) << l1;
    }

    /** Record that L1 @p l1 no longer holds @p block (evict/invalidate). */
    void
    removeSharer(Addr block, unsigned l1)
    {
        Slot *s = findSlot(block);
        if (s->block == block)
            s->mask &= ~(std::uint64_t(1) << l1);
    }

    /** Number of blocks with at least one sharer (testing aid). */
    std::size_t
    trackedBlocks() const
    {
        std::size_t n = 0;
        for (const Slot &s : slots_) {
            if (s.block != emptyKey && s.mask != 0)
                ++n;
        }
        return n;
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    static constexpr Addr emptyKey = ~Addr(0);

    struct Slot
    {
        Addr block = emptyKey;
        std::uint64_t mask = 0;
    };

    /** Slot holding @p block, or the empty slot where it would go. */
    Slot *
    findSlot(Addr block)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            std::size_t(block * 0x9E3779B97F4A7C15ull >> 32) & mask;
        while (slots_[i].block != emptyKey && slots_[i].block != block)
            i = (i + 1) & mask;
        return &slots_[i];
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        used_ = 0;
        for (const Slot &s : old) {
            if (s.block == emptyKey)
                continue;
            Slot *dst = findSlot(s.block);
            *dst = s;
            ++used_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_SNOOP_FILTER_HH
