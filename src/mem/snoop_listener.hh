/**
 * @file
 * Observer interface through which HTM controllers watch coherence traffic
 * and cache evictions — the hooks used for eager conflict detection and for
 * L1TM-style capacity aborts.
 */

#ifndef HINTM_MEM_SNOOP_LISTENER_HH
#define HINTM_MEM_SNOOP_LISTENER_HH

#include "common/types.hh"
#include "mem/coherence.hh"

namespace hintm
{
namespace mem
{

/** Hardware thread context identifier (SMT-aware; dense from 0). */
using ContextId = int;

/**
 * Receives the coherence-visible events of one hardware thread context.
 * The snoop bus delivers remote accesses to every context other than the
 * requester (same-core SMT siblings always see each other's accesses, even
 * L1 hits, mirroring per-thread TM CAM snooping of local traffic).
 */
class SnoopListener
{
  public:
    virtual ~SnoopListener() = default;

    /**
     * Another context touched @p block_addr. Called before the requester's
     * access completes so conflict aborts take effect first.
     *
     * @param block_addr block-aligned address of the access
     * @param type remote read or write
     * @param requester the context that issued the access
     */
    virtual void onRemoteAccess(Addr block_addr, AccessType type,
                                ContextId requester) = 0;

    /**
     * The L1 backing this context displaced @p block_addr.
     * @param dirty true when the victim required a writeback
     */
    virtual void onEviction(Addr block_addr, bool dirty) = 0;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_SNOOP_LISTENER_HH
