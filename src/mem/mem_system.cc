#include "mem_system.hh"

#include "common/logging.hh"

namespace hintm
{
namespace mem
{

MemorySystem::MemorySystem(const MemConfig &cfg, unsigned num_l1s)
    : cfg_(cfg)
{
    HINTM_ASSERT(num_l1s >= 1, "need at least one L1");
    const CacheGeometry l1_geom(cfg.l1SizeBytes, cfg.l1Assoc);
    for (unsigned i = 0; i < num_l1s; ++i)
        l1s_.push_back(std::make_unique<CacheArray>(l1_geom));
    pinCheckers_.resize(num_l1s);
    l2_ = std::make_unique<CacheArray>(
        CacheGeometry(cfg.l2SizeBytes, cfg.l2Assoc));
}

ContextId
MemorySystem::addContext(unsigned l1_id)
{
    HINTM_ASSERT(l1_id < l1s_.size(), "bad L1 id ", l1_id);
    contexts_.push_back(Context{l1_id, nullptr});
    return ContextId(contexts_.size() - 1);
}

void
MemorySystem::setListener(ContextId ctx, SnoopListener *listener)
{
    contexts_.at(ctx).listener = listener;
}

void
MemorySystem::setPinChecker(unsigned l1_id, CacheArray::PinPredicate pred)
{
    HINTM_ASSERT(l1_id < l1s_.size(), "bad L1 id ", l1_id);
    pinCheckers_[l1_id] = std::move(pred);
}

const CacheLine *
MemorySystem::probeL1(ContextId ctx, Addr addr) const
{
    return l1s_[contexts_.at(ctx).l1]->probe(blockAlign(addr));
}

bool
MemorySystem::snoopPeers(unsigned requester_l1, Addr block, BusOp op)
{
    bool peer_had_copy = false;
    for (unsigned i = 0; i < l1s_.size(); ++i) {
        if (i == requester_l1)
            continue;
        CacheLine *line = l1s_[i]->lookup(block);
        if (!line)
            continue;
        peer_had_copy = true;
        switch (op) {
          case BusOp::Read:
            // Owner supplies data and downgrades; dirty data reaches L2.
            if (line->state == CoherState::Modified) {
                ++stats_.counter("writebacks");
                l2_->insert(block, CoherState::Modified);
            }
            line->state = CoherState::Shared;
            break;
          case BusOp::ReadExcl:
          case BusOp::Upgrade:
            if (line->state == CoherState::Modified) {
                ++stats_.counter("writebacks");
                l2_->insert(block, CoherState::Modified);
            }
            line->state = CoherState::Invalid;
            ++stats_.counter("invalidations");
            break;
        }
    }
    return peer_had_copy;
}

void
MemorySystem::notifyBus(ContextId requester, Addr block, AccessType type)
{
    // Same-L1 siblings are covered by notifySiblings() on every access;
    // the bus only reaches the other cores.
    const unsigned l1 = contexts_[requester].l1;
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (c == requester || contexts_[c].l1 == l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onRemoteAccess(block, type, requester);
    }
}

void
MemorySystem::notifySiblings(ContextId requester, Addr block,
                             AccessType type)
{
    const unsigned l1 = contexts_[requester].l1;
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (c == requester || contexts_[c].l1 != l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onRemoteAccess(block, type, requester);
    }
}

void
MemorySystem::notifyEviction(unsigned l1, Addr block, bool dirty)
{
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (contexts_[c].l1 != l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onEviction(block, dirty);
    }
}

Cycle
MemorySystem::accessL2(Addr block, bool fill_dirty)
{
    Cycle lat = cfg_.l2Latency;
    CacheLine *line = l2_->lookup(block);
    if (line) {
        ++stats_.counter("l2_hits");
    } else {
        ++stats_.counter("l2_misses");
        lat += cfg_.memLatency;
        l2_->insert(block,
                    fill_dirty ? CoherState::Modified : CoherState::Shared);
    }
    return lat;
}

AccessResult
MemorySystem::access(ContextId ctx, Addr addr, AccessType type)
{
    HINTM_ASSERT(ctx >= 0 && ctx < ContextId(contexts_.size()),
                 "bad context ", ctx);
    const Addr block = blockAlign(addr);
    const unsigned l1_id = contexts_[ctx].l1;
    CacheArray &l1 = *l1s_[l1_id];

    AccessResult res;
    ++stats_.counter(type == AccessType::Read ? "reads" : "writes");

    // SMT siblings sharing this L1 observe every access, hit or miss,
    // mirroring per-thread transactional CAMs snooping local traffic.
    notifySiblings(ctx, block, type);

    CacheLine *line = l1.lookup(block);
    if (line) {
        res.l1Hit = true;
        ++stats_.counter("l1_hits");
        if (type == AccessType::Read ||
            line->state == CoherState::Modified ||
            line->state == CoherState::Exclusive) {
            // Silent hit; writes to E upgrade silently to M.
            if (type == AccessType::Write)
                line->state = CoherState::Modified;
            res.latency = cfg_.l1Latency;
            return res;
        }
        // Write hit on Shared: bus upgrade.
        ++stats_.counter("upgrades");
        snoopPeers(l1_id, block, BusOp::Upgrade);
        notifyBus(ctx, block, type);
        line->state = CoherState::Modified;
        res.latency = cfg_.l1Latency + cfg_.upgradeLatency;
        return res;
    }

    // L1 miss: place a bus transaction.
    ++stats_.counter("l1_misses");
    const BusOp op =
        type == AccessType::Read ? BusOp::Read : BusOp::ReadExcl;
    const bool peer_had_copy = snoopPeers(l1_id, block, op);
    notifyBus(ctx, block, type);

    res.latency = cfg_.l1Latency + accessL2(block, /*fill_dirty=*/false);
    res.l2Hit = res.latency <= cfg_.l1Latency + cfg_.l2Latency;

    CoherState fill;
    if (type == AccessType::Write)
        fill = CoherState::Modified;
    else
        fill = peer_had_copy ? CoherState::Shared : CoherState::Exclusive;

    const Eviction ev =
        l1.insert(block, fill,
                  pinCheckers_[l1_id] ? &pinCheckers_[l1_id] : nullptr);
    if (ev.happened) {
        ++stats_.counter("l1_evictions");
        if (ev.dirty) {
            ++stats_.counter("writebacks");
            l2_->insert(ev.blockAddr, CoherState::Modified);
        }
        notifyEviction(l1_id, ev.blockAddr, ev.dirty);
    }
    return res;
}

} // namespace mem
} // namespace hintm
