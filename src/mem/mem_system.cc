#include "mem_system.hh"

#include <bit>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace hintm
{
namespace mem
{

namespace
{

/** Max contexts/L1s representable in the 64-bit fast-path masks. */
constexpr unsigned maskBits = 64;

} // namespace

MemorySystem::MemorySystem(const MemConfig &cfg, unsigned num_l1s)
    : cfg_(cfg)
{
    HINTM_ASSERT(num_l1s >= 1, "need at least one L1");
    const CacheGeometry l1_geom(cfg.l1SizeBytes, cfg.l1Assoc);
    for (unsigned i = 0; i < num_l1s; ++i)
        l1s_.push_back(std::make_unique<CacheArray>(l1_geom));
    pinCheckers_.resize(num_l1s);
    l2_ = std::make_unique<CacheArray>(
        CacheGeometry(cfg.l2SizeBytes, cfg.l2Assoc));

    dirOn_ = cfg.directory && num_l1s <= maskBits;
    l1CtxMask_.assign(num_l1s, 0);

    // Contiguous NUMA grouping: L1s [0, n/k), [n/k, 2n/k), ... share a
    // node. Identical in both coherence modes; 1 node = flat machine.
    numaNodes_ = cfg.numaNodes ? cfg.numaNodes : 1;
    if (numaNodes_ > num_l1s)
        numaNodes_ = num_l1s;
    l1Node_.resize(num_l1s);
    for (unsigned i = 0; i < num_l1s; ++i)
        l1Node_[i] = unsigned(std::uint64_t(i) * numaNodes_ / num_l1s);

    cReads_ = &stats_.counter("reads");
    cWrites_ = &stats_.counter("writes");
    cL1Hits_ = &stats_.counter("l1_hits");
    cL1Misses_ = &stats_.counter("l1_misses");
    cL1Evictions_ = &stats_.counter("l1_evictions");
    cUpgrades_ = &stats_.counter("upgrades");
    cInvalidations_ = &stats_.counter("invalidations");
    cWritebacks_ = &stats_.counter("writebacks");
    cL2Hits_ = &stats_.counter("l2_hits");
    cL2Misses_ = &stats_.counter("l2_misses");
    cNumaRemote_ = &stats_.counter("numa_remote");
}

ContextId
MemorySystem::addContext(unsigned l1_id)
{
    HINTM_ASSERT(l1_id < l1s_.size(), "bad L1 id ", l1_id);
    contexts_.push_back(Context{l1_id, nullptr});
    const ContextId id = ContextId(contexts_.size() - 1);
    if (unsigned(id) >= maskBits)
        dirOn_ = false; // too many contexts for the masks
    else
        l1CtxMask_[l1_id] |= std::uint64_t(1) << unsigned(id);
    return id;
}

void
MemorySystem::setListener(ContextId ctx, SnoopListener *listener)
{
    contexts_.at(ctx).listener = listener;
    // A plain observer expects every event; transactional controllers
    // lower their interest themselves once hooked up.
    setListenerInterest(ctx, listener != nullptr);
    setListenerTxFiltered(ctx, listener == nullptr);
}

void
MemorySystem::setListenerInterest(ContextId ctx, bool interested)
{
    HINTM_ASSERT(ctx >= 0 && ctx < ContextId(contexts_.size()),
                 "bad context ", ctx);
    if (unsigned(ctx) >= maskBits)
        return; // broadcast mode; interest mask unused
    const std::uint64_t bit = std::uint64_t(1) << unsigned(ctx);
    if (interested)
        interestMask_ |= bit;
    else
        interestMask_ &= ~bit;
}

void
MemorySystem::setListenerTxFiltered(ContextId ctx, bool filtered)
{
    HINTM_ASSERT(ctx >= 0 && ctx < ContextId(contexts_.size()),
                 "bad context ", ctx);
    if (unsigned(ctx) >= maskBits)
        return; // broadcast mode; delivery masks unused
    const std::uint64_t bit = std::uint64_t(1) << unsigned(ctx);
    if (filtered)
        fullDeliveryMask_ &= ~bit;
    else
        fullDeliveryMask_ |= bit;
}

void
MemorySystem::setMetricsSink(MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics_)
        metrics_->initNuma(numaNodes_);
}

void
MemorySystem::sampleBusMetrics(unsigned requester_l1, Addr block)
{
    // Node-crossing traffic only exists with multiple NUMA nodes; the
    // 1x1 matrix is never rendered, so skip its upkeep entirely.
    if (numaNodes_ > 1)
        ++metrics_->numaTraffic(l1Node_[requester_l1], homeNodeOf(block));
    // The sharer census probes every peer L1, so it is decimated:
    // every sharerSampleEvery-th bus transaction. Peer copies are
    // probed directly (not through the directory, whose sharer bits
    // can be stale) so the histogram is identical in directory and
    // broadcast modes.
    if (metrics_->busEvents++ % MetricsRegistry::sharerSampleEvery != 0)
        return;
    unsigned sharers = 0;
    for (unsigned i = 0; i < l1s_.size(); ++i)
        if (i != requester_l1 && l1s_[i]->probe(block))
            ++sharers;
    metrics_->sharersAtBus.add(sharers);
}

void
MemorySystem::setPinChecker(unsigned l1_id, CacheArray::PinPredicate pred)
{
    HINTM_ASSERT(l1_id < l1s_.size(), "bad L1 id ", l1_id);
    pinCheckers_[l1_id] = std::move(pred);
}

const CacheLine *
MemorySystem::probeL1(ContextId ctx, Addr addr) const
{
    return l1s_[contexts_.at(ctx).l1]->probe(blockAlign(addr));
}

std::uint64_t
MemorySystem::sharerMaskOf(Addr addr) const
{
    return dirOn_ ? dir_.sharers(blockAlign(addr)) : 0;
}

std::int16_t
MemorySystem::ownerOf(Addr addr) const
{
    return dirOn_ ? dir_.owner(blockAlign(addr)) : Directory::noOwner;
}

DirState
MemorySystem::dirStateOf(Addr addr) const
{
    return dirOn_ ? dir_.state(blockAlign(addr)) : DirState::Uncached;
}

bool
MemorySystem::snoopOne(unsigned l1, Addr block, BusOp op)
{
    CacheLine *line = l1s_[l1]->lookup(block);
    if (!line)
        return false;
    switch (op) {
      case BusOp::Read:
        // Owner supplies data and downgrades; dirty data reaches L2.
        if (line->state == CoherState::Modified) {
            ++*cWritebacks_;
            l2_->insert(block, CoherState::Modified);
        }
        line->state = CoherState::Shared;
        if (dirOn_)
            dir_.recordDowngrade(block, l1);
        break;
      case BusOp::ReadExcl:
      case BusOp::Upgrade:
        if (line->state == CoherState::Modified) {
            ++*cWritebacks_;
            l2_->insert(block, CoherState::Modified);
        }
        line->state = CoherState::Invalid;
        ++*cInvalidations_;
        if (dirOn_)
            dir_.removeSharer(block, l1);
        break;
    }
    return true;
}

bool
MemorySystem::snoopPeers(unsigned requester_l1, Addr block, BusOp op)
{
    bool peer_had_copy = false;
    if (dirOn_) {
        std::uint64_t m = dir_.sharers(block) &
                          ~(std::uint64_t(1) << requester_l1);
        while (m) {
            const unsigned i = unsigned(std::countr_zero(m));
            m &= m - 1;
            if (snoopOne(i, block, op))
                peer_had_copy = true;
            else
                dir_.removeSharer(block, i); // heal a stale bit
        }
        return peer_had_copy;
    }
    for (unsigned i = 0; i < l1s_.size(); ++i) {
        if (i == requester_l1)
            continue;
        if (snoopOne(i, block, op))
            peer_had_copy = true;
    }
    return peer_had_copy;
}

void
MemorySystem::notifyBus(ContextId requester, Addr block, AccessType type)
{
    // Same-L1 siblings are covered by notifySiblings() on every access;
    // the bus only reaches the other cores.
    const unsigned l1 = contexts_[requester].l1;
    if (dirOn_) {
        // Only contexts that can possibly act on the event: unfiltered
        // (plain) listeners, contexts whose TX tracks the block
        // precisely, and — for writes — contexts carrying a read
        // signature that may alias any block. Tracker-filtered HTM
        // listeners treat every other event as a no-op, so skipping
        // them is behavior-preserving.
        std::uint64_t relevant = fullDeliveryMask_ | dir_.txTrackers(block);
        if (type == AccessType::Write)
            relevant |= dir_.sigActiveMask();
        std::uint64_t m = interestMask_ & ~l1CtxMask_[l1] & relevant;
        while (m) {
            const ContextId c = ContextId(std::countr_zero(m));
            m &= m - 1;
            if (contexts_[c].listener)
                contexts_[c].listener->onRemoteAccess(block, type,
                                                      requester);
        }
        return;
    }
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (c == requester || contexts_[c].l1 == l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onRemoteAccess(block, type, requester);
    }
}

void
MemorySystem::notifySiblings(ContextId requester, Addr block,
                             AccessType type)
{
    const unsigned l1 = contexts_[requester].l1;
    if (dirOn_) {
        std::uint64_t m = interestMask_ & l1CtxMask_[l1] &
                          ~(std::uint64_t(1) << unsigned(requester));
        while (m) {
            const ContextId c = ContextId(std::countr_zero(m));
            m &= m - 1;
            if (contexts_[c].listener)
                contexts_[c].listener->onRemoteAccess(block, type,
                                                      requester);
        }
        return;
    }
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (c == requester || contexts_[c].l1 != l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onRemoteAccess(block, type, requester);
    }
}

void
MemorySystem::notifyEviction(unsigned l1, Addr block, bool dirty)
{
    if (dirOn_) {
        std::uint64_t m = interestMask_ & l1CtxMask_[l1];
        while (m) {
            const ContextId c = ContextId(std::countr_zero(m));
            m &= m - 1;
            if (contexts_[c].listener)
                contexts_[c].listener->onEviction(block, dirty);
        }
        return;
    }
    for (ContextId c = 0; c < ContextId(contexts_.size()); ++c) {
        if (contexts_[c].l1 != l1)
            continue;
        if (contexts_[c].listener)
            contexts_[c].listener->onEviction(block, dirty);
    }
}

Cycle
MemorySystem::accessL2(Addr block, bool fill_dirty)
{
    Cycle lat = cfg_.l2Latency;
    CacheLine *line = l2_->lookup(block);
    if (line) {
        ++*cL2Hits_;
    } else {
        ++*cL2Misses_;
        lat += cfg_.memLatency;
        l2_->insert(block,
                    fill_dirty ? CoherState::Modified : CoherState::Shared);
    }
    return lat;
}

AccessResult
MemorySystem::access(ContextId ctx, Addr addr, AccessType type)
{
    HINTM_ASSERT(ctx >= 0 && ctx < ContextId(contexts_.size()),
                 "bad context ", ctx);
    if (observer_)
        observer_->onAccess(ctx, addr, type);
    const Addr block = blockAlign(addr);
    const unsigned l1_id = contexts_[ctx].l1;
    CacheArray &l1 = *l1s_[l1_id];

    AccessResult res;
    ++*(type == AccessType::Read ? cReads_ : cWrites_);

    // SMT siblings sharing this L1 observe every access, hit or miss,
    // mirroring per-thread transactional CAMs snooping local traffic.
    notifySiblings(ctx, block, type);

    CacheLine *line = l1.lookup(block);
    if (line) {
        res.l1Hit = true;
        ++*cL1Hits_;
        if (type == AccessType::Read ||
            line->state == CoherState::Modified ||
            line->state == CoherState::Exclusive) {
            // Silent hit; writes to E upgrade silently to M. Both E and
            // M map to the directory's Owned state, so no update needed.
            if (type == AccessType::Write)
                line->state = CoherState::Modified;
            res.latency = cfg_.l1Latency;
            return res;
        }
        // Write hit on Shared: bus upgrade.
        ++*cUpgrades_;
        if (metrics_)
            sampleBusMetrics(l1_id, block);
        snoopPeers(l1_id, block, BusOp::Upgrade);
        notifyBus(ctx, block, type);
        line->state = CoherState::Modified;
        if (dirOn_)
            dir_.recordUpgrade(block, l1_id);
        res.latency =
            cfg_.l1Latency + cfg_.upgradeLatency + numaPenalty(l1_id, block);
        return res;
    }

    // L1 miss: place a bus transaction.
    ++*cL1Misses_;
    if (metrics_)
        sampleBusMetrics(l1_id, block);
    const BusOp op =
        type == AccessType::Read ? BusOp::Read : BusOp::ReadExcl;
    const bool peer_had_copy = snoopPeers(l1_id, block, op);
    notifyBus(ctx, block, type);

    const Cycle l2_lat = accessL2(block, /*fill_dirty=*/false);
    res.l2Hit = l2_lat <= cfg_.l2Latency;
    res.latency = cfg_.l1Latency + l2_lat + numaPenalty(l1_id, block);

    CoherState fill;
    if (type == AccessType::Write)
        fill = CoherState::Modified;
    else
        fill = peer_had_copy ? CoherState::Shared : CoherState::Exclusive;

    const Eviction ev =
        l1.insert(block, fill,
                  pinCheckers_[l1_id] ? &pinCheckers_[l1_id] : nullptr);
    if (dirOn_)
        dir_.recordFill(block, l1_id, fill != CoherState::Shared);
    if (ev.happened) {
        ++*cL1Evictions_;
        if (dirOn_)
            dir_.removeSharer(ev.blockAddr, l1_id);
        if (ev.dirty) {
            ++*cWritebacks_;
            l2_->insert(ev.blockAddr, CoherState::Modified);
        }
        notifyEviction(l1_id, ev.blockAddr, ev.dirty);
    }
    return res;
}

MemorySystem::State
MemorySystem::saveState() const
{
    State s;
    s.arrays.reserve(l1s_.size() + 1);
    for (const auto &l1 : l1s_)
        s.arrays.push_back(*l1);
    s.arrays.push_back(*l2_);
    s.dirOn = dirOn_;
    s.dir = dir_;
    s.stats = stats_.values();
    return s;
}

void
MemorySystem::loadState(const State &s)
{
    HINTM_ASSERT(s.arrays.size() == l1s_.size() + 1,
                 "memory state cache-count mismatch");
    for (std::size_t i = 0; i < l1s_.size(); ++i)
        *l1s_[i] = s.arrays[i];
    *l2_ = s.arrays.back();
    dirOn_ = s.dirOn;
    dir_ = s.dir;
    stats_.setValues(s.stats);
}

} // namespace mem
} // namespace hintm
