/**
 * @file
 * The memory hierarchy facade: per-core private L1 data caches kept
 * coherent by a snoopy MESI bus, backed by a shared non-inclusive L2 and a
 * flat-latency memory (Table II organization).
 */

#ifndef HINTM_MEM_MEM_SYSTEM_HH
#define HINTM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/snoop_listener.hh"

namespace hintm
{
namespace mem
{

/** Timing and shape parameters of the hierarchy (paper Table II defaults). */
struct MemConfig
{
    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    Cycle l1Latency = 3;

    std::uint64_t l2SizeBytes = 8 * 1024 * 1024;
    unsigned l2Assoc = 16;
    Cycle l2Latency = 12;

    Cycle memLatency = 100;
    /** Extra cycles for a bus upgrade (invalidate-only) transaction. */
    Cycle upgradeLatency = 8;
};

/** Outcome of one memory access, consumed by the core timing model. */
struct AccessResult
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * The full memory system. Hardware thread contexts are registered up front
 * with the L1 they share (SMT siblings share one L1); each access then
 * flows L1 -> snoop bus -> L2 -> memory with MESI state maintenance,
 * delivering SnoopListener events along the way.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, unsigned num_l1s);

    /**
     * Register a hardware context using L1 @p l1_id.
     * @return the new context's id
     */
    ContextId addContext(unsigned l1_id);

    /** Attach the HTM-side observer for a context (may be null). */
    void setListener(ContextId ctx, SnoopListener *listener);

    /**
     * Install a pin predicate on one L1: blocks for which it returns
     * true are evicted only as a last resort (L1TM keeps transactional
     * state in the cache, so tracked lines are sticky).
     */
    void setPinChecker(unsigned l1_id, CacheArray::PinPredicate pred);

    /**
     * Perform one access and return its latency. Remote-context listeners
     * are notified before the call returns, so any conflict abort (and its
     * functional rollback) is complete when the requester's value is read.
     */
    AccessResult access(ContextId ctx, Addr addr, AccessType type);

    /** Number of registered contexts. */
    unsigned numContexts() const { return unsigned(contexts_.size()); }

    /** L1 id backing a context. */
    unsigned l1Of(ContextId ctx) const { return contexts_[ctx].l1; }

    /** Probe a context's L1 for a block (testing aid). */
    const CacheLine *probeL1(ContextId ctx, Addr addr) const;

    stats::StatGroup &statGroup() { return stats_; }
    const MemConfig &config() const { return cfg_; }

  private:
    struct Context
    {
        unsigned l1;
        SnoopListener *listener = nullptr;
    };

    /** Snoop peer L1s for a bus transaction; returns true if any peer had
     * a valid copy (decides Exclusive vs Shared fill). */
    bool snoopPeers(unsigned requester_l1, Addr block, BusOp op);

    /** Deliver onRemoteAccess to every context except the requester. */
    void notifyBus(ContextId requester, Addr block, AccessType type);

    /** Deliver onRemoteAccess to same-L1 siblings only (L1-hit case). */
    void notifySiblings(ContextId requester, Addr block, AccessType type);

    /** Deliver an eviction to every context sharing the L1. */
    void notifyEviction(unsigned l1, Addr block, bool dirty);

    /** L2 lookup/fill; returns the resulting latency beyond the L1. */
    Cycle accessL2(Addr block, bool fill_dirty);

    MemConfig cfg_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    std::vector<CacheArray::PinPredicate> pinCheckers_;
    std::unique_ptr<CacheArray> l2_;
    std::vector<Context> contexts_;
    stats::StatGroup stats_{"mem"};
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_MEM_SYSTEM_HH
