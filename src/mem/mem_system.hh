/**
 * @file
 * The memory hierarchy facade: per-core private L1 data caches kept
 * coherent by a snoopy MESI bus, backed by a shared non-inclusive L2 and a
 * flat-latency memory (Table II organization).
 *
 * The per-access fast path is O(actual sharers/listeners) instead of
 * O(cores): a sharer-tracking snoop filter (snoop_filter.hh) directs bus
 * transactions at the L1s that really hold the block, and listener
 * delivery is gated by a transactional-interest mask so contexts that are
 * not inside a transaction are never visited. Both filters are
 * behavior-preserving and can be disabled (MemConfig::snoopFilter=false)
 * for a broadcast-path cross-check.
 */

#ifndef HINTM_MEM_MEM_SYSTEM_HH
#define HINTM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/snoop_filter.hh"
#include "mem/snoop_listener.hh"

namespace hintm
{
namespace mem
{

/** Timing and shape parameters of the hierarchy (paper Table II defaults). */
struct MemConfig
{
    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    Cycle l1Latency = 3;

    std::uint64_t l2SizeBytes = 8 * 1024 * 1024;
    unsigned l2Assoc = 16;
    Cycle l2Latency = 12;

    Cycle memLatency = 100;
    /** Extra cycles for a bus upgrade (invalidate-only) transaction. */
    Cycle upgradeLatency = 8;

    /** Sharer-tracking snoop filter + interest-gated listener delivery.
     * Off = reference broadcast path (bit-identical results, O(cores)
     * per access); used as the --no-snoop-filter cross-check. */
    bool snoopFilter = true;
};

/** Outcome of one memory access, consumed by the core timing model. */
struct AccessResult
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * Optional tap on every access entering the hierarchy (the hint
 * oracle's shadow tracker). Purely observational: implementations must
 * not touch caches or timing.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;
    virtual void onAccess(ContextId ctx, Addr addr, AccessType type) = 0;
};

/**
 * The full memory system. Hardware thread contexts are registered up front
 * with the L1 they share (SMT siblings share one L1); each access then
 * flows L1 -> snoop bus -> L2 -> memory with MESI state maintenance,
 * delivering SnoopListener events along the way.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, unsigned num_l1s);

    /**
     * Register a hardware context using L1 @p l1_id.
     * @return the new context's id
     */
    ContextId addContext(unsigned l1_id);

    /**
     * Attach the HTM-side observer for a context (may be null). A fresh
     * listener starts *interested* (it receives every event, as a plain
     * observer expects); transactional controllers lower their interest
     * via setListenerInterest() while outside a transaction.
     */
    void setListener(ContextId ctx, SnoopListener *listener);

    /**
     * Declare whether @p ctx's listener currently needs coherence events
     * (onRemoteAccess/onEviction). Uninterested listeners are skipped
     * entirely on the fast path; since HTM controllers ignore events
     * outside transactions anyway, gating is behavior-preserving.
     */
    void setListenerInterest(ContextId ctx, bool interested);

    /**
     * Install a pin predicate on one L1: blocks for which it returns
     * true are evicted only as a last resort (L1TM keeps transactional
     * state in the cache, so tracked lines are sticky).
     */
    void setPinChecker(unsigned l1_id, CacheArray::PinPredicate pred);

    /**
     * Install an observer invoked at the entry of every access(), before
     * any cache state changes (may be null to detach). Observation only:
     * the access proceeds identically with or without it.
     */
    void setAccessObserver(AccessObserver *obs) { observer_ = obs; }

    /**
     * Perform one access and return its latency. Remote-context listeners
     * are notified before the call returns, so any conflict abort (and its
     * functional rollback) is complete when the requester's value is read.
     */
    AccessResult access(ContextId ctx, Addr addr, AccessType type);

    /** Number of registered contexts. */
    unsigned numContexts() const { return unsigned(contexts_.size()); }

    /** L1 id backing a context. */
    unsigned l1Of(ContextId ctx) const { return contexts_[ctx].l1; }

    /** Probe a context's L1 for a block (testing aid). */
    const CacheLine *probeL1(ContextId ctx, Addr addr) const;

    /** True when the snoop filter + interest gating are in effect. */
    bool filterActive() const { return filterOn_; }

    /** Snoop-filter sharer mask of a block (testing aid; 0 when the
     * filter is inactive). */
    std::uint64_t sharerMaskOf(Addr addr) const;

    /** Current interested-listener mask, bit = context id (testing aid). */
    std::uint64_t listenerInterestMask() const { return interestMask_; }

    stats::StatGroup &statGroup() { return stats_; }
    const MemConfig &config() const { return cfg_; }

    /**
     * Cache arrays (L1s in id order, then the L2), snoop-filter contents
     * and stat values. The listener-interest mask is not captured: HTM
     * controllers re-publish their interest when they are restored.
     */
    struct State
    {
        std::vector<CacheArray> arrays;
        bool filterOn = true;
        SnoopFilter filter;
        stats::StatGroup::Values stats;
    };

    State saveState() const;
    void loadState(const State &s);

  private:
    struct Context
    {
        unsigned l1;
        SnoopListener *listener = nullptr;
    };

    /** Snoop peer L1s for a bus transaction; returns true if any peer had
     * a valid copy (decides Exclusive vs Shared fill). */
    bool snoopPeers(unsigned requester_l1, Addr block, BusOp op);

    /** Deliver onRemoteAccess to every context except the requester. */
    void notifyBus(ContextId requester, Addr block, AccessType type);

    /** Deliver onRemoteAccess to same-L1 siblings only (L1-hit case). */
    void notifySiblings(ContextId requester, Addr block, AccessType type);

    /** Deliver an eviction to every context sharing the L1. */
    void notifyEviction(unsigned l1, Addr block, bool dirty);

    /** L2 lookup/fill; returns the resulting latency beyond the L1. */
    Cycle accessL2(Addr block, bool fill_dirty);

    /** One snoop operation against a single peer L1's copy of @p block.
     * @return true when the peer held a valid copy. */
    bool snoopOne(unsigned l1, Addr block, BusOp op);

    MemConfig cfg_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    std::vector<CacheArray::PinPredicate> pinCheckers_;
    std::unique_ptr<CacheArray> l2_;
    std::vector<Context> contexts_;
    stats::StatGroup stats_{"mem"};

    /** Fast-path state. filterOn_ drops to false (broadcast mode) when
     * the configuration disables it or the machine outgrows the 64-bit
     * masks. */
    bool filterOn_ = true;
    SnoopFilter filter_;
    AccessObserver *observer_ = nullptr;
    std::uint64_t interestMask_ = 0;
    std::vector<std::uint64_t> l1CtxMask_;

    // Hot counters, resolved once instead of by-name per access.
    stats::Counter *cReads_;
    stats::Counter *cWrites_;
    stats::Counter *cL1Hits_;
    stats::Counter *cL1Misses_;
    stats::Counter *cL1Evictions_;
    stats::Counter *cUpgrades_;
    stats::Counter *cInvalidations_;
    stats::Counter *cWritebacks_;
    stats::Counter *cL2Hits_;
    stats::Counter *cL2Misses_;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_MEM_SYSTEM_HH
