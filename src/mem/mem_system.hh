/**
 * @file
 * The memory hierarchy facade: per-core private L1 data caches kept
 * coherent by MESI, backed by a shared non-inclusive L2 and a
 * flat-latency memory (Table II organization).
 *
 * Coherence runs in one of two modes:
 *
 *  - Directory (default): an owning mem::Directory is the authoritative
 *    source of sharer/owner state. Bus probes visit only the L1s that
 *    really hold the block, and listener delivery is additionally
 *    filtered by the directory's per-block transactional-tracker masks,
 *    so the per-access cost is O(sharers + trackers) independent of the
 *    core count.
 *
 *  - Broadcast (MemConfig::directory = false, --no-directory): the
 *    reference path probes every L1 and delivers every listener event,
 *    O(cores) per access. Bit-identical results; kept as the
 *    cross-check, exactly like the PR 2/PR 3 fast paths.
 *
 * Independently of the mode, a two-tier NUMA latency model charges
 * remote-home bus transactions extra cycles when MemConfig::numaNodes
 * is above one (L1s are grouped into contiguous nodes; a block's home
 * node is its block number modulo the node count).
 */

#ifndef HINTM_MEM_MEM_SYSTEM_HH
#define HINTM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/snoop_listener.hh"

namespace hintm
{

class MetricsRegistry; // common/metrics.hh

namespace mem
{

/** Timing and shape parameters of the hierarchy (paper Table II defaults). */
struct MemConfig
{
    std::uint64_t l1SizeBytes = 32 * 1024;
    unsigned l1Assoc = 8;
    Cycle l1Latency = 3;

    std::uint64_t l2SizeBytes = 8 * 1024 * 1024;
    unsigned l2Assoc = 16;
    Cycle l2Latency = 12;

    Cycle memLatency = 100;
    /** Extra cycles for a bus upgrade (invalidate-only) transaction. */
    Cycle upgradeLatency = 8;

    /** Owning coherence directory + tracker-filtered listener delivery.
     * Off = reference broadcast path (bit-identical results, O(cores)
     * per access); used as the --no-directory cross-check. */
    bool directory = true;

    /** NUMA-ish latency tiers: L1s are split into this many contiguous
     * nodes and bus transactions whose home directory node differs from
     * the requester's pay numaRemoteLatency extra. 1 = flat (paper). */
    unsigned numaNodes = 1;
    /** Extra cycles for a remote-home bus transaction. */
    Cycle numaRemoteLatency = 24;
};

/** Outcome of one memory access, consumed by the core timing model. */
struct AccessResult
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * Optional tap on every access entering the hierarchy (the hint
 * oracle's shadow tracker). Purely observational: implementations must
 * not touch caches or timing.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;
    virtual void onAccess(ContextId ctx, Addr addr, AccessType type) = 0;
};

/**
 * The full memory system. Hardware thread contexts are registered up front
 * with the L1 they share (SMT siblings share one L1); each access then
 * flows L1 -> coherence -> L2 -> memory with MESI state maintenance,
 * delivering SnoopListener events along the way.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, unsigned num_l1s);

    /**
     * Register a hardware context using L1 @p l1_id.
     * @return the new context's id
     */
    ContextId addContext(unsigned l1_id);

    /**
     * Attach the HTM-side observer for a context (may be null). A fresh
     * listener starts *interested* (it receives every event, as a plain
     * observer expects) and *unfiltered* (directory tracker masks are
     * not consulted for it); transactional controllers lower their
     * interest via setListenerInterest() and opt into tracker filtering
     * via setListenerTxFiltered().
     */
    void setListener(ContextId ctx, SnoopListener *listener);

    /**
     * Declare whether @p ctx's listener currently needs coherence events
     * (onRemoteAccess/onEviction). Uninterested listeners are skipped
     * entirely on the fast path; since HTM controllers ignore events
     * outside transactions anyway, gating is behavior-preserving.
     */
    void setListenerInterest(ContextId ctx, bool interested);

    /**
     * Opt @p ctx's listener into directory tracker-filtered delivery:
     * bus events reach it only when the directory records the context as
     * tracking the block (or, for writes, as signature-active). Only
     * valid for listeners whose event handling is a no-op on untracked
     * blocks — i.e. HTM controllers, which register every tracked block
     * with the directory. Plain observers must stay unfiltered.
     */
    void setListenerTxFiltered(ContextId ctx, bool filtered);

    /**
     * Install a pin predicate on one L1: blocks for which it returns
     * true are evicted only as a last resort (L1TM keeps transactional
     * state in the cache, so tracked lines are sticky).
     */
    void setPinChecker(unsigned l1_id, CacheArray::PinPredicate pred);

    /**
     * Install an observer invoked at the entry of every access(), before
     * any cache state changes (may be null to detach). Observation only:
     * the access proceeds identically with or without it.
     */
    void setAccessObserver(AccessObserver *obs) { observer_ = obs; }

    /**
     * Attach the capacity-pressure metrics registry (may be null to
     * detach). When set, every bus transaction samples the peer-sharer
     * histogram and the requester-node x home-node traffic matrix.
     * Observation only: accesses proceed identically either way.
     */
    void setMetricsSink(MetricsRegistry *metrics);

    /** Geometry shared by every L1 (the machine's hint-saved verdict
     * needs set/assoc arithmetic). */
    const CacheGeometry &l1Geometry() const { return l1s_[0]->geometry(); }

    /** Scan the valid lines of the L1 set @p addr maps to in @p ctx's
     * L1 (the metrics layer's overflowing-set occupancy breakdown). */
    template <typename Fn>
    void
    forEachValidInL1Set(ContextId ctx, Addr addr, Fn &&fn) const
    {
        l1s_[contexts_[ctx].l1]->forEachValidInSet(
            blockAlign(addr), std::forward<Fn>(fn));
    }

    /**
     * Perform one access and return its latency. Remote-context listeners
     * are notified before the call returns, so any conflict abort (and its
     * functional rollback) is complete when the requester's value is read.
     */
    AccessResult access(ContextId ctx, Addr addr, AccessType type);

    /** Number of registered contexts. */
    unsigned numContexts() const { return unsigned(contexts_.size()); }

    /** L1 id backing a context. */
    unsigned l1Of(ContextId ctx) const { return contexts_[ctx].l1; }

    /** Probe a context's L1 for a block (testing aid). */
    const CacheLine *probeL1(ContextId ctx, Addr addr) const;

    /** True when the directory + interest gating are in effect. */
    bool directoryActive() const { return dirOn_; }

    /** The owning directory, or null in broadcast mode. Controllers use
     * it to register transactional trackers; the machine uses it for
     * O(trackers) conflict pre-flight. */
    Directory *directory() { return dirOn_ ? &dir_ : nullptr; }

    /** Directory sharer mask of a block (testing aid; 0 when the
     * directory is inactive). */
    std::uint64_t sharerMaskOf(Addr addr) const;

    /** Directory owner L1 of a block (testing aid; -1 = none). */
    std::int16_t ownerOf(Addr addr) const;

    /** Directory stable state of a block (testing aid; Uncached when
     * the directory is inactive). */
    DirState dirStateOf(Addr addr) const;

    /** NUMA node of an L1 (always 0 in flat configurations). */
    unsigned nodeOfL1(unsigned l1_id) const { return l1Node_[l1_id]; }

    /** NUMA home node of an address's block. */
    unsigned
    homeNodeOf(Addr addr) const
    {
        return numaNodes_ <= 1
                   ? 0
                   : unsigned(blockNumber(addr) % numaNodes_);
    }

    /** Current interested-listener mask, bit = context id (testing aid). */
    std::uint64_t listenerInterestMask() const { return interestMask_; }

    stats::StatGroup &statGroup() { return stats_; }
    const MemConfig &config() const { return cfg_; }

    /**
     * Cache arrays (L1s in id order, then the L2), directory contents
     * (sharer/owner/tracker masks + the sig-active mask) and stat
     * values. The listener-interest mask is not captured: HTM
     * controllers re-publish their interest when they are restored.
     */
    struct State
    {
        std::vector<CacheArray> arrays;
        bool dirOn = true;
        Directory dir;
        stats::StatGroup::Values stats;
    };

    State saveState() const;
    void loadState(const State &s);

  private:
    struct Context
    {
        unsigned l1;
        SnoopListener *listener = nullptr;
    };

    /** Snoop peer L1s for a bus transaction; returns true if any peer had
     * a valid copy (decides Exclusive vs Shared fill). */
    bool snoopPeers(unsigned requester_l1, Addr block, BusOp op);

    /** Deliver onRemoteAccess to every context except the requester. */
    void notifyBus(ContextId requester, Addr block, AccessType type);

    /** Deliver onRemoteAccess to same-L1 siblings only (L1-hit case). */
    void notifySiblings(ContextId requester, Addr block, AccessType type);

    /** Deliver an eviction to every context sharing the L1. */
    void notifyEviction(unsigned l1, Addr block, bool dirty);

    /** L2 lookup/fill; returns the resulting latency beyond the L1. */
    Cycle accessL2(Addr block, bool fill_dirty);

    /** One snoop operation against a single peer L1's copy of @p block.
     * @return true when the peer held a valid copy. */
    bool snoopOne(unsigned l1, Addr block, BusOp op);

    /** Metrics tap at each bus transaction: peer-sharer count (probed
     * before the snoop mutates peer state, identically in both
     * coherence modes) and the NUMA traffic matrix cell. */
    void sampleBusMetrics(unsigned requester_l1, Addr block);

    /** Extra cycles when @p l1_id's bus transaction targets a block
     * whose home directory node is remote (0 in flat configurations). */
    Cycle
    numaPenalty(unsigned l1_id, Addr block)
    {
        if (numaNodes_ <= 1)
            return 0;
        if (l1Node_[l1_id] == homeNodeOf(block))
            return 0;
        ++*cNumaRemote_;
        return cfg_.numaRemoteLatency;
    }

    MemConfig cfg_;
    std::vector<std::unique_ptr<CacheArray>> l1s_;
    std::vector<CacheArray::PinPredicate> pinCheckers_;
    std::unique_ptr<CacheArray> l2_;
    std::vector<Context> contexts_;
    stats::StatGroup stats_{"mem"};

    /** Fast-path state. dirOn_ drops to false (broadcast mode) when
     * the configuration disables it or the machine outgrows the 64-bit
     * masks. */
    bool dirOn_ = true;
    Directory dir_;
    AccessObserver *observer_ = nullptr;
    MetricsRegistry *metrics_ = nullptr;
    std::uint64_t interestMask_ = 0;
    /** Contexts whose listeners must see every bus event (not opted
     * into tracker filtering). */
    std::uint64_t fullDeliveryMask_ = 0;
    std::vector<std::uint64_t> l1CtxMask_;
    /** NUMA node of each L1 (contiguous grouping). */
    std::vector<unsigned> l1Node_;
    unsigned numaNodes_ = 1;

    // Hot counters, resolved once instead of by-name per access.
    stats::Counter *cReads_;
    stats::Counter *cWrites_;
    stats::Counter *cL1Hits_;
    stats::Counter *cL1Misses_;
    stats::Counter *cL1Evictions_;
    stats::Counter *cUpgrades_;
    stats::Counter *cInvalidations_;
    stats::Counter *cWritebacks_;
    stats::Counter *cL2Hits_;
    stats::Counter *cL2Misses_;
    stats::Counter *cNumaRemote_;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_MEM_SYSTEM_HH
