/**
 * @file
 * Coherence protocol vocabulary shared by the cache arrays and the snoop
 * bus: MESI line states and bus transaction kinds.
 */

#ifndef HINTM_MEM_COHERENCE_HH
#define HINTM_MEM_COHERENCE_HH

#include <cstdint>

namespace hintm
{
namespace mem
{

/** MESI line state. */
enum class CoherState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Kind of transaction placed on the snoop bus. */
enum class BusOp : std::uint8_t
{
    Read,     ///< read miss (GetS)
    ReadExcl, ///< write miss (GetX / RFO)
    Upgrade,  ///< write hit on a Shared line (invalidate others)
};

/** Printable name of a coherence state (debugging aid). */
const char *coherStateName(CoherState s);

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_COHERENCE_HH
