/**
 * @file
 * Owning coherence directory: the authoritative record of which L1s hold
 * each block (64-bit sharer mask), which L1 owns it exclusively, and its
 * MESI-equivalent stable state. Promoted from the PR 2 sharer-tracking
 * snoop filter, which answered only "who might share this block"; the
 * directory also answers "who owns it" and "which hardware contexts
 * have it in a transactional read/write set", so bus probes, listener
 * delivery and HTM conflict detection all iterate true sharers —
 * per-access cost O(sharers), not O(cores).
 *
 * Alongside coherence state, each entry carries a transactional-tracker
 * mask: the set of hardware contexts whose HTM controller currently has
 * the block in its precise read/write set (dedicated buffer or P8S
 * overflow list). Controllers register on insert and deregister when the
 * TX ends, so bus-event delivery can skip every context that provably
 * cannot conflict on the block. P8S read signatures summarize arbitrary
 * blocks, so signature-carrying contexts are recorded in a separate
 * sig-active mask and receive every remote write regardless of trackers.
 *
 * The table is open-addressing with linear probing; entries whose masks
 * all drop to zero stay in the table and are reused when the block is
 * touched again, so no tombstones are needed. The directory is
 * maintained precisely by MemorySystem, but sharer lookups tolerate
 * stale (superset) masks: a probe of a masked L1 that misses simply
 * heals the entry, exactly like the snoop filter did.
 */

#ifndef HINTM_MEM_DIRECTORY_HH
#define HINTM_MEM_DIRECTORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hintm
{
namespace mem
{

/**
 * Directory-visible stable state of a block. The directory cannot see
 * silent E->M upgrades, so Exclusive and Modified collapse into one
 * Owned state (single valid, possibly dirty copy at `owner`).
 */
enum class DirState : std::uint8_t
{
    Uncached, ///< no L1 holds the block
    Shared,   ///< one or more clean copies, no owner
    Owned,    ///< exactly one copy, exclusive or dirty, at owner()
};

class Directory
{
  public:
    /** Owner value meaning "no exclusive owner". */
    static constexpr std::int16_t noOwner = -1;

    explicit Directory(std::size_t initial_slots = 1024)
    {
        std::size_t cap = 64;
        while (cap < initial_slots)
            cap <<= 1;
        slots_.assign(cap, Slot{});
    }

    /** Bitmask of L1s that may hold @p block (0 = definitely uncached). */
    std::uint64_t
    sharers(Addr block) const
    {
        const Slot &s = *const_cast<Directory *>(this)->findSlot(block);
        return s.block == block ? s.sharerMask : 0;
    }

    /** Stable state of @p block as the directory sees it. */
    DirState
    state(Addr block) const
    {
        const Slot &s = *const_cast<Directory *>(this)->findSlot(block);
        if (s.block != block || s.sharerMask == 0)
            return DirState::Uncached;
        return s.owner == noOwner ? DirState::Shared : DirState::Owned;
    }

    /** Exclusive-owner L1 of @p block, or noOwner. */
    std::int16_t
    owner(Addr block) const
    {
        const Slot &s = *const_cast<Directory *>(this)->findSlot(block);
        return s.block == block ? s.owner : noOwner;
    }

    /**
     * Record that L1 @p l1 filled @p block. @p exclusive marks an E/M
     * fill (no other valid copy exists), making @p l1 the owner; a
     * Shared fill joins the sharer list without ownership.
     */
    void
    recordFill(Addr block, unsigned l1, bool exclusive)
    {
        Slot *s = insertSlot(block);
        s->sharerMask |= std::uint64_t(1) << l1;
        s->owner = exclusive ? std::int16_t(l1) : noOwner;
    }

    /** A write hit on Shared upgraded after invalidating the peers:
     * @p l1 becomes the sole owner. */
    void
    recordUpgrade(Addr block, unsigned l1)
    {
        Slot *s = findSlot(block);
        if (s->block == block)
            s->owner = std::int16_t(l1);
    }

    /** A Read snoop downgraded @p l1's exclusive copy to Shared. */
    void
    recordDowngrade(Addr block, unsigned l1)
    {
        Slot *s = findSlot(block);
        if (s->block == block && s->owner == std::int16_t(l1))
            s->owner = noOwner;
    }

    /** L1 @p l1 no longer holds @p block (eviction, snoop invalidation,
     * or a stale-bit heal after a missed probe). */
    void
    removeSharer(Addr block, unsigned l1)
    {
        Slot *s = findSlot(block);
        if (s->block != block)
            return;
        s->sharerMask &= ~(std::uint64_t(1) << l1);
        if (s->owner == std::int16_t(l1))
            s->owner = noOwner;
    }

    // ---- transactional trackers ------------------------------------

    /** Hardware context @p ctx tracks @p block in its precise TX
     * read/write set (idempotent). */
    void
    txTrack(Addr block, unsigned ctx)
    {
        Slot *s = insertSlot(block);
        s->trackerMask |= std::uint64_t(1) << ctx;
    }

    /** Context @p ctx dropped @p block from its TX tracking state. */
    void
    txUntrack(Addr block, unsigned ctx)
    {
        Slot *s = findSlot(block);
        if (s->block == block)
            s->trackerMask &= ~(std::uint64_t(1) << ctx);
    }

    /** Contexts whose TXs track @p block precisely. */
    std::uint64_t
    txTrackers(Addr block) const
    {
        const Slot &s = *const_cast<Directory *>(this)->findSlot(block);
        return s.block == block ? s.trackerMask : 0;
    }

    /** Context @p ctx has (or no longer has) a live read signature that
     * may alias any block; it must see every remote write. */
    void
    setSigActive(unsigned ctx, bool on)
    {
        const std::uint64_t bit = std::uint64_t(1) << ctx;
        if (on)
            sigActiveMask_ |= bit;
        else
            sigActiveMask_ &= ~bit;
    }

    /** Contexts with live (possibly aliasing) read signatures. */
    std::uint64_t sigActiveMask() const { return sigActiveMask_; }

    /** Number of blocks with at least one sharer (testing aid). */
    std::size_t
    trackedBlocks() const
    {
        std::size_t n = 0;
        for (const Slot &s : slots_) {
            if (s.block != emptyKey && s.sharerMask != 0)
                ++n;
        }
        return n;
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    static constexpr Addr emptyKey = ~Addr(0);

    struct Slot
    {
        Addr block = emptyKey;
        std::uint64_t sharerMask = 0;
        std::uint64_t trackerMask = 0;
        std::int16_t owner = noOwner;
    };

    /** Slot holding @p block, or the empty slot where it would go. */
    Slot *
    findSlot(Addr block)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i =
            std::size_t(block * 0x9E3779B97F4A7C15ull >> 32) & mask;
        while (slots_[i].block != emptyKey && slots_[i].block != block)
            i = (i + 1) & mask;
        return &slots_[i];
    }

    /** findSlot + claim the slot for @p block, growing as needed. */
    Slot *
    insertSlot(Addr block)
    {
        if ((used_ + 1) * 4 > slots_.size() * 3)
            grow();
        Slot *s = findSlot(block);
        if (s->block != block) {
            s->block = block;
            s->sharerMask = 0;
            s->trackerMask = 0;
            s->owner = noOwner;
            ++used_;
        }
        return s;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        used_ = 0;
        for (const Slot &s : old) {
            if (s.block == emptyKey)
                continue;
            Slot *dst = findSlot(s.block);
            *dst = s;
            ++used_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
    std::uint64_t sigActiveMask_ = 0;
};

} // namespace mem
} // namespace hintm

#endif // HINTM_MEM_DIRECTORY_HH
